// Synthetic spatio-textual corpora reproducing the statistical shape of the
// paper's Twitter and Wikipedia datasets (Table 2).
//
// The real crawls are not redistributable, so the generators reproduce the
// properties that drive index behaviour instead:
//   * keyword frequencies: a Zipf "core" vocabulary plus a stream of fresh
//     rare terms, tuned so the unique-keyword count grows with corpus size
//     the way Table 2 reports (~0.44 unique keywords per Twitter tuple
//     block; most words are hapax legomena);
//   * keywords per document: ~6.5 for Twitter-like data, ~130 for
//     Wikipedia-like data;
//   * term weights: near-constant for Twitter (a tweet's terms almost all
//     appear once, which is why Figure 11 shows alpha-insensitivity there)
//     and broadly spread for Wikipedia;
//   * locations: a mixture of Gaussian population clusters over a
//     lon/lat-like plane with a uniform background.

#ifndef I3_DATAGEN_DATASET_H_
#define I3_DATAGEN_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/geo.h"
#include "model/document.h"

namespace i3 {

/// \brief A generated corpus plus its descriptive statistics.
struct Dataset {
  std::string name;
  Rect space;
  std::vector<SpatialDocument> docs;

  uint64_t NumDocs() const { return docs.size(); }
  /// Number of distinct TermIds used (Table 2, column 2).
  uint64_t UniqueKeywords() const;
  /// Mean keywords per document (Table 2, column 3).
  double AvgKeywordsPerDoc() const;
  /// Total number of spatial tuples (sum of per-doc keyword counts).
  uint64_t NumTuples() const;
};

/// \brief Knobs of the synthetic generator.
struct GeneratorSpec {
  std::string name = "dataset";
  uint32_t num_docs = 100000;
  /// Zipf core vocabulary size.
  uint32_t core_vocab = 20000;
  /// Zipf skew of the core.
  double zipf_theta = 1.0;
  /// Probability that a term slot introduces a brand-new rare term.
  double fresh_term_prob = 0.068;
  /// Keywords per document, uniform in [min_terms, max_terms].
  uint32_t min_terms = 3;
  uint32_t max_terms = 10;
  /// Term weight range (uniform).
  float min_weight = 0.45f;
  float max_weight = 0.55f;
  /// Spatial mixture.
  Rect space{-180.0, -90.0, 180.0, 90.0};
  uint32_t clusters = 64;
  double cluster_sigma_frac = 1.0 / 160.0;  // of the space width
  double clustered_fraction = 0.8;
  uint64_t seed = 1;
};

/// \brief Generates a corpus from a spec. Deterministic in the seed.
Dataset Generate(const GeneratorSpec& spec);

/// \brief Twitter-like spec at a given cardinality (defaults reproduce the
/// Table 2 shape: ~6.5 keywords/doc, unique keywords ~0.44x docs,
/// near-constant weights).
GeneratorSpec TwitterSpec(uint32_t num_docs, uint64_t seed = 1);

/// \brief Wikipedia-like spec: few documents, ~130 keywords each, wide
/// weight spread, unique keywords ~2.2x docs.
GeneratorSpec WikipediaSpec(uint32_t num_docs, uint64_t seed = 2);

}  // namespace i3

#endif  // I3_DATAGEN_DATASET_H_
