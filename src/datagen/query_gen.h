// Query workload generators reproducing the paper's two query sets
// (Section 6.2): FREQ (frequent-keyword queries of a fixed length qn) and
// REST ("restaurant"-style queries: one very frequent anchor keyword plus
// common companions). Query locations are sampled from the dataset's own
// spatial distribution, as in the paper.

#ifndef I3_DATAGEN_QUERY_GEN_H_
#define I3_DATAGEN_QUERY_GEN_H_

#include <vector>

#include "datagen/dataset.h"
#include "model/query.h"

namespace i3 {

/// \brief Samples FREQ / REST workloads from a dataset's term statistics.
class QueryGenerator {
 public:
  /// Precomputes the frequency ranking of the dataset's vocabulary.
  explicit QueryGenerator(const Dataset& dataset);

  /// \brief FREQ_qn: `num_queries` queries of `qn` distinct keywords drawn
  /// from the most frequent terms (the paper sorts AOL queries by keyword
  /// frequency and keeps the top 100; we sample qn-subsets of the top of
  /// the ranking, biased toward the very top).
  std::vector<Query> Freq(uint32_t qn, uint32_t num_queries, uint32_t k,
                          Semantics semantics, uint64_t seed) const;

  /// \brief REST: queries always containing the single most frequent
  /// keyword (the "restaurant" anchor) plus zero to two companions from
  /// the frequent tail, mirroring Table 3.
  std::vector<Query> Rest(uint32_t num_queries, uint32_t k,
                          Semantics semantics, uint64_t seed) const;

  /// Most frequent terms, descending.
  const std::vector<TermId>& ranking() const { return by_freq_; }

 private:
  Point SampleLocation(class Rng* rng) const;

  const Dataset* dataset_;
  std::vector<TermId> by_freq_;
};

}  // namespace i3

#endif  // I3_DATAGEN_QUERY_GEN_H_
