#include "datagen/dataset.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"

namespace i3 {

uint64_t Dataset::UniqueKeywords() const {
  std::unordered_set<TermId> seen;
  for (const auto& d : docs) {
    for (const auto& wt : d.terms) seen.insert(wt.term);
  }
  return seen.size();
}

double Dataset::AvgKeywordsPerDoc() const {
  if (docs.empty()) return 0.0;
  return static_cast<double>(NumTuples()) / static_cast<double>(docs.size());
}

uint64_t Dataset::NumTuples() const {
  uint64_t n = 0;
  for (const auto& d : docs) n += d.terms.size();
  return n;
}

Dataset Generate(const GeneratorSpec& spec) {
  Rng rng(spec.seed);
  ZipfSampler zipf(spec.core_vocab, spec.zipf_theta);

  // Population clusters: Zipf-weighted sizes (a few megacities, many
  // towns), uniform centers.
  std::vector<Point> centers;
  centers.reserve(spec.clusters);
  for (uint32_t c = 0; c < spec.clusters; ++c) {
    centers.push_back(
        {rng.UniformDouble(spec.space.min_x, spec.space.max_x),
         rng.UniformDouble(spec.space.min_y, spec.space.max_y)});
  }
  ZipfSampler cluster_pick(spec.clusters, 1.0);
  const double sigma = spec.space.Width() * spec.cluster_sigma_frac;

  // Fresh (rare) terms are allocated above the core vocabulary.
  TermId next_fresh = spec.core_vocab;

  Dataset ds;
  ds.name = spec.name;
  ds.space = spec.space;
  ds.docs.reserve(spec.num_docs);

  for (uint32_t i = 0; i < spec.num_docs; ++i) {
    SpatialDocument d;
    d.id = i;

    if (rng.Chance(spec.clustered_fraction)) {
      const Point& c = centers[cluster_pick.Sample(&rng)];
      d.location.x = std::clamp(c.x + rng.Gaussian(0, sigma),
                                spec.space.min_x, spec.space.max_x);
      d.location.y = std::clamp(c.y + rng.Gaussian(0, sigma),
                                spec.space.min_y, spec.space.max_y);
    } else {
      d.location.x = rng.UniformDouble(spec.space.min_x, spec.space.max_x);
      d.location.y = rng.UniformDouble(spec.space.min_y, spec.space.max_y);
    }

    const uint32_t n_terms = static_cast<uint32_t>(
        rng.UniformInt(spec.min_terms, spec.max_terms));
    std::vector<TermId> terms;
    terms.reserve(n_terms);
    int guard = 0;
    while (terms.size() < n_terms && guard++ < 1000) {
      TermId t;
      if (rng.Chance(spec.fresh_term_prob)) {
        t = next_fresh++;
      } else {
        t = static_cast<TermId>(zipf.Sample(&rng));
      }
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    std::sort(terms.begin(), terms.end());
    d.terms.reserve(terms.size());
    for (TermId t : terms) {
      d.terms.push_back(
          {t, static_cast<float>(rng.UniformDouble(spec.min_weight,
                                                   spec.max_weight))});
    }
    ds.docs.push_back(std::move(d));
  }
  return ds;
}

GeneratorSpec TwitterSpec(uint32_t num_docs, uint64_t seed) {
  GeneratorSpec s;
  s.name = "Twitter" + std::to_string(num_docs);
  s.num_docs = num_docs;
  // Core vocabulary scales sublinearly with corpus size (Heaps' law-ish);
  // the fresh-term stream supplies the hapax tail that makes Table 2's
  // unique-keyword counts grow to ~0.44 per document-block.
  s.core_vocab = std::max<uint32_t>(500, num_docs / 20);
  s.zipf_theta = 1.0;
  s.fresh_term_prob = 0.065;
  s.min_terms = 3;
  s.max_terms = 10;  // mean 6.5, matching Table 2
  s.min_weight = 0.45f;
  s.max_weight = 0.55f;  // tweets: near-constant term weights
  s.seed = seed;
  return s;
}

GeneratorSpec WikipediaSpec(uint32_t num_docs, uint64_t seed) {
  GeneratorSpec s;
  s.name = "Wikipedia" + std::to_string(num_docs);
  s.num_docs = num_docs;
  s.core_vocab = std::max<uint32_t>(2000, num_docs / 2);
  s.zipf_theta = 0.9;
  s.fresh_term_prob = 0.017;
  s.min_terms = 60;
  s.max_terms = 200;  // mean 130, matching Table 2
  s.min_weight = 0.05f;
  s.max_weight = 1.0f;  // articles: widely spread tf-idf weights
  s.clusters = 32;
  s.clustered_fraction = 0.7;
  s.seed = seed;
  return s;
}

}  // namespace i3
