#include "datagen/query_gen.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"

namespace i3 {

QueryGenerator::QueryGenerator(const Dataset& dataset) : dataset_(&dataset) {
  std::unordered_map<TermId, uint64_t> freq;
  for (const auto& d : dataset.docs) {
    for (const auto& wt : d.terms) ++freq[wt.term];
  }
  by_freq_.reserve(freq.size());
  for (const auto& [t, f] : freq) by_freq_.push_back(t);
  std::sort(by_freq_.begin(), by_freq_.end(),
            [&](TermId a, TermId b) {
              if (freq[a] != freq[b]) return freq[a] > freq[b];
              return a < b;
            });
}

Point QueryGenerator::SampleLocation(Rng* rng) const {
  if (dataset_->docs.empty()) return dataset_->space.Center();
  const size_t i = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(dataset_->docs.size()) - 1));
  return dataset_->docs[i].location;
}

std::vector<Query> QueryGenerator::Freq(uint32_t qn, uint32_t num_queries,
                                        uint32_t k, Semantics semantics,
                                        uint64_t seed) const {
  Rng rng(seed);
  // Sample from the top of the ranking with a Zipf bias so the very
  // frequent keywords dominate, like the AOL-derived FREQ sets.
  const size_t pool =
      std::min<size_t>(by_freq_.size(), std::max<size_t>(qn * 2, 100));
  ZipfSampler pick(pool, 0.7);
  std::vector<Query> out;
  out.reserve(num_queries);
  for (uint32_t i = 0; i < num_queries; ++i) {
    Query q;
    q.location = SampleLocation(&rng);
    int guard = 0;
    while (q.terms.size() < qn && guard++ < 1000) {
      const TermId t = by_freq_[pick.Sample(&rng)];
      if (std::find(q.terms.begin(), q.terms.end(), t) == q.terms.end()) {
        q.terms.push_back(t);
      }
    }
    q.k = k;
    q.semantics = semantics;
    q.Normalize();
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<Query> QueryGenerator::Rest(uint32_t num_queries, uint32_t k,
                                        Semantics semantics,
                                        uint64_t seed) const {
  Rng rng(seed);
  std::vector<Query> out;
  if (by_freq_.empty()) return out;
  const TermId anchor = by_freq_[0];
  const size_t pool = std::min<size_t>(by_freq_.size(), 200);
  ZipfSampler pick(pool, 0.7);
  out.reserve(num_queries);
  for (uint32_t i = 0; i < num_queries; ++i) {
    Query q;
    q.location = SampleLocation(&rng);
    q.terms.push_back(anchor);
    const int companions = static_cast<int>(rng.UniformInt(0, 2));
    int guard = 0;
    while (q.terms.size() < 1 + static_cast<size_t>(companions) &&
           guard++ < 1000) {
      const TermId t = by_freq_[pick.Sample(&rng)];
      if (std::find(q.terms.begin(), q.terms.end(), t) == q.terms.end()) {
        q.terms.push_back(t);
      }
    }
    q.k = k;
    q.semantics = semantics;
    q.Normalize();
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace i3
