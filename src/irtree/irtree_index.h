// IR-tree (Cong, Jensen & Wu, PVLDB 2009; Li et al., TKDE 2011) -- the
// classic hybrid baseline: a centralized R-tree whose every node is
// augmented with an inverted file over the pseudo-document of its subtree.
//
// Internal nodes store, per term, the maximum term weight below (used for
// the textual part of the best-first upper bound); leaf nodes store real
// posting lists (doc, weight). Expanding a node costs one tree-node read
// plus one inverted-file lookup per query term (the paper's implementation
// keeps a B-tree per inverted file), and leaf posting reads are charged by
// size -- reproducing the I/O profile of Figures 8-9, where the IR-tree's
// inverted-file accesses dominate.
//
// Node splits must re-partition the node's textual content, which is what
// makes IR-tree construction and maintenance expensive (Figure 6); an STR
// bulk-load path is also provided, matching the static build the paper's
// IR-tree implementation used for the Wikipedia dataset.

#ifndef I3_IRTREE_IRTREE_INDEX_H_
#define I3_IRTREE_IRTREE_INDEX_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/index.h"
#include "model/scorer.h"
#include "storage/page_file.h"

namespace i3 {

/// \brief Subtree-choice policy during insertion.
enum class IrInsertionPolicy {
  /// Classic Guttman: minimize area enlargement (the IR-tree).
  kSpatialOnly,
  /// DIR-tree (Cong et al.): combine spatial enlargement with textual
  /// dissimilarity, clustering documents that share keywords. The paper
  /// found it "showed little improvement in query processing performance
  /// but took much longer time to build" -- reproduced by
  /// bench_ablation_dirtree.
  kDir,
};

/// \brief Options for IrTreeIndex.
struct IrTreeOptions {
  Rect space{-180.0, -90.0, 180.0, 90.0};
  size_t page_size = kDefaultPageSize;
  /// Minimum node fill fraction.
  double min_fill = 0.4;
  /// Insertion policy (IR-tree vs DIR-tree).
  IrInsertionPolicy policy = IrInsertionPolicy::kSpatialOnly;
  /// DIR-tree only: weight of the spatial term in the subtree-choice cost.
  double dir_beta = 0.5;
};

/// \brief Per-query statistics.
struct IrTreeSearchStats {
  uint64_t nodes_popped = 0;
  uint64_t nodes_pruned = 0;
  uint64_t docs_scored = 0;
};

inline SearchStatsView View(const IrTreeSearchStats& s) {
  SearchStatsView v;
  v.Set("nodes_popped", s.nodes_popped);
  v.Set("nodes_pruned", s.nodes_pruned);
  v.Set("docs_scored", s.docs_scored);
  return v;
}

/// \brief The IR-tree baseline index.
class IrTreeIndex final : public SpatialKeywordIndex {
 public:
  explicit IrTreeIndex(IrTreeOptions options = {});

  /// \brief STR (sort-tile-recursive) bulk load: packs documents into
  /// leaves by x-then-y tiling and builds the inverted files bottom-up
  /// without any split, mirroring the paper's static IR-tree construction
  /// for Wikipedia.
  static Result<std::unique_ptr<IrTreeIndex>> BulkLoad(
      IrTreeOptions options, const std::vector<SpatialDocument>& docs);

  std::string Name() const override {
    return options_.policy == IrInsertionPolicy::kDir ? "DIR-tree"
                                                      : "IR-tree";
  }

  Status Insert(const SpatialDocument& doc) override;
  Status Delete(const SpatialDocument& doc) override;
  Result<std::vector<ScoredDoc>> Search(const Query& q,
                                        double alpha) override;

  uint64_t DocumentCount() const override { return docs_.size(); }
  IndexSizeInfo SizeInfo() const override;
  const IoStats& io_stats() const override { return io_stats_; }
  void ResetIoStats() override { io_stats_.Reset(); }

  /// The query path keeps all per-query state on the stack (priority
  /// queue, heap, stats) and only reads the tree; statistics are published
  /// once per search under stats_mutex_, and the io_stats_ counters are
  /// atomic. Safe for concurrent readers in the absence of writers.
  bool SupportsConcurrentSearch() const override { return true; }

  size_t NodeCount() const { return node_count_; }
  int Height() const;

  /// Statistics of the most recent completed Search call (snapshot; under
  /// concurrent readers "most recent" is whichever search published last).
  IrTreeSearchStats last_search_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return last_search_stats_;
  }

  SearchStatsView LastSearchStats() const override {
    return View(last_search_stats());
  }
  const IrTreeOptions& options() const { return options_; }

  /// Structural checker for tests: MBR containment, pseudo-document
  /// soundness (every posting weight bounded by ancestors' pseudo maxima),
  /// posting completeness. Returns the number of leaf entries.
  Result<uint64_t> CheckInvariants() const;

 private:
  struct LeafEntry {
    Point point;
    DocId doc = kInvalidDocId;
  };

  struct Node {
    bool leaf = true;
    Rect mbr = Rect::Empty();
    std::vector<uint32_t> children;   // internal
    std::vector<LeafEntry> entries;   // leaf
    /// Pseudo-document: term -> max term weight in the subtree.
    std::unordered_map<TermId, float> pseudo;
    /// Leaf inverted file: term -> postings (doc, weight).
    std::unordered_map<TermId, std::vector<std::pair<DocId, float>>>
        postings;
  };

  static constexpr uint32_t kNoNode = UINT32_MAX;

  Status ValidateDocument(const SpatialDocument& doc) const;

  uint32_t NewNode(bool leaf);
  void FreeNode(uint32_t id);
  void ChargeNodeRead(uint32_t n = 1) {
    io_stats_.RecordRead(IoCategory::kRTreeNode, n);
  }
  void ChargeNodeWrite(uint32_t n = 1) {
    io_stats_.RecordWrite(IoCategory::kRTreeNode, n);
  }
  /// One inverted-file lookup (B-tree probe) in node `id`'s file.
  void ChargeInvLookup(uint64_t n = 1) {
    io_stats_.RecordRead(IoCategory::kInvertedFile, n);
  }
  /// Reading/writing `bytes` of posting data.
  void ChargeInvBytesRead(uint64_t bytes);
  void ChargeInvBytesWrite(uint64_t bytes);

  /// Serialized size of a node's inverted file in bytes.
  uint64_t InvFileBytes(const Node& n) const;

  size_t LeafCapacity() const { return options_.page_size / 24; }
  size_t InternalCapacity() const { return options_.page_size / 40; }
  size_t LeafMinFill() const {
    return std::max<size_t>(
        1, static_cast<size_t>(LeafCapacity() * options_.min_fill));
  }
  size_t InternalMinFill() const {
    return std::max<size_t>(
        1, static_cast<size_t>(InternalCapacity() * options_.min_fill));
  }

  /// Adds the document's terms to a leaf's postings and pseudo.
  void AddToLeafText(Node* n, const SpatialDocument& doc);
  /// Rebuilds a leaf's postings/pseudo from its entries (split path);
  /// charges the inverted-file rewrite.
  void RebuildLeafText(uint32_t id);
  /// Rebuilds an internal node's pseudo from its children's pseudo files;
  /// charges the rewrite.
  void RebuildInternalText(uint32_t id);

  /// Subtree choice honoring the insertion policy.
  size_t ChooseChild(const Node& n, const SpatialDocument& doc);

  uint32_t InsertRec(uint32_t id, const SpatialDocument& doc);
  uint32_t SplitLeaf(uint32_t id);
  uint32_t SplitInternal(uint32_t id);

  bool DeleteRec(uint32_t id, const SpatialDocument& doc,
                 std::vector<DocId>* orphans);
  void CollectDocs(uint32_t id, std::vector<DocId>* out);

  /// Search body; accumulates per-query statistics into `stats` (stack
  /// storage of the caller, so concurrent searches never share scratch).
  Result<std::vector<ScoredDoc>> SearchImpl(const Query& q, double alpha,
                                            IrTreeSearchStats* stats);

  IrTreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> free_nodes_;
  uint32_t root_ = kNoNode;
  size_t node_count_ = 0;
  std::unordered_map<DocId, SpatialDocument> docs_;
  IoStats io_stats_;
  /// Guards last_search_stats_ (snapshot scratch published per search; the
  /// tree itself relies on the caller's reader/writer exclusion).
  mutable std::mutex stats_mutex_;
  IrTreeSearchStats last_search_stats_;

  // Metric handles cached at construction. Index 0 = AND, 1 = OR.
  obs::Histogram* search_latency_us_[2];
  SearchStatsEmitter stats_emitter_;
};

}  // namespace i3

#endif  // I3_IRTREE_IRTREE_INDEX_H_
