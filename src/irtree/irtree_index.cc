#include "irtree/irtree_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "model/topk.h"
#include "obs/clock.h"
#include "rtree/split.h"

namespace i3 {

IrTreeIndex::IrTreeIndex(IrTreeOptions options)
    : options_(options),
      stats_emitter_(options.policy == IrInsertionPolicy::kDir ? "DIR-tree"
                                                               : "IR-tree",
                     View(IrTreeSearchStats{})) {
  assert(LeafCapacity() >= 4);
  assert(InternalCapacity() >= 4);
  const std::string label =
      options.policy == IrInsertionPolicy::kDir ? "DIR-tree" : "IR-tree";
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  search_latency_us_[0] =
      reg.GetHistogram("i3_query_latency_us", "End-to-end Search latency.",
                       {{"index", label}, {"semantics", "and"}});
  search_latency_us_[1] =
      reg.GetHistogram("i3_query_latency_us", "End-to-end Search latency.",
                       {{"index", label}, {"semantics", "or"}});
}

Status IrTreeIndex::ValidateDocument(const SpatialDocument& doc) const {
  if (doc.id == kInvalidDocId) {
    return Status::InvalidArgument("invalid document id");
  }
  if (!options_.space.Contains(doc.location)) {
    return Status::InvalidArgument("location outside the data space");
  }
  if (doc.terms.empty()) {
    return Status::InvalidArgument("document has no keywords");
  }
  return Status::OK();
}

uint32_t IrTreeIndex::NewNode(bool leaf) {
  ++node_count_;
  if (!free_nodes_.empty()) {
    const uint32_t id = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[id] = Node{};
    nodes_[id].leaf = leaf;
    return id;
  }
  nodes_.push_back(Node{});
  nodes_.back().leaf = leaf;
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void IrTreeIndex::FreeNode(uint32_t id) {
  --node_count_;
  nodes_[id] = Node{};
  free_nodes_.push_back(id);
}

void IrTreeIndex::ChargeInvBytesRead(uint64_t bytes) {
  io_stats_.RecordRead(IoCategory::kInvertedFile,
                       (bytes + options_.page_size - 1) /
                           options_.page_size);
}

void IrTreeIndex::ChargeInvBytesWrite(uint64_t bytes) {
  io_stats_.RecordWrite(IoCategory::kInvertedFile,
                        (bytes + options_.page_size - 1) /
                            options_.page_size);
}

uint64_t IrTreeIndex::InvFileBytes(const Node& n) const {
  if (n.leaf) {
    // Leaf inverted file: per-term posting lists of (doc, weight).
    uint64_t bytes = 0;
    for (const auto& [term, plist] : n.postings) {
      bytes += 8 + plist.size() * 8;
    }
    return bytes;
  }
  // Internal inverted file: one pseudo-document *per child entry* (Cong et
  // al.), i.e. each child's subtree vocabulary with its max weights. This
  // per-level replication is what makes the IR-tree's inverted files
  // dominate its footprint in Table 5.
  uint64_t bytes = 0;
  for (uint32_t c : n.children) {
    bytes += 8 + nodes_[c].pseudo.size() * 8;
  }
  return bytes;
}

void IrTreeIndex::AddToLeafText(Node* n, const SpatialDocument& doc) {
  for (const WeightedTerm& wt : doc.terms) {
    n->postings[wt.term].emplace_back(doc.id, wt.weight);
    auto [it, inserted] = n->pseudo.emplace(wt.term, wt.weight);
    if (!inserted && wt.weight > it->second) it->second = wt.weight;
  }
}

void IrTreeIndex::RebuildLeafText(uint32_t id) {
  Node& n = nodes_[id];
  n.pseudo.clear();
  n.postings.clear();
  for (const LeafEntry& e : n.entries) {
    AddToLeafText(&n, docs_.at(e.doc));
  }
  ChargeInvBytesWrite(InvFileBytes(n));
}

void IrTreeIndex::RebuildInternalText(uint32_t id) {
  Node& n = nodes_[id];
  n.pseudo.clear();
  for (uint32_t c : n.children) {
    for (const auto& [term, w] : nodes_[c].pseudo) {
      auto [it, inserted] = n.pseudo.emplace(term, w);
      if (!inserted && w > it->second) it->second = w;
    }
  }
  ChargeInvBytesWrite(InvFileBytes(n));
}

// ------------------------------------------------------------------ insert

Status IrTreeIndex::Insert(const SpatialDocument& doc) {
  I3_RETURN_NOT_OK(ValidateDocument(doc));
  if (docs_.count(doc.id) != 0) {
    return Status::AlreadyExists("document already indexed");
  }
  docs_.emplace(doc.id, doc);
  if (root_ == kNoNode) root_ = NewNode(/*leaf=*/true);
  const uint32_t sibling = InsertRec(root_, doc);
  if (sibling != kNoNode) {
    const uint32_t new_root = NewNode(/*leaf=*/false);
    nodes_[new_root].children = {root_, sibling};
    nodes_[new_root].mbr =
        nodes_[root_].mbr.Union(nodes_[sibling].mbr);
    root_ = new_root;
    RebuildInternalText(new_root);
    ChargeNodeWrite();
  }
  return Status::OK();
}

uint32_t IrTreeIndex::InsertRec(uint32_t id, const SpatialDocument& doc) {
  ChargeNodeRead();
  Node& n = nodes_[id];
  if (n.leaf) {
    n.entries.push_back({doc.location, doc.id});
    n.mbr.Expand(doc.location);
    AddToLeafText(&n, doc);
    // The node's inverted file is a B-tree (as in the paper's
    // implementation): appending the document costs one probe + one leaf
    // write per term -- the per-term maintenance that makes IR-tree
    // construction expensive (Figure 6).
    ChargeInvLookup(doc.terms.size());
    io_stats_.RecordWrite(IoCategory::kInvertedFile, doc.terms.size());
    ChargeNodeWrite();
    if (n.entries.size() > LeafCapacity()) return SplitLeaf(id);
    return kNoNode;
  }

  const size_t pick = ChooseChild(n, doc);
  const uint32_t child = n.children[pick];

  const uint32_t split = InsertRec(child, doc);
  Node& n2 = nodes_[id];  // re-borrow across possible reallocation
  if (split != kNoNode) n2.children.push_back(split);
  n2.mbr.Expand(doc.location);
  // Merge the document's terms into this node's pseudo-document: one
  // B-tree probe per term, plus a write for each entry that changes.
  ChargeInvLookup(doc.terms.size());
  uint64_t changed_terms = 0;
  for (const WeightedTerm& wt : doc.terms) {
    auto [it, inserted] = n2.pseudo.emplace(wt.term, wt.weight);
    if (inserted || wt.weight > it->second) {
      it->second = wt.weight;
      ++changed_terms;
    }
  }
  if (changed_terms > 0) {
    io_stats_.RecordWrite(IoCategory::kInvertedFile, changed_terms);
  }
  ChargeNodeWrite();
  if (n2.children.size() > InternalCapacity()) return SplitInternal(id);
  return kNoNode;
}

size_t IrTreeIndex::ChooseChild(const Node& n,
                                const SpatialDocument& doc) {
  std::vector<Rect> child_mbrs;
  child_mbrs.reserve(n.children.size());
  for (uint32_t c : n.children) child_mbrs.push_back(nodes_[c].mbr);
  if (options_.policy == IrInsertionPolicy::kSpatialOnly) {
    return ChooseSubtree(child_mbrs, Rect::FromPoint(doc.location));
  }

  // DIR-tree: cost = beta * normalized spatial enlargement
  //               + (1 - beta) * textual dissimilarity,
  // where dissimilarity is the weight fraction of the document's keywords
  // not present in the child's pseudo-document. Inspecting every child's
  // pseudo-document is what makes DIR-tree construction expensive.
  ChargeInvLookup(n.children.size());  // one pseudo-document probe each
  double doc_weight = 0.0;
  for (const WeightedTerm& wt : doc.terms) doc_weight += wt.weight;
  const double space_area = std::max(1e-12, options_.space.Area());

  size_t best = 0;
  double best_cost = std::numeric_limits<double>::max();
  for (size_t i = 0; i < n.children.size(); ++i) {
    const double spatial =
        child_mbrs[i].Enlargement(Rect::FromPoint(doc.location)) /
        space_area;
    const Node& child = nodes_[n.children[i]];
    double missing = 0.0;
    for (const WeightedTerm& wt : doc.terms) {
      if (child.pseudo.find(wt.term) == child.pseudo.end()) {
        missing += wt.weight;
      }
    }
    const double textual = doc_weight > 0 ? missing / doc_weight : 0.0;
    const double cost =
        options_.dir_beta * spatial + (1.0 - options_.dir_beta) * textual;
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  return best;
}

uint32_t IrTreeIndex::SplitLeaf(uint32_t id) {
  std::vector<LeafEntry> entries = std::move(nodes_[id].entries);
  std::vector<Rect> rects;
  rects.reserve(entries.size());
  for (const LeafEntry& e : entries) {
    rects.push_back(Rect::FromPoint(e.point));
  }
  auto [g1, g2] = QuadraticSplit(rects, LeafMinFill());

  // Splitting re-organizes all the textual content of the node -- the
  // expensive step the paper highlights. Charge the read of the old file.
  ChargeInvBytesRead(InvFileBytes(nodes_[id]));

  const uint32_t sib = NewNode(/*leaf=*/true);
  Node& a = nodes_[id];
  Node& b = nodes_[sib];
  a.entries.clear();
  a.mbr = Rect::Empty();
  for (size_t i : g1) {
    a.entries.push_back(entries[i]);
    a.mbr.Expand(entries[i].point);
  }
  for (size_t i : g2) {
    b.entries.push_back(entries[i]);
    b.mbr.Expand(entries[i].point);
  }
  RebuildLeafText(id);
  RebuildLeafText(sib);
  ChargeNodeWrite(2);
  return sib;
}

uint32_t IrTreeIndex::SplitInternal(uint32_t id) {
  std::vector<uint32_t> children = std::move(nodes_[id].children);
  std::vector<Rect> rects;
  rects.reserve(children.size());
  for (uint32_t c : children) rects.push_back(nodes_[c].mbr);
  auto [g1, g2] = QuadraticSplit(rects, InternalMinFill());

  ChargeInvBytesRead(InvFileBytes(nodes_[id]));

  const uint32_t sib = NewNode(/*leaf=*/false);
  Node& a = nodes_[id];
  Node& b = nodes_[sib];
  a.children.clear();
  a.mbr = Rect::Empty();
  for (size_t i : g1) {
    a.children.push_back(children[i]);
    a.mbr.Expand(nodes_[children[i]].mbr);
  }
  for (size_t i : g2) {
    b.children.push_back(children[i]);
    b.mbr.Expand(nodes_[children[i]].mbr);
  }
  RebuildInternalText(id);
  RebuildInternalText(sib);
  ChargeNodeWrite(2);
  return sib;
}

// ------------------------------------------------------------------ delete

Status IrTreeIndex::Delete(const SpatialDocument& doc) {
  I3_RETURN_NOT_OK(ValidateDocument(doc));
  auto it = docs_.find(doc.id);
  if (it == docs_.end()) {
    return Status::NotFound("document not indexed");
  }
  std::vector<DocId> orphans;
  if (root_ == kNoNode || !DeleteRec(root_, it->second, &orphans)) {
    return Status::NotFound("document not found in tree");
  }
  // Keep a copy of orphan documents, then drop the deleted one.
  std::vector<SpatialDocument> to_reinsert;
  to_reinsert.reserve(orphans.size());
  for (DocId d : orphans) to_reinsert.push_back(docs_.at(d));
  docs_.erase(it);

  while (root_ != kNoNode && !nodes_[root_].leaf &&
         nodes_[root_].children.size() == 1) {
    const uint32_t old = root_;
    root_ = nodes_[root_].children[0];
    FreeNode(old);
  }
  if (root_ != kNoNode && nodes_[root_].leaf &&
      nodes_[root_].entries.empty() && to_reinsert.empty()) {
    FreeNode(root_);
    root_ = kNoNode;
  }

  for (const SpatialDocument& d : to_reinsert) {
    docs_.erase(d.id);  // Insert() re-adds it
    I3_RETURN_NOT_OK(Insert(d));
  }
  return Status::OK();
}

bool IrTreeIndex::DeleteRec(uint32_t id, const SpatialDocument& doc,
                            std::vector<DocId>* orphans) {
  ChargeNodeRead();
  Node& n = nodes_[id];
  if (n.leaf) {
    for (auto it = n.entries.begin(); it != n.entries.end(); ++it) {
      if (it->doc == doc.id) {
        n.entries.erase(it);
        n.mbr = Rect::Empty();
        for (const LeafEntry& e : n.entries) n.mbr.Expand(e.point);
        // Remove the document's postings and rebuild the pseudo-document.
        for (const WeightedTerm& wt : doc.terms) {
          auto& plist = n.postings[wt.term];
          plist.erase(std::remove_if(plist.begin(), plist.end(),
                                     [&](const auto& p) {
                                       return p.first == doc.id;
                                     }),
                      plist.end());
          if (plist.empty()) n.postings.erase(wt.term);
        }
        n.pseudo.clear();
        for (const auto& [term, plist] : n.postings) {
          float mx = 0.0f;
          for (const auto& p : plist) mx = std::max(mx, p.second);
          n.pseudo[term] = mx;
        }
        ChargeInvBytesWrite(InvFileBytes(n));
        ChargeNodeWrite();
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < n.children.size(); ++i) {
    const uint32_t child = n.children[i];
    if (!nodes_[child].mbr.Contains(doc.location)) continue;
    if (!DeleteRec(child, doc, orphans)) continue;
    Node& n2 = nodes_[id];
    const Node& cn = nodes_[child];
    const size_t min_fill = cn.leaf ? LeafMinFill() : InternalMinFill();
    const size_t child_size =
        cn.leaf ? cn.entries.size() : cn.children.size();
    if (child_size < min_fill) {
      CollectDocs(child, orphans);
      FreeNode(child);
      n2.children.erase(n2.children.begin() + i);
    }
    n2.mbr = Rect::Empty();
    for (uint32_t c : n2.children) n2.mbr.Expand(nodes_[c].mbr);
    RebuildInternalText(id);
    ChargeNodeWrite();
    return true;
  }
  return false;
}

void IrTreeIndex::CollectDocs(uint32_t id, std::vector<DocId>* out) {
  const Node& n = nodes_[id];
  if (n.leaf) {
    for (const LeafEntry& e : n.entries) out->push_back(e.doc);
    return;
  }
  for (uint32_t c : n.children) {
    CollectDocs(c, out);
    FreeNode(c);
  }
}

// --------------------------------------------------------------- bulk load

Result<std::unique_ptr<IrTreeIndex>> IrTreeIndex::BulkLoad(
    IrTreeOptions options, const std::vector<SpatialDocument>& docs) {
  auto index = std::make_unique<IrTreeIndex>(options);
  for (const SpatialDocument& d : docs) {
    I3_RETURN_NOT_OK(index->ValidateDocument(d));
    if (!index->docs_.emplace(d.id, d).second) {
      return Status::AlreadyExists("duplicate document id in bulk load");
    }
  }
  if (docs.empty()) return index;

  // STR tiling: sort by x, slice, sort each slice by y, pack leaves.
  std::vector<const SpatialDocument*> sorted;
  sorted.reserve(docs.size());
  for (const SpatialDocument& d : docs) sorted.push_back(&d);
  std::sort(sorted.begin(), sorted.end(),
            [](const SpatialDocument* a, const SpatialDocument* b) {
              return a->location.x < b->location.x;
            });
  const size_t cap = index->LeafCapacity();
  const size_t n_leaves = (sorted.size() + cap - 1) / cap;
  const size_t n_slices =
      static_cast<size_t>(std::ceil(std::sqrt(double(n_leaves))));
  const size_t slice_len = (sorted.size() + n_slices - 1) / n_slices;

  std::vector<uint32_t> level;  // current level's node ids
  for (size_t s = 0; s < n_slices; ++s) {
    const size_t lo = s * slice_len;
    const size_t hi = std::min(sorted.size(), lo + slice_len);
    if (lo >= hi) break;
    std::sort(sorted.begin() + lo, sorted.begin() + hi,
              [](const SpatialDocument* a, const SpatialDocument* b) {
                return a->location.y < b->location.y;
              });
    for (size_t i = lo; i < hi; i += cap) {
      const uint32_t leaf = index->NewNode(/*leaf=*/true);
      Node& ln = index->nodes_[leaf];
      for (size_t j = i; j < std::min(hi, i + cap); ++j) {
        ln.entries.push_back({sorted[j]->location, sorted[j]->id});
        ln.mbr.Expand(sorted[j]->location);
        index->AddToLeafText(&ln, *sorted[j]);
      }
      index->ChargeInvBytesWrite(index->InvFileBytes(ln));
      index->ChargeNodeWrite();
      level.push_back(leaf);
    }
  }

  // Build internal levels by packing runs of children.
  const size_t icap = index->InternalCapacity();
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t i = 0; i < level.size(); i += icap) {
      const uint32_t parent = index->NewNode(/*leaf=*/false);
      Node& pn = index->nodes_[parent];
      for (size_t j = i; j < std::min(level.size(), i + icap); ++j) {
        pn.children.push_back(level[j]);
        pn.mbr.Expand(index->nodes_[level[j]].mbr);
      }
      index->RebuildInternalText(parent);
      index->ChargeNodeWrite();
      next.push_back(parent);
    }
    level = std::move(next);
  }
  index->root_ = level[0];
  return index;
}

// ------------------------------------------------------------------ search

Result<std::vector<ScoredDoc>> IrTreeIndex::Search(const Query& q_in,
                                                   double alpha) {
  const uint64_t start_ns = obs::NowNanos();
  IrTreeSearchStats stats;
  auto result = SearchImpl(q_in, alpha, &stats);
  search_latency_us_[q_in.semantics == Semantics::kAnd ? 0 : 1]->Record(
      (obs::NowNanos() - start_ns) / 1000);
  stats_emitter_.Emit(View(stats));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    last_search_stats_ = stats;
  }
  return result;
}

Result<std::vector<ScoredDoc>> IrTreeIndex::SearchImpl(
    const Query& q_in, double alpha, IrTreeSearchStats* stats) {
  Query q = q_in;
  q.Normalize();
  if (q.terms.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  const Scorer scorer(options_.space, alpha);
  TopKHeap heap(q.k);
  if (root_ == kNoNode) return heap.Take();

  struct Item {
    double upper;
    uint32_t node;
    bool operator<(const Item& o) const { return upper < o.upper; }
  };

  // Textual upper bound of a node under the query semantics, from its
  // pseudo-document; `ok` is false when the node cannot host a candidate.
  auto textual_upper = [&](const Node& n, bool* ok) {
    double sum = 0.0;
    size_t found = 0;
    for (TermId t : q.terms) {
      auto it = n.pseudo.find(t);
      if (it != n.pseudo.end()) {
        sum += it->second;
        ++found;
      }
    }
    // One B-tree probe of the node's inverted file per query term.
    ChargeInvLookup(q.terms.size());
    if (q.semantics == Semantics::kAnd) {
      *ok = found == q.terms.size();
    } else {
      *ok = found > 0;
    }
    return sum;
  };

  std::priority_queue<Item> pq;
  {
    bool ok = false;
    ChargeNodeRead();
    const double tu = textual_upper(nodes_[root_], &ok);
    if (ok) {
      pq.push({scorer.Combine(scorer.SpatialProximityUpper(
                                  q.location, nodes_[root_].mbr),
                              tu),
               root_});
    }
  }

  while (!pq.empty()) {
    const Item item = pq.top();
    pq.pop();
    ++stats->nodes_popped;
    if (item.upper <= heap.Threshold()) break;
    const Node& n = nodes_[item.node];

    if (n.leaf) {
      // Fetch the query terms' posting lists from the leaf inverted file.
      std::unordered_map<DocId, std::pair<double, size_t>> partial;
      uint64_t posting_bytes = 0;
      for (TermId t : q.terms) {
        auto it = n.postings.find(t);
        if (it == n.postings.end()) continue;
        posting_bytes += 8 + it->second.size() * 8;
        for (const auto& [doc, w] : it->second) {
          auto& acc = partial[doc];
          acc.first += w;
          acc.second += 1;
        }
      }
      ChargeInvBytesRead(posting_bytes);
      for (const auto& [doc, acc] : partial) {
        if (q.semantics == Semantics::kAnd &&
            acc.second != q.terms.size()) {
          continue;
        }
        const auto& d = docs_.at(doc);
        heap.Offer(doc,
                   scorer.Combine(
                       scorer.SpatialProximity(q.location, d.location),
                       acc.first),
                   d.location);
        ++stats->docs_scored;
      }
      continue;
    }

    for (uint32_t c : n.children) {
      ChargeNodeRead();
      const Node& cn = nodes_[c];
      bool ok = false;
      const double tu = textual_upper(cn, &ok);
      if (!ok) {
        ++stats->nodes_pruned;
        continue;
      }
      const double upper = scorer.Combine(
          scorer.SpatialProximityUpper(q.location, cn.mbr), tu);
      if (upper <= heap.Threshold()) {
        ++stats->nodes_pruned;
        continue;
      }
      pq.push({upper, c});
    }
  }
  return heap.Take();
}

// -------------------------------------------------------------------- misc

int IrTreeIndex::Height() const {
  if (root_ == kNoNode) return 0;
  int h = 1;
  uint32_t id = root_;
  while (!nodes_[id].leaf) {
    id = nodes_[id].children[0];
    ++h;
  }
  return h;
}

IndexSizeInfo IrTreeIndex::SizeInfo() const {
  uint64_t inv_bytes = 0;
  for (const Node& n : nodes_) {
    // Freed nodes are default-constructed and contribute nothing. Round
    // each live node's inverted file up to a page (each is a separate file
    // with its own B-tree in the paper's implementation).
    const uint64_t b = InvFileBytes(n);
    if (b > 0) {
      inv_bytes += ((b + options_.page_size - 1) / options_.page_size) *
                   options_.page_size;
    }
  }
  IndexSizeInfo info;
  info.components.push_back(
      {"R-tree", static_cast<uint64_t>(node_count_) * options_.page_size});
  info.components.push_back({"inverted files", inv_bytes});
  return info;
}

Result<uint64_t> IrTreeIndex::CheckInvariants() const {
  if (root_ == kNoNode) {
    return docs_.empty() ? Result<uint64_t>(0)
                         : Result<uint64_t>(Status::Corruption(
                               "empty tree with live documents"));
  }
  uint64_t count = 0;
  std::vector<uint32_t> stack{root_};
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    const Node& n = nodes_[id];
    if (n.leaf) {
      count += n.entries.size();
      for (const LeafEntry& e : n.entries) {
        if (!n.mbr.Contains(e.point)) {
          return Status::Corruption("entry outside leaf MBR");
        }
        const auto& d = docs_.at(e.doc);
        for (const WeightedTerm& wt : d.terms) {
          auto it = n.pseudo.find(wt.term);
          if (it == n.pseudo.end() || it->second < wt.weight) {
            return Status::Corruption("leaf pseudo-document unsound");
          }
        }
      }
      continue;
    }
    for (uint32_t c : n.children) {
      const Node& cn = nodes_[c];
      if (!n.mbr.Contains(cn.mbr)) {
        return Status::Corruption("child MBR outside parent");
      }
      for (const auto& [term, w] : cn.pseudo) {
        auto it = n.pseudo.find(term);
        if (it == n.pseudo.end() || it->second < w) {
          return Status::Corruption("internal pseudo-document unsound");
        }
      }
      stack.push_back(c);
    }
  }
  if (count != docs_.size()) {
    return Status::Corruption("leaf entry count != document count");
  }
  return count;
}

}  // namespace i3
