#include "storage/scrub.h"

namespace i3 {

ScrubCursor::ScrubCursor(uint32_t pages_per_tick)
    : pages_per_tick_(pages_per_tick == 0 ? 1 : pages_per_tick) {}

std::vector<uint64_t> ScrubCursor::NextBatch(uint64_t page_count) {
  std::vector<uint64_t> batch;
  if (page_count == 0) return batch;
  // A shrunk or restarted file can leave the cursor past the end; fold it
  // back in rather than stalling until the file regrows.
  if (position_ >= page_count) {
    position_ = 0;
    ++sweeps_;
  }
  const uint64_t n =
      pages_per_tick_ < page_count ? pages_per_tick_ : page_count;
  batch.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    batch.push_back(position_);
    ++position_;
    if (position_ >= page_count) {
      position_ = 0;
      ++sweeps_;
      break;  // one wrap per tick: a tiny file is not verified twice
    }
  }
  return batch;
}

}  // namespace i3
