#include "storage/fault_injection.h"

#include <cstdlib>
#include <cstring>

#include "common/deadline.h"
#include "obs/metrics.h"

namespace i3 {

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kReadError:
      return "read_error";
    case FaultKind::kWriteError:
      return "write_error";
    case FaultKind::kAllocError:
      return "alloc_error";
    case FaultKind::kCorruption:
      return "corrupt";
    case FaultKind::kLatencySpike:
      return "latency_spike";
  }
  return "unknown";
}

namespace {

Result<FaultKind> ParseKind(const std::string& s) {
  if (s == "read_error") return FaultKind::kReadError;
  if (s == "write_error") return FaultKind::kWriteError;
  if (s == "alloc_error") return FaultKind::kAllocError;
  if (s == "corrupt") return FaultKind::kCorruption;
  if (s == "spike") return FaultKind::kLatencySpike;
  return Status::InvalidArgument("unknown fault kind: " + s);
}

Result<double> ParseRate(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double p = std::strtod(v.c_str(), &end);
  if (end != v.c_str() + v.size() || p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(key + " must be a probability in [0,1]: " +
                                   v);
  }
  return p;
}

}  // namespace

Result<FaultProfile> FaultProfile::Parse(const std::string& spec) {
  FaultProfile p;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault profile item needs key=value: " +
                                     item);
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      p.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "read_error") {
      I3_ASSIGN_OR_RETURN(p.read_error_rate, ParseRate(key, value));
    } else if (key == "write_error") {
      I3_ASSIGN_OR_RETURN(p.write_error_rate, ParseRate(key, value));
    } else if (key == "corrupt") {
      I3_ASSIGN_OR_RETURN(p.corrupt_rate, ParseRate(key, value));
    } else if (key == "spike") {
      I3_ASSIGN_OR_RETURN(p.latency_spike_rate, ParseRate(key, value));
    } else if (key == "spike_us") {
      p.latency_spike_us =
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "fail_after") {
      p.fail_after = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "schedule") {
      // I:KIND entries separated by '/'.
      size_t spos = 0;
      while (spos < value.size()) {
        size_t slash = value.find('/', spos);
        if (slash == std::string::npos) slash = value.size();
        const std::string entry = value.substr(spos, slash - spos);
        spos = slash + 1;
        if (entry.empty()) continue;
        const size_t colon = entry.find(':');
        if (colon == std::string::npos) {
          return Status::InvalidArgument("schedule entry needs INDEX:KIND: " +
                                         entry);
        }
        const uint64_t index =
            std::strtoull(entry.substr(0, colon).c_str(), nullptr, 10);
        FaultKind kind;
        I3_ASSIGN_OR_RETURN(kind, ParseKind(entry.substr(colon + 1)));
        p.schedule[index] = kind;
      }
    } else {
      return Status::InvalidArgument("unknown fault profile key: " + key);
    }
  }
  return p;
}

void FaultInjector::SetProfile(const FaultProfile& profile) {
  std::lock_guard<std::mutex> lock(mutex_);
  profile_ = profile;
  rng_ = Rng(profile.seed);
  if (profile.fail_after != UINT64_MAX) {
    countdown_armed_ = true;
    countdown_ = profile.fail_after;
  }
  armed_.store(countdown_armed_ || profile_.Armed(),
               std::memory_order_release);
}

void FaultInjector::FailAfter(uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  countdown_armed_ = true;
  countdown_ = n;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::set_fail_all(bool fail) {
  fail_all_.store(fail, std::memory_order_relaxed);
  if (fail) {
    armed_.store(true, std::memory_order_release);
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    armed_.store(countdown_armed_ || profile_.Armed(),
                 std::memory_order_release);
  }
}

void FaultInjector::Heal() {
  std::lock_guard<std::mutex> lock(mutex_);
  fail_all_.store(false, std::memory_order_relaxed);
  countdown_armed_ = false;
  profile_ = FaultProfile{};
  armed_.store(false, std::memory_order_release);
}

void FaultInjector::CountInjected(FaultKind kind) {
  faults_injected_.fetch_add(1, std::memory_order_relaxed);
  const int slot = static_cast<int>(kind);
  void* cached = kind_counters_[slot].load(std::memory_order_acquire);
  if (cached == nullptr) {
    cached = obs::MetricsRegistry::Global().GetCounter(
        "i3_faults_injected_total", "Storage faults injected, by kind.",
        {{"kind", FaultKindName(kind)}});
    kind_counters_[slot].store(cached, std::memory_order_release);
  }
  static_cast<obs::Counter*>(cached)->Increment(1);
}

FaultKind FaultInjector::OnOperation(FaultKind error_kind) {
  if (!armed_.load(std::memory_order_acquire)) return FaultKind::kNone;
  const FaultKind decision = Decide(error_kind);
  if (decision == FaultKind::kLatencySpike) {
    // A spike delays but does not fail: sleep here, outside the lock, and
    // let the operation proceed.
    uint32_t us;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      us = profile_.latency_spike_us;
    }
    CountInjected(FaultKind::kLatencySpike);
    DeadlineTimer::SleepFor(us);
    return FaultKind::kNone;
  }
  if (decision != FaultKind::kNone) CountInjected(decision);
  return decision;
}

FaultKind FaultInjector::Decide(FaultKind error_kind) {
  if (fail_all_.load(std::memory_order_relaxed)) return error_kind;
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t attempt = attempt_counter_++;
  if (countdown_armed_) {
    if (countdown_ == 0) return error_kind;
    --countdown_;
  }
  auto it = profile_.schedule.find(attempt);
  if (it != profile_.schedule.end()) {
    // Scripted faults fire regardless of the operation class so schedules
    // written against an I/O trace stay aligned; a corrupt entry on a
    // non-read op degrades to an error (there is no payload to damage).
    if (it->second == FaultKind::kCorruption &&
        error_kind != FaultKind::kReadError) {
      return error_kind;
    }
    return it->second;
  }
  if (error_kind == FaultKind::kReadError) {
    if (profile_.read_error_rate > 0 &&
        rng_.Chance(profile_.read_error_rate)) {
      return FaultKind::kReadError;
    }
    if (profile_.corrupt_rate > 0 && rng_.Chance(profile_.corrupt_rate)) {
      return FaultKind::kCorruption;
    }
  } else {
    if (profile_.write_error_rate > 0 &&
        rng_.Chance(profile_.write_error_rate)) {
      return error_kind;
    }
  }
  if (profile_.latency_spike_rate > 0 &&
      rng_.Chance(profile_.latency_spike_rate)) {
    return FaultKind::kLatencySpike;
  }
  return FaultKind::kNone;
}

void FaultInjector::CorruptPayload(void* buf, size_t len) {
  uint64_t offset, mask;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    offset = static_cast<uint64_t>(
        rng_.UniformInt(0, static_cast<int64_t>(len) - 1));
    mask = static_cast<uint64_t>(rng_.UniformInt(1, 255));
  }
  static_cast<uint8_t*>(buf)[offset] ^= static_cast<uint8_t>(mask);
}

Result<PageId> FaultInjectionPageFile::AllocatePage() {
  if (injector_.OnOperation(FaultKind::kAllocError) != FaultKind::kNone) {
    return Injected();
  }
  auto r = base_->AllocatePage();
  if (r.ok()) injector_.RecordSuccess();
  return r;
}

Status FaultInjectionPageFile::ReadPage(PageId id, void* buf,
                                        IoCategory category) {
  const FaultKind fault = injector_.OnOperation(FaultKind::kReadError);
  if (fault == FaultKind::kReadError) return Injected();
  Status st = base_->ReadPage(id, buf, category);
  if (st.ok()) {
    if (fault == FaultKind::kCorruption) {
      // Damage the returned bytes, not the stored page: models a transient
      // bit-flip on the wire / in a frame, so a healed re-read is clean.
      injector_.CorruptPayload(buf, page_size_);
    }
    injector_.RecordSuccess();
    io_stats_.ChargeRead(category);
  }
  return st;
}

Status FaultInjectionPageFile::WritePage(PageId id, const void* buf,
                                         IoCategory category) {
  if (injector_.OnOperation(FaultKind::kWriteError) != FaultKind::kNone) {
    return Injected();
  }
  Status st = base_->WritePage(id, buf, category);
  if (st.ok()) {
    injector_.RecordSuccess();
    io_stats_.ChargeWrite(category);
  }
  return st;
}

}  // namespace i3
