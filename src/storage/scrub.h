// Paced background scrub cursor (DESIGN.md §15).
//
// A scrubber's job is to find latent page damage before a query does:
// walk every page of a file, force a checksum-verifying device read, and
// hand damaged pages to a healer. The cursor here is the walking state
// machine only -- it decides *which* pages to verify next and how many
// per tick, staying agnostic of the storage stack it runs over (the
// ReplicaSet in src/model/ supplies the verify/heal callbacks). Keeping
// it a plain value type makes the pacing logic unit-testable without an
// index and lets each replica carry its own independent cursor.
//
// Pacing contract: NextBatch(page_count) returns at most pages_per_tick
// page ids, advancing a wrapping position. The page count is re-read
// every tick because files grow while the scrubber runs; a batch never
// names a page at or beyond the count it was given. A full pass over the
// file (position wraps to 0) increments sweeps_completed().

#ifndef I3_STORAGE_SCRUB_H_
#define I3_STORAGE_SCRUB_H_

#include <cstdint>
#include <vector>

namespace i3 {

/// \brief Wrapping, paced page-walk state for one scrubbed file.
class ScrubCursor {
 public:
  /// `pages_per_tick` == 0 is pinned to 1 (a tick must make progress).
  explicit ScrubCursor(uint32_t pages_per_tick);

  /// \brief The next page ids to verify given the file's current page
  /// count. Empty when the file has no pages. Advances the cursor.
  std::vector<uint64_t> NextBatch(uint64_t page_count);

  /// Next page the cursor will hand out (wraps at the page count seen at
  /// batch time).
  uint64_t position() const { return position_; }

  /// Completed full passes over the file.
  uint64_t sweeps_completed() const { return sweeps_; }

  uint32_t pages_per_tick() const { return pages_per_tick_; }

 private:
  uint32_t pages_per_tick_;
  uint64_t position_ = 0;
  uint64_t sweeps_ = 0;
};

}  // namespace i3

#endif  // I3_STORAGE_SCRUB_H_
