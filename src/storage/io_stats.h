// Page-level I/O accounting.
//
// The paper's Figures 8 and 9 report I/O cost split by file type (head file
// vs data file for I3; tree nodes vs inverted files for IR-tree; tree nodes
// for S2I). Every storage component in this library charges its page
// accesses to an IoStats instance under a category so the benchmark
// harnesses can reproduce those stacked histograms exactly.

#ifndef I3_STORAGE_IO_STATS_H_
#define I3_STORAGE_IO_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace i3 {

/// \brief Global simulated device latency, busy-waited on every charged
/// page access while non-zero.
///
/// The paper's experiments are disk-resident: query latency is dominated by
/// page I/O. Our indexes hold pages in memory (with exact I/O accounting),
/// so wall-clock measurements would otherwise reflect CPU work only. The
/// benchmark harnesses arm this latency around the measured phase (queries,
/// updates) so that reported times follow the I/O profile of a disk
/// deployment; 0 disables the simulation (unit tests, pure-CPU runs).
void SetSimulatedIoLatencyUs(uint32_t us);
uint32_t GetSimulatedIoLatencyUs();

/// \brief RAII guard arming the simulated latency for a scope.
class ScopedIoLatency {
 public:
  explicit ScopedIoLatency(uint32_t us)
      : prev_(GetSimulatedIoLatencyUs()) {
    SetSimulatedIoLatencyUs(us);
  }
  ~ScopedIoLatency() { SetSimulatedIoLatencyUs(prev_); }
  ScopedIoLatency(const ScopedIoLatency&) = delete;
  ScopedIoLatency& operator=(const ScopedIoLatency&) = delete;

 private:
  uint32_t prev_;
};

namespace internal {
void SpinForSimulatedIo(uint64_t pages);
extern std::atomic<uint32_t> g_sim_io_latency_us;
}  // namespace internal

/// \brief What kind of file a page access touched.
enum class IoCategory : int {
  kI3HeadFile = 0,   ///< I3 summary nodes
  kI3DataFile = 1,   ///< I3 keyword-cell pages
  kRTreeNode = 2,    ///< R-tree / aR-tree nodes (S2I trees, IR-tree skeleton)
  kInvertedFile = 3, ///< IR-tree per-node inverted files
  kFlatFile = 4,     ///< S2I sequential blocks for infrequent keywords
  kOther = 5,
};

constexpr int kNumIoCategories = 6;

/// \brief Human-readable category name.
const char* IoCategoryName(IoCategory c);

/// \brief Mutable counters of page reads and writes, by category.
///
/// Counters are relaxed atomics so that concurrent shard searches (see
/// model/sharded_index.h) can charge I/O to a shared instance without
/// racing. Relaxed ordering is sufficient: the counters are independent
/// tallies, and every reader that needs a consistent cross-counter view
/// (benchmarks, stats accessors) reads them from a single thread or behind
/// the owning index's synchronization.
///
/// Copy construction/assignment takes a *per-counter* snapshot: each
/// counter is read atomically, but the set as a whole is not -- copying
/// while writers are active can observe counter A before an increment and
/// counter B after one. That torn view is fine for the intended use
/// (before/after diffs taken while the instance is quiescent, or
/// monitoring where per-counter accuracy suffices); it is not a
/// linearizable snapshot.
class IoStats {
 public:
  IoStats() = default;
  IoStats(const IoStats& other) { CopyFrom(other); }
  IoStats& operator=(const IoStats& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  void RecordRead(IoCategory c, uint64_t pages = 1) {
    reads_[static_cast<int>(c)].fetch_add(pages, std::memory_order_relaxed);
    if (internal::g_sim_io_latency_us.load(std::memory_order_relaxed) != 0) {
      internal::SpinForSimulatedIo(pages);
    }
  }
  void RecordWrite(IoCategory c, uint64_t pages = 1) {
    writes_[static_cast<int>(c)].fetch_add(pages, std::memory_order_relaxed);
    if (internal::g_sim_io_latency_us.load(std::memory_order_relaxed) != 0) {
      internal::SpinForSimulatedIo(pages);
    }
  }

  /// Tally-only variants for PageFile decorators that mirror a base file's
  /// charge: the simulated device latency was already paid by the physical
  /// access underneath, so mirroring the count must not wait again.
  void ChargeRead(IoCategory c, uint64_t pages = 1) {
    reads_[static_cast<int>(c)].fetch_add(pages, std::memory_order_relaxed);
  }
  void ChargeWrite(IoCategory c, uint64_t pages = 1) {
    writes_[static_cast<int>(c)].fetch_add(pages, std::memory_order_relaxed);
  }

  uint64_t reads(IoCategory c) const {
    return reads_[static_cast<int>(c)].load(std::memory_order_relaxed);
  }
  uint64_t writes(IoCategory c) const {
    return writes_[static_cast<int>(c)].load(std::memory_order_relaxed);
  }

  uint64_t TotalReads() const {
    uint64_t t = 0;
    for (const auto& v : reads_) t += v.load(std::memory_order_relaxed);
    return t;
  }
  uint64_t TotalWrites() const {
    uint64_t t = 0;
    for (const auto& v : writes_) t += v.load(std::memory_order_relaxed);
    return t;
  }
  uint64_t Total() const { return TotalReads() + TotalWrites(); }

  void Reset() {
    for (auto& v : reads_) v.store(0, std::memory_order_relaxed);
    for (auto& v : writes_) v.store(0, std::memory_order_relaxed);
  }

  /// Per-category diff helper: `*this - earlier`, element-wise (for
  /// measuring the cost of one query). `earlier` must be a snapshot of
  /// *this* instance taken before the work being measured: counters only
  /// grow, so each per-category subtraction underflows (wraps mod 2^64) if
  /// `earlier` is ahead. Like copying, the diff is per-counter, not a
  /// linearizable cross-counter snapshot.
  IoStats Since(const IoStats& earlier) const;

  /// Element-wise accumulation (for merging per-file counters).
  void MergeFrom(const IoStats& other) {
    for (int i = 0; i < kNumIoCategories; ++i) {
      reads_[i].fetch_add(other.reads_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      writes_[i].fetch_add(other.writes_[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
  }

  std::string ToString() const;

 private:
  void CopyFrom(const IoStats& other) {
    for (int i = 0; i < kNumIoCategories; ++i) {
      reads_[i].store(other.reads_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      writes_[i].store(other.writes_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
  }

  std::array<std::atomic<uint64_t>, kNumIoCategories> reads_{};
  std::array<std::atomic<uint64_t>, kNumIoCategories> writes_{};
};

/// \brief Charges `delta` to the process-wide metrics registry as
/// `i3_io_pages_total{category=...,op=read|write}` counters.
///
/// Callers pass a *diff* (typically IoStats::Since over a phase), not a
/// cumulative total -- the metric is monotonic, so re-exporting a running
/// total would double-count. Kept out of RecordRead/RecordWrite on purpose:
/// those run on the per-page hot path, where doubling the atomic traffic
/// for a statistic the caller can derive from one end-of-phase diff is a
/// poor trade.
void RecordIoMetrics(const IoStats& delta);

}  // namespace i3

#endif  // I3_STORAGE_IO_STATS_H_
