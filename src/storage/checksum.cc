#include "storage/checksum.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define I3_CRC32C_X86 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace i3 {

namespace {

// Reflected CRC32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // tab[k][b]: the CRC contribution of byte value b appearing k bytes
  // before the end of an 8-byte block (slice-by-8).
  uint32_t tab[8][256];
};

Tables BuildTables() {
  Tables t{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    t.tab[0][b] = crc;
  }
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = t.tab[0][b];
    for (int k = 1; k < 8; ++k) {
      crc = t.tab[0][crc & 0xff] ^ (crc >> 8);
      t.tab[k][b] = crc;
    }
  }
  return t;
}

const Tables& GetTables() {
  static const Tables t = BuildTables();
  return t;
}

uint32_t Crc32cSoft(const void* data, size_t len, uint32_t crc) {
  const Tables& t = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Head bytes until 8-byte alignment of the remaining length.
  while (len != 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = t.tab[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --len;
  }
  while (len >= 8) {
    // One table lookup per byte, eight independent chains per iteration.
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    crc = t.tab[7][lo & 0xff] ^ t.tab[6][(lo >> 8) & 0xff] ^
          t.tab[5][(lo >> 16) & 0xff] ^ t.tab[4][lo >> 24] ^
          t.tab[3][p[4]] ^ t.tab[2][p[5]] ^ t.tab[1][p[6]] ^ t.tab[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len != 0) {
    crc = t.tab[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --len;
  }
  return ~crc;
}

#ifdef I3_CRC32C_X86

// ------------------------------------------------------------------ hardware
//
// Two accelerated paths, picked once at startup:
//
//   * SSE4.2        -- the dedicated crc32 instruction, ~2.7 bytes/cycle.
//   * AVX-512 + VPCLMULQDQ -- carryless-multiply folding over four 512-bit
//     accumulators (the classic Intel folding scheme vectorized to 256-byte
//     strides), ~40 bytes/cycle; a 4KB page checksums in ~50ns, which keeps
//     the per-miss verification cost of ChecksummedPageFile inside the
//     bench_hotpath regression budget.
//
// Every path computes the same function (CRC32C is fully determined by its
// polynomial), so on-disk checksums verify across machines and builds; a
// startup self-test against the table implementation gates each hardware
// path before it is ever dispatched to.
//
// The folding constants are *derived at startup* from the polynomial
// instead of hardcoded: folding a 128-bit lane forward across n bits
// multiplies its high/low 64-bit halves by x^(n+63) mod P and x^(n-1) mod P
// in GF(2) (the +63/-1 absorb the one-bit offset of carryless multiplies on
// bit-reflected operands). Deriving them from first principles keeps the
// scheme honest: a wrong constant fails the self-test and the known-vector
// unit tests rather than silently shipping a different function.

// GF(2) polynomial arithmetic in normal bit order (bit i = coeff of x^i).
constexpr uint64_t kPolyFull = 0x11EDC6F41ull;

uint64_t GfMulMod(uint64_t a, uint64_t b) {
  uint64_t r = 0;
  while (b) {
    if (b & 1) r ^= a;
    a <<= 1;
    b >>= 1;
  }
  for (int i = 62; i >= 32; --i) {
    if ((r >> i) & 1) r ^= kPolyFull << (i - 32);
  }
  return r;
}

uint32_t XPowMod(uint64_t n) {  // x^n mod P
  uint64_t result = 1, base = 2;
  while (n) {
    if (n & 1) result = GfMulMod(result, base);
    base = GfMulMod(base, base);
    n >>= 1;
  }
  return static_cast<uint32_t>(result);
}

uint32_t BitRev32(uint32_t v) {
  v = ((v >> 1) & 0x55555555u) | ((v & 0x55555555u) << 1);
  v = ((v >> 2) & 0x33333333u) | ((v & 0x33333333u) << 2);
  v = ((v >> 4) & 0x0F0F0F0Fu) | ((v & 0x0F0F0F0Fu) << 4);
  v = ((v >> 8) & 0x00FF00FFu) | ((v & 0x00FF00FFu) << 8);
  return (v >> 16) | (v << 16);
}

// Constant pair for folding a 128-bit lane forward across `bits` bits: the
// low half multiplies the lane's low 64 register bits (the high-degree
// part of the reflected chunk), the high half the high 64.
struct FoldK {
  uint64_t lo, hi;
};

FoldK MakeFold(uint64_t bits) {
  return {static_cast<uint64_t>(BitRev32(XPowMod(bits + 63))) << 32,
          static_cast<uint64_t>(BitRev32(XPowMod(bits - 1))) << 32};
}

struct HwConstants {
  FoldK k2048;  // main loop: four zmm accumulators, 256-byte stride
  FoldK k1536, k1024, k512;  // accumulator merge (192/128/64 bytes)
  FoldK k384, k256, k128;    // lane merge within one zmm (48/32/16 bytes)
};

const HwConstants& HwK() {
  static const HwConstants k = {MakeFold(2048), MakeFold(1536),
                                MakeFold(1024), MakeFold(512),
                                MakeFold(384),  MakeFold(256),
                                MakeFold(128)};
  return k;
}

__attribute__((target("sse4.2"))) uint32_t Crc32cSse42(const void* data,
                                                       size_t len,
                                                       uint32_t crc) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t s = ~crc & 0xFFFFFFFFull;
  while (len >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    s = _mm_crc32_u64(s, v);
    p += 8;
    len -= 8;
  }
  uint32_t s32 = static_cast<uint32_t>(s);
  while (len != 0) {
    s32 = _mm_crc32_u8(s32, *p++);
    --len;
  }
  return ~s32;
}

__attribute__((target("pclmul,sse2"))) inline __m128i Fold128(__m128i x,
                                                              __m128i k) {
  return _mm_xor_si128(_mm_clmulepi64_si128(x, k, 0x00),
                       _mm_clmulepi64_si128(x, k, 0x11));
}

__attribute__((target("avx512f,vpclmulqdq"))) inline __m512i FoldData512(
    __m512i x, __m512i k, __m512i data) {
  return _mm512_ternarylogic_epi64(_mm512_clmulepi64_epi128(x, k, 0x00),
                                   _mm512_clmulepi64_epi128(x, k, 0x11),
                                   data, 0x96);
}

__attribute__((target("avx512f,vpclmulqdq"))) inline __m512i Fold512(
    __m512i x, __m512i k) {
  return _mm512_xor_si512(_mm512_clmulepi64_epi128(x, k, 0x00),
                          _mm512_clmulepi64_epi128(x, k, 0x11));
}

__attribute__((target("avx512f,vpclmulqdq"))) inline __m512i Bcast(FoldK k) {
  return _mm512_set_epi64(
      static_cast<long long>(k.hi), static_cast<long long>(k.lo),
      static_cast<long long>(k.hi), static_cast<long long>(k.lo),
      static_cast<long long>(k.hi), static_cast<long long>(k.lo),
      static_cast<long long>(k.hi), static_cast<long long>(k.lo));
}

__attribute__((target("avx512f,avx512vl,vpclmulqdq,pclmul,sse4.2")))
uint32_t Crc32cZmm(const void* data, size_t len, uint32_t crc) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t s = ~crc & 0xFFFFFFFFull;
  if (len >= 256) {
    const HwConstants& K = HwK();
    // Absorb the running state into the first four message bytes (the
    // standard init-state identity), then fold pure polynomials.
    __m512i a0 = _mm512_xor_si512(
        _mm512_loadu_si512(p),
        _mm512_castsi128_si512(_mm_cvtsi32_si128(static_cast<int>(s))));
    __m512i a1 = _mm512_loadu_si512(p + 64);
    __m512i a2 = _mm512_loadu_si512(p + 128);
    __m512i a3 = _mm512_loadu_si512(p + 192);
    p += 256;
    len -= 256;
    const __m512i k2048 = Bcast(K.k2048);
    while (len >= 256) {
      a0 = FoldData512(a0, k2048, _mm512_loadu_si512(p));
      a1 = FoldData512(a1, k2048, _mm512_loadu_si512(p + 64));
      a2 = FoldData512(a2, k2048, _mm512_loadu_si512(p + 128));
      a3 = FoldData512(a3, k2048, _mm512_loadu_si512(p + 192));
      p += 256;
      len -= 256;
    }
    __m512i t = _mm512_ternarylogic_epi64(
        Fold512(a0, Bcast(K.k1536)), Fold512(a1, Bcast(K.k1024)),
        _mm512_xor_si512(Fold512(a2, Bcast(K.k512)), a3), 0x96);
    const __m128i k384 = _mm_set_epi64x(static_cast<long long>(K.k384.hi),
                                        static_cast<long long>(K.k384.lo));
    const __m128i k256 = _mm_set_epi64x(static_cast<long long>(K.k256.hi),
                                        static_cast<long long>(K.k256.lo));
    const __m128i k128 = _mm_set_epi64x(static_cast<long long>(K.k128.hi),
                                        static_cast<long long>(K.k128.lo));
    __m128i x = _mm_xor_si128(
        _mm_xor_si128(Fold128(_mm512_extracti32x4_epi32(t, 0), k384),
                      Fold128(_mm512_extracti32x4_epi32(t, 1), k256)),
        _mm_xor_si128(Fold128(_mm512_extracti32x4_epi32(t, 2), k128),
                      _mm512_extracti32x4_epi32(t, 3)));
    // The remaining 128 bits are an ordinary 16-byte message chunk; the
    // crc32 instruction performs the final reduction to 32 bits.
    s = _mm_crc32_u64(0, static_cast<uint64_t>(_mm_cvtsi128_si64(x)));
    s = _mm_crc32_u64(s, static_cast<uint64_t>(_mm_extract_epi64(x, 1)));
  }
  while (len >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    s = _mm_crc32_u64(s, v);
    p += 8;
    len -= 8;
  }
  uint32_t s32 = static_cast<uint32_t>(s);
  while (len != 0) {
    s32 = _mm_crc32_u8(s32, *p++);
    --len;
  }
  return ~s32;
}

bool CpuHasVpclmulqdq() {
  unsigned eax, ebx, ecx, edx;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 10)) != 0;  // VPCLMULQDQ
}

using CrcFn = uint32_t (*)(const void*, size_t, uint32_t);

// A hardware path must reproduce the table implementation bit for bit on a
// multi-block pseudorandom buffer (covering the folding bulk, the merge
// ladders, odd tails, and continuation) before it is allowed to serve.
bool SelfTest(CrcFn fn) {
  uint8_t buf[1031];
  uint64_t lcg = 0x9E3779B97F4A7C15ull;
  for (size_t i = 0; i < sizeof(buf); ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    buf[i] = static_cast<uint8_t>(lcg >> 33);
  }
  for (size_t len : {0u, 1u, 9u, 255u, 256u, 263u, 511u, 1024u, 1031u}) {
    if (fn(buf, len, 0) != Crc32cSoft(buf, len, 0)) return false;
    const size_t h = len / 3;
    if (fn(buf + h, len - h, fn(buf, h, 0)) != Crc32cSoft(buf, len, 0)) {
      return false;
    }
  }
  return fn("123456789", 9, 0) == 0xE3069283u;
}

CrcFn ChooseImpl() {
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vl") && CpuHasVpclmulqdq() &&
      SelfTest(&Crc32cZmm)) {
    return &Crc32cZmm;
  }
  if (__builtin_cpu_supports("sse4.2") && SelfTest(&Crc32cSse42)) {
    return &Crc32cSse42;
  }
  return &Crc32cSoft;
}

#else  // !I3_CRC32C_X86

using CrcFn = uint32_t (*)(const void*, size_t, uint32_t);
CrcFn ChooseImpl() { return &Crc32cSoft; }

#endif  // I3_CRC32C_X86

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t crc) {
  static const CrcFn fn = ChooseImpl();
  return fn(data, len, crc);
}

namespace internal {
uint32_t Crc32cPortable(const void* data, size_t len, uint32_t crc) {
  return Crc32cSoft(data, len, crc);
}
}  // namespace internal

}  // namespace i3
