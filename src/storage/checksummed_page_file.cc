#include "storage/checksummed_page_file.h"

#include <cassert>
#include <cstring>
#include <string>
#include <vector>

#include "storage/checksum.h"

namespace i3 {

namespace {

// Per-thread physical-page scratch. ReadPage/WritePage are leaf operations
// (no recursion back into the same wrapper on one thread), so a single
// retained buffer per thread suffices and the steady state allocates
// nothing -- the query hot path's allocation contract (bench_hotpath)
// extends through this layer.
thread_local std::vector<uint8_t> t_physical_scratch;

uint8_t* PhysicalScratch(size_t physical_size) {
  if (t_physical_scratch.size() < physical_size) {
    t_physical_scratch.resize(physical_size);
  }
  return t_physical_scratch.data();
}

void PutU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }

uint32_t GetU32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}

}  // namespace

ChecksummedPageFile::ChecksummedPageFile(std::unique_ptr<PageFile> base)
    : PageFile(base->page_size() - kPageHeaderBytes), base_(std::move(base)) {
  assert(base_->page_size() > kPageHeaderBytes);
  failures_metric_ = obs::MetricsRegistry::Global().GetCounter(
      "i3_checksum_failures_total",
      "Pages whose header or CRC32C failed verification on read.");
}

Result<PageId> ChecksummedPageFile::AllocatePage() {
  // The base page is born all-zero; ReadPage recognizes that as a fresh
  // page, so no format write is needed here and allocation stays free of
  // charged I/O (matching the unwrapped backends).
  return base_->AllocatePage();
}

Status ChecksummedPageFile::ReadPage(PageId id, void* buf,
                                     IoCategory category) {
  const size_t physical = base_->page_size();
  const uint8_t* scratch = base_->PeekPage(id);
  if (scratch != nullptr) {
    // Zero-copy verification straight out of the backing store (the hot
    // path for the default in-memory deployment: one payload copy total,
    // same as an unchecksummed read). Mirror the base read's accounting --
    // RecordRead, not ChargeRead, so simulated device latency is paid just
    // as base_->ReadPage would have.
    base_->mutable_io_stats()->RecordRead(category);
  } else {
    uint8_t* own = PhysicalScratch(physical);
    I3_RETURN_NOT_OK(base_->ReadPage(id, own, category));
    scratch = own;
  }

  const uint32_t magic = GetU32(scratch);
  bool valid = false;
  if (magic == kPageMagic) {
    // CRC covers epoch + page id + payload (everything after the magic).
    const uint32_t stored = UnmaskCrc(GetU32(scratch + 12));
    uint32_t actual = Crc32c(scratch + 4, 8);
    actual = Crc32c(scratch + kPageHeaderBytes, page_size_, actual);
    valid = stored == actual && GetU32(scratch + 8) == id;
  } else if (magic == 0) {
    // Possibly a never-written page: fresh pages are all-zero. Any nonzero
    // byte means a damaged header instead.
    valid = true;
    for (size_t i = 0; i < physical; ++i) {
      if (scratch[i] != 0) {
        valid = false;
        break;
      }
    }
  }
  if (!valid) {
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    failures_metric_->Increment(1);
    return Status::Corruption("page " + std::to_string(id) +
                              " failed checksum verification");
  }
  std::memcpy(buf, scratch + kPageHeaderBytes, page_size_);
  io_stats_.ChargeRead(category);
  return Status::OK();
}

Status ChecksummedPageFile::WritePage(PageId id, const void* buf,
                                      IoCategory category) {
  uint8_t* scratch = PhysicalScratch(base_->page_size());
  const uint32_t epoch =
      epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  PutU32(scratch, kPageMagic);
  PutU32(scratch + 4, epoch);
  PutU32(scratch + 8, id);
  std::memcpy(scratch + kPageHeaderBytes, buf, page_size_);
  uint32_t crc = Crc32c(scratch + 4, 8);
  crc = Crc32c(scratch + kPageHeaderBytes, page_size_, crc);
  PutU32(scratch + 12, MaskCrc(crc));
  I3_RETURN_NOT_OK(base_->WritePage(id, scratch, category));
  io_stats_.ChargeWrite(category);
  return Status::OK();
}

}  // namespace i3
