#include "storage/io_stats.h"

#include <sstream>

#include "common/deadline.h"
#include "obs/metrics.h"

namespace i3 {

namespace internal {
std::atomic<uint32_t> g_sim_io_latency_us{0};

void SpinForSimulatedIo(uint64_t pages) {
  const uint32_t us = g_sim_io_latency_us.load(std::memory_order_relaxed);
  if (us == 0) return;
  // A real device read blocks the issuing thread, letting other threads run
  // meanwhile -- DeadlineTimer::SleepFor sleeps waits long enough for the
  // scheduler to honor accurately and spins the short calibration waits.
  DeadlineTimer::SleepFor(us * pages);
}
}  // namespace internal

void SetSimulatedIoLatencyUs(uint32_t us) {
  internal::g_sim_io_latency_us.store(us, std::memory_order_relaxed);
}

uint32_t GetSimulatedIoLatencyUs() {
  return internal::g_sim_io_latency_us.load(std::memory_order_relaxed);
}

const char* IoCategoryName(IoCategory c) {
  switch (c) {
    case IoCategory::kI3HeadFile:
      return "i3.head";
    case IoCategory::kI3DataFile:
      return "i3.data";
    case IoCategory::kRTreeNode:
      return "rtree.node";
    case IoCategory::kInvertedFile:
      return "inverted.file";
    case IoCategory::kFlatFile:
      return "flat.file";
    case IoCategory::kOther:
      return "other";
  }
  return "unknown";
}

IoStats IoStats::Since(const IoStats& earlier) const {
  IoStats out;
  for (int i = 0; i < kNumIoCategories; ++i) {
    const auto c = static_cast<IoCategory>(i);
    out.reads_[i].store(reads(c) - earlier.reads(c),
                        std::memory_order_relaxed);
    out.writes_[i].store(writes(c) - earlier.writes(c),
                         std::memory_order_relaxed);
  }
  return out;
}

void RecordIoMetrics(const IoStats& delta) {
  struct CategoryCounters {
    obs::Counter* reads;
    obs::Counter* writes;
  };
  // One registry lookup per category per process; recording afterwards is
  // pure relaxed fetch_adds on the cached counters.
  static const std::array<CategoryCounters, kNumIoCategories>* counters =
      [] {
        auto* a = new std::array<CategoryCounters, kNumIoCategories>();
        obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
        for (int i = 0; i < kNumIoCategories; ++i) {
          const char* name = IoCategoryName(static_cast<IoCategory>(i));
          (*a)[i].reads = reg.GetCounter(
              "i3_io_pages_total", "Page accesses by file category and op.",
              {{"category", name}, {"op", "read"}});
          (*a)[i].writes = reg.GetCounter(
              "i3_io_pages_total", "Page accesses by file category and op.",
              {{"category", name}, {"op", "write"}});
        }
        return a;
      }();
  for (int i = 0; i < kNumIoCategories; ++i) {
    const auto c = static_cast<IoCategory>(i);
    const uint64_t r = delta.reads(c);
    const uint64_t w = delta.writes(c);
    if (r != 0) (*counters)[i].reads->Increment(r);
    if (w != 0) (*counters)[i].writes->Increment(w);
  }
}

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "IoStats{";
  bool first = true;
  for (int i = 0; i < kNumIoCategories; ++i) {
    const auto c = static_cast<IoCategory>(i);
    if (reads(c) == 0 && writes(c) == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << IoCategoryName(c) << ": r=" << reads(c) << " w=" << writes(c);
  }
  os << "}";
  return os.str();
}

}  // namespace i3
