#include "storage/io_stats.h"

#include <chrono>
#include <sstream>

namespace i3 {

namespace internal {
std::atomic<uint32_t> g_sim_io_latency_us{0};

void SpinForSimulatedIo(uint64_t pages) {
  const uint32_t us = g_sim_io_latency_us.load(std::memory_order_relaxed);
  if (us == 0) return;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(us * pages);
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy-wait: microsecond sleep granularity is unreliable on Linux.
  }
}
}  // namespace internal

void SetSimulatedIoLatencyUs(uint32_t us) {
  internal::g_sim_io_latency_us.store(us, std::memory_order_relaxed);
}

uint32_t GetSimulatedIoLatencyUs() {
  return internal::g_sim_io_latency_us.load(std::memory_order_relaxed);
}

const char* IoCategoryName(IoCategory c) {
  switch (c) {
    case IoCategory::kI3HeadFile:
      return "i3.head";
    case IoCategory::kI3DataFile:
      return "i3.data";
    case IoCategory::kRTreeNode:
      return "rtree.node";
    case IoCategory::kInvertedFile:
      return "inverted.file";
    case IoCategory::kFlatFile:
      return "flat.file";
    case IoCategory::kOther:
      return "other";
  }
  return "unknown";
}

IoStats IoStats::Since(const IoStats& earlier) const {
  IoStats out = *this;
  for (int i = 0; i < kNumIoCategories; ++i) {
    out.reads_[i] -= earlier.reads_[i];
    out.writes_[i] -= earlier.writes_[i];
  }
  return out;
}

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "IoStats{";
  bool first = true;
  for (int i = 0; i < kNumIoCategories; ++i) {
    if (reads_[i] == 0 && writes_[i] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << IoCategoryName(static_cast<IoCategory>(i)) << ": r=" << reads_[i]
       << " w=" << writes_[i];
  }
  os << "}";
  return os.str();
}

}  // namespace i3
