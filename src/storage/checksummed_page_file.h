// Page-level integrity: a PageFile decorator that stamps every physical
// page with a 16-byte header (magic, write epoch, page id, CRC32C) and
// verifies it on read.
//
// The paper assumes a reliable disk; a serving deployment does not get one.
// Without verification a torn write or bit-flip silently corrupts tuples
// and surfaces as a *wrong top-k list* -- the worst possible failure mode
// for a search system. With it, damage surfaces as Status::Corruption at
// the first read, which the buffer pool quarantines and the sharded search
// path degrades around (see DESIGN.md section 10).
//
// Layout: physical page = [PageHeader | logical payload]. The wrapper
// exposes the *logical* page size, so capacity math above it (P/B tuple
// slots, FreeSpaceMap) is unchanged -- callers construct the base file with
// kPageHeaderBytes of extra physical room (I3Index does this when
// I3Options::checksum_pages is set).
//
// What is detected: payload or header bit-flips and torn (partial) writes
// (CRC mismatch), misdirected reads/writes landing on the wrong page slot
// (page-id mismatch), and garbage where a page should be (magic mismatch).
// A never-written page reads back all-zero; that is recognized as "fresh"
// and served as a zero payload, so AllocatePage needs no format write and
// the decorator's I/O accounting stays exactly one physical access per
// logical access (the paper's I/O figures depend on that 1:1 mapping).
// Not detected: a lost write that restores a stale-but-valid page image
// (needs an external epoch ledger; out of scope -- documented in DESIGN.md).

#ifndef I3_STORAGE_CHECKSUMMED_PAGE_FILE_H_
#define I3_STORAGE_CHECKSUMMED_PAGE_FILE_H_

#include <atomic>
#include <memory>

#include "obs/metrics.h"
#include "storage/page_file.h"

namespace i3 {

/// Physical bytes prepended to every page: magic u32, epoch u32, page id
/// u32, masked CRC32C u32 (the CRC covers epoch + page id + payload).
constexpr size_t kPageHeaderBytes = 16;

/// "I3PG" little-endian.
constexpr uint32_t kPageMagic = 0x47503349u;

/// \brief Wraps a PageFile, storing checksummed pages in it.
///
/// Thread-safe to the same degree as the base file: concurrent ReadPage
/// calls share nothing but a per-thread scratch buffer and the epoch
/// counter (atomic). The logical page size is base->page_size() minus the
/// header.
class ChecksummedPageFile final : public PageFile {
 public:
  /// `base` must have page_size() > kPageHeaderBytes.
  explicit ChecksummedPageFile(std::unique_ptr<PageFile> base);

  PageId PageCount() const override { return base_->PageCount(); }

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, void* buf, IoCategory category) override;
  Status WritePage(PageId id, const void* buf, IoCategory category) override;

  /// Write epoch stamped into the next written page (diagnostics/tests).
  uint32_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Checksum verification failures observed by this file (the process-wide
  /// total is `i3_checksum_failures_total`).
  uint64_t checksum_failures() const {
    return checksum_failures_.load(std::memory_order_relaxed);
  }

  PageFile* base() { return base_.get(); }

 private:
  uint8_t* Scratch() const;

  std::unique_ptr<PageFile> base_;
  /// Monotonic write counter stamped into headers; detects nothing by
  /// itself but makes torn multi-page operations diagnosable (pages of one
  /// logical operation carry nearby epochs).
  std::atomic<uint32_t> epoch_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  obs::Counter* failures_metric_;
};

}  // namespace i3

#endif  // I3_STORAGE_CHECKSUMMED_PAGE_FILE_H_
