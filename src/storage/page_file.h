// Paged storage: the disk substrate under every index in this library.
//
// A PageFile is a growable sequence of fixed-size pages addressed by PageId.
// Two backends are provided: an in-memory one (used by unit tests and for
// pure-CPU benchmarking) and a POSIX file-backed one (used to measure real
// storage footprints and to persist indexes). Both charge page reads and
// writes to an IoStats instance under a caller-chosen IoCategory, which is
// how the paper's per-file I/O breakdowns (Figures 8-9) are reproduced.

#ifndef I3_STORAGE_PAGE_FILE_H_
#define I3_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/io_stats.h"

namespace i3 {

/// Index of a page within a PageFile.
using PageId = uint32_t;
constexpr PageId kInvalidPageId = UINT32_MAX;

/// Default page size; the paper sets P = 4KB for all three indexes.
constexpr size_t kDefaultPageSize = 4096;

/// \brief Abstract growable array of fixed-size pages with I/O accounting.
class PageFile {
 public:
  virtual ~PageFile() = default;

  /// Page size in bytes (constant for the lifetime of the file).
  size_t page_size() const { return page_size_; }

  /// Number of allocated pages.
  virtual PageId PageCount() const = 0;

  /// Total storage footprint in bytes.
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(PageCount()) * page_size_;
  }

  /// \brief Appends a zeroed page and returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  /// \brief Reads page `id` into `buf` (page_size bytes) and charges one
  /// read to `category`.
  virtual Status ReadPage(PageId id, void* buf, IoCategory category) = 0;

  /// \brief Writes page `id` from `buf` (page_size bytes) and charges one
  /// write to `category`.
  virtual Status WritePage(PageId id, const void* buf,
                           IoCategory category) = 0;

  /// \brief Zero-copy view of page `id`'s current bytes, or nullptr when
  /// the backend cannot expose one (disk-backed files, fault-injection
  /// wrappers). Charges nothing: a decorator that verifies through the view
  /// mirrors the base read's accounting itself (RecordRead, so the
  /// simulated device latency is still paid exactly once). Callers inherit
  /// ReadPage's synchronization contract -- the view is stable only while
  /// no writer touches the page.
  virtual const uint8_t* PeekPage(PageId) const { return nullptr; }

  /// I/O counters for this file. Mutable access for benchmark reset.
  const IoStats& io_stats() const { return io_stats_; }
  IoStats* mutable_io_stats() { return &io_stats_; }

 protected:
  explicit PageFile(size_t page_size) : page_size_(page_size) {}

  const size_t page_size_;
  IoStats io_stats_;
};

/// \brief Heap-backed PageFile.
class InMemoryPageFile final : public PageFile {
 public:
  explicit InMemoryPageFile(size_t page_size = kDefaultPageSize)
      : PageFile(page_size) {}

  PageId PageCount() const override {
    return static_cast<PageId>(pages_.size());
  }

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, void* buf, IoCategory category) override;
  Status WritePage(PageId id, const void* buf, IoCategory category) override;
  const uint8_t* PeekPage(PageId id) const override {
    return id < pages_.size() ? pages_[id].get() : nullptr;
  }

 private:
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
};

/// \brief POSIX file-backed PageFile. Pages live at offset id * page_size.
class OnDiskPageFile final : public PageFile {
 public:
  /// Opens (creating or truncating) `path`.
  static Result<std::unique_ptr<OnDiskPageFile>> Create(
      const std::string& path, size_t page_size = kDefaultPageSize);

  ~OnDiskPageFile() override;

  OnDiskPageFile(const OnDiskPageFile&) = delete;
  OnDiskPageFile& operator=(const OnDiskPageFile&) = delete;

  PageId PageCount() const override { return page_count_; }

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, void* buf, IoCategory category) override;
  Status WritePage(PageId id, const void* buf, IoCategory category) override;

 private:
  OnDiskPageFile(int fd, std::string path, size_t page_size)
      : PageFile(page_size), fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
  PageId page_count_ = 0;
};

/// \brief Tracks free capacity per page so callers can answer the paper's
/// placement questions: "select any page with an empty slot" and "find a
/// page with at least n empty units" (Algorithms 1-3).
///
/// Free space is measured in caller-chosen *units* (fixed-width slots for
/// the v1 tuple pages, bytes for the v2 compressed pages). Pages are
/// bucketed by free units quantized to `quantum`; the find query scans the
/// exact-match bucket (whose pages may straddle the requested amount) and
/// takes the head of any higher bucket, so both operations stay O(1)
/// amortized. With quantum = 1 the map reduces to the original per-slot
/// bucketing, bit for bit.
class FreeSpaceMap {
 public:
  /// \param units_per_page capacity of every page, in units.
  /// \param quantum bucket granularity; must divide into reasonable bucket
  ///        counts (units_per_page / quantum + 1 buckets are allocated).
  explicit FreeSpaceMap(uint32_t units_per_page, uint32_t quantum = 1);

  /// Registers a freshly allocated (empty) page.
  void AddPage(PageId id);

  /// Current free units of `id`.
  uint32_t FreeSlots(PageId id) const;

  /// Updates the bookkeeping after `delta` units were consumed (positive)
  /// or released (negative) on `id`.
  void Consume(PageId id, int delta);

  /// Sets the free units of `id` to an absolute value (the v2 write path
  /// recomputes a page's usage on every encode).
  void SetFree(PageId id, uint32_t units);

  /// \brief Any page with >= `want` free units, or kInvalidPageId.
  PageId FindPageWithFreeSlots(uint32_t want) const;

  uint32_t slots_per_page() const { return units_per_page_; }
  uint32_t quantum() const { return quantum_; }
  size_t page_count() const { return free_count_.size(); }

 private:
  uint32_t Bucket(uint32_t free) const { return free / quantum_; }
  void Unlink(PageId id);
  void Link(PageId id);

  const uint32_t units_per_page_;
  const uint32_t quantum_;
  std::vector<uint32_t> free_count_;  // per page, in units
  // Intrusive doubly-linked lists, one per quantized free-count bucket.
  std::vector<PageId> bucket_head_;
  std::vector<PageId> next_, prev_;
};

}  // namespace i3

#endif  // I3_STORAGE_PAGE_FILE_H_
