#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "common/deadline.h"
#include "obs/clock.h"

namespace i3 {

namespace internal {
thread_local uint64_t t_retry_backoff_ns = 0;
}  // namespace internal

BufferPool::BufferPool(PageFile* file, BufferPoolOptions options)
    : file_(file), options_(options) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  hits_metric_ = reg.GetCounter("i3_buffer_pool_hits_total",
                                "Page requests served from the cache.");
  misses_metric_ = reg.GetCounter(
      "i3_buffer_pool_misses_total",
      "Page requests that faulted through to the backing file.");
  evictions_metric_ =
      reg.GetCounter("i3_buffer_pool_evictions_total",
                     "Cached frames dropped to make room or by Clear().");
  frame_recycles_metric_ = reg.GetCounter(
      "i3_buffer_pool_frame_recycles_total",
      "Evictions that reused the victim frame in place (no allocation).");
  retries_metric_ = reg.GetCounter(
      "i3_page_retries_total",
      "Page reads retried after a transient error (IOError).");
}

Status BufferPool::ReadWithRetry(PageId id, void* buf, IoCategory category) {
  uint64_t backoff_us = options_.retry_backoff_us;
  for (uint32_t attempt = 0;; ++attempt) {
    Status st = file_->ReadPage(id, buf, category);
    if (st.ok()) return st;
    if (st.IsCorruption()) {
      // The stored bytes are wrong; a re-read returns the same wrong
      // bytes. Quarantine: drop the (stale) unpinned frame and bypass the
      // cache for this page until a verified read or rewrite succeeds.
      std::lock_guard<std::mutex> lock(mutex_);
      quarantined_.insert(id);
      auto* it = Lookup(id);
      if (it != nullptr && (*it)->pins == 0) {
        lru_.erase(*it);
        Forget(id);
        ++evictions_;
        evictions_metric_->Increment(1);
      }
      return st;
    }
    if (!st.IsIOError() || attempt >= options_.max_read_retries) return st;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++retries_;
    }
    retries_metric_->Increment(1);
    const uint64_t wait_start = obs::NowNanos();
    DeadlineTimer::SleepFor(backoff_us);
    internal::t_retry_backoff_ns += obs::NowNanos() - wait_start;
    backoff_us *= 2;
  }
}

const uint8_t* BufferPool::PinnedPage::data() const {
  return static_cast<const Frame*>(frame_)->data.data();
}

void BufferPool::PinnedPage::Release() {
  if (frame_ == nullptr) return;
  pool_->Unpin(static_cast<Frame*>(frame_));
  frame_ = nullptr;
  pool_ = nullptr;
}

Status BufferPool::PinPage(PageId id, IoCategory category, uint8_t* scratch,
                           PinnedPage* out) {
  assert(Pinnable());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto* it = Lookup(id);
    if (it != nullptr && Servable(id)) {
      Frame& frame = **it;
      ++frame.pins;
      Touch(*it);
      ++hits_;
      hits_metric_->Increment(1);
      *out = PinnedPage(this, &frame);
      return Status::OK();
    }
  }
  // Miss: fault the page in through the caller's scratch buffer outside the
  // lock (stateless file read; simulated device latency must overlap across
  // threads), then publish it. A racing miss on the same page is benign:
  // InsertFrame finds the winner's frame and this thread pins it.
  I3_RETURN_NOT_OK(ReadWithRetry(id, scratch, category));
  SimulateMiss();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    quarantined_.erase(id);  // verified device read heals the page
    ++misses_;
    misses_metric_->Increment(1);
    Frame* frame = InsertFrame(id, scratch);
    ++frame->pins;
    *out = PinnedPage(this, frame);
  }
  return Status::OK();
}

void BufferPool::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(frame->pins > 0);
  --frame->pins;
}

Status BufferPool::ReadPage(PageId id, void* buf, IoCategory category) {
  if (options_.capacity_pages > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto* it = Lookup(id);
    if (it != nullptr && Servable(id)) {
      std::memcpy(buf, (*it)->data.data(), page_size());
      Touch(*it);
      ++hits_;
      hits_metric_->Increment(1);
      return Status::OK();
    }
  }
  // Miss path runs unlocked: PageFile reads are stateless (pread / const
  // memory copy) and the simulated device latency must overlap across
  // threads, not serialize behind the cache lock.
  I3_RETURN_NOT_OK(ReadWithRetry(id, buf, category));
  SimulateMiss();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    quarantined_.erase(id);  // verified device read heals the page
    ++misses_;
    misses_metric_->Increment(1);
    if (options_.capacity_pages > 0) InsertFrame(id, buf);
  }
  return Status::OK();
}

Status BufferPool::WritePage(PageId id, const void* buf,
                             IoCategory category) {
  I3_RETURN_NOT_OK(file_->WritePage(id, buf, category));
  if (options_.capacity_pages > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    quarantined_.erase(id);  // write-through replaces the stored bytes
    auto* it = Lookup(id);
    if (it != nullptr) {
      std::memcpy((*it)->data.data(), buf, page_size());
      Touch(*it);
    } else {
      InsertFrame(id, buf);
    }
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    quarantined_.erase(id);
  }
  return Status::OK();
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->pins > 0) {
      ++it;  // a pinned reader still maps these bytes
    } else {
      Forget(it->id);
      it = lru_.erase(it);
      ++evictions_;
      evictions_metric_->Increment(1);
    }
  }
}

void BufferPool::Touch(std::list<Frame>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

BufferPool::Frame* BufferPool::InsertFrame(PageId id, const void* buf) {
  // Two readers can miss on the same page back to back (the miss path runs
  // unlocked); the second insert must adopt the existing frame, not grow a
  // duplicate whose eviction would orphan the live table entry. No byte
  // copy: the frame already holds the current page (write-through
  // invariant), and rewriting identical bytes would race a pinned reader
  // decoding them.
  auto* it = Lookup(id);
  if (it != nullptr) {
    Touch(*it);
    return &**it;
  }
  if (lru_.size() >= options_.capacity_pages) {
    // Evict the least-recent *unpinned* frame -- by recycling it: its page
    // buffer, list node, and table slot are all reused, so a steady-state
    // miss performs zero allocator traffic. Rewriting the bytes is safe
    // because pins == 0 means no reader maps the frame, and copying-out
    // readers hold the pool mutex. If every frame is pinned (#pins is
    // bounded by the number of reader threads), grow past capacity for
    // the moment instead.
    for (auto victim = lru_.end(); victim != lru_.begin();) {
      --victim;
      if (victim->pins == 0) {
        ++evictions_;
        ++frame_recycles_;
        evictions_metric_->Increment(1);
        frame_recycles_metric_->Increment(1);
        Forget(victim->id);
        victim->id = id;
        std::memcpy(victim->data.data(), buf, page_size());
        Touch(victim);
        Remember(id, lru_.begin());
        return &lru_.front();
      }
    }
  }
  Frame frame;
  frame.id = id;
  frame.data.assign(static_cast<const uint8_t*>(buf),
                    static_cast<const uint8_t*>(buf) + page_size());
  lru_.push_front(std::move(frame));
  Remember(id, lru_.begin());
  return &lru_.front();
}

void BufferPool::SimulateMiss() const {
  if (options_.simulated_miss_latency_us == 0) return;
  DeadlineTimer::SleepFor(options_.simulated_miss_latency_us);
}

}  // namespace i3
