#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/deadline.h"
#include "obs/clock.h"

namespace i3 {

namespace internal {
thread_local uint64_t t_retry_backoff_ns = 0;
}  // namespace internal

namespace {

/// Auto stripe count: roughly one stripe per 32 frames, power of two,
/// capped at 16. Tiny pools (unit tests, head pools under ~64 pages) get a
/// single stripe and therefore fully deterministic eviction order.
size_t AutoStripes(size_t capacity_pages) {
  const size_t want = std::min<size_t>(16, capacity_pages / 32);
  size_t n = 1;
  while (n * 2 <= want) n *= 2;
  return n;
}

}  // namespace

BufferPool::BufferPool(PageFile* file, BufferPoolOptions options)
    : file_(file), options_(options) {
  size_t n = options_.stripes != 0 ? options_.stripes
                                   : AutoStripes(options_.capacity_pages);
  // Every stripe must own at least one frame (a frameless stripe could
  // never cache its pages); a capacity-0 pool keeps one stripe purely for
  // quarantine and epoch tracking.
  n = std::max<size_t>(1, std::min(n, options_.capacity_pages));
  if (options_.capacity_pages == 0) n = 1;
  stripes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Stripe>();
    s->capacity =
        options_.capacity_pages / n + (i < options_.capacity_pages % n);
    stripes_.push_back(std::move(s));
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  hits_metric_ = reg.GetCounter("i3_buffer_pool_hits_total",
                                "Page requests served from the cache.");
  misses_metric_ = reg.GetCounter(
      "i3_buffer_pool_misses_total",
      "Page requests that faulted through to the backing file.");
  evictions_metric_ =
      reg.GetCounter("i3_buffer_pool_evictions_total",
                     "Cached frames dropped to make room or by Clear().");
  frame_recycles_metric_ = reg.GetCounter(
      "i3_buffer_pool_frame_recycles_total",
      "Evictions that reused the victim frame in place (no allocation).");
  retries_metric_ = reg.GetCounter(
      "i3_page_retries_total",
      "Page reads retried after a transient error (IOError).");
  if (options_.capacity_pages > 0) {
    reg.GetGauge("i3_buffer_pool_stripes",
                 "Lock stripes across all constructed buffer pools.")
        ->Add(static_cast<int64_t>(n));
  }
}

Status BufferPool::ReadWithRetry(PageId id, void* buf, IoCategory category) {
  uint64_t backoff_us = options_.retry_backoff_us;
  for (uint32_t attempt = 0;; ++attempt) {
    Status st = file_->ReadPage(id, buf, category);
    if (st.ok()) return st;
    if (st.IsCorruption()) {
      // The stored bytes are wrong; a re-read returns the same wrong
      // bytes. Quarantine: drop the (stale) unpinned frame and bypass the
      // cache for this page until a verified read or rewrite succeeds.
      // The epoch bump invalidates any decoded state derived from the
      // pre-corruption bytes, so a later heal starts from a clean slate.
      Stripe& s = StripeOf(id);
      std::lock_guard<std::mutex> lock(s.mutex);
      s.quarantined.insert(id);
      ++EpochSlot(s, id);
      const uint32_t idx = LookupIndex(s, id);
      if (idx != kNoFrame && s.frames[idx].pins == 0) FreeFrame(s, idx);
      return st;
    }
    if (!st.IsIOError() || attempt >= options_.max_read_retries) return st;
    retries_.fetch_add(1, std::memory_order_relaxed);
    retries_metric_->Increment(1);
    const uint64_t wait_start = obs::NowNanos();
    DeadlineTimer::SleepFor(backoff_us);
    internal::t_retry_backoff_ns += obs::NowNanos() - wait_start;
    backoff_us *= 2;
  }
}

const uint8_t* BufferPool::PinnedPage::data() const {
  return static_cast<const Frame*>(frame_)->data.data();
}

void BufferPool::PinnedPage::Release() {
  if (frame_ == nullptr) return;
  pool_->Unpin(static_cast<Frame*>(frame_));
  frame_ = nullptr;
  pool_ = nullptr;
  epoch_ = 0;
}

Status BufferPool::PinPage(PageId id, IoCategory category, uint8_t* scratch,
                           PinnedPage* out) {
  assert(Pinnable());
  {
    Stripe& s = StripeOf(id);
    std::lock_guard<std::mutex> lock(s.mutex);
    const uint32_t idx = LookupIndex(s, id);
    if (idx != kNoFrame && Servable(s, id)) {
      Frame& f = s.frames[idx];
      ++f.pins;
      f.visited.store(1, std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      hits_metric_->Increment(1);
      *out = PinnedPage(this, &f, EpochOf(s, id));
      return Status::OK();
    }
  }
  // Miss: fault the page in through the caller's scratch buffer outside the
  // lock (stateless file read; simulated device latency must overlap across
  // threads), then publish it. A racing miss on the same page is benign:
  // InsertFrame finds the winner's frame and this thread pins it.
  I3_RETURN_NOT_OK(ReadWithRetry(id, scratch, category));
  SimulateMiss();
  {
    Stripe& s = StripeOf(id);
    std::lock_guard<std::mutex> lock(s.mutex);
    s.quarantined.erase(id);  // verified device read heals the page
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses_metric_->Increment(1);
    Frame* frame = InsertFrame(s, id, scratch);
    ++frame->pins;
    *out = PinnedPage(this, frame, EpochOf(s, id));
  }
  return Status::OK();
}

void BufferPool::Unpin(Frame* frame) {
  Stripe& s = *stripes_[frame->stripe];
  std::lock_guard<std::mutex> lock(s.mutex);
  assert(frame->pins > 0);
  --frame->pins;
}

Status BufferPool::ReadPage(PageId id, void* buf, IoCategory category) {
  if (options_.capacity_pages > 0) {
    Stripe& s = StripeOf(id);
    std::lock_guard<std::mutex> lock(s.mutex);
    const uint32_t idx = LookupIndex(s, id);
    if (idx != kNoFrame && Servable(s, id)) {
      Frame& f = s.frames[idx];
      std::memcpy(buf, f.data.data(), page_size());
      f.visited.store(1, std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      hits_metric_->Increment(1);
      return Status::OK();
    }
  }
  // Miss path runs unlocked: PageFile reads are stateless (pread / const
  // memory copy) and the simulated device latency must overlap across
  // threads, not serialize behind the stripe lock.
  I3_RETURN_NOT_OK(ReadWithRetry(id, buf, category));
  SimulateMiss();
  {
    Stripe& s = StripeOf(id);
    std::lock_guard<std::mutex> lock(s.mutex);
    s.quarantined.erase(id);  // verified device read heals the page
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses_metric_->Increment(1);
    if (options_.capacity_pages > 0) InsertFrame(s, id, buf);
  }
  return Status::OK();
}

Status BufferPool::WritePage(PageId id, const void* buf,
                             IoCategory category) {
  I3_RETURN_NOT_OK(file_->WritePage(id, buf, category));
  Stripe& s = StripeOf(id);
  std::lock_guard<std::mutex> lock(s.mutex);
  s.quarantined.erase(id);  // write-through replaces the stored bytes
  ++EpochSlot(s, id);       // new bytes: invalidate derived cache entries
  if (options_.capacity_pages == 0) return Status::OK();
  const uint32_t idx = LookupIndex(s, id);
  if (idx != kNoFrame) {
    Frame& f = s.frames[idx];
    std::memcpy(f.data.data(), buf, page_size());
    f.visited.store(1, std::memory_order_relaxed);
  } else {
    InsertFrame(s, id, buf);
  }
  return Status::OK();
}

void BufferPool::Clear() {
  for (auto& sp : stripes_) {
    Stripe& s = *sp;
    std::lock_guard<std::mutex> lock(s.mutex);
    for (size_t i = 0; i < s.frames.size(); ++i) {
      Frame& f = s.frames[i];
      if (f.id == kInvalidPageId || f.pins > 0) continue;
      FreeFrame(s, static_cast<uint32_t>(i));
    }
  }
}

uint64_t BufferPool::PageEpoch(PageId id) const {
  const Stripe& s = StripeOf(id);
  std::lock_guard<std::mutex> lock(s.mutex);
  return EpochOf(s, id);
}

void BufferPool::FreeFrame(Stripe& s, uint32_t frame_index) {
  Frame& f = s.frames[frame_index];
  Forget(s, f.id);
  f.id = kInvalidPageId;
  f.visited.store(0, std::memory_order_relaxed);
  s.free.push_back(frame_index);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  evictions_metric_->Increment(1);
}

BufferPool::Frame* BufferPool::InsertFrame(Stripe& s, PageId id,
                                           const void* buf) {
  // Two readers can miss on the same page back to back (the miss path runs
  // unlocked); the second insert must adopt the existing frame, not grow a
  // duplicate whose eviction would orphan the live table entry. No byte
  // copy: the frame already holds the current page (write-through
  // invariant), and rewriting identical bytes would race a pinned reader
  // decoding them.
  const uint32_t dup = LookupIndex(s, id);
  if (dup != kNoFrame) {
    Frame& f = s.frames[dup];
    f.visited.store(1, std::memory_order_relaxed);
    return &f;
  }
  // Emptied frames (Clear, quarantine drops) are refilled first: their
  // eviction was already counted and their buffer is ready for reuse.
  if (!s.free.empty()) {
    const uint32_t idx = s.free.back();
    s.free.pop_back();
    Frame& f = s.frames[idx];
    f.id = id;
    if (f.data.size() != page_size()) f.data.resize(page_size());
    std::memcpy(f.data.data(), buf, page_size());
    Remember(s, id, idx);
    return &f;
  }
  if (s.frames.size() >= s.capacity) {
    // SIEVE sweep: advance the hand, clearing reference bits, and recycle
    // the first unreferenced unpinned frame in place -- its page buffer
    // and slot-table entry are reused, so a steady-state miss performs
    // zero allocator traffic. Rewriting the bytes is safe because
    // pins == 0 means no reader maps the frame, and copying-out readers
    // hold the stripe mutex. New frames enter with the bit clear, which
    // is what makes the policy scan-resistant: a one-shot scan's pages
    // are reclaimed before any referenced (hot) frame. Two full passes
    // bound the sweep -- the first may only clear bits, the second must
    // find a victim unless every frame is pinned (#pins is bounded by the
    // number of reader threads), in which case grow past capacity for
    // the moment instead.
    const size_t n = s.frames.size();
    for (size_t step = 0; step < 2 * n; ++step) {
      const uint32_t idx = static_cast<uint32_t>(s.hand);
      Frame& f = s.frames[idx];
      s.hand = (s.hand + 1) % n;
      if (f.pins > 0 || f.id == kInvalidPageId) continue;
      if (f.visited.load(std::memory_order_relaxed) != 0) {
        f.visited.store(0, std::memory_order_relaxed);
        continue;
      }
      evictions_.fetch_add(1, std::memory_order_relaxed);
      frame_recycles_.fetch_add(1, std::memory_order_relaxed);
      evictions_metric_->Increment(1);
      frame_recycles_metric_->Increment(1);
      Forget(s, f.id);
      f.id = id;
      std::memcpy(f.data.data(), buf, page_size());
      Remember(s, id, idx);
      return &f;
    }
  }
  s.frames.emplace_back();
  Frame& f = s.frames.back();
  f.id = id;
  f.stripe = static_cast<uint32_t>(id % stripes_.size());
  f.data.assign(static_cast<const uint8_t*>(buf),
                static_cast<const uint8_t*>(buf) + page_size());
  Remember(s, id, static_cast<uint32_t>(s.frames.size() - 1));
  return &f;
}

void BufferPool::SimulateMiss() const {
  if (options_.simulated_miss_latency_us == 0) return;
  DeadlineTimer::SleepFor(options_.simulated_miss_latency_us);
}

}  // namespace i3
