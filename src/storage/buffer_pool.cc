#include "storage/buffer_pool.h"

#include <cassert>
#include <chrono>
#include <cstring>

namespace i3 {

BufferPool::BufferPool(PageFile* file, BufferPoolOptions options)
    : file_(file), options_(options) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  hits_metric_ = reg.GetCounter("i3_buffer_pool_hits_total",
                                "Page requests served from the cache.");
  misses_metric_ = reg.GetCounter(
      "i3_buffer_pool_misses_total",
      "Page requests that faulted through to the backing file.");
  evictions_metric_ =
      reg.GetCounter("i3_buffer_pool_evictions_total",
                     "Cached frames dropped to make room or by Clear().");
  frame_recycles_metric_ = reg.GetCounter(
      "i3_buffer_pool_frame_recycles_total",
      "Evictions that reused the victim frame in place (no allocation).");
}

const uint8_t* BufferPool::PinnedPage::data() const {
  return static_cast<const Frame*>(frame_)->data.data();
}

void BufferPool::PinnedPage::Release() {
  if (frame_ == nullptr) return;
  pool_->Unpin(static_cast<Frame*>(frame_));
  frame_ = nullptr;
  pool_ = nullptr;
}

Status BufferPool::PinPage(PageId id, IoCategory category, uint8_t* scratch,
                           PinnedPage* out) {
  assert(Pinnable());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(id);
    if (it != map_.end()) {
      Frame& frame = *it->second;
      ++frame.pins;
      Touch(it->second);
      ++hits_;
      hits_metric_->Increment(1);
      *out = PinnedPage(this, &frame);
      return Status::OK();
    }
  }
  // Miss: fault the page in through the caller's scratch buffer outside the
  // lock (stateless file read; simulated device latency must overlap across
  // threads), then publish it. A racing miss on the same page is benign:
  // InsertFrame finds the winner's frame and this thread pins it.
  I3_RETURN_NOT_OK(file_->ReadPage(id, scratch, category));
  SimulateMiss();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    misses_metric_->Increment(1);
    Frame* frame = InsertFrame(id, scratch);
    ++frame->pins;
    *out = PinnedPage(this, frame);
  }
  return Status::OK();
}

void BufferPool::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(frame->pins > 0);
  --frame->pins;
}

Status BufferPool::ReadPage(PageId id, void* buf, IoCategory category) {
  if (options_.capacity_pages > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(id);
    if (it != map_.end()) {
      std::memcpy(buf, it->second->data.data(), page_size());
      Touch(it->second);
      ++hits_;
      hits_metric_->Increment(1);
      return Status::OK();
    }
  }
  // Miss path runs unlocked: PageFile reads are stateless (pread / const
  // memory copy) and the simulated device latency must overlap across
  // threads, not serialize behind the cache lock.
  I3_RETURN_NOT_OK(file_->ReadPage(id, buf, category));
  SimulateMiss();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    misses_metric_->Increment(1);
    if (options_.capacity_pages > 0) InsertFrame(id, buf);
  }
  return Status::OK();
}

Status BufferPool::WritePage(PageId id, const void* buf,
                             IoCategory category) {
  I3_RETURN_NOT_OK(file_->WritePage(id, buf, category));
  if (options_.capacity_pages > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(id);
    if (it != map_.end()) {
      std::memcpy(it->second->data.data(), buf, page_size());
      Touch(it->second);
    } else {
      InsertFrame(id, buf);
    }
  }
  return Status::OK();
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->pins > 0) {
      ++it;  // a pinned reader still maps these bytes
    } else {
      map_.erase(it->id);
      it = lru_.erase(it);
      ++evictions_;
      evictions_metric_->Increment(1);
    }
  }
}

void BufferPool::Touch(std::list<Frame>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

BufferPool::Frame* BufferPool::InsertFrame(PageId id, const void* buf) {
  // Two readers can miss on the same page back to back (the miss path runs
  // unlocked); the second insert must adopt the existing frame, not grow a
  // duplicate whose eviction would orphan the live map entry. No byte copy:
  // the frame already holds the current page (write-through invariant), and
  // rewriting identical bytes would race a pinned reader decoding them.
  auto it = map_.find(id);
  if (it != map_.end()) {
    Touch(it->second);
    return &*it->second;
  }
  if (lru_.size() >= options_.capacity_pages) {
    // Evict the least-recent *unpinned* frame -- by recycling it: its page
    // buffer, list node, and map node are all reused, so a steady-state
    // miss performs zero allocator traffic. Rewriting the bytes is safe
    // because pins == 0 means no reader maps the frame, and copying-out
    // readers hold the pool mutex. If every frame is pinned (#pins is
    // bounded by the number of reader threads), grow past capacity for
    // the moment instead.
    for (auto victim = lru_.end(); victim != lru_.begin();) {
      --victim;
      if (victim->pins == 0) {
        ++evictions_;
        ++frame_recycles_;
        evictions_metric_->Increment(1);
        frame_recycles_metric_->Increment(1);
        auto node = map_.extract(victim->id);
        victim->id = id;
        std::memcpy(victim->data.data(), buf, page_size());
        Touch(victim);
        node.key() = id;
        node.mapped() = lru_.begin();
        map_.insert(std::move(node));
        return &lru_.front();
      }
    }
  }
  Frame frame;
  frame.id = id;
  frame.data.assign(static_cast<const uint8_t*>(buf),
                    static_cast<const uint8_t*>(buf) + page_size());
  lru_.push_front(std::move(frame));
  map_[id] = lru_.begin();
  return &lru_.front();
}

void BufferPool::SimulateMiss() const {
  if (options_.simulated_miss_latency_us == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(options_.simulated_miss_latency_us);
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy-wait: sleep granularity on Linux is too coarse for microsecond
    // device latencies.
  }
}

}  // namespace i3
