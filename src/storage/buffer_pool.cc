#include "storage/buffer_pool.h"

#include <chrono>
#include <cstring>

namespace i3 {

BufferPool::BufferPool(PageFile* file, BufferPoolOptions options)
    : file_(file), options_(options) {}

Status BufferPool::ReadPage(PageId id, void* buf, IoCategory category) {
  if (options_.capacity_pages > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(id);
    if (it != map_.end()) {
      std::memcpy(buf, it->second->data.data(), page_size());
      Touch(it->second);
      ++hits_;
      return Status::OK();
    }
  }
  // Miss path runs unlocked: PageFile reads are stateless (pread / const
  // memory copy) and the simulated device latency must overlap across
  // threads, not serialize behind the cache lock.
  I3_RETURN_NOT_OK(file_->ReadPage(id, buf, category));
  SimulateMiss();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    if (options_.capacity_pages > 0) InsertFrame(id, buf);
  }
  return Status::OK();
}

Status BufferPool::WritePage(PageId id, const void* buf,
                             IoCategory category) {
  I3_RETURN_NOT_OK(file_->WritePage(id, buf, category));
  if (options_.capacity_pages > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(id);
    if (it != map_.end()) {
      std::memcpy(it->second->data.data(), buf, page_size());
      Touch(it->second);
    } else {
      InsertFrame(id, buf);
    }
  }
  return Status::OK();
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  map_.clear();
}

void BufferPool::Touch(std::list<Frame>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void BufferPool::InsertFrame(PageId id, const void* buf) {
  // Two readers can miss on the same page back to back (the miss path runs
  // unlocked); the second insert must refresh the existing frame, not grow
  // a duplicate whose eviction would orphan the live map entry.
  auto it = map_.find(id);
  if (it != map_.end()) {
    std::memcpy(it->second->data.data(), buf, page_size());
    Touch(it->second);
    return;
  }
  if (lru_.size() >= options_.capacity_pages) {
    map_.erase(lru_.back().id);
    lru_.pop_back();
  }
  Frame frame;
  frame.id = id;
  frame.data.assign(static_cast<const uint8_t*>(buf),
                    static_cast<const uint8_t*>(buf) + page_size());
  lru_.push_front(std::move(frame));
  map_[id] = lru_.begin();
}

void BufferPool::SimulateMiss() const {
  if (options_.simulated_miss_latency_us == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(options_.simulated_miss_latency_us);
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy-wait: sleep granularity on Linux is too coarse for microsecond
    // device latencies.
  }
}

}  // namespace i3
