// A striped, scan-resistant buffer pool over a PageFile.
//
// The paper's experiments clear the OS cache before each query set, so
// within a set some pages are served from memory. The buffer pool makes that
// effect explicit and controllable: capacity 0 disables caching (every
// access is a charged page I/O — the deterministic mode used for the I/O
// figures), and Clear() re-creates the cold-cache condition. An optional
// simulated per-miss latency lets timing experiments follow the I/O shape of
// a disk-resident deployment even when the backing PageFile is in memory.
//
// Concurrency: pages hash to independently locked stripes (stripe =
// id % stripes; ids are dense, so modulo striping is also perfectly
// balanced), so concurrent shard readers no longer serialize on one global
// mutex. Eviction within a stripe is SIEVE/CLOCK rather than strict LRU: a
// hit sets an atomic reference bit, and the clock hand evicts the first
// unreferenced unpinned frame, clearing bits as it sweeps. New frames enter
// unreferenced, which is what makes the policy scan-resistant — a one-shot
// scan's pages are reclaimed before they can displace the referenced hot
// set, and the hit path never performs LRU list surgery.

#ifndef I3_STORAGE_BUFFER_POOL_H_
#define I3_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page_file.h"

namespace i3 {

namespace internal {
/// Nanoseconds this thread has spent waiting in read-retry backoff. Search
/// wrappers diff it around a query to attribute a `retry_backoff` trace
/// stage without threading a context object through every storage call.
extern thread_local uint64_t t_retry_backoff_ns;
}  // namespace internal

/// \brief Options controlling BufferPool behaviour.
struct BufferPoolOptions {
  /// Maximum number of cached pages; 0 disables caching entirely.
  size_t capacity_pages = 0;
  /// Wait this many microseconds on every cache miss to emulate device
  /// latency. 0 disables the simulation.
  uint32_t simulated_miss_latency_us = 0;
  /// Transient read errors (Status::IOError) are retried up to this many
  /// times with exponential backoff before the error propagates. Retrying
  /// only IOError is deliberate: Corruption means the bytes are wrong (a
  /// re-read returns the same wrong bytes -- quarantine instead), and
  /// OutOfRange/InvalidArgument are caller bugs.
  uint32_t max_read_retries = 2;
  /// First retry waits this long; each further retry doubles it.
  uint32_t retry_backoff_us = 100;
  /// Lock stripes. 0 picks automatically: roughly one stripe per 32 frames,
  /// capped at 16, so tiny pools (unit tests, head pools) keep one stripe
  /// and fully deterministic eviction order.
  size_t stripes = 0;
};

/// \brief Write-through striped page cache, layered on a PageFile.
///
/// Page accesses are internally synchronized so that concurrent readers
/// (model/concurrent_index.h, model/sharded_index.h) can share the cache;
/// each page belongs to exactly one stripe and the critical section covers
/// only that stripe's bookkeeping plus the underlying page copy. Writers
/// still require external exclusion against readers: the pool orders
/// accesses to itself, not to the index structures that decide which pages
/// to touch.
///
/// Zero-copy reads: PinPage hands out a pointer directly into the cached
/// frame instead of copying the page out. A pinned frame is exempt from
/// eviction (and from Clear()) until its PinnedPage is destroyed, so the
/// pointer stays valid for the pin's lifetime even while other readers churn
/// the stripe. The frame bytes themselves are immutable while any reader
/// runs (the writer-exclusion contract above); pinning protects against
/// *recycling*, not against writers.
///
/// Write epochs: every page carries a monotonic epoch, bumped by WritePage
/// and by corruption quarantine, and captured by PinnedPage at pin time.
/// Derived caches (i3/cell_cache.h) key their entries on it: an entry is
/// valid only while its epoch matches the page's current epoch, so a
/// rewritten or quarantined/healed page can never serve stale decoded
/// state. Epochs live in per-stripe side tables (not in frames) so they
/// survive eviction.
class BufferPool {
 public:
  BufferPool(PageFile* file, BufferPoolOptions options);

  /// \brief RAII pin on one cached page frame (movable, not copyable).
  /// data() stays valid until destruction/Release. Pins are cheap (one
  /// stripe-mutex acquisition each way) but should be scoped tightly: a
  /// pinned frame cannot be evicted, so long-lived pins inflate the pool
  /// past its configured capacity.
  class PinnedPage {
   public:
    PinnedPage() = default;
    PinnedPage(PinnedPage&& o) noexcept { *this = std::move(o); }
    PinnedPage& operator=(PinnedPage&& o) noexcept {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      epoch_ = o.epoch_;
      o.pool_ = nullptr;
      o.frame_ = nullptr;
      o.epoch_ = 0;
      return *this;
    }
    PinnedPage(const PinnedPage&) = delete;
    PinnedPage& operator=(const PinnedPage&) = delete;
    ~PinnedPage() { Release(); }

    const uint8_t* data() const;
    bool valid() const { return frame_ != nullptr; }
    /// The page's write epoch at pin time (see class comment).
    uint64_t epoch() const { return epoch_; }
    void Release();

   private:
    friend class BufferPool;
    PinnedPage(BufferPool* pool, void* frame, uint64_t epoch)
        : pool_(pool), frame_(frame), epoch_(epoch) {}

    BufferPool* pool_ = nullptr;
    void* frame_ = nullptr;  // Frame*; opaque to callers
    uint64_t epoch_ = 0;
  };

  /// True if PinPage is usable (a capacity-0 pool has no frames to pin;
  /// callers fall back to a copying read into their own buffer).
  bool Pinnable() const { return options_.capacity_pages > 0; }

  /// \brief Pins page `id` in the cache, faulting it in on a miss through
  /// `scratch` (a caller-provided page_size() buffer, used only during the
  /// call). Requires Pinnable().
  Status PinPage(PageId id, IoCategory category, uint8_t* scratch,
                 PinnedPage* out);

  /// \brief Reads page `id` (through the cache) into `buf`.
  Status ReadPage(PageId id, void* buf, IoCategory category);

  /// \brief Writes page `id` through to the file, refreshes the cache, and
  /// bumps the page's write epoch (invalidating derived cache entries).
  Status WritePage(PageId id, const void* buf, IoCategory category);

  /// \brief Allocates a page in the underlying file.
  Result<PageId> AllocatePage() { return file_->AllocatePage(); }

  /// \brief Drops every cached page (cold-cache reset between query sets).
  /// Frames pinned at the moment of the call survive it (their pointers
  /// must stay valid); that keeps at most a few in-flight pages warm, and
  /// none in the single-threaded benchmark setup, where no pin spans a
  /// Clear. Epochs are *not* reset: they version page contents, which
  /// Clear does not change.
  void Clear();

  /// \brief Current write epoch of `id` (0 if never written through this
  /// pool). Takes only the page's stripe lock.
  uint64_t PageEpoch(PageId id) const;

  // Stats are relaxed atomics: reading them never contends with the pin
  // path, and individual counters are exact (totals across counters are
  // not snapshot-consistent, which no caller needs).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Frames dropped to make room (victim recycles) or by Clear().
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Evictions that reused the victim's buffer in place (no allocation).
  uint64_t frame_recycles() const {
    return frame_recycles_.load(std::memory_order_relaxed);
  }
  /// Read retries performed after transient errors.
  uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  /// Number of lock stripes (>= 1, even for a capacity-0 pool, which still
  /// tracks quarantine and epochs per stripe).
  size_t stripe_count() const { return stripes_.size(); }

  /// \brief True while `id` is quarantined: a read of it returned
  /// Corruption, its cached frame (if any, and unpinned) was dropped, and
  /// until a verified read or a write-through succeeds the cache is
  /// bypassed for it -- a poisoned frame is never served.
  bool IsQuarantined(PageId id) const {
    const Stripe& s = StripeOf(id);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.quarantined.count(id) != 0;
  }
  size_t quarantined_count() const {
    size_t n = 0;
    for (const auto& s : stripes_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      n += s->quarantined.size();
    }
    return n;
  }

  PageFile* file() { return file_; }
  size_t page_size() const { return file_->page_size(); }

 private:
  struct Frame {
    PageId id = kInvalidPageId;
    std::vector<uint8_t> data;
    /// Open pins; a frame with pins > 0 is never evicted. Guarded by the
    /// stripe mutex like the rest of the frame bookkeeping (the *bytes*
    /// are stable while pinned, so readers decode them outside the lock).
    uint32_t pins = 0;
    /// Owning stripe index; fixed at creation (frames never migrate).
    uint32_t stripe = 0;
    /// SIEVE reference bit: set on hit, cleared by the sweeping hand.
    std::atomic<uint8_t> visited{0};
  };

  /// One lock stripe. Frames live in a deque (stable addresses -- pinned
  /// readers hold raw Frame pointers) and are recycled in place; the slot
  /// tables are direct-indexed by slot = id / stripe-count because PageIds
  /// are dense (files allocate them sequentially from zero), so a miss's
  /// several lookups (hit check, duplicate check, victim replacement) skip
  /// hashing entirely.
  struct Stripe {
    mutable std::mutex mutex;
    std::deque<Frame> frames;
    /// Indices of empty frames (freed by Clear or quarantine), reused
    /// before the hand evicts anything.
    std::vector<uint32_t> free;
    /// slot -> frame index; meaningful only while present[slot] is set.
    std::vector<uint32_t> table;
    std::vector<uint8_t> present;
    /// slot -> write epoch. Lives here, not in frames, so an epoch
    /// survives its frame's eviction (a re-cached page must not restart
    /// at 0 and collide with stale derived-cache entries).
    std::vector<uint64_t> epochs;
    /// CLOCK hand: index of the next frame the sweep examines.
    size_t hand = 0;
    size_t capacity = 0;
    /// Pages whose last device read returned Corruption.
    std::unordered_set<PageId> quarantined;
  };

  size_t SlotOf(PageId id) const { return id / stripes_.size(); }
  Stripe& StripeOf(PageId id) { return *stripes_[id % stripes_.size()]; }
  const Stripe& StripeOf(PageId id) const {
    return *stripes_[id % stripes_.size()];
  }

  /// Frame lookup within `s` (kNoFrame if absent). Indices, not pointers:
  /// frames live in a deque, so index arithmetic is the only valid way to
  /// name a frame's slot-table entry. Guarded by s.mutex.
  static constexpr uint32_t kNoFrame = UINT32_MAX;
  uint32_t LookupIndex(const Stripe& s, PageId id) const {
    const size_t slot = SlotOf(id);
    if (slot >= s.present.size() || !s.present[slot]) return kNoFrame;
    return s.table[slot];
  }
  void Remember(Stripe& s, PageId id, uint32_t frame_index) {
    const size_t slot = SlotOf(id);
    if (slot >= s.present.size()) {
      s.present.resize(slot + 1, 0);
      s.table.resize(slot + 1);
    }
    s.table[slot] = frame_index;
    s.present[slot] = 1;
  }
  void Forget(Stripe& s, PageId id) { s.present[SlotOf(id)] = 0; }

  /// Inserts (or refreshes the reference bit of) `id`; returns the frame.
  /// `buf` is copied only into a newly created or recycled frame -- an
  /// existing frame already holds the current bytes (write-through
  /// invariant) and may be concurrently mapped by a pinned reader.
  Frame* InsertFrame(Stripe& s, PageId id, const void* buf);
  /// Marks `f` empty and reusable; counts one eviction. Guarded by s.mutex.
  void FreeFrame(Stripe& s, uint32_t frame_index);

  /// Epoch slot accessor (grows the table on demand). Guarded by s.mutex.
  uint64_t& EpochSlot(Stripe& s, PageId id) {
    const size_t slot = SlotOf(id);
    if (slot >= s.epochs.size()) s.epochs.resize(slot + 1, 0);
    return s.epochs[slot];
  }
  uint64_t EpochOf(const Stripe& s, PageId id) const {
    const size_t slot = SlotOf(id);
    return slot < s.epochs.size() ? s.epochs[slot] : 0;
  }

  void Unpin(Frame* frame);
  void SimulateMiss() const;
  /// Cache hit gate: false when `id` is quarantined (bypass to the device).
  bool Servable(const Stripe& s, PageId id) const {
    return s.quarantined.empty() || s.quarantined.count(id) == 0;
  }
  /// \brief Device read with bounded exponential-backoff retry of transient
  /// IOErrors; on Corruption, quarantines `id` (drops its unpinned frame
  /// and bumps the page epoch so derived caches discard decoded state).
  Status ReadWithRetry(PageId id, void* buf, IoCategory category);

  PageFile* file_;
  const BufferPoolOptions options_;
  /// unique_ptr elements: Stripe holds a mutex and is neither movable nor
  /// copyable; the vector itself is sized once in the constructor.
  std::vector<std::unique_ptr<Stripe>> stripes_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> frame_recycles_{0};
  std::atomic<uint64_t> retries_{0};

  // Process-wide counters, cached at construction (every pool instance
  // feeds the same series; per-pool numbers come from the accessors).
  obs::Counter* hits_metric_;
  obs::Counter* misses_metric_;
  obs::Counter* evictions_metric_;
  obs::Counter* frame_recycles_metric_;
  obs::Counter* retries_metric_;
};

}  // namespace i3

#endif  // I3_STORAGE_BUFFER_POOL_H_
