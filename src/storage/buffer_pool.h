// A small LRU buffer pool over a PageFile.
//
// The paper's experiments clear the OS cache before each query set, so
// within a set some pages are served from memory. The buffer pool makes that
// effect explicit and controllable: capacity 0 disables caching (every
// access is a charged page I/O — the deterministic mode used for the I/O
// figures), and Clear() re-creates the cold-cache condition. An optional
// simulated per-miss latency lets timing experiments follow the I/O shape of
// a disk-resident deployment even when the backing PageFile is in memory.

#ifndef I3_STORAGE_BUFFER_POOL_H_
#define I3_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page_file.h"

namespace i3 {

namespace internal {
/// Nanoseconds this thread has spent waiting in read-retry backoff. Search
/// wrappers diff it around a query to attribute a `retry_backoff` trace
/// stage without threading a context object through every storage call.
extern thread_local uint64_t t_retry_backoff_ns;
}  // namespace internal

/// \brief Options controlling BufferPool behaviour.
struct BufferPoolOptions {
  /// Maximum number of cached pages; 0 disables caching entirely.
  size_t capacity_pages = 0;
  /// Wait this many microseconds on every cache miss to emulate device
  /// latency. 0 disables the simulation.
  uint32_t simulated_miss_latency_us = 0;
  /// Transient read errors (Status::IOError) are retried up to this many
  /// times with exponential backoff before the error propagates. Retrying
  /// only IOError is deliberate: Corruption means the bytes are wrong (a
  /// re-read returns the same wrong bytes -- quarantine instead), and
  /// OutOfRange/InvalidArgument are caller bugs.
  uint32_t max_read_retries = 2;
  /// First retry waits this long; each further retry doubles it.
  uint32_t retry_backoff_us = 100;
};

/// \brief Write-through LRU cache of pages, layered on a PageFile.
///
/// Page accesses are internally synchronized so that concurrent readers
/// (model/concurrent_index.h, model/sharded_index.h) can share the cache;
/// the critical section covers only the LRU bookkeeping plus the underlying
/// page copy. Writers still require external exclusion against readers:
/// the pool orders accesses to itself, not to the index structures that
/// decide which pages to touch.
///
/// Zero-copy reads: PinPage hands out a pointer directly into the cached
/// frame instead of copying the page out. A pinned frame is exempt from
/// eviction (and from Clear()) until its PinnedPage is destroyed, so the
/// pointer stays valid for the pin's lifetime even while other readers churn
/// the LRU. The frame bytes themselves are immutable while any reader runs
/// (the writer-exclusion contract above); pinning protects against
/// *recycling*, not against writers.
class BufferPool {
 public:
  BufferPool(PageFile* file, BufferPoolOptions options);

  /// \brief RAII pin on one cached page frame (movable, not copyable).
  /// data() stays valid until destruction/Release. Pins are cheap (one
  /// mutex acquisition each way) but should be scoped tightly: a pinned
  /// frame cannot be evicted, so long-lived pins inflate the pool past its
  /// configured capacity.
  class PinnedPage {
   public:
    PinnedPage() = default;
    PinnedPage(PinnedPage&& o) noexcept { *this = std::move(o); }
    PinnedPage& operator=(PinnedPage&& o) noexcept {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      o.pool_ = nullptr;
      o.frame_ = nullptr;
      return *this;
    }
    PinnedPage(const PinnedPage&) = delete;
    PinnedPage& operator=(const PinnedPage&) = delete;
    ~PinnedPage() { Release(); }

    const uint8_t* data() const;
    bool valid() const { return frame_ != nullptr; }
    void Release();

   private:
    friend class BufferPool;
    PinnedPage(BufferPool* pool, void* frame) : pool_(pool), frame_(frame) {}

    BufferPool* pool_ = nullptr;
    void* frame_ = nullptr;  // Frame*; opaque to callers
  };

  /// True if PinPage is usable (a capacity-0 pool has no frames to pin;
  /// callers fall back to a copying read into their own buffer).
  bool Pinnable() const { return options_.capacity_pages > 0; }

  /// \brief Pins page `id` in the cache, faulting it in on a miss through
  /// `scratch` (a caller-provided page_size() buffer, used only during the
  /// call). Requires Pinnable().
  Status PinPage(PageId id, IoCategory category, uint8_t* scratch,
                 PinnedPage* out);

  /// \brief Reads page `id` (through the cache) into `buf`.
  Status ReadPage(PageId id, void* buf, IoCategory category);

  /// \brief Writes page `id` through to the file and refreshes the cache.
  Status WritePage(PageId id, const void* buf, IoCategory category);

  /// \brief Allocates a page in the underlying file.
  Result<PageId> AllocatePage() { return file_->AllocatePage(); }

  /// \brief Drops every cached page (cold-cache reset between query sets).
  /// Frames pinned at the moment of the call survive it (their pointers
  /// must stay valid); that keeps at most a few in-flight pages warm, and
  /// none in the single-threaded benchmark setup, where no pin spans a
  /// Clear.
  void Clear();

  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }
  /// Frames dropped to make room (victim recycles) or by Clear().
  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }
  /// Evictions that reused the victim's buffer in place (no allocation).
  uint64_t frame_recycles() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return frame_recycles_;
  }
  /// Read retries performed after transient errors.
  uint64_t retries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return retries_;
  }

  /// \brief True while `id` is quarantined: a read of it returned
  /// Corruption, its cached frame (if any, and unpinned) was dropped, and
  /// until a verified read or a write-through succeeds the cache is
  /// bypassed for it -- a poisoned frame is never served.
  bool IsQuarantined(PageId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantined_.count(id) != 0;
  }
  size_t quarantined_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantined_.size();
  }

  PageFile* file() { return file_; }
  size_t page_size() const { return file_->page_size(); }

 private:
  struct Frame {
    PageId id;
    std::vector<uint8_t> data;
    /// Open pins; a frame with pins > 0 is never evicted. Guarded by
    /// mutex_ like the rest of the frame bookkeeping (the *bytes* are
    /// stable while pinned, so readers decode them outside the lock).
    uint32_t pins = 0;
  };

  void Touch(std::list<Frame>::iterator it);
  /// Inserts (or refreshes the LRU position of) `id`; returns the frame.
  /// `buf` is copied only into a newly created frame -- an existing frame
  /// already holds the current bytes (write-through invariant) and may be
  /// concurrently mapped by a pinned reader.
  Frame* InsertFrame(PageId id, const void* buf);

  /// Frame lookup. PageIds are dense (files allocate them sequentially from
  /// zero), so the id->frame map is a direct-indexed array rather than a
  /// hash table: a miss performs several lookups (hit check, duplicate
  /// check, victim replacement) and hashing was measurable next to the page
  /// copy on the query hot path. Guarded by mutex_.
  std::list<Frame>::iterator* Lookup(PageId id) {
    return (id < present_.size() && present_[id]) ? &table_[id] : nullptr;
  }
  void Remember(PageId id, std::list<Frame>::iterator it) {
    if (id >= present_.size()) {
      present_.resize(id + 1, 0);
      table_.resize(id + 1);
    }
    table_[id] = it;
    present_[id] = 1;
  }
  void Forget(PageId id) { present_[id] = 0; }
  void Unpin(Frame* frame);
  void SimulateMiss() const;
  /// Cache hit gate: false when `id` is quarantined (bypass to the device).
  bool Servable(PageId id) const {
    return quarantined_.empty() || quarantined_.count(id) == 0;
  }
  /// \brief Device read with bounded exponential-backoff retry of transient
  /// IOErrors; on Corruption, quarantines `id` (drops its unpinned frame).
  Status ReadWithRetry(PageId id, void* buf, IoCategory category);

  PageFile* file_;
  const BufferPoolOptions options_;
  mutable std::mutex mutex_;  // guards lru_, the table, and local counters
  std::list<Frame> lru_;      // front = most recent
  /// Direct-indexed id->frame table (see Lookup); table_[id] is only
  /// meaningful while present_[id] is set.
  std::vector<std::list<Frame>::iterator> table_;
  std::vector<uint8_t> present_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t frame_recycles_ = 0;
  uint64_t retries_ = 0;
  /// Pages whose last device read returned Corruption; guarded by mutex_.
  std::unordered_set<PageId> quarantined_;

  // Process-wide counters, cached at construction (every pool instance
  // feeds the same series; per-pool numbers come from the accessors).
  obs::Counter* hits_metric_;
  obs::Counter* misses_metric_;
  obs::Counter* evictions_metric_;
  obs::Counter* frame_recycles_metric_;
  obs::Counter* retries_metric_;
};

}  // namespace i3

#endif  // I3_STORAGE_BUFFER_POOL_H_
