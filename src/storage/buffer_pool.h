// A small LRU buffer pool over a PageFile.
//
// The paper's experiments clear the OS cache before each query set, so
// within a set some pages are served from memory. The buffer pool makes that
// effect explicit and controllable: capacity 0 disables caching (every
// access is a charged page I/O — the deterministic mode used for the I/O
// figures), and Clear() re-creates the cold-cache condition. An optional
// simulated per-miss latency lets timing experiments follow the I/O shape of
// a disk-resident deployment even when the backing PageFile is in memory.

#ifndef I3_STORAGE_BUFFER_POOL_H_
#define I3_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page_file.h"

namespace i3 {

/// \brief Options controlling BufferPool behaviour.
struct BufferPoolOptions {
  /// Maximum number of cached pages; 0 disables caching entirely.
  size_t capacity_pages = 0;
  /// Busy-wait this many microseconds on every cache miss to emulate device
  /// latency. 0 disables the simulation.
  uint32_t simulated_miss_latency_us = 0;
};

/// \brief Write-through LRU cache of pages, layered on a PageFile.
///
/// Page accesses are internally synchronized so that concurrent readers
/// (model/concurrent_index.h, model/sharded_index.h) can share the cache;
/// the critical section covers only the LRU bookkeeping plus the underlying
/// page copy. Writers still require external exclusion against readers:
/// the pool orders accesses to itself, not to the index structures that
/// decide which pages to touch.
class BufferPool {
 public:
  BufferPool(PageFile* file, BufferPoolOptions options);

  /// \brief Reads page `id` (through the cache) into `buf`.
  Status ReadPage(PageId id, void* buf, IoCategory category);

  /// \brief Writes page `id` through to the file and refreshes the cache.
  Status WritePage(PageId id, const void* buf, IoCategory category);

  /// \brief Allocates a page in the underlying file.
  Result<PageId> AllocatePage() { return file_->AllocatePage(); }

  /// \brief Drops every cached page (cold-cache reset between query sets).
  void Clear();

  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

  PageFile* file() { return file_; }
  size_t page_size() const { return file_->page_size(); }

 private:
  struct Frame {
    PageId id;
    std::vector<uint8_t> data;
  };

  void Touch(std::list<Frame>::iterator it);
  void InsertFrame(PageId id, const void* buf);
  void SimulateMiss() const;

  PageFile* file_;
  const BufferPoolOptions options_;
  mutable std::mutex mutex_;  // guards lru_, map_, hits_, misses_
  std::list<Frame> lru_;      // front = most recent
  std::unordered_map<PageId, std::list<Frame>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace i3

#endif  // I3_STORAGE_BUFFER_POOL_H_
