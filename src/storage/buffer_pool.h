// A small LRU buffer pool over a PageFile.
//
// The paper's experiments clear the OS cache before each query set, so
// within a set some pages are served from memory. The buffer pool makes that
// effect explicit and controllable: capacity 0 disables caching (every
// access is a charged page I/O — the deterministic mode used for the I/O
// figures), and Clear() re-creates the cold-cache condition. An optional
// simulated per-miss latency lets timing experiments follow the I/O shape of
// a disk-resident deployment even when the backing PageFile is in memory.

#ifndef I3_STORAGE_BUFFER_POOL_H_
#define I3_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page_file.h"

namespace i3 {

/// \brief Options controlling BufferPool behaviour.
struct BufferPoolOptions {
  /// Maximum number of cached pages; 0 disables caching entirely.
  size_t capacity_pages = 0;
  /// Busy-wait this many microseconds on every cache miss to emulate device
  /// latency. 0 disables the simulation.
  uint32_t simulated_miss_latency_us = 0;
};

/// \brief Write-through LRU cache of pages, layered on a PageFile.
///
/// Page accesses are internally synchronized so that concurrent readers
/// (model/concurrent_index.h, model/sharded_index.h) can share the cache;
/// the critical section covers only the LRU bookkeeping plus the underlying
/// page copy. Writers still require external exclusion against readers:
/// the pool orders accesses to itself, not to the index structures that
/// decide which pages to touch.
///
/// Zero-copy reads: PinPage hands out a pointer directly into the cached
/// frame instead of copying the page out. A pinned frame is exempt from
/// eviction (and from Clear()) until its PinnedPage is destroyed, so the
/// pointer stays valid for the pin's lifetime even while other readers churn
/// the LRU. The frame bytes themselves are immutable while any reader runs
/// (the writer-exclusion contract above); pinning protects against
/// *recycling*, not against writers.
class BufferPool {
 public:
  BufferPool(PageFile* file, BufferPoolOptions options);

  /// \brief RAII pin on one cached page frame (movable, not copyable).
  /// data() stays valid until destruction/Release. Pins are cheap (one
  /// mutex acquisition each way) but should be scoped tightly: a pinned
  /// frame cannot be evicted, so long-lived pins inflate the pool past its
  /// configured capacity.
  class PinnedPage {
   public:
    PinnedPage() = default;
    PinnedPage(PinnedPage&& o) noexcept { *this = std::move(o); }
    PinnedPage& operator=(PinnedPage&& o) noexcept {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      o.pool_ = nullptr;
      o.frame_ = nullptr;
      return *this;
    }
    PinnedPage(const PinnedPage&) = delete;
    PinnedPage& operator=(const PinnedPage&) = delete;
    ~PinnedPage() { Release(); }

    const uint8_t* data() const;
    bool valid() const { return frame_ != nullptr; }
    void Release();

   private:
    friend class BufferPool;
    PinnedPage(BufferPool* pool, void* frame) : pool_(pool), frame_(frame) {}

    BufferPool* pool_ = nullptr;
    void* frame_ = nullptr;  // Frame*; opaque to callers
  };

  /// True if PinPage is usable (a capacity-0 pool has no frames to pin;
  /// callers fall back to a copying read into their own buffer).
  bool Pinnable() const { return options_.capacity_pages > 0; }

  /// \brief Pins page `id` in the cache, faulting it in on a miss through
  /// `scratch` (a caller-provided page_size() buffer, used only during the
  /// call). Requires Pinnable().
  Status PinPage(PageId id, IoCategory category, uint8_t* scratch,
                 PinnedPage* out);

  /// \brief Reads page `id` (through the cache) into `buf`.
  Status ReadPage(PageId id, void* buf, IoCategory category);

  /// \brief Writes page `id` through to the file and refreshes the cache.
  Status WritePage(PageId id, const void* buf, IoCategory category);

  /// \brief Allocates a page in the underlying file.
  Result<PageId> AllocatePage() { return file_->AllocatePage(); }

  /// \brief Drops every cached page (cold-cache reset between query sets).
  /// Frames pinned at the moment of the call survive it (their pointers
  /// must stay valid); that keeps at most a few in-flight pages warm, and
  /// none in the single-threaded benchmark setup, where no pin spans a
  /// Clear.
  void Clear();

  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }
  /// Frames dropped to make room (victim recycles) or by Clear().
  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }
  /// Evictions that reused the victim's buffer in place (no allocation).
  uint64_t frame_recycles() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return frame_recycles_;
  }

  PageFile* file() { return file_; }
  size_t page_size() const { return file_->page_size(); }

 private:
  struct Frame {
    PageId id;
    std::vector<uint8_t> data;
    /// Open pins; a frame with pins > 0 is never evicted. Guarded by
    /// mutex_ like the rest of the frame bookkeeping (the *bytes* are
    /// stable while pinned, so readers decode them outside the lock).
    uint32_t pins = 0;
  };

  void Touch(std::list<Frame>::iterator it);
  /// Inserts (or refreshes the LRU position of) `id`; returns the frame.
  /// `buf` is copied only into a newly created frame -- an existing frame
  /// already holds the current bytes (write-through invariant) and may be
  /// concurrently mapped by a pinned reader.
  Frame* InsertFrame(PageId id, const void* buf);
  void Unpin(Frame* frame);
  void SimulateMiss() const;

  PageFile* file_;
  const BufferPoolOptions options_;
  mutable std::mutex mutex_;  // guards lru_, map_, and the local counters
  std::list<Frame> lru_;      // front = most recent
  std::unordered_map<PageId, std::list<Frame>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t frame_recycles_ = 0;

  // Process-wide counters, cached at construction (every pool instance
  // feeds the same series; per-pool numbers come from the accessors).
  obs::Counter* hits_metric_;
  obs::Counter* misses_metric_;
  obs::Counter* evictions_metric_;
  obs::Counter* frame_recycles_metric_;
};

}  // namespace i3

#endif  // I3_STORAGE_BUFFER_POOL_H_
