#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>

namespace i3 {

// ---------------------------------------------------------------- in-memory

Result<PageId> InMemoryPageFile::AllocatePage() {
  if (pages_.size() >= kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  auto page = std::make_unique<uint8_t[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status InMemoryPageFile::ReadPage(PageId id, void* buf, IoCategory category) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  std::memcpy(buf, pages_[id].get(), page_size_);
  io_stats_.RecordRead(category);
  return Status::OK();
}

Status InMemoryPageFile::WritePage(PageId id, const void* buf,
                                   IoCategory category) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  std::memcpy(pages_[id].get(), buf, page_size_);
  io_stats_.RecordWrite(category);
  return Status::OK();
}

// ------------------------------------------------------------------ on-disk

Result<std::unique_ptr<OnDiskPageFile>> OnDiskPageFile::Create(
    const std::string& path, size_t page_size) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<OnDiskPageFile>(
      new OnDiskPageFile(fd, path, page_size));
}

OnDiskPageFile::~OnDiskPageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> OnDiskPageFile::AllocatePage() {
  if (page_count_ == kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  std::vector<uint8_t> zeros(page_size_, 0);
  const off_t offset = static_cast<off_t>(page_count_) * page_size_;
  ssize_t n = ::pwrite(fd_, zeros.data(), page_size_, offset);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("pwrite(" + path_ + "): " + std::strerror(errno));
  }
  return page_count_++;
}

Status OnDiskPageFile::ReadPage(PageId id, void* buf, IoCategory category) {
  if (id >= page_count_) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  const off_t offset = static_cast<off_t>(id) * page_size_;
  ssize_t n = ::pread(fd_, buf, page_size_, offset);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("pread(" + path_ + "): " + std::strerror(errno));
  }
  io_stats_.RecordRead(category);
  return Status::OK();
}

Status OnDiskPageFile::WritePage(PageId id, const void* buf,
                                 IoCategory category) {
  if (id >= page_count_) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  const off_t offset = static_cast<off_t>(id) * page_size_;
  ssize_t n = ::pwrite(fd_, buf, page_size_, offset);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError("pwrite(" + path_ + "): " + std::strerror(errno));
  }
  io_stats_.RecordWrite(category);
  return Status::OK();
}

// ------------------------------------------------------------ free-space map

FreeSpaceMap::FreeSpaceMap(uint32_t units_per_page, uint32_t quantum)
    : units_per_page_(units_per_page),
      quantum_(quantum),
      bucket_head_(units_per_page / quantum + 1, kInvalidPageId) {
  assert(units_per_page > 0);
  assert(quantum > 0 && quantum <= units_per_page);
}

void FreeSpaceMap::AddPage(PageId id) {
  if (id >= free_count_.size()) {
    free_count_.resize(id + 1, 0);
    next_.resize(id + 1, kInvalidPageId);
    prev_.resize(id + 1, kInvalidPageId);
  }
  free_count_[id] = units_per_page_;
  Link(id);
}

uint32_t FreeSpaceMap::FreeSlots(PageId id) const {
  assert(id < free_count_.size());
  return free_count_[id];
}

void FreeSpaceMap::Consume(PageId id, int delta) {
  assert(id < free_count_.size());
  Unlink(id);
  assert(delta <= static_cast<int>(free_count_[id]));
  assert(-delta <= static_cast<int>(units_per_page_ - free_count_[id]));
  free_count_[id] = static_cast<uint32_t>(
      static_cast<int>(free_count_[id]) - delta);
  Link(id);
}

void FreeSpaceMap::SetFree(PageId id, uint32_t units) {
  assert(id < free_count_.size());
  assert(units <= units_per_page_);
  Unlink(id);
  free_count_[id] = units;
  Link(id);
}

PageId FreeSpaceMap::FindPageWithFreeSlots(uint32_t want) const {
  // Prefer the fullest page that still fits, to keep storage utilization
  // high (the paper highlights I3's packing of multiple keyword cells per
  // page as its storage advantage). The `want` bucket can hold pages just
  // below the requested amount, so it is scanned with an exact check;
  // every page in a higher bucket qualifies outright.
  if (want > units_per_page_) return kInvalidPageId;
  const uint32_t b0 = Bucket(want);
  for (PageId id = bucket_head_[b0]; id != kInvalidPageId; id = next_[id]) {
    if (free_count_[id] >= want) return id;
  }
  for (size_t b = b0 + 1; b < bucket_head_.size(); ++b) {
    if (bucket_head_[b] != kInvalidPageId) return bucket_head_[b];
  }
  return kInvalidPageId;
}

void FreeSpaceMap::Unlink(PageId id) {
  const uint32_t b = Bucket(free_count_[id]);
  if (prev_[id] != kInvalidPageId) {
    next_[prev_[id]] = next_[id];
  } else if (bucket_head_[b] == id) {
    bucket_head_[b] = next_[id];
  }
  if (next_[id] != kInvalidPageId) prev_[next_[id]] = prev_[id];
  next_[id] = prev_[id] = kInvalidPageId;
}

void FreeSpaceMap::Link(PageId id) {
  const uint32_t b = Bucket(free_count_[id]);
  next_[id] = bucket_head_[b];
  prev_[id] = kInvalidPageId;
  if (bucket_head_[b] != kInvalidPageId) prev_[bucket_head_[b]] = id;
  bucket_head_[b] = id;
}

}  // namespace i3
