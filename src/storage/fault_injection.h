// A PageFile decorator that injects I/O failures, for testing error
// propagation: every storage error must surface as a clean Status, never a
// crash or a torn in-memory state that later trips an invariant check.

#ifndef I3_STORAGE_FAULT_INJECTION_H_
#define I3_STORAGE_FAULT_INJECTION_H_

#include <memory>

#include "storage/page_file.h"

namespace i3 {

/// \brief Wraps a PageFile and fails operations on command.
///
/// Modes: fail every operation after `fail_after` successful ones
/// (countdown), or fail all operations while `fail_all` is set.
class FaultInjectionPageFile final : public PageFile {
 public:
  explicit FaultInjectionPageFile(std::unique_ptr<PageFile> base)
      : PageFile(base->page_size()), base_(std::move(base)) {}

  /// Fails every operation once `n` more operations have succeeded.
  void FailAfter(uint64_t n) {
    countdown_armed_ = true;
    countdown_ = n;
  }
  /// Immediately fail everything (until cleared).
  void set_fail_all(bool fail) { fail_all_ = fail; }
  /// Disarms all failure modes.
  void Heal() {
    fail_all_ = false;
    countdown_armed_ = false;
  }

  uint64_t operations() const { return operations_; }

  PageId PageCount() const override { return base_->PageCount(); }

  Result<PageId> AllocatePage() override {
    if (ShouldFail()) return Injected();
    auto r = base_->AllocatePage();
    if (r.ok()) ++operations_;
    return r;
  }

  Status ReadPage(PageId id, void* buf, IoCategory category) override {
    if (ShouldFail()) return Injected();
    Status st = base_->ReadPage(id, buf, category);
    if (st.ok()) {
      ++operations_;
      io_stats_.RecordRead(category);
    }
    return st;
  }

  Status WritePage(PageId id, const void* buf,
                   IoCategory category) override {
    if (ShouldFail()) return Injected();
    Status st = base_->WritePage(id, buf, category);
    if (st.ok()) {
      ++operations_;
      io_stats_.RecordWrite(category);
    }
    return st;
  }

 private:
  bool ShouldFail() {
    if (fail_all_) return true;
    if (!countdown_armed_) return false;
    if (countdown_ == 0) return true;
    --countdown_;
    return false;
  }

  static Status Injected() {
    return Status::IOError("injected fault");
  }

  std::unique_ptr<PageFile> base_;
  bool fail_all_ = false;
  bool countdown_armed_ = false;
  uint64_t countdown_ = 0;
  uint64_t operations_ = 0;
};

}  // namespace i3

#endif  // I3_STORAGE_FAULT_INJECTION_H_
