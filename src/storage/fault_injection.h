// Chaos-grade storage fault injection.
//
// Every storage error must surface as a clean Status, never a crash or a
// torn in-memory state that later trips an invariant check -- and since
// PR 2 the readers hitting the injected device are concurrent, so the
// injector itself must be thread-safe. FaultInjector is the seeded,
// shareable policy object: deterministic command modes (fail_all, a
// countdown, a scripted per-operation schedule) layered with a
// probabilistic profile (read/write error rates, payload corruption,
// latency spikes). FaultInjectionPageFile stays as the PageFile decorator
// that consults it, so the pre-existing test harnesses keep compiling
// against the same surface.
//
// Layering note: in the I3 stack the injector wraps the *physical* backend
// and the checksum layer (storage/checksummed_page_file.h) sits above it,
// so injected payload corruption is exactly what a real bit-flip or torn
// write looks like -- and must be caught by the checksum, never served.

#ifndef I3_STORAGE_FAULT_INJECTION_H_
#define I3_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "common/status.h"
#include "storage/page_file.h"

namespace i3 {

/// \brief What a fault injection does to one operation.
enum class FaultKind : int {
  kNone = 0,
  kReadError,     ///< ReadPage returns Status::IOError
  kWriteError,    ///< WritePage returns Status::IOError
  kAllocError,    ///< AllocatePage returns Status::IOError
  kCorruption,    ///< the operation "succeeds" but the payload is damaged
  kLatencySpike,  ///< the operation succeeds after an injected delay
};

const char* FaultKindName(FaultKind k);

/// \brief Declarative description of a fault workload.
///
/// Also parseable from a flag spec (`--fault-profile=` in spatialkw_cli and
/// the bench harnesses): comma-separated key=value pairs --
///   seed=N            RNG seed (default 1)
///   read_error=P      probability an eligible read fails           [0,1]
///   write_error=P     probability an eligible write/alloc fails    [0,1]
///   corrupt=P         probability a read's payload is bit-flipped  [0,1]
///   spike=P           probability of an injected latency spike     [0,1]
///   spike_us=N        spike duration in microseconds (default 200)
///   fail_after=N      deterministic: fail everything after N successes
///   schedule=I:KIND/I:KIND/...  scripted faults: at overall operation
///                     index I inject KIND (read_error, write_error,
///                     alloc_error, corrupt, spike)
/// Example: "seed=7,read_error=0.01,corrupt=0.005,spike=0.02,spike_us=150".
struct FaultProfile {
  uint64_t seed = 1;
  double read_error_rate = 0.0;
  double write_error_rate = 0.0;
  double corrupt_rate = 0.0;
  double latency_spike_rate = 0.0;
  uint32_t latency_spike_us = 200;
  /// UINT64_MAX disarms the countdown.
  uint64_t fail_after = UINT64_MAX;
  /// Operation index (counting every attempted op, 0-based) -> fault.
  std::unordered_map<uint64_t, FaultKind> schedule;

  /// True if any mode can fire.
  bool Armed() const {
    return read_error_rate > 0 || write_error_rate > 0 || corrupt_rate > 0 ||
           latency_spike_rate > 0 || fail_after != UINT64_MAX ||
           !schedule.empty();
  }

  static Result<FaultProfile> Parse(const std::string& spec);
};

/// \brief Thread-safe fault decision engine, shared by the decorator (and
/// directly poked by tests).
///
/// Fast path: one relaxed atomic load when nothing is armed. Armed
/// decisions serialize on an internal mutex -- fault workloads measure
/// robustness, not throughput.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultProfile profile) { SetProfile(profile); }

  /// Replaces the probabilistic/scripted profile (reseeds the RNG).
  void SetProfile(const FaultProfile& profile);

  /// Fails every operation once `n` more operations have succeeded.
  void FailAfter(uint64_t n);
  /// Immediately fail everything (until cleared).
  void set_fail_all(bool fail);
  /// Disarms every failure mode (fail_all, countdown, and the profile).
  void Heal();

  /// Successful operations observed (legacy countdown accounting).
  uint64_t operations() const {
    return operations_.load(std::memory_order_relaxed);
  }
  /// Faults injected since construction, by any mode.
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

  /// \brief Decides the fate of one operation of the given class
  /// (`error_kind` is kReadError / kWriteError / kAllocError). Sleeps
  /// through any injected latency spike before returning. Returns kNone
  /// (proceed), the error kind (fail), or kCorruption (proceed, then damage
  /// the payload -- reads only).
  FaultKind OnOperation(FaultKind error_kind);

  /// Records a successful base operation (countdown accounting).
  void RecordSuccess() {
    operations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// \brief Flips one payload byte, deterministically per (seed, op).
  /// `len` must be > 0.
  void CorruptPayload(void* buf, size_t len);

 private:
  FaultKind Decide(FaultKind error_kind);
  void CountInjected(FaultKind kind);

  /// True when any mode may fire; checked first, relaxed, on every op.
  std::atomic<bool> armed_{false};
  std::atomic<bool> fail_all_{false};
  std::atomic<uint64_t> operations_{0};
  std::atomic<uint64_t> faults_injected_{0};

  mutable std::mutex mutex_;  // guards everything below
  bool countdown_armed_ = false;
  uint64_t countdown_ = 0;
  uint64_t attempt_counter_ = 0;  // every attempted op (schedule indexing)
  FaultProfile profile_;
  Rng rng_{1};

  /// `i3_faults_injected_total{kind}` counters, fetched lazily.
  std::atomic<void*> kind_counters_[6] = {};
};

/// \brief Wraps a PageFile and fails operations as its injector commands.
class FaultInjectionPageFile final : public PageFile {
 public:
  explicit FaultInjectionPageFile(std::unique_ptr<PageFile> base)
      : PageFile(base->page_size()), base_(std::move(base)) {}
  FaultInjectionPageFile(std::unique_ptr<PageFile> base, FaultProfile profile)
      : PageFile(base->page_size()),
        base_(std::move(base)),
        injector_(profile) {}

  /// The decision engine (arm probabilistic profiles, inspect counters).
  FaultInjector* injector() { return &injector_; }

  // Legacy command surface, forwarded to the injector.
  void FailAfter(uint64_t n) { injector_.FailAfter(n); }
  void set_fail_all(bool fail) { injector_.set_fail_all(fail); }
  void Heal() { injector_.Heal(); }
  uint64_t operations() const { return injector_.operations(); }

  PageId PageCount() const override { return base_->PageCount(); }

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, void* buf, IoCategory category) override;
  Status WritePage(PageId id, const void* buf, IoCategory category) override;

 private:
  static Status Injected() { return Status::IOError("injected fault"); }

  std::unique_ptr<PageFile> base_;
  FaultInjector injector_;
};

}  // namespace i3

#endif  // I3_STORAGE_FAULT_INJECTION_H_
