#include "storage/snapshot.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "storage/checksum.h"

namespace i3 {

namespace {

/// "I3SM" little-endian + format version.
constexpr uint32_t kSnapshotMetaMagic = 0x4D533349u;
constexpr uint32_t kSnapshotMetaVersion = 1;

std::string MetaPathOf(const std::string& snapshot_path) {
  return snapshot_path + ".meta";
}

/// Streams the payload file through CRC32C; returns the masked CRC and
/// byte count. IOError when the file cannot be read.
Status CrcOfFile(const std::string& path, uint32_t* crc_out,
                 uint64_t* bytes_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open snapshot payload: " + path);
  uint32_t crc = 0;
  uint64_t total = 0;
  std::vector<char> buf(64 * 1024);
  while (in) {
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    const std::streamsize n = in.gcount();
    if (n <= 0) break;
    crc = Crc32c(buf.data(), static_cast<size_t>(n), crc);
    total += static_cast<uint64_t>(n);
  }
  if (in.bad()) return Status::IOError("snapshot payload read failed");
  *crc_out = MaskCrc(crc);
  *bytes_out = total;
  return Status::OK();
}

}  // namespace

Status WriteSnapshotMeta(const std::string& snapshot_path,
                         uint64_t watermark) {
  uint32_t crc = 0;
  uint64_t bytes = 0;
  I3_RETURN_NOT_OK(CrcOfFile(snapshot_path, &crc, &bytes));
  std::ofstream out(MetaPathOf(snapshot_path),
                    std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot write snapshot meta for " + snapshot_path);
  }
  // Fixed little-endian layout: magic, version, watermark, bytes, crc.
  uint8_t rec[4 + 4 + 8 + 8 + 4];
  std::memcpy(rec + 0, &kSnapshotMetaMagic, 4);
  std::memcpy(rec + 4, &kSnapshotMetaVersion, 4);
  std::memcpy(rec + 8, &watermark, 8);
  std::memcpy(rec + 16, &bytes, 8);
  std::memcpy(rec + 24, &crc, 4);
  out.write(reinterpret_cast<const char*>(rec), sizeof(rec));
  out.flush();
  if (!out) return Status::IOError("snapshot meta write failed");
  return Status::OK();
}

Result<SnapshotMeta> VerifySnapshot(const std::string& snapshot_path) {
  std::ifstream in(MetaPathOf(snapshot_path), std::ios::binary);
  if (!in) {
    return Status::IOError("snapshot meta missing for " + snapshot_path);
  }
  uint8_t rec[4 + 4 + 8 + 8 + 4];
  in.read(reinterpret_cast<char*>(rec), sizeof(rec));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(rec))) {
    return Status::Corruption("snapshot meta truncated");
  }
  uint32_t magic = 0, version = 0;
  SnapshotMeta meta;
  std::memcpy(&magic, rec + 0, 4);
  std::memcpy(&version, rec + 4, 4);
  std::memcpy(&meta.watermark, rec + 8, 8);
  std::memcpy(&meta.payload_bytes, rec + 16, 8);
  std::memcpy(&meta.payload_crc, rec + 24, 4);
  if (magic != kSnapshotMetaMagic) {
    return Status::Corruption("snapshot meta bad magic");
  }
  if (version != kSnapshotMetaVersion) {
    return Status::Corruption("snapshot meta bad version");
  }
  uint32_t crc = 0;
  uint64_t bytes = 0;
  I3_RETURN_NOT_OK(CrcOfFile(snapshot_path, &crc, &bytes));
  if (bytes != meta.payload_bytes) {
    return Status::Corruption("snapshot payload length mismatch");
  }
  if (crc != meta.payload_crc) {
    return Status::Corruption("snapshot payload checksum mismatch");
  }
  return meta;
}

void RemoveSnapshot(const std::string& snapshot_path) {
  std::remove(snapshot_path.c_str());
  std::remove(MetaPathOf(snapshot_path).c_str());
}

}  // namespace i3
