// Consistent-snapshot envelope for replica recovery (DESIGN.md §15).
//
// A snapshot is an opaque index serialization written by the index's own
// persister (i3/i3_persist.cc) at a captured replication watermark. This
// header adds the storage-level envelope around that payload: a sidecar
// meta file (`<snapshot>.meta`) carrying a magic, the watermark, the
// payload length, and a CRC32C of the payload bytes. The reader verifies
// all four before an install is allowed to begin, so a snapshot that was
// torn mid-write, truncated, or damaged at rest fails *cleanly* -- the
// recovering replica keeps its failed state and retries from another
// source -- instead of installing garbage that a later query trips over.
//
// The CRC covers the payload file as written; the page-level CRC32C of
// the checksummed page file (storage/checksummed_page_file.h) already
// guards the *source* reads that produced the payload, so a snapshot
// whose source returned corrupt pages never gets this far -- SaveTo
// surfaces the Corruption and the writer never stamps a meta file.

#ifndef I3_STORAGE_SNAPSHOT_H_
#define I3_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace i3 {

/// \brief The verified contents of a snapshot meta file.
struct SnapshotMeta {
  /// Replication watermark (ops applied) the payload is consistent at.
  uint64_t watermark = 0;
  /// Payload file length in bytes at stamp time.
  uint64_t payload_bytes = 0;
  /// Masked CRC32C of the payload file.
  uint32_t payload_crc = 0;
};

/// \brief Stamps `snapshot_path` with a meta file (`<snapshot_path>.meta`):
/// reads the payload back, computes its CRC32C, and records it with
/// `watermark`. Call after the index serializer has fully written the
/// payload. IOError when either file cannot be written/read.
Status WriteSnapshotMeta(const std::string& snapshot_path,
                         uint64_t watermark);

/// \brief Verifies `snapshot_path` against its meta file: magic, length,
/// and payload CRC must all match. Returns the meta on success; Corruption
/// when the payload or meta is damaged, IOError when either file is
/// missing/unreadable. Recovery must not install a payload this rejects.
Result<SnapshotMeta> VerifySnapshot(const std::string& snapshot_path);

/// \brief Removes the snapshot payload and its meta file (best effort:
/// missing files are not an error -- cleanup must be idempotent).
void RemoveSnapshot(const std::string& snapshot_path);

}  // namespace i3

#endif  // I3_STORAGE_SNAPSHOT_H_
