// CRC32C (Castagnoli) page checksums.
//
// The polynomial every modern storage engine uses (iSCSI, ext4, RocksDB,
// LevelDB): better burst-error detection than CRC32 (IEEE) and hardware
// support on most CPUs. The implementation dispatches once at startup:
// AVX-512 + VPCLMULQDQ carryless-multiply folding (~40 bytes/cycle, ~50ns
// for a 4KB page) where available, the SSE4.2 crc32 instruction as the
// middle tier, and a portable slice-by-8 table walk everywhere else. All
// paths compute the identical function -- CRC32C is fully determined by its
// polynomial -- so the same bytes verify on every build and machine, and
// each hardware path must pass a startup self-test against the table
// implementation before it is dispatched to.

#ifndef I3_STORAGE_CHECKSUM_H_
#define I3_STORAGE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace i3 {

/// \brief CRC32C of `len` bytes at `data`, continuing from `crc` (pass 0 to
/// start a fresh checksum). Standard reflected CRC with init/final XOR of
/// ~0, so Crc32c(a+b) == Crc32c(b, continuing from Crc32c(a)).
uint32_t Crc32c(const void* data, size_t len, uint32_t crc = 0);

namespace internal {
/// The portable slice-by-8 implementation, exposed so tests can assert that
/// whichever hardware path the dispatcher picked computes the identical
/// function on the machine actually running the suite.
uint32_t Crc32cPortable(const void* data, size_t len, uint32_t crc = 0);
}  // namespace internal

/// \brief Masked CRC in the LevelDB/RocksDB style: storing a CRC of bytes
/// that themselves contain CRCs makes accidental fixed points more likely,
/// so stored checksums are rotated and offset.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace i3

#endif  // I3_STORAGE_CHECKSUM_H_
