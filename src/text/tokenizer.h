// Text analysis: turning raw strings into keyword tokens.

#ifndef I3_TEXT_TOKENIZER_H_
#define I3_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace i3 {

/// \brief Options for Tokenizer.
struct TokenizerOptions {
  /// Lowercase all tokens.
  bool lowercase = true;
  /// Drop tokens shorter than this.
  size_t min_token_length = 2;
  /// Drop tokens on the built-in English stopword list.
  bool remove_stopwords = true;
};

/// \brief Splits text into keyword tokens on non-alphanumeric boundaries.
///
/// This is the ingestion front end used by the examples and by applications
/// indexing real documents; the synthetic generators emit term ids directly.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// \brief Tokenizes `text`. Duplicates are preserved (term frequency is
  /// computed downstream by TfIdfWeighter).
  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  bool IsStopword(const std::string& token) const;

  TokenizerOptions options_;
  std::unordered_set<std::string> stopwords_;
};

}  // namespace i3

#endif  // I3_TEXT_TOKENIZER_H_
