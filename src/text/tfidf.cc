#include "text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace i3 {

std::vector<WeightedTerm> TfIdfWeighter::Weigh(
    const std::vector<TermId>& tokens) const {
  std::unordered_map<TermId, uint32_t> tf;
  for (TermId t : tokens) ++tf[t];

  std::vector<WeightedTerm> out;
  out.reserve(tf.size());
  double max_w = 0.0;
  for (const auto& [term, freq] : tf) {
    const double df =
        std::max<uint64_t>(1, vocab_->DocumentFrequency(term));
    const double n = std::max<uint64_t>(1, total_documents_);
    const double w = (1.0 + std::log(static_cast<double>(freq))) *
                     std::log(1.0 + n / df);
    out.push_back({term, static_cast<float>(w)});
    max_w = std::max(max_w, w);
  }
  if (max_w > 0.0) {
    for (auto& wt : out) {
      wt.weight = static_cast<float>(wt.weight / max_w);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const WeightedTerm& a, const WeightedTerm& b) {
              return a.term < b.term;
            });
  return out;
}

}  // namespace i3
