#include "text/vocabulary.h"

namespace i3 {

TermId Vocabulary::GetOrAdd(const std::string& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  index_.emplace(term, id);
  terms_.push_back(term);
  doc_freq_.push_back(0);
  return id;
}

TermId Vocabulary::Lookup(const std::string& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidTermId : it->second;
}

void Vocabulary::AddDocumentOccurrence(TermId id) {
  if (id >= doc_freq_.size()) doc_freq_.resize(id + 1, 0);
  ++doc_freq_[id];
}

}  // namespace i3
