#include "text/tokenizer.h"

#include <cctype>

namespace i3 {

namespace {
// A compact English stopword list; enough to keep function words out of the
// index in the examples.
const char* const kStopwords[] = {
    "a",    "an",   "and",  "are",  "as",   "at",   "be",   "but",  "by",
    "for",  "from", "has",  "have", "he",   "her",  "his",  "i",    "in",
    "is",   "it",   "its",  "my",   "no",   "not",  "of",   "on",   "or",
    "our",  "she",  "so",   "that", "the",  "their", "them", "they", "this",
    "to",   "was",  "we",   "were", "will", "with", "you",  "your",
};
}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {
  if (options_.remove_stopwords) {
    for (const char* w : kStopwords) stopwords_.insert(w);
  }
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (current.size() >= options_.min_token_length && !IsStopword(current)) {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (char ch : text) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      current.push_back(options_.lowercase
                            ? static_cast<char>(std::tolower(c))
                            : ch);
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

bool Tokenizer::IsStopword(const std::string& token) const {
  return options_.remove_stopwords && stopwords_.count(token) > 0;
}

}  // namespace i3
