// The term dictionary: string keywords <-> dense integer ids, plus the
// corpus statistics (document frequency) needed for tf-idf weighting.

#ifndef I3_TEXT_VOCABULARY_H_
#define I3_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace i3 {

/// Dense id of a keyword. Every index in the library operates on TermIds;
/// strings appear only at the ingestion and presentation boundaries.
using TermId = uint32_t;
constexpr TermId kInvalidTermId = UINT32_MAX;

/// \brief Bidirectional term dictionary with document-frequency counts.
class Vocabulary {
 public:
  /// \brief Returns the id of `term`, interning it if new.
  TermId GetOrAdd(const std::string& term);

  /// \brief Returns the id of `term` or kInvalidTermId.
  TermId Lookup(const std::string& term) const;

  /// \brief The string for `id`. Requires a valid id.
  const std::string& TermString(TermId id) const { return terms_[id]; }

  /// \brief Bumps the document frequency of `id` by one. Call once per
  /// (document, distinct term) pair during ingestion.
  void AddDocumentOccurrence(TermId id);

  /// \brief Number of documents containing `id`.
  uint64_t DocumentFrequency(TermId id) const {
    return id < doc_freq_.size() ? doc_freq_[id] : 0;
  }

  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
  std::vector<uint64_t> doc_freq_;
};

}  // namespace i3

#endif  // I3_TEXT_VOCABULARY_H_
