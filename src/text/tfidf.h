// tf-idf term weighting (Baeza-Yates & Ribeiro-Neto), the measure the paper
// uses for textual relevance.

#ifndef I3_TEXT_TFIDF_H_
#define I3_TEXT_TFIDF_H_

#include <string>
#include <vector>

#include "text/vocabulary.h"

namespace i3 {

/// \brief A keyword with its relevance weight inside one document -- the
/// (w_i, s_i) pairs of the paper's data model.
struct WeightedTerm {
  TermId term = kInvalidTermId;
  float weight = 0.0f;

  bool operator==(const WeightedTerm& o) const {
    return term == o.term && weight == o.weight;
  }
};

/// \brief Computes per-document tf-idf weights, normalized to (0, 1].
///
/// weight(w, D) = (1 + ln tf) * ln(1 + N / df) followed by max-normalization
/// within the document, so every stored weight s is in (0, 1] -- the range
/// the index upper bounds assume.
class TfIdfWeighter {
 public:
  /// \param total_documents N, the corpus size; pass the running count when
  /// ingesting a stream.
  explicit TfIdfWeighter(const Vocabulary* vocab, uint64_t total_documents)
      : vocab_(vocab), total_documents_(total_documents) {}

  /// \brief Weights a tokenized document. `tokens` may contain duplicates;
  /// the result has one entry per distinct term, max-normalized.
  std::vector<WeightedTerm> Weigh(const std::vector<TermId>& tokens) const;

 private:
  const Vocabulary* vocab_;
  uint64_t total_documents_;
};

}  // namespace i3

#endif  // I3_TEXT_TFIDF_H_
