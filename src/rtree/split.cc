#include "rtree/split.h"

#include <cassert>
#include <limits>

namespace i3 {

size_t ChooseSubtree(const std::vector<Rect>& child_mbrs, const Rect& item) {
  assert(!child_mbrs.empty());
  size_t best = 0;
  double best_enlargement = std::numeric_limits<double>::max();
  double best_area = std::numeric_limits<double>::max();
  for (size_t i = 0; i < child_mbrs.size(); ++i) {
    const double enlargement = child_mbrs[i].Enlargement(item);
    const double area = child_mbrs[i].Area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best = i;
      best_enlargement = enlargement;
      best_area = area;
    }
  }
  return best;
}

namespace {

/// PickSeeds: the pair wasting the most area when grouped together.
std::pair<size_t, size_t> PickSeeds(const std::vector<Rect>& rects) {
  size_t s1 = 0, s2 = 1;
  double worst = -std::numeric_limits<double>::max();
  for (size_t i = 0; i < rects.size(); ++i) {
    for (size_t j = i + 1; j < rects.size(); ++j) {
      const double waste =
          rects[i].Union(rects[j]).Area() - rects[i].Area() -
          rects[j].Area();
      if (waste > worst) {
        worst = waste;
        s1 = i;
        s2 = j;
      }
    }
  }
  return {s1, s2};
}

}  // namespace

std::pair<std::vector<size_t>, std::vector<size_t>> QuadraticSplit(
    const std::vector<Rect>& rects, size_t min_fill) {
  assert(rects.size() >= 2);
  assert(min_fill >= 1 && 2 * min_fill <= rects.size());

  auto [s1, s2] = PickSeeds(rects);
  std::vector<size_t> g1{s1}, g2{s2};
  Rect m1 = rects[s1], m2 = rects[s2];

  std::vector<bool> assigned(rects.size(), false);
  assigned[s1] = assigned[s2] = true;
  size_t remaining = rects.size() - 2;

  while (remaining > 0) {
    // Force-assign when a group must take everything left to reach
    // min_fill.
    if (g1.size() + remaining == min_fill) {
      for (size_t i = 0; i < rects.size(); ++i) {
        if (!assigned[i]) {
          g1.push_back(i);
          m1.Expand(rects[i]);
          assigned[i] = true;
        }
      }
      break;
    }
    if (g2.size() + remaining == min_fill) {
      for (size_t i = 0; i < rects.size(); ++i) {
        if (!assigned[i]) {
          g2.push_back(i);
          m2.Expand(rects[i]);
          assigned[i] = true;
        }
      }
      break;
    }

    // PickNext: the entry with the greatest preference for one group.
    size_t pick = 0;
    double best_diff = -1.0;
    double d1_pick = 0.0, d2_pick = 0.0;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (assigned[i]) continue;
      const double d1 = m1.Enlargement(rects[i]);
      const double d2 = m2.Enlargement(rects[i]);
      const double diff = d1 > d2 ? d1 - d2 : d2 - d1;
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        d1_pick = d1;
        d2_pick = d2;
      }
    }
    bool to_g1;
    if (d1_pick != d2_pick) {
      to_g1 = d1_pick < d2_pick;
    } else if (m1.Area() != m2.Area()) {
      to_g1 = m1.Area() < m2.Area();
    } else {
      to_g1 = g1.size() <= g2.size();
    }
    if (to_g1) {
      g1.push_back(pick);
      m1.Expand(rects[pick]);
    } else {
      g2.push_back(pick);
      m2.Expand(rects[pick]);
    }
    assigned[pick] = true;
    --remaining;
  }
  return {std::move(g1), std::move(g2)};
}

Rect BoundingRect(const std::vector<Rect>& rects,
                  const std::vector<size_t>& subset) {
  Rect out = Rect::Empty();
  for (size_t i : subset) out.Expand(rects[i]);
  return out;
}

}  // namespace i3
