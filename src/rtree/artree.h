// Aggregated R-tree (Papadias et al., SSTD 2001) over weighted points.
//
// S2I builds one of these per frequent keyword: leaf entries are
// (location, doc, term weight) and every node carries the maximum term
// weight in its subtree, so a best-first search can emit documents in
// non-increasing alpha * phi_s + (1 - alpha) * w order with a sound upper
// bound at all times. Node accesses are charged to IoCategory::kRTreeNode
// on a caller-supplied IoStats (S2I aggregates the counters of all its
// trees there).

#ifndef I3_RTREE_ARTREE_H_
#define I3_RTREE_ARTREE_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "common/geo.h"
#include "model/document.h"
#include "model/scorer.h"
#include "storage/io_stats.h"

namespace i3 {

/// \brief Sizing of aR-tree nodes. Fanout is derived from the page size:
/// a leaf entry is 24 bytes (point + doc + weight), an internal entry is 40
/// bytes (rect + child + aggregate).
struct ARTreeOptions {
  size_t page_size = 4096;
  /// Minimum fill fraction after a split / before a condense.
  double min_fill = 0.4;
};

/// \brief One weighted point.
struct AREntry {
  Point point;
  DocId doc = kInvalidDocId;
  float weight = 0.0f;
};

/// \brief Aggregate (max-weight) R-tree with Guttman insertion/deletion.
class ARTree {
 public:
  /// \param stats sink for node-access accounting (not owned, may be
  /// shared across trees); pass nullptr to disable accounting.
  explicit ARTree(ARTreeOptions options = {}, IoStats* stats = nullptr);

  void Insert(const Point& p, DocId doc, float weight);

  /// Removes the entry for (p, doc); returns false if absent.
  bool Delete(const Point& p, DocId doc);

  /// \brief Random access: the weight of `doc` at `p`, if present. Charges
  /// a node read per visited node (the expensive cross-tree aggregation the
  /// paper attributes to S2I).
  std::optional<float> Probe(const Point& p, DocId doc) const;

  size_t size() const { return size_; }
  size_t NodeCount() const { return node_count_; }
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(node_count_) * options_.page_size;
  }

  /// Height of the tree (leaf = 1); 0 when empty.
  int Height() const;

  /// Maximum term weight stored anywhere in the tree (the root aggregate);
  /// 0 when empty.
  float MaxWeight() const {
    return root_ == kNoNode ? 0.0f : nodes_[root_].agg_max;
  }

  /// \brief Best-first scan in non-increasing key order, where
  /// key = scorer.Combine(phi_s(point), weight).
  ///
  /// UpperBound() bounds the key of everything not yet emitted; it is
  /// +inf before the first Next() only if the tree is non-empty.
  class Iterator {
   public:
    Iterator(const ARTree* tree, const Scorer& scorer, const Point& qloc);

    bool Valid() const { return has_current_; }
    const AREntry& entry() const { return current_; }
    double key() const { return current_key_; }

    /// \brief Max key among all entries not yet emitted (excluding the
    /// current one); -inf when exhausted.
    double UpperBound() const;

    void Next();

   private:
    struct HeapItem {
      double key;
      bool is_entry;
      uint32_t node;  // when !is_entry
      AREntry entry;  // when is_entry
      bool operator<(const HeapItem& o) const { return key < o.key; }
    };

    void Advance();

    const ARTree* tree_;
    Scorer scorer_;
    Point qloc_;
    std::priority_queue<HeapItem> heap_;
    AREntry current_;
    double current_key_ = 0.0;
    bool has_current_ = false;
  };

  Iterator NewIterator(const Scorer& scorer, const Point& qloc) const {
    return Iterator(this, scorer, qloc);
  }

  /// Internal consistency check for tests: MBR containment, aggregate
  /// correctness, fill invariants. Returns the number of entries.
  std::optional<std::string> CheckInvariants() const;

 private:
  struct Node {
    bool leaf = true;
    Rect mbr = Rect::Empty();
    float agg_max = 0.0f;
    std::vector<AREntry> entries;    // leaf
    std::vector<uint32_t> children;  // internal
  };

  static constexpr uint32_t kNoNode = UINT32_MAX;

  uint32_t NewNode(bool leaf);
  void FreeNode(uint32_t id);
  void ChargeRead(uint32_t n = 1) const {
    if (stats_ != nullptr) stats_->RecordRead(IoCategory::kRTreeNode, n);
  }
  void ChargeWrite(uint32_t n = 1) const {
    if (stats_ != nullptr) stats_->RecordWrite(IoCategory::kRTreeNode, n);
  }

  Rect NodeRect(uint32_t id) const { return nodes_[id].mbr; }
  void RecomputeNode(uint32_t id);

  /// Recursive insert; returns the id of a new sibling if `id` split.
  uint32_t InsertRec(uint32_t id, const AREntry& entry, int target_level,
                     int level);
  uint32_t SplitLeaf(uint32_t id);
  uint32_t SplitInternal(uint32_t id);

  bool DeleteRec(uint32_t id, const Point& p, DocId doc,
                 std::vector<AREntry>* orphans);
  void CollectEntries(uint32_t id, std::vector<AREntry>* out);

  bool ProbeRec(uint32_t id, const Point& p, DocId doc, float* out) const;

  size_t LeafCapacity() const { return options_.page_size / 24; }
  size_t InternalCapacity() const { return options_.page_size / 40; }
  size_t LeafMinFill() const {
    return std::max<size_t>(1, static_cast<size_t>(LeafCapacity() *
                                                   options_.min_fill));
  }
  size_t InternalMinFill() const {
    return std::max<size_t>(1, static_cast<size_t>(InternalCapacity() *
                                                   options_.min_fill));
  }

  ARTreeOptions options_;
  IoStats* stats_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> free_nodes_;
  uint32_t root_ = kNoNode;
  size_t size_ = 0;
  size_t node_count_ = 0;
};

}  // namespace i3

#endif  // I3_RTREE_ARTREE_H_
