#include "rtree/artree.h"

#include <cassert>
#include <limits>
#include <string>

#include "rtree/split.h"

namespace i3 {

ARTree::ARTree(ARTreeOptions options, IoStats* stats)
    : options_(options), stats_(stats) {
  assert(LeafCapacity() >= 4);
  assert(InternalCapacity() >= 4);
}

uint32_t ARTree::NewNode(bool leaf) {
  ++node_count_;
  if (!free_nodes_.empty()) {
    const uint32_t id = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[id] = Node{};
    nodes_[id].leaf = leaf;
    return id;
  }
  nodes_.push_back(Node{});
  nodes_.back().leaf = leaf;
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void ARTree::FreeNode(uint32_t id) {
  --node_count_;
  nodes_[id] = Node{};
  free_nodes_.push_back(id);
}

void ARTree::RecomputeNode(uint32_t id) {
  Node& n = nodes_[id];
  n.mbr = Rect::Empty();
  n.agg_max = 0.0f;
  if (n.leaf) {
    for (const AREntry& e : n.entries) {
      n.mbr.Expand(e.point);
      if (e.weight > n.agg_max) n.agg_max = e.weight;
    }
  } else {
    for (uint32_t c : n.children) {
      n.mbr.Expand(nodes_[c].mbr);
      if (nodes_[c].agg_max > n.agg_max) n.agg_max = nodes_[c].agg_max;
    }
  }
}

void ARTree::Insert(const Point& p, DocId doc, float weight) {
  const AREntry entry{p, doc, weight};
  if (root_ == kNoNode) {
    root_ = NewNode(/*leaf=*/true);
  }
  const uint32_t sibling = InsertRec(root_, entry, 0, 0);
  if (sibling != kNoNode) {
    // Root split: grow the tree by one level.
    const uint32_t new_root = NewNode(/*leaf=*/false);
    nodes_[new_root].children = {root_, sibling};
    RecomputeNode(new_root);
    ChargeWrite();
    root_ = new_root;
  }
  ++size_;
}

uint32_t ARTree::InsertRec(uint32_t id, const AREntry& entry,
                           int /*target_level*/, int /*level*/) {
  ChargeRead();
  Node& n = nodes_[id];
  if (n.leaf) {
    n.entries.push_back(entry);
    n.mbr.Expand(entry.point);
    if (entry.weight > n.agg_max) n.agg_max = entry.weight;
    ChargeWrite();
    if (n.entries.size() > LeafCapacity()) return SplitLeaf(id);
    return kNoNode;
  }

  std::vector<Rect> child_mbrs;
  child_mbrs.reserve(n.children.size());
  for (uint32_t c : n.children) child_mbrs.push_back(nodes_[c].mbr);
  const size_t pick =
      ChooseSubtree(child_mbrs, Rect::FromPoint(entry.point));
  const uint32_t child = n.children[pick];

  const uint32_t split = InsertRec(child, entry, 0, 0);
  // Re-borrow: the recursion may have invalidated `n` via NewNode.
  Node& n2 = nodes_[id];
  bool changed = false;
  if (split != kNoNode) {
    n2.children.push_back(split);
    changed = true;
  }
  if (!n2.mbr.Contains(entry.point)) {
    n2.mbr.Expand(entry.point);
    changed = true;
  }
  if (entry.weight > n2.agg_max) {
    n2.agg_max = entry.weight;
    changed = true;
  }
  // Unchanged internal nodes (point inside the MBR, no new aggregate) need
  // no write-back.
  if (changed) ChargeWrite();
  if (n2.children.size() > InternalCapacity()) return SplitInternal(id);
  return kNoNode;
}

uint32_t ARTree::SplitLeaf(uint32_t id) {
  std::vector<AREntry> entries = std::move(nodes_[id].entries);
  std::vector<Rect> rects;
  rects.reserve(entries.size());
  for (const AREntry& e : entries) rects.push_back(Rect::FromPoint(e.point));
  auto [g1, g2] = QuadraticSplit(rects, LeafMinFill());

  const uint32_t sib = NewNode(/*leaf=*/true);
  Node& a = nodes_[id];
  Node& b = nodes_[sib];
  a.entries.clear();
  for (size_t i : g1) a.entries.push_back(entries[i]);
  for (size_t i : g2) b.entries.push_back(entries[i]);
  RecomputeNode(id);
  RecomputeNode(sib);
  ChargeWrite(2);
  return sib;
}

uint32_t ARTree::SplitInternal(uint32_t id) {
  std::vector<uint32_t> children = std::move(nodes_[id].children);
  std::vector<Rect> rects;
  rects.reserve(children.size());
  for (uint32_t c : children) rects.push_back(nodes_[c].mbr);
  auto [g1, g2] = QuadraticSplit(rects, InternalMinFill());

  const uint32_t sib = NewNode(/*leaf=*/false);
  Node& a = nodes_[id];
  Node& b = nodes_[sib];
  a.children.clear();
  for (size_t i : g1) a.children.push_back(children[i]);
  for (size_t i : g2) b.children.push_back(children[i]);
  RecomputeNode(id);
  RecomputeNode(sib);
  ChargeWrite(2);
  return sib;
}

bool ARTree::Delete(const Point& p, DocId doc) {
  if (root_ == kNoNode) return false;
  std::vector<AREntry> orphans;
  if (!DeleteRec(root_, p, doc, &orphans)) return false;
  --size_;

  // Shrink the root: an internal root with one child, or an empty tree.
  while (!nodes_[root_].leaf && nodes_[root_].children.size() == 1) {
    const uint32_t old = root_;
    root_ = nodes_[root_].children[0];
    FreeNode(old);
  }
  if (nodes_[root_].leaf && nodes_[root_].entries.empty() &&
      orphans.empty() && size_ == 0) {
    FreeNode(root_);
    root_ = kNoNode;
  }

  for (const AREntry& e : orphans) {
    --size_;  // Insert() below re-increments
    Insert(e.point, e.doc, e.weight);
  }
  return true;
}

bool ARTree::DeleteRec(uint32_t id, const Point& p, DocId doc,
                       std::vector<AREntry>* orphans) {
  ChargeRead();
  Node& n = nodes_[id];
  if (n.leaf) {
    for (auto it = n.entries.begin(); it != n.entries.end(); ++it) {
      if (it->doc == doc && it->point == p) {
        n.entries.erase(it);
        RecomputeNode(id);
        ChargeWrite();
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < n.children.size(); ++i) {
    const uint32_t child = n.children[i];
    if (!nodes_[child].mbr.Contains(p)) continue;
    if (!DeleteRec(child, p, doc, orphans)) continue;
    Node& n2 = nodes_[id];
    const Node& cn = nodes_[child];
    const size_t min_fill =
        cn.leaf ? LeafMinFill() : InternalMinFill();
    const size_t child_size =
        cn.leaf ? cn.entries.size() : cn.children.size();
    if (child_size < min_fill) {
      // Condense: drop the child and reinsert its leaf entries.
      CollectEntries(child, orphans);
      FreeNode(child);
      n2.children.erase(n2.children.begin() + i);
    }
    RecomputeNode(id);
    ChargeWrite();
    return true;
  }
  return false;
}

void ARTree::CollectEntries(uint32_t id, std::vector<AREntry>* out) {
  const Node& n = nodes_[id];
  if (n.leaf) {
    out->insert(out->end(), n.entries.begin(), n.entries.end());
    return;
  }
  for (uint32_t c : n.children) {
    CollectEntries(c, out);
    FreeNode(c);
  }
}

std::optional<float> ARTree::Probe(const Point& p, DocId doc) const {
  if (root_ == kNoNode) return std::nullopt;
  float out = 0.0f;
  if (ProbeRec(root_, p, doc, &out)) return out;
  return std::nullopt;
}

bool ARTree::ProbeRec(uint32_t id, const Point& p, DocId doc,
                      float* out) const {
  ChargeRead();
  const Node& n = nodes_[id];
  if (n.leaf) {
    for (const AREntry& e : n.entries) {
      if (e.doc == doc && e.point == p) {
        *out = e.weight;
        return true;
      }
    }
    return false;
  }
  for (uint32_t c : n.children) {
    if (nodes_[c].mbr.Contains(p) && ProbeRec(c, p, doc, out)) return true;
  }
  return false;
}

int ARTree::Height() const {
  if (root_ == kNoNode) return 0;
  int h = 1;
  uint32_t id = root_;
  while (!nodes_[id].leaf) {
    id = nodes_[id].children[0];
    ++h;
  }
  return h;
}

// ------------------------------------------------------------------ iterator

ARTree::Iterator::Iterator(const ARTree* tree, const Scorer& scorer,
                           const Point& qloc)
    : tree_(tree), scorer_(scorer), qloc_(qloc) {
  if (tree_->root_ != kNoNode) {
    const Node& root = tree_->nodes_[tree_->root_];
    heap_.push(HeapItem{
        scorer_.Combine(scorer_.SpatialProximityUpper(qloc_, root.mbr),
                        root.agg_max),
        false, tree_->root_, AREntry{}});
  }
  Advance();
}

void ARTree::Iterator::Advance() {
  has_current_ = false;
  while (!heap_.empty()) {
    HeapItem top = heap_.top();
    if (top.is_entry) {
      heap_.pop();
      current_ = top.entry;
      current_key_ = top.key;
      has_current_ = true;
      return;
    }
    heap_.pop();
    tree_->ChargeRead();
    const Node& n = tree_->nodes_[top.node];
    if (n.leaf) {
      for (const AREntry& e : n.entries) {
        heap_.push(HeapItem{
            scorer_.Combine(scorer_.SpatialProximity(qloc_, e.point),
                            e.weight),
            true, 0, e});
      }
    } else {
      for (uint32_t c : n.children) {
        const Node& cn = tree_->nodes_[c];
        heap_.push(HeapItem{
            scorer_.Combine(scorer_.SpatialProximityUpper(qloc_, cn.mbr),
                            cn.agg_max),
            false, c, AREntry{}});
      }
    }
  }
}

double ARTree::Iterator::UpperBound() const {
  if (heap_.empty()) return -std::numeric_limits<double>::infinity();
  return heap_.top().key;
}

void ARTree::Iterator::Next() { Advance(); }

// ---------------------------------------------------------------- checking

std::optional<std::string> ARTree::CheckInvariants() const {
  if (root_ == kNoNode) {
    return size_ == 0 ? std::nullopt
                      : std::optional<std::string>("empty tree with size");
  }
  size_t count = 0;
  std::string err;
  // Iterative DFS with (node, is_root) frames.
  struct Frame {
    uint32_t id;
    bool is_root;
  };
  std::vector<Frame> stack{{root_, true}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes_[f.id];
    if (n.leaf) {
      count += n.entries.size();
      if (!f.is_root && n.entries.size() < LeafMinFill()) {
        return "leaf underflow";
      }
      if (n.entries.size() > LeafCapacity()) return "leaf overflow";
      float agg = 0.0f;
      for (const AREntry& e : n.entries) {
        if (!n.mbr.Contains(e.point)) return "entry outside leaf MBR";
        agg = std::max(agg, e.weight);
      }
      if (agg != n.agg_max) return "leaf aggregate mismatch";
      continue;
    }
    if (!f.is_root && n.children.size() < InternalMinFill()) {
      return "internal underflow";
    }
    if (n.children.size() > InternalCapacity()) return "internal overflow";
    float agg = 0.0f;
    for (uint32_t c : n.children) {
      if (!n.mbr.Contains(nodes_[c].mbr)) return "child outside MBR";
      agg = std::max(agg, nodes_[c].agg_max);
      stack.push_back({c, false});
    }
    if (agg != n.agg_max) return "internal aggregate mismatch";
  }
  if (count != size_) return "entry count mismatch";
  return std::nullopt;
}

}  // namespace i3
