// Shared R-tree insertion heuristics (Guttman 1984): subtree choice by
// minimum enlargement and the quadratic node-split algorithm. Used by both
// the S2I aggregated R-tree and the IR-tree baseline.

#ifndef I3_RTREE_SPLIT_H_
#define I3_RTREE_SPLIT_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/geo.h"

namespace i3 {

/// \brief Index of the child whose MBR needs the least enlargement to cover
/// `item` (ties: smaller area, then smaller index). `child_mbrs` must be
/// non-empty.
size_t ChooseSubtree(const std::vector<Rect>& child_mbrs, const Rect& item);

/// \brief Guttman's quadratic split. Partitions indices [0, rects.size())
/// into two groups, each with at least `min_fill` members.
/// \return the two index groups.
std::pair<std::vector<size_t>, std::vector<size_t>> QuadraticSplit(
    const std::vector<Rect>& rects, size_t min_fill);

/// \brief MBR of a subset of rectangles.
Rect BoundingRect(const std::vector<Rect>& rects,
                  const std::vector<size_t>& subset);

}  // namespace i3

#endif  // I3_RTREE_SPLIT_H_
