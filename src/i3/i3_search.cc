// Query processing over I3 (Section 5): best-first descent over quadtree
// cells with AND-semantics signature pruning (Algorithms 5-6) and the
// Apriori subset lattice for the OR-semantics upper bound (Section 5.3).

#include <algorithm>
#include <memory>
#include <queue>

#include "i3/i3_index.h"
#include "model/topk.h"

namespace i3 {

namespace {
constexpr uint32_t kMaxQueryTerms = 32;     // mask width
constexpr uint32_t kMaxLatticeTerms = 12;   // OR lattice enumeration cap
}  // namespace

/// One entry of PQ in Algorithm 4: a cell C with the four pruning fields
/// <C.C, C.denseKwds, C.docs, C.upperScore>.
struct I3Index::Candidate {
  /// A query keyword that is dense in this cell, with its summary E and the
  /// head-file node to expand it further.
  struct DenseKwd {
    uint8_t qidx;        ///< position of the keyword in the query
    NodeId node;         ///< summary node of <w, C>
    SummaryEntry entry;  ///< E = <sig, max_s> of <w, C>
  };

  /// A document discovered through keywords that stopped being dense on
  /// the path to this cell, with the term weights fetched so far.
  struct PartialDoc {
    Point loc;
    uint32_t mask = 0;  ///< query-term positions matched so far
    std::vector<std::pair<uint8_t, float>> terms;

    double TextSum() const {
      double s = 0.0;
      for (const auto& [qidx, w] : terms) s += w;
      return s;
    }
  };

  Rect rect;
  double upper = 0.0;
  std::vector<DenseKwd> dense;
  std::unordered_map<DocId, PartialDoc> docs;

  void MergeTuples(uint8_t qidx, const std::vector<SpatialTuple>& tuples) {
    for (const SpatialTuple& t : tuples) {
      PartialDoc& pd = docs[t.doc];
      pd.loc = t.location;
      pd.mask |= (1u << qidx);
      pd.terms.emplace_back(qidx, t.weight);
    }
  }
};

/// Per-query state and the pruning/upper-bound routines.
class I3Index::SearchContext {
 public:
  SearchContext(I3Index* index, const Query& q, double alpha,
                I3SearchStats* stats)
      : index_(index),
        query_(q),
        scorer_(index->options_.space, alpha),
        heap_(q.k),
        stats_(stats) {
    for (size_t i = 0; i < q.terms.size(); ++i) {
      full_mask_ |= (1u << i);
    }
  }

  /// Algorithm 5 (AND) / Section 5.3 (OR). Returns true if the candidate
  /// cell can be discarded; may shrink c->docs as a side effect (AND).
  bool Prune(Candidate* c) {
    if (query_.semantics == Semantics::kAnd) return PruneAnd(c);
    return PruneOr(c);
  }

  /// Algorithm 6 (AND) / the Apriori lattice (OR).
  double UpperBound(const Candidate& c) const {
    const double phi_s =
        scorer_.SpatialProximityUpper(query_.location, c.rect);
    const double phi_t = query_.semantics == Semantics::kAnd
                             ? TextualUpperAnd(c)
                             : TextualUpperOr(c);
    return scorer_.Combine(phi_s, phi_t);
  }

  /// Scores the documents of a fully resolved cell (Algorithm 4, 6-10).
  void ScoreDocs(const Candidate& c) {
    for (const auto& [doc, pd] : c.docs) {
      if (query_.semantics == Semantics::kAnd && pd.mask != full_mask_) {
        continue;
      }
      const double score =
          scorer_.Combine(scorer_.SpatialProximity(query_.location, pd.loc),
                          pd.TextSum());
      heap_.Offer(doc, score, pd.loc);
      ++stats_->docs_scored;
    }
  }

  double Threshold() const { return heap_.Threshold(); }
  TopKHeap* heap() { return &heap_; }
  I3SearchStats* stats() { return stats_; }
  const Query& query() const { return query_; }
  uint32_t full_mask() const { return full_mask_; }

 private:
  bool PruneAnd(Candidate* c) {
    // Lines 1-6: intersect the signatures of the dense keywords.
    if (index_->options_.signature_pruning && !c->dense.empty()) {
      Signature sig = c->dense[0].entry.sig;
      for (size_t i = 1; i < c->dense.size(); ++i) {
        sig.IntersectWith(c->dense[i].entry.sig);
      }
      if (sig.IsZero()) {
        ++stats_->cells_pruned_signature;
        return true;
      }
      // Lines 7-12: drop partial documents outside the intersection.
      for (auto it = c->docs.begin(); it != c->docs.end();) {
        if (!sig.MayContain(it->first)) {
          it = c->docs.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Coverage: every query keyword must be dense in this cell or matched
    // by some partial document; otherwise no document here can contain all
    // keywords. (Generalizes lines 11-12 to empty C.docs.)
    uint32_t covered = 0;
    for (const auto& dk : c->dense) covered |= (1u << dk.qidx);
    for (const auto& [doc, pd] : c->docs) covered |= pd.mask;
    if (covered != full_mask_) {
      ++stats_->cells_pruned_coverage;
      return true;
    }
    return false;
  }

  bool PruneOr(Candidate* c) {
    // A cell is prunable only if it holds no query keyword at all: no dense
    // keyword (a dense cell is nonempty by definition) and no partial doc.
    if (c->dense.empty() && c->docs.empty()) {
      ++stats_->cells_pruned_coverage;
      return true;
    }
    return false;
  }

  double TextualUpperAnd(const Candidate& c) const {
    double dense_sum = 0.0;
    for (const auto& dk : c.dense) dense_sum += dk.entry.max_s;
    double nd_max = 0.0;
    for (const auto& [doc, pd] : c.docs) {
      nd_max = std::max(nd_max, pd.TextSum());
    }
    return dense_sum + nd_max;
  }

  /// Per-term evidence for the OR lattice: the best contribution m_t and a
  /// signature of the documents that could supply it.
  double TextualUpperOr(const Candidate& c) const {
    const uint32_t eta = index_->options_.signature_bits;
    struct TermEvidence {
      double m = 0.0;
      Signature sig;
    };
    std::vector<TermEvidence> ev;
    for (const auto& dk : c.dense) {
      ev.push_back({dk.entry.max_s, dk.entry.sig});
    }
    // Group the non-dense contributions by query term.
    std::vector<TermEvidence> nd(query_.terms.size());
    std::vector<bool> nd_present(query_.terms.size(), false);
    for (const auto& [doc, pd] : c.docs) {
      for (const auto& [qidx, w] : pd.terms) {
        if (!nd_present[qidx]) {
          nd[qidx].sig = Signature(eta);
          nd_present[qidx] = true;
        }
        nd[qidx].m = std::max(nd[qidx].m, static_cast<double>(w));
        nd[qidx].sig.Add(doc);
      }
    }
    for (size_t i = 0; i < nd.size(); ++i) {
      if (nd_present[i]) ev.push_back(std::move(nd[i]));
    }
    if (ev.empty()) return 0.0;

    const size_t p = ev.size();
    if (p > kMaxLatticeTerms) {
      // Degenerate fallback: the plain sum is still a valid upper bound.
      double sum = 0.0;
      for (const auto& e : ev) sum += e.m;
      return sum;
    }

    // Apriori over the 2^p - 1 keyword subsets: a subset is viable iff the
    // intersection of its members' evidence is non-empty; monotonicity
    // prunes supersets of dead subsets.
    const size_t n_masks = size_t{1} << p;
    std::vector<Signature> evidence(n_masks);
    std::vector<double> score(n_masks, -1.0);  // -1 = dead subset
    double best = 0.0;
    for (size_t mask = 1; mask < n_masks; ++mask) {
      const size_t low = mask & (~mask + 1);
      const size_t low_idx = static_cast<size_t>(__builtin_ctzll(mask));
      const size_t rest = mask ^ low;
      if (rest == 0) {
        evidence[mask] = ev[low_idx].sig;
        score[mask] = ev[low_idx].m;
      } else {
        if (score[rest] < 0.0) continue;  // Apriori pruning
        Signature sig = evidence[rest];
        sig.IntersectWith(ev[low_idx].sig);
        if (sig.IsZero()) continue;
        evidence[mask] = std::move(sig);
        score[mask] = score[rest] + ev[low_idx].m;
      }
      best = std::max(best, score[mask]);
    }
    return best;
  }

  I3Index* index_;
  Query query_;
  Scorer scorer_;
  TopKHeap heap_;
  I3SearchStats* stats_;
  uint32_t full_mask_ = 0;
};

Result<std::vector<ScoredDoc>> I3Index::Search(const Query& q_in,
                                               double alpha) {
  I3SearchStats stats;
  auto result = SearchImpl(q_in, alpha, &stats);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  last_search_stats_ = stats;
  return result;
}

Result<std::vector<ScoredDoc>> I3Index::SearchImpl(const Query& q_in,
                                                   double alpha,
                                                   I3SearchStats* stats) {
  Query q = q_in;
  q.Normalize();
  if (q.terms.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  if (q.terms.size() > kMaxQueryTerms) {
    return Status::InvalidArgument("more than 32 query keywords");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }

  SearchContext ctx(this, q, alpha, stats);

  // Build the root candidate (Algorithm 4, line 1).
  auto root = std::make_unique<Candidate>();
  root->rect = options_.space;
  for (size_t i = 0; i < q.terms.size(); ++i) {
    auto it = lookup_.find(q.terms[i]);
    if (it == lookup_.end()) {
      if (q.semantics == Semantics::kAnd) {
        return std::vector<ScoredDoc>{};  // a required keyword is absent
      }
      continue;
    }
    const LookupEntry& entry = it->second;
    if (entry.dense) {
      const SummaryNode& node = head_.Read(entry.node);
      root->dense.push_back(
          {static_cast<uint8_t>(i), entry.node, node.self});
    } else {
      auto tuples = ReadCellTuples(entry.page, {}, entry.source);
      if (!tuples.ok()) return tuples.status();
      root->MergeTuples(static_cast<uint8_t>(i), tuples.ValueOrDie());
    }
  }

  // Max-heap of candidates by upper bound.
  auto cmp = [](const std::unique_ptr<Candidate>& a,
                const std::unique_ptr<Candidate>& b) {
    return a->upper < b->upper;
  };
  std::priority_queue<std::unique_ptr<Candidate>,
                      std::vector<std::unique_ptr<Candidate>>, decltype(cmp)>
      pq(cmp);

  if (!ctx.Prune(root.get())) {
    root->upper = ctx.UpperBound(*root);
    ++ctx.stats()->candidates_pushed;
    pq.push(std::move(root));
  }

  while (!pq.empty()) {
    std::unique_ptr<Candidate> c =
        std::move(const_cast<std::unique_ptr<Candidate>&>(pq.top()));
    pq.pop();
    ++ctx.stats()->candidates_popped;

    // Lines 4-5: global termination.
    if (c->upper <= ctx.Threshold()) break;

    // Lines 6-10: fully resolved cell -- score its documents.
    if (c->dense.empty()) {
      ctx.ScoreDocs(*c);
      continue;
    }

    // Lines 12-24: zoom into the four child cells.
    // Snapshot the dense keywords' nodes (head-file reads, one per dense
    // keyword; the node vector is stable during a search).
    std::vector<const SummaryNode*> nodes;
    nodes.reserve(c->dense.size());
    for (const auto& dk : c->dense) nodes.push_back(&head_.Read(dk.node));

    for (int quad = 0; quad < kQuadrants; ++quad) {
      auto child = std::make_unique<Candidate>();
      child->rect = CellSpace::ChildRect(c->rect, quad);

      // Route each partial document to the unique child containing it.
      for (const auto& [doc, pd] : c->docs) {
        if (CellSpace::QuadrantOf(c->rect, pd.loc) == quad) {
          child->docs.emplace(doc, pd);
        }
      }

      // Keywords that stop being dense in this child are *not* fetched
      // yet: their summaries E (stored in the parent's node, already in
      // hand) stand in so the child can be pruned without touching the
      // data file. Only survivors pay the page reads.
      struct PendingFetch {
        uint8_t qidx;
        PageId page;
        SourceId source;
        const std::vector<PageId>* overflow;
      };
      std::vector<PendingFetch> pending;

      for (size_t d = 0; d < c->dense.size(); ++d) {
        const ChildRef& ref = nodes[d]->child[quad];
        switch (ref.kind) {
          case ChildRef::Kind::kNone:
            break;
          case ChildRef::Kind::kSummary:
            child->dense.push_back({c->dense[d].qidx, ref.node,
                                    nodes[d]->child_summary[quad]});
            break;
          case ChildRef::Kind::kPage:
            if (options_.summary_screen) {
              // Temporarily treat the page-backed cell like a dense one,
              // carrying its exact summary from the parent node.
              // kInvalidNodeId marks it as pending.
              child->dense.push_back({c->dense[d].qidx, kInvalidNodeId,
                                      nodes[d]->child_summary[quad]});
              pending.push_back({c->dense[d].qidx, ref.page, ref.source,
                                 &ref.overflow});
            } else {
              // Ablation / literal Algorithm 4: fetch eagerly.
              auto tuples =
                  ReadCellTuples(ref.page, ref.overflow, ref.source);
              if (!tuples.ok()) return tuples.status();
              child->MergeTuples(c->dense[d].qidx, tuples.ValueOrDie());
            }
            break;
        }
      }

      if (child->dense.empty() && child->docs.empty()) continue;
      if (ctx.Prune(child.get())) continue;
      child->upper = ctx.UpperBound(*child);
      if (child->upper <= ctx.Threshold()) {
        ++ctx.stats()->cells_pruned_score;
        continue;
      }

      if (!pending.empty()) {
        // The child survived the summary-only screen: fetch the pages of
        // its non-dense keyword cells and re-evaluate with exact tuples.
        child->dense.erase(
            std::remove_if(child->dense.begin(), child->dense.end(),
                           [](const Candidate::DenseKwd& dk) {
                             return dk.node == kInvalidNodeId;
                           }),
            child->dense.end());
        for (const PendingFetch& pf : pending) {
          auto tuples = ReadCellTuples(pf.page, *pf.overflow, pf.source);
          if (!tuples.ok()) return tuples.status();
          child->MergeTuples(pf.qidx, tuples.ValueOrDie());
        }
        if (child->dense.empty() && child->docs.empty()) continue;
        if (ctx.Prune(child.get())) continue;
        child->upper = ctx.UpperBound(*child);
        if (child->upper <= ctx.Threshold()) {
          ++ctx.stats()->cells_pruned_score;
          continue;
        }
      }

      ++ctx.stats()->candidates_pushed;
      pq.push(std::move(child));
    }
  }

  return ctx.heap()->Take();
}

Result<std::vector<ScoredDoc>> I3Index::SearchRange(const Rect& range,
                                                    std::vector<TermId> terms,
                                                    Semantics semantics,
                                                    uint32_t limit) {
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  if (terms.empty()) {
    return Status::InvalidArgument("range query has no keywords");
  }
  if (terms.size() > kMaxQueryTerms) {
    return Status::InvalidArgument("more than 32 query keywords");
  }

  uint32_t full_mask = 0;
  for (size_t i = 0; i < terms.size(); ++i) full_mask |= (1u << i);

  struct RangeDoc {
    uint32_t mask = 0;
    double text = 0.0;
    Point loc;
  };
  std::unordered_map<DocId, RangeDoc> docs;

  auto merge_tuples = [&](uint8_t qidx,
                          const std::vector<SpatialTuple>& tuples) {
    for (const SpatialTuple& t : tuples) {
      if (!range.Contains(t.location)) continue;
      RangeDoc& rd = docs[t.doc];
      rd.mask |= (1u << qidx);
      rd.text += t.weight;
      rd.loc = t.location;
    }
  };

  // A frame is one cell with the query keywords still dense in it.
  struct Frame {
    Rect rect;
    std::vector<std::pair<uint8_t, NodeId>> dense;
  };
  std::vector<Frame> stack;

  Frame root;
  root.rect = options_.space;
  for (size_t i = 0; i < terms.size(); ++i) {
    auto it = lookup_.find(terms[i]);
    if (it == lookup_.end()) {
      if (semantics == Semantics::kAnd) return std::vector<ScoredDoc>{};
      continue;
    }
    if (it->second.dense) {
      root.dense.emplace_back(static_cast<uint8_t>(i), it->second.node);
    } else {
      auto tuples = ReadCellTuples(it->second.page, {}, it->second.source);
      if (!tuples.ok()) return tuples.status();
      merge_tuples(static_cast<uint8_t>(i), tuples.ValueOrDie());
    }
  }
  if (!root.dense.empty()) stack.push_back(std::move(root));

  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    std::vector<const SummaryNode*> nodes;
    nodes.reserve(f.dense.size());
    for (const auto& [qidx, node] : f.dense) {
      nodes.push_back(&head_.Read(node));
    }
    for (int quad = 0; quad < kQuadrants; ++quad) {
      const Rect child_rect = CellSpace::ChildRect(f.rect, quad);
      if (!child_rect.Intersects(range)) continue;

      // AND: the signatures of this cell's keyword cells (dense or not)
      // must intersect for any document here to match.
      if (semantics == Semantics::kAnd && options_.signature_pruning) {
        Signature sig(options_.signature_bits);
        bool first = true;
        for (const SummaryNode* n : nodes) {
          if (first) {
            sig = n->child_summary[quad].sig;
            first = false;
          } else {
            sig.IntersectWith(n->child_summary[quad].sig);
          }
          if (sig.IsZero()) break;
        }
        if (!first && sig.IsZero()) continue;
      }

      Frame child;
      child.rect = child_rect;
      for (size_t d = 0; d < f.dense.size(); ++d) {
        const ChildRef& ref = nodes[d]->child[quad];
        switch (ref.kind) {
          case ChildRef::Kind::kNone:
            break;
          case ChildRef::Kind::kSummary:
            child.dense.emplace_back(f.dense[d].first, ref.node);
            break;
          case ChildRef::Kind::kPage: {
            auto tuples = ReadCellTuples(ref.page, ref.overflow, ref.source);
            if (!tuples.ok()) return tuples.status();
            merge_tuples(f.dense[d].first, tuples.ValueOrDie());
            break;
          }
        }
      }
      if (!child.dense.empty()) stack.push_back(std::move(child));
    }
  }

  std::vector<ScoredDoc> out;
  for (const auto& [doc, rd] : docs) {
    if (semantics == Semantics::kAnd && rd.mask != full_mask) continue;
    out.push_back({doc, rd.text, rd.loc});
  }
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a,
                                       const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace i3
