// Query processing over I3 (Section 5): best-first descent over quadtree
// cells with AND-semantics signature pruning (Algorithms 5-6) and the
// Apriori subset lattice for the OR-semantics upper bound (Section 5.3).
//
// Memory discipline (see DESIGN.md, "Hot-path memory architecture"): all
// per-query state -- candidate cells, partial-document tables, term lists,
// the priority queue -- lives in a per-thread bump Arena that is Reset at
// the start of each query, and reusable scratch (signatures, OR-lattice
// tables) is per-thread too. Once a thread reaches its high-water mark, a
// query touches the global allocator only for the result vector it returns.
// Page tuples are streamed straight off pinned buffer-pool frames through
// I3Index::VisitCellTuples; no TuplePage is materialized.

#include <algorithm>
#include <vector>

#include "common/arena.h"
#include "common/deadline.h"
#include "common/flat_map.h"
#include "common/small_vec.h"
#include "i3/i3_index.h"
#include "model/topk.h"
#include "storage/buffer_pool.h"

namespace i3 {

namespace {
constexpr uint32_t kMaxQueryTerms = 32;     // mask width
constexpr uint32_t kMaxLatticeTerms = 12;   // OR lattice enumeration cap

/// One term's best-case contribution for the OR lattice: the maximum score
/// m_t and a signature of the documents that could supply it.
struct OrEvidence {
  double m;
  const Signature* sig;
};
}  // namespace

/// One entry of PQ in Algorithm 4: a cell C with the four pruning fields
/// <C.C, C.denseKwds, C.docs, C.upperScore>. Arena-resident and recycled
/// through a per-query freelist; never individually destroyed (all members
/// are trivially destructible, their spill storage is arena memory).
struct I3Index::Candidate {
  /// A query keyword that is dense in this cell. The summary E = <sig,
  /// max_s> is referenced in place: it lives in a head-file node, and the
  /// node vector is stable for the duration of a search (no writer runs).
  struct DenseKwd {
    uint8_t qidx;               ///< position of the keyword in the query
    NodeId node;                ///< summary node of <w, C>
    const SummaryEntry* entry;  ///< E = <sig, max_s> of <w, C>
  };

  /// One fetched term weight of a partial document.
  struct TermWeight {
    uint8_t qidx;
    float w;
  };

  /// A keyword cell whose page fetch is deferred (WAND-style): the parent's
  /// summary E stands in as the candidate's upper-bound evidence, and the
  /// pages are read only if the candidate is popped while its bound still
  /// beats the k-th heap score. Candidates that die first -- screened at
  /// push, drained at termination -- never pay these reads. The overflow
  /// pointer aims into a head-file node; the node vector is stable for the
  /// duration of a search (no writer runs).
  struct PendingFetch {
    uint8_t qidx;
    PageId page;
    SourceId source;
    const std::vector<PageId>* overflow;
    const SummaryEntry* entry;  ///< the proxy summary standing in
  };

  /// A document discovered through keywords that stopped being dense on
  /// the path to this cell, with the term weights fetched so far.
  struct PartialDoc {
    Point loc;
    uint32_t mask = 0;  ///< query-term positions matched so far
    SmallVec<TermWeight, 4> terms;

    double TextSum() const {
      double s = 0.0;
      for (const TermWeight& tw : terms) s += tw.w;
      return s;
    }
  };

  explicit Candidate(Arena* arena) : docs(arena) {}

  Rect rect;
  double upper = 0.0;
  SmallVec<DenseKwd, 8> dense;
  SmallVec<PendingFetch, 8> pending;
  FlatMap<DocId, PartialDoc> docs;
  Candidate* next_free = nullptr;  ///< freelist link while recycled

  /// Reclaims the candidate for reuse, keeping dense/docs storage.
  void Recycle() {
    upper = 0.0;
    dense.Clear();
    pending.Clear();
    docs.Clear();
    next_free = nullptr;
  }

  void MergeTuple(Arena* arena, uint8_t qidx, const SpatialTuple& t) {
    PartialDoc& pd = docs.FindOrInsert(t.doc);
    pd.loc = t.location;
    pd.mask |= (1u << qidx);
    pd.terms.PushBack(arena, {qidx, t.weight});
  }
};

namespace {

/// Per-thread reusable search scratch: the bump arena plus every buffer
/// whose capacity should survive across queries. Thread-local (not global)
/// because concurrent readers each run their own searches.
struct SearchScratch {
  Arena arena;
  Signature and_sig;                  // AND intersection scratch
  std::vector<OrEvidence> or_ev;      // per-term evidence list
  std::vector<Signature> or_nd_sig;   // per-qidx non-dense doc signatures
  std::vector<double> or_nd_m;        // per-qidx best non-dense weight
  std::vector<uint8_t> or_nd_seen;    // per-qidx: any non-dense evidence?
  std::vector<Signature> or_lat_sig;  // lattice evidence per subset mask
  std::vector<double> or_lat_score;   // lattice score per subset mask
};

thread_local SearchScratch t_search_scratch;

}  // namespace

/// Per-query search state and the pruning/upper-bound routines.
class I3Index::SearchContext {
 public:
  SearchContext(I3Index* index, const Query& q, double alpha,
                I3SearchStats* stats, SearchScratch* scratch)
      : index_(index),
        query_(q),
        scorer_(index->options_.space, alpha),
        heap_(q.k),
        stats_(stats),
        scratch_(scratch) {
    for (size_t i = 0; i < q.terms.size(); ++i) {
      full_mask_ |= (1u << i);
    }
    if (q.semantics == Semantics::kOr) {
      const size_t n = q.terms.size();
      if (scratch_->or_nd_sig.size() < n) {
        scratch_->or_nd_sig.resize(n);
        scratch_->or_nd_m.resize(n);
        scratch_->or_nd_seen.resize(n);
      }
    }
  }

  Arena* arena() { return &scratch_->arena; }

  /// A blank candidate at `rect`: recycled if one is free, arena-minted
  /// otherwise.
  Candidate* NewCandidate(const Rect& rect) {
    Candidate* c = free_list_;
    if (c != nullptr) {
      free_list_ = c->next_free;
      c->Recycle();
    } else {
      c = arena()->New<Candidate>(arena());
    }
    c->rect = rect;
    return c;
  }

  /// Returns a candidate to the freelist (storage stays warm for reuse).
  void Free(Candidate* c) {
    c->next_free = free_list_;
    free_list_ = c;
  }

  void PqPush(Candidate* c) {
    pq_.PushBack(arena(), c);
    std::push_heap(pq_.begin(), pq_.end(), ByUpper{});
    ++stats_->candidates_pushed;
  }

  /// Highest-upper-bound candidate, or nullptr when exhausted.
  Candidate* PqPop() {
    if (pq_.empty()) return nullptr;
    std::pop_heap(pq_.begin(), pq_.end(), ByUpper{});
    Candidate* c = pq_.back();
    pq_.PopBack();
    ++stats_->candidates_popped;
    return c;
  }

  /// Deferred fetches of every candidate still queued; counted as skipped
  /// cells when the search terminates with the queue non-empty.
  uint64_t QueuedPendingCount() const {
    uint64_t n = 0;
    for (const Candidate* c : pq_) n += c->pending.size();
    return n;
  }

  /// Algorithm 5 (AND) / Section 5.3 (OR). Returns true if the candidate
  /// cell can be discarded; may shrink c->docs as a side effect (AND).
  bool Prune(Candidate* c) {
    if (query_.semantics == Semantics::kAnd) return PruneAnd(c);
    return PruneOr(c);
  }

  /// Algorithm 6 (AND) / the Apriori lattice (OR).
  double UpperBound(Candidate* c) {
    const double phi_s =
        scorer_.SpatialProximityUpper(query_.location, c->rect);
    const double phi_t = query_.semantics == Semantics::kAnd
                             ? TextualUpperAnd(c)
                             : TextualUpperOr(c);
    return scorer_.Combine(phi_s, phi_t);
  }

  /// Scores the documents of a fully resolved cell (Algorithm 4, 6-10).
  void ScoreDocs(Candidate* c) {
    for (auto& slot : c->docs) {
      const Candidate::PartialDoc& pd = slot.value;
      if (query_.semantics == Semantics::kAnd && pd.mask != full_mask_) {
        continue;
      }
      const double score =
          scorer_.Combine(scorer_.SpatialProximity(query_.location, pd.loc),
                          pd.TextSum());
      heap_.Offer(slot.key, score, pd.loc);
      ++stats_->docs_scored;
    }
  }

  double Threshold() const { return heap_.Threshold(); }
  TopKHeap* heap() { return &heap_; }
  I3SearchStats* stats() { return stats_; }

 private:
  struct ByUpper {
    bool operator()(const Candidate* a, const Candidate* b) const {
      return a->upper < b->upper;
    }
  };

  bool PruneAnd(Candidate* c) {
    // Lines 1-6: intersect the signatures of the dense keywords.
    if (index_->options_.signature_pruning && !c->dense.empty()) {
      Signature& sig = scratch_->and_sig;
      sig = c->dense[0].entry->sig;  // copy-assign: reuses word storage
      for (uint32_t i = 1; i < c->dense.size(); ++i) {
        sig.IntersectWith(c->dense[i].entry->sig);
      }
      if (sig.IsZero()) {
        ++stats_->cells_pruned_signature;
        return true;
      }
      // Lines 7-12: drop partial documents outside the intersection.
      for (auto it = c->docs.begin(); it != c->docs.end();) {
        if (!sig.MayContain(it->key)) {
          it = c->docs.Erase(it);
        } else {
          ++it;
        }
      }
    }
    // Coverage: every query keyword must be dense in this cell or matched
    // by some partial document; otherwise no document here can contain all
    // keywords. (Generalizes lines 11-12 to empty C.docs.)
    uint32_t covered = 0;
    for (const auto& dk : c->dense) covered |= (1u << dk.qidx);
    for (auto& slot : c->docs) covered |= slot.value.mask;
    if (covered != full_mask_) {
      ++stats_->cells_pruned_coverage;
      return true;
    }
    return false;
  }

  bool PruneOr(Candidate* c) {
    // A cell is prunable only if it holds no query keyword at all: no dense
    // keyword (a dense cell is nonempty by definition) and no partial doc.
    if (c->dense.empty() && c->docs.empty()) {
      ++stats_->cells_pruned_coverage;
      return true;
    }
    return false;
  }

  double TextualUpperAnd(Candidate* c) {
    double dense_sum = 0.0;
    for (const auto& dk : c->dense) dense_sum += dk.entry->max_s;
    double nd_max = 0.0;
    for (auto& slot : c->docs) {
      nd_max = std::max(nd_max, slot.value.TextSum());
    }
    return dense_sum + nd_max;
  }

  double TextualUpperOr(Candidate* c) {
    const uint32_t eta = index_->options_.signature_bits;
    SearchScratch& s = *scratch_;
    s.or_ev.clear();
    for (const auto& dk : c->dense) {
      s.or_ev.push_back({dk.entry->max_s, &dk.entry->sig});
    }
    // Group the non-dense contributions by query term.
    std::fill(s.or_nd_seen.begin(), s.or_nd_seen.end(), uint8_t{0});
    for (auto& slot : c->docs) {
      for (const auto& tw : slot.value.terms) {
        if (!s.or_nd_seen[tw.qidx]) {
          s.or_nd_seen[tw.qidx] = 1;
          s.or_nd_m[tw.qidx] = 0.0;
          if (s.or_nd_sig[tw.qidx].bits() != eta) {
            s.or_nd_sig[tw.qidx] = Signature(eta);
          } else {
            s.or_nd_sig[tw.qidx].Clear();
          }
        }
        s.or_nd_m[tw.qidx] =
            std::max(s.or_nd_m[tw.qidx], static_cast<double>(tw.w));
        s.or_nd_sig[tw.qidx].Add(slot.key);
      }
    }
    for (size_t i = 0; i < query_.terms.size(); ++i) {
      if (s.or_nd_seen[i]) s.or_ev.push_back({s.or_nd_m[i], &s.or_nd_sig[i]});
    }
    if (s.or_ev.empty()) return 0.0;

    const size_t p = s.or_ev.size();
    if (p > kMaxLatticeTerms) {
      // Degenerate fallback: the plain sum is still a valid upper bound.
      double sum = 0.0;
      for (const auto& e : s.or_ev) sum += e.m;
      return sum;
    }

    // Apriori over the 2^p - 1 keyword subsets: a subset is viable iff the
    // intersection of its members' evidence is non-empty; monotonicity
    // prunes supersets of dead subsets.
    const size_t n_masks = size_t{1} << p;
    if (s.or_lat_sig.size() < n_masks) s.or_lat_sig.resize(n_masks);
    s.or_lat_score.assign(n_masks, -1.0);  // -1 = dead subset
    double best = 0.0;
    for (size_t mask = 1; mask < n_masks; ++mask) {
      const size_t low = mask & (~mask + 1);
      const size_t low_idx = static_cast<size_t>(__builtin_ctzll(mask));
      const size_t rest = mask ^ low;
      if (rest == 0) {
        s.or_lat_sig[mask] = *s.or_ev[low_idx].sig;
        s.or_lat_score[mask] = s.or_ev[low_idx].m;
      } else {
        if (s.or_lat_score[rest] < 0.0) continue;  // Apriori pruning
        s.or_lat_sig[mask] = s.or_lat_sig[rest];
        s.or_lat_sig[mask].IntersectWith(*s.or_ev[low_idx].sig);
        if (s.or_lat_sig[mask].IsZero()) continue;  // score stays dead
        s.or_lat_score[mask] = s.or_lat_score[rest] + s.or_ev[low_idx].m;
      }
      best = std::max(best, s.or_lat_score[mask]);
    }
    return best;
  }

  I3Index* index_;
  const Query& query_;
  Scorer scorer_;
  TopKHeap heap_;
  I3SearchStats* stats_;
  SearchScratch* scratch_;
  Candidate* free_list_ = nullptr;
  SmallVec<Candidate*, 64> pq_;  // max-heap by upper bound
  uint32_t full_mask_ = 0;
};

Result<std::vector<ScoredDoc>> I3Index::Search(const Query& q_in,
                                               double alpha) {
  const uint64_t start_ns = obs::NowNanos();
  // A request-scoped sink (wire-propagated tracing) takes precedence over
  // the sampled global tracer: the caller owns the timeline and publishes
  // it (over the wire / into the slow-query log), so it is not pushed to
  // the sampled ring here.
  obs::QueryTrace* request_trace = q_in.control.trace;
  obs::QueryTrace trace_storage;
  obs::QueryTrace* trace = request_trace;
  if (trace == nullptr &&
      obs::Tracer::Global().StartTrace("I3.Search", &trace_storage)) {
    trace = &trace_storage;
  }
  I3SearchStats stats;
  const uint64_t backoff_before = internal::t_retry_backoff_ns;
  auto result = SearchImpl(q_in, alpha, &stats, trace);
  const uint64_t backoff_ns = internal::t_retry_backoff_ns - backoff_before;
  search_latency_us_[q_in.semantics == Semantics::kAnd ? 0 : 1]->Record(
      (obs::NowNanos() - start_ns) / 1000);
  stats_emitter_.Emit(View(stats));
  if (stats.cells_skipped != 0) {
    cells_skipped_total_->Increment(stats.cells_skipped);
  }
  if (stats.blockmax_prunes != 0) {
    blockmax_prunes_total_->Increment(stats.blockmax_prunes);
  }
  if (trace != nullptr) {
    // Time this query lost to transient-read retry backoff (buffer pool).
    if (backoff_ns != 0) trace->AddStage("retry_backoff", backoff_ns);
    trace->Annotate("candidates_popped", stats.candidates_popped);
    trace->Annotate("docs_scored", stats.docs_scored);
    trace->Annotate("cells_skipped", stats.cells_skipped);
    trace->Annotate("blockmax_prunes", stats.blockmax_prunes);
    if (result.ok()) trace->Annotate("results", result.ValueOrDie().size());
    if (trace != request_trace)
      obs::Tracer::Global().Finish(std::move(*trace));
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  last_search_stats_ = stats;
  return result;
}

Result<std::vector<ScoredDoc>> I3Index::SearchImpl(const Query& q_in,
                                                   double alpha,
                                                   I3SearchStats* stats,
                                                   obs::QueryTrace* trace) {
  Query q = q_in;
  q.Normalize();
  if (q.terms.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  if (q.terms.size() > kMaxQueryTerms) {
    return Status::InvalidArgument("more than 32 query keywords");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }

  SearchScratch* scratch = &t_search_scratch;
  scratch->arena.Reset();  // invalidates nothing: no search is in flight
  SearchContext ctx(this, q, alpha, stats, scratch);
  Arena* arena = ctx.arena();

  // Stage-timed wrappers for the two calls that recur throughout the
  // descent; a null trace reduces each to the plain call (one pointer
  // test, see obs::ScopedStage).
  auto TracedPrune = [&ctx, trace](Candidate* cand) {
    obs::ScopedStage stage(trace, "signature_filter");
    return ctx.Prune(cand);
  };
  auto TracedUpperBound = [&ctx, trace](Candidate* cand) {
    obs::ScopedStage stage(trace, "upper_bound");
    return ctx.UpperBound(cand);
  };

  // Build the root candidate (Algorithm 4, line 1).
  Candidate* root = ctx.NewCandidate(options_.space);
  {
    obs::ScopedStage stage(trace, "cell_lookup");
    for (size_t i = 0; i < q.terms.size(); ++i) {
      auto it = lookup_.find(q.terms[i]);
      if (it == lookup_.end()) {
        if (q.semantics == Semantics::kAnd) {
          return std::vector<ScoredDoc>{};  // a required keyword is absent
        }
        continue;
      }
      const LookupEntry& entry = it->second;
      if (entry.dense) {
        const SummaryNode& node = head_.Read(entry.node);
        root->dense.PushBack(
            arena, {static_cast<uint8_t>(i), entry.node, &node.self});
      } else {
        const uint8_t qidx = static_cast<uint8_t>(i);
        I3_RETURN_NOT_OK(VisitCellTuples(
            entry.page, nullptr, entry.source, [&](const SpatialTuple& t) {
              root->MergeTuple(arena, qidx, t);
            }));
      }
    }
  }

  if (!TracedPrune(root)) {
    root->upper = TracedUpperBound(root);
    ctx.PqPush(root);
  } else {
    ctx.Free(root);
  }

  // Cooperative deadline/cancellation: checked once per popped candidate
  // (the unit of descent work). An unbounded control is a single
  // well-predicted branch, preserving the hot path.
  const DeadlineTimer deadline = DeadlineTimer::AtSteadyNanos(
      q_in.control.deadline_ns);

  Candidate* c;
  while ((c = ctx.PqPop()) != nullptr) {
    if (q_in.control.bounded()) {
      if (q_in.control.Cancelled()) {
        return Status::DeadlineExceeded("query cancelled");
      }
      if (deadline.Expired()) {
        return Status::DeadlineExceeded("query deadline exceeded");
      }
    }
    // Lines 4-5: global termination. The queue is bound-ordered, so
    // nothing at or below this candidate can beat the heap; every page
    // fetch still deferred -- on this candidate and in the drained queue --
    // is I/O the lazy discipline saved outright.
    if (c->upper <= ctx.Threshold()) {
      ctx.stats()->cells_skipped +=
          c->pending.size() + ctx.QueuedPendingCount();
      break;
    }

    // Block-max pop-time gate: this candidate was pushed on summary
    // evidence alone (see the kPage case below). Now that it won the queue
    // while still beating the threshold, resolve ONE deferred cell -- the
    // one with the largest summary bound, so the re-derived bound tightens
    // fastest -- swap its exact tuples in for the proxy, and re-queue (or
    // kill) the candidate under the new bound. One cell per pop maximizes
    // laziness: every intervening threshold rise gets a chance to kill the
    // candidate before its next page read, and a candidate that dies
    // mid-cascade skips all its remaining cells unfetched.
    if (!c->pending.empty()) {
      uint32_t best = 0;
      for (uint32_t i = 1; i < c->pending.size(); ++i) {
        if (c->pending[i].entry->max_s > c->pending[best].entry->max_s) {
          best = i;
        }
      }
      const Candidate::PendingFetch pf = c->pending[best];
      c->pending[best] = c->pending[c->pending.size() - 1];
      c->pending.PopBack();
      uint32_t w = 0;
      for (uint32_t d = 0; d < c->dense.size(); ++d) {
        const Candidate::DenseKwd& dk = c->dense[d];
        if (dk.node == kInvalidNodeId && dk.qidx == pf.qidx) continue;
        c->dense[w++] = c->dense[d];
      }
      c->dense.Truncate(w);
      {
        const uint8_t qidx = pf.qidx;
        obs::ScopedStage stage(trace, "page_decode");
        I3_RETURN_NOT_OK(VisitCellTuples(
            pf.page, pf.overflow, pf.source, [&](const SpatialTuple& t) {
              c->MergeTuple(arena, qidx, t);
            }));
      }
      if ((c->dense.empty() && c->docs.empty()) || TracedPrune(c)) {
        ctx.stats()->cells_skipped += c->pending.size();
        ctx.Free(c);
        continue;
      }
      c->upper = TracedUpperBound(c);
      if (c->upper <= ctx.Threshold()) {
        ++ctx.stats()->blockmax_prunes;
        ctx.stats()->cells_skipped += c->pending.size();
        ctx.Free(c);
        continue;
      }
      ctx.PqPush(c);
      continue;
    }

    // Lines 6-10: fully resolved cell -- score its documents.
    if (c->dense.empty()) {
      obs::ScopedStage stage(trace, "topk_score");
      ctx.ScoreDocs(c);
      ctx.Free(c);
      continue;
    }

    // Lines 12-24: zoom into the four child cells.
    // Snapshot the dense keywords' nodes (head-file reads, one per dense
    // keyword; the node vector is stable during a search).
    SmallVec<const SummaryNode*, 8> nodes;
    {
      obs::ScopedStage stage(trace, "summary_lookup");
      for (const auto& dk : c->dense) {
        nodes.PushBack(arena, &head_.Read(dk.node));
      }
    }

    for (int quad = 0; quad < kQuadrants; ++quad) {
      Candidate* child = ctx.NewCandidate(CellSpace::ChildRect(c->rect, quad));

      // Route each partial document to the unique child containing it.
      {
        obs::ScopedStage stage(trace, "candidate_merge");
        for (auto& slot : c->docs) {
          const Candidate::PartialDoc& pd = slot.value;
          if (CellSpace::QuadrantOf(c->rect, pd.loc) == quad) {
            Candidate::PartialDoc& dst = child->docs.FindOrInsert(slot.key);
            dst.loc = pd.loc;
            dst.mask = pd.mask;
            dst.terms.AssignFrom(arena, pd.terms);
          }
        }
      }

      // Keywords that stop being dense in this child are *not* fetched
      // here: their summaries E (stored in the parent's node, already in
      // hand) stand in so the child can be screened -- and queued -- without
      // touching the data file. The fetch stays deferred on the candidate
      // until it is popped still beating the threshold (the block-max gate
      // at the top of the loop); children that die before then never pay
      // their page reads at all.
      for (uint32_t d = 0; d < c->dense.size(); ++d) {
        const ChildRef& ref = nodes[d]->child[quad];
        switch (ref.kind) {
          case ChildRef::Kind::kNone:
            break;
          case ChildRef::Kind::kSummary:
            child->dense.PushBack(arena, {c->dense[d].qidx, ref.node,
                                          &nodes[d]->child_summary[quad]});
            break;
          case ChildRef::Kind::kPage:
            if (options_.summary_screen) {
              // Temporarily treat the page-backed cell like a dense one,
              // carrying its exact summary from the parent node.
              // kInvalidNodeId marks it as pending.
              child->dense.PushBack(arena,
                                    {c->dense[d].qidx, kInvalidNodeId,
                                     &nodes[d]->child_summary[quad]});
              child->pending.PushBack(
                  arena, {c->dense[d].qidx, ref.page, ref.source,
                          &ref.overflow, &nodes[d]->child_summary[quad]});
            } else {
              // Ablation / literal Algorithm 4: fetch eagerly.
              const uint8_t qidx = c->dense[d].qidx;
              obs::ScopedStage stage(trace, "page_scan");
              I3_RETURN_NOT_OK(VisitCellTuples(
                  ref.page, &ref.overflow, ref.source,
                  [&](const SpatialTuple& t) {
                    child->MergeTuple(arena, qidx, t);
                  }));
            }
            break;
        }
      }

      if ((child->dense.empty() && child->docs.empty()) ||
          TracedPrune(child)) {
        ctx.stats()->cells_skipped += child->pending.size();
        ctx.Free(child);
        continue;
      }
      child->upper = TracedUpperBound(child);
      if (child->upper <= ctx.Threshold()) {
        ++ctx.stats()->cells_pruned_score;
        ctx.stats()->cells_skipped += child->pending.size();
        ctx.Free(child);
        continue;
      }

      ctx.PqPush(child);
    }
    ctx.Free(c);
  }

  return ctx.heap()->Take();
}

Result<std::vector<ScoredDoc>> I3Index::SearchRange(const Rect& range,
                                                    std::vector<TermId> terms,
                                                    Semantics semantics,
                                                    uint32_t limit) {
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  if (terms.empty()) {
    return Status::InvalidArgument("range query has no keywords");
  }
  if (terms.size() > kMaxQueryTerms) {
    return Status::InvalidArgument("more than 32 query keywords");
  }

  uint32_t full_mask = 0;
  for (size_t i = 0; i < terms.size(); ++i) full_mask |= (1u << i);

  struct RangeDoc {
    uint32_t mask = 0;
    double text = 0.0;
    Point loc;
  };
  std::unordered_map<DocId, RangeDoc> docs;

  auto merge_tuple = [&](uint8_t qidx, const SpatialTuple& t) {
    if (!range.Contains(t.location)) return;
    RangeDoc& rd = docs[t.doc];
    rd.mask |= (1u << qidx);
    rd.text += t.weight;
    rd.loc = t.location;
  };

  // A frame is one cell with the query keywords still dense in it.
  struct Frame {
    Rect rect;
    std::vector<std::pair<uint8_t, NodeId>> dense;
  };
  std::vector<Frame> stack;

  Frame root;
  root.rect = options_.space;
  for (size_t i = 0; i < terms.size(); ++i) {
    auto it = lookup_.find(terms[i]);
    if (it == lookup_.end()) {
      if (semantics == Semantics::kAnd) return std::vector<ScoredDoc>{};
      continue;
    }
    if (it->second.dense) {
      root.dense.emplace_back(static_cast<uint8_t>(i), it->second.node);
    } else {
      const uint8_t qidx = static_cast<uint8_t>(i);
      I3_RETURN_NOT_OK(VisitCellTuples(
          it->second.page, nullptr, it->second.source,
          [&](const SpatialTuple& t) { merge_tuple(qidx, t); }));
    }
  }
  if (!root.dense.empty()) stack.push_back(std::move(root));

  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    std::vector<const SummaryNode*> nodes;
    nodes.reserve(f.dense.size());
    for (const auto& [qidx, node] : f.dense) {
      nodes.push_back(&head_.Read(node));
    }
    for (int quad = 0; quad < kQuadrants; ++quad) {
      const Rect child_rect = CellSpace::ChildRect(f.rect, quad);
      if (!child_rect.Intersects(range)) continue;

      // AND: the signatures of this cell's keyword cells (dense or not)
      // must intersect for any document here to match.
      if (semantics == Semantics::kAnd && options_.signature_pruning) {
        Signature sig(options_.signature_bits);
        bool first = true;
        for (const SummaryNode* n : nodes) {
          if (first) {
            sig = n->child_summary[quad].sig;
            first = false;
          } else {
            sig.IntersectWith(n->child_summary[quad].sig);
          }
          if (sig.IsZero()) break;
        }
        if (!first && sig.IsZero()) continue;
      }

      Frame child;
      child.rect = child_rect;
      for (size_t d = 0; d < f.dense.size(); ++d) {
        const ChildRef& ref = nodes[d]->child[quad];
        switch (ref.kind) {
          case ChildRef::Kind::kNone:
            break;
          case ChildRef::Kind::kSummary:
            child.dense.emplace_back(f.dense[d].first, ref.node);
            break;
          case ChildRef::Kind::kPage: {
            const uint8_t qidx = f.dense[d].first;
            I3_RETURN_NOT_OK(VisitCellTuples(
                ref.page, &ref.overflow, ref.source,
                [&](const SpatialTuple& t) { merge_tuple(qidx, t); }));
            break;
          }
        }
      }
      if (!child.dense.empty()) stack.push_back(std::move(child));
    }
  }

  std::vector<ScoredDoc> out;
  for (const auto& [doc, rd] : docs) {
    if (semantics == Semantics::kAnd && rd.mask != full_mask) continue;
    out.push_back({doc, rd.text, rd.loc});
  }
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a,
                                       const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace i3
