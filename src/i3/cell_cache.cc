#include "i3/cell_cache.h"

#include <algorithm>

namespace i3 {

CellCache::CellCache(CellCacheOptions options) : options_(options) {
  size_t n = options_.stripes != 0 ? options_.stripes : 8;
  if (options_.capacity_bytes == 0) n = 1;
  stripes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Stripe>();
    s->capacity_bytes =
        options_.capacity_bytes / n + (i < options_.capacity_bytes % n);
    stripes_.push_back(std::move(s));
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  hits_metric_ =
      reg.GetCounter("i3_cell_cache_hits_total",
                     "Keyword-cell visits served from decoded entries.");
  misses_metric_ = reg.GetCounter(
      "i3_cell_cache_misses_total",
      "Keyword-cell visits that decoded the page (absent or stale entry).");
  evictions_metric_ =
      reg.GetCounter("i3_cell_cache_evictions_total",
                     "Decoded-cell entries dropped (SIEVE victim, stale "
                     "epoch, replacement, or Clear).");
  insertions_metric_ =
      reg.GetCounter("i3_cell_cache_insertions_total",
                     "Decoded-cell entries admitted after a miss.");
  bytes_metric_ = reg.GetGauge(
      "i3_cell_cache_bytes",
      "Resident decoded-cell bytes across all constructed caches.");
}

void CellCache::DropStale(Stripe& s, uint64_t key, uint64_t epoch) {
  if (!enabled()) return;
  std::unique_lock<std::shared_mutex> lock(s.mutex);
  auto it = s.index.find(key);
  if (it == s.index.end()) return;
  // Re-check under the exclusive lock: a racing miss may have refreshed
  // the entry to the current epoch already.
  if (s.entries[it->second].epoch == epoch) return;
  EraseEntry(s, it->second);
  evictions_metric_->Increment(1);
}

void CellCache::EraseEntry(Stripe& s, uint32_t idx) {
  Entry& e = s.entries[idx];
  const size_t bytes = EntryBytes(e.docs.size());
  s.bytes -= bytes;
  resident_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  bytes_metric_->Sub(static_cast<int64_t>(bytes));
  s.index.erase(e.key);
  e.live = false;
  e.visited.store(0, std::memory_order_relaxed);
  // Entry buffers are kept for reuse (steady-state insertions allocate
  // only when a cell outgrows a recycled entry's capacity).
  e.docs.clear();
  e.weights.clear();
  e.xs.clear();
  e.ys.clear();
  s.free.push_back(idx);
}

bool CellCache::EvictOne(Stripe& s) {
  const size_t n = s.entries.size();
  if (s.index.empty()) return false;
  for (size_t step = 0; step < 2 * n; ++step) {
    Entry& e = s.entries[s.hand];
    const uint32_t idx = static_cast<uint32_t>(s.hand);
    s.hand = (s.hand + 1) % n;
    if (!e.live) continue;
    if (e.visited.load(std::memory_order_relaxed) != 0) {
      e.visited.store(0, std::memory_order_relaxed);
      continue;
    }
    EraseEntry(s, idx);
    evictions_metric_->Increment(1);
    return true;
  }
  return false;
}

void CellCache::Insert(uint64_t key, uint64_t epoch, Collector&& c) {
  if (!enabled() || !c.cacheable()) return;
  Stripe& s = StripeOf(key);
  const size_t bytes = EntryBytes(c.docs_.size());
  if (bytes > s.capacity_bytes) return;  // would monopolize the stripe

  std::unique_lock<std::shared_mutex> lock(s.mutex);
  auto it = s.index.find(key);
  if (it != s.index.end()) {
    // Replace: a racing reader inserted first, or ours went stale and was
    // refreshed. Dropping the old entry keeps exactly one per key.
    EraseEntry(s, it->second);
    evictions_metric_->Increment(1);
  }
  while (s.bytes + bytes > s.capacity_bytes) {
    if (!EvictOne(s)) break;
  }
  if (s.bytes + bytes > s.capacity_bytes) return;  // everything pinned? no:
  // entries are never pinned; EvictOne only fails on an empty stripe, so
  // this bail-out is unreachable once bytes <= capacity was checked above.

  uint32_t idx;
  if (!s.free.empty()) {
    idx = s.free.back();
    s.free.pop_back();
  } else {
    s.entries.emplace_back();
    idx = static_cast<uint32_t>(s.entries.size() - 1);
  }
  Entry& e = s.entries[idx];
  e.key = key;
  e.epoch = epoch;
  e.term = c.term_;
  e.live = true;
  e.visited.store(0, std::memory_order_relaxed);  // SIEVE: enter unvisited
  e.docs.assign(c.docs_.begin(), c.docs_.end());
  e.weights.assign(c.weights_.begin(), c.weights_.end());
  e.xs.assign(c.xs_.begin(), c.xs_.end());
  e.ys.assign(c.ys_.begin(), c.ys_.end());
  s.index[key] = idx;
  s.bytes += bytes;
  resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  bytes_metric_->Add(static_cast<int64_t>(bytes));
  insertions_metric_->Increment(1);
}

void CellCache::Clear() {
  for (auto& sp : stripes_) {
    Stripe& s = *sp;
    std::unique_lock<std::shared_mutex> lock(s.mutex);
    for (size_t i = 0; i < s.entries.size(); ++i) {
      if (!s.entries[i].live) continue;
      EraseEntry(s, static_cast<uint32_t>(i));
      evictions_metric_->Increment(1);
    }
  }
}

size_t CellCache::entry_count() const {
  size_t n = 0;
  for (const auto& sp : stripes_) {
    std::shared_lock<std::shared_mutex> lock(sp->mutex);
    n += sp->index.size();
  }
  return n;
}

}  // namespace i3

