#include "i3/replica_ops.h"

#include <memory>
#include <utility>
#include <vector>

#include "i3/i3_index.h"

namespace i3 {

namespace {

/// Every hook receives indexes built by the ReplicaSet factory, which the
/// MakeI3ReplicaOps contract pins to I3Index; the cast is checked anyway
/// so a mis-wired factory fails loudly instead of corrupting memory.
I3Index* AsI3(SpatialKeywordIndex& index) {
  return dynamic_cast<I3Index*>(&index);
}

}  // namespace

ReplicaOps MakeI3ReplicaOps(
    std::function<I3Options(uint32_t replica)> options_for_replica) {
  ReplicaOps ops;
  ops.save = [](SpatialKeywordIndex& index, const std::string& path) {
    I3Index* i3 = AsI3(index);
    if (i3 == nullptr) return Status::Internal("replica is not an I3Index");
    return i3->SaveTo(path);
  };
  ops.load = [options_for_replica](const std::string& path, uint32_t replica)
      -> Result<std::unique_ptr<SpatialKeywordIndex>> {
    auto loaded = I3Index::LoadFrom(path, options_for_replica(replica));
    if (!loaded.ok()) return loaded.status();
    return std::unique_ptr<SpatialKeywordIndex>(loaded.MoveValue().release());
  };
  ops.page_count = [](SpatialKeywordIndex& index) -> uint64_t {
    I3Index* i3 = AsI3(index);
    return i3 == nullptr ? 0 : i3->DataPageCount();
  };
  ops.verify_page = [](SpatialKeywordIndex& index, uint64_t page) {
    I3Index* i3 = AsI3(index);
    if (i3 == nullptr) return Status::Internal("replica is not an I3Index");
    return i3->VerifyDataPage(static_cast<PageId>(page));
  };
  ops.read_page = [](SpatialKeywordIndex& index,
                     uint64_t page) -> Result<std::vector<uint8_t>> {
    I3Index* i3 = AsI3(index);
    if (i3 == nullptr) return Status::Internal("replica is not an I3Index");
    return i3->ReadDataPageBytes(static_cast<PageId>(page));
  };
  ops.write_page = [](SpatialKeywordIndex& index, uint64_t page,
                      const std::vector<uint8_t>& bytes) {
    I3Index* i3 = AsI3(index);
    if (i3 == nullptr) return Status::Internal("replica is not an I3Index");
    return i3->WriteDataPageBytes(static_cast<PageId>(page), bytes);
  };
  ops.quarantined_pages = [](const SpatialKeywordIndex& index) -> uint64_t {
    const I3Index* i3 = dynamic_cast<const I3Index*>(&index);
    return i3 == nullptr ? 0 : i3->QuarantinedDataPages();
  };
  return ops;
}

}  // namespace i3
