// I3: the scalable integrated inverted index (Section 4) -- the paper's
// primary contribution.
//
// Layout:
//   lookup table (memory)  : keyword -> {dense in root?, page or node ref}
//   head file              : summary nodes of dense keyword cells
//   data file              : pages of spatial tuples tagged by source id
//
// Maintenance follows Algorithms 1-3 (insert, including dense splits and
// keyword-cell relocation), Section 4.5 (delete with bottom-up summary
// rebuild; update = delete + insert). Search follows Algorithms 4-6: a
// best-first descent over quadtree cells with signature-intersection
// pruning under AND semantics and an Apriori subset lattice for the OR
// upper bound.

#ifndef I3_I3_I3_INDEX_H_
#define I3_I3_I3_INDEX_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "i3/data_file.h"
#include "i3/head_file.h"
#include "i3/options.h"
#include "model/index.h"
#include "model/scorer.h"
#include "obs/trace.h"
#include "quadtree/cell.h"

namespace i3 {

/// \brief Per-query search statistics (candidates examined, cells pruned);
/// exposed for the ablation benchmarks.
struct I3SearchStats {
  uint64_t candidates_pushed = 0;
  uint64_t candidates_popped = 0;
  uint64_t cells_pruned_signature = 0;
  uint64_t cells_pruned_coverage = 0;
  uint64_t cells_pruned_score = 0;
  uint64_t docs_scored = 0;
  /// Keyword cells whose page fetch was deferred at push time and never
  /// happened -- the candidate (or the cell itself) died first.
  uint64_t cells_skipped = 0;
  /// Deferred cells discarded at pop time because the candidate's
  /// re-derived upper bound could no longer beat the k-th heap score
  /// (the WAND-style block-max prune).
  uint64_t blockmax_prunes = 0;
};

inline SearchStatsView View(const I3SearchStats& s) {
  SearchStatsView v;
  v.Set("candidates_pushed", s.candidates_pushed);
  v.Set("candidates_popped", s.candidates_popped);
  v.Set("cells_pruned_signature", s.cells_pruned_signature);
  v.Set("cells_pruned_coverage", s.cells_pruned_coverage);
  v.Set("cells_pruned_score", s.cells_pruned_score);
  v.Set("docs_scored", s.docs_scored);
  v.Set("cells_skipped", s.cells_skipped);
  v.Set("blockmax_prunes", s.blockmax_prunes);
  return v;
}

/// \brief The I3 index.
class I3Index final : public SpatialKeywordIndex {
 public:
  /// Creates an in-memory-backed index. For a disk-backed data file set
  /// I3Options::data_file_path and use Create().
  explicit I3Index(I3Options options = {});

  /// Factory honoring I3Options::data_file_path (fallible: disk I/O).
  static Result<std::unique_ptr<I3Index>> Create(I3Options options);

  std::string Name() const override { return "I3"; }

  Status Insert(const SpatialDocument& doc) override;
  Status Delete(const SpatialDocument& doc) override;
  Result<std::vector<ScoredDoc>> Search(const Query& q,
                                        double alpha) override;

  /// The query path keeps all per-query state on the stack (SearchContext)
  /// and charges I/O to internally synchronized counters, so concurrent
  /// readers are safe as long as no writer runs (the concurrency wrappers
  /// provide that exclusion).
  bool SupportsConcurrentSearch() const override { return true; }

  /// \brief Range-constrained keyword search (the "query region" variant
  /// of spatial keyword search surveyed in the paper's Section 2): returns
  /// the documents located inside `range` that satisfy `semantics` over
  /// `terms`, ranked by textual relevance. `limit` == 0 returns all
  /// matches. Quadtree cells outside the range and (under AND) cells whose
  /// signature intersection is empty are pruned without page reads.
  Result<std::vector<ScoredDoc>> SearchRange(const Rect& range,
                                             std::vector<TermId> terms,
                                             Semantics semantics,
                                             uint32_t limit = 0);

  /// \brief Serializes the whole index (lookup table, head file, data
  /// file) to `path`. See LoadFrom.
  Status SaveTo(const std::string& path) const;

  /// \brief Restores an index previously written by SaveTo. The loaded
  /// index is fully functional (inserts, deletes, searches).
  static Result<std::unique_ptr<I3Index>> LoadFrom(const std::string& path);

  /// \brief LoadFrom with environment options: the index structure (space,
  /// page size, signature bits, ...) still comes from the file, but
  /// `base`'s storage stack -- page_file_factory, checksum_pages,
  /// buffer_pool -- is honored, so a persisted index can be re-homed
  /// (e.g. under a fault-injecting backing).
  static Result<std::unique_ptr<I3Index>> LoadFrom(const std::string& path,
                                                   I3Options base);

  uint64_t DocumentCount() const override { return doc_count_; }
  IndexSizeInfo SizeInfo() const override;

  const IoStats& io_stats() const override;
  void ResetIoStats() override;
  void ClearCache() override {
    data_->ClearCache();
    head_.ClearCache();
  }

  /// Statistics of the most recent completed Search call (snapshot; under
  /// concurrent readers "most recent" is whichever search published last).
  I3SearchStats last_search_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return last_search_stats_;
  }

  SearchStatsView LastSearchStats() const override {
    return View(last_search_stats());
  }

  /// Number of summary nodes in the head file.
  size_t SummaryNodeCount() const { return head_.NodeCount(); }
  /// Number of pages in the data file.
  PageId DataPageCount() const { return data_->PageCount(); }

  // --- scrub/heal hooks (model/replica_set.h via i3/replica_ops.h) ---

  /// Checksum-verifying device read of one data page, bypassing the
  /// buffer pool; Corruption when the stored bytes are damaged. Safe
  /// under concurrent readers (it touches only the file stack and its
  /// internally synchronized I/O counters).
  Status VerifyDataPage(PageId id) { return data_->VerifyPage(id); }
  /// Raw logical bytes of one data page (heal source).
  Result<std::vector<uint8_t>> ReadDataPageBytes(PageId id) {
    return data_->ReadPageBytes(id);
  }
  /// Writes raw page bytes through (heal sink): re-stamps the checksum,
  /// bumps the page epoch, clears quarantine. Requires writer exclusion
  /// like every other mutation.
  Status WriteDataPageBytes(PageId id, const std::vector<uint8_t>& bytes) {
    return data_->WritePageBytes(id, bytes);
  }
  /// Data pages currently quarantined by the buffer pool.
  uint64_t QuarantinedDataPages() const {
    return data_->QuarantinedPages();
  }
  /// Number of distinct keywords in the lookup table.
  size_t KeywordCount() const { return lookup_.size(); }

  const I3Options& options() const { return options_; }

  /// \brief Structural invariant checker used by the property tests:
  /// verifies that every tuple is stored in the keyword cell containing its
  /// location, that no non-dense cell exceeds capacity, that summaries
  /// cover their subtrees (signature superset, max_s is a max), and that
  /// the free-space map matches the pages. Returns the number of tuples.
  Result<uint64_t> CheckInvariants();

 private:
  struct LookupEntry {
    bool dense = false;
    // Non-dense: the single data page holding <w, rootcell>.
    PageId page = kInvalidPageId;
    SourceId source = kFreeSlot;
    // Dense: the root summary node.
    NodeId node = kInvalidNodeId;
  };

  Status ValidateDocument(const SpatialDocument& doc) const;

  // --- insert path (Algorithms 1-3) ---
  Status InsertTuple(const SpatialTuple& t);
  Status InsertNewKeyword(const SpatialTuple& t);
  Status InsertNonDenseRoot(const SpatialTuple& t, LookupEntry* entry);
  Status InsertDense(const SpatialTuple& t, NodeId node_id, CellId cell,
                     Rect rect);
  /// Splits the dense keyword cell whose tuples (tagged `source`) fill
  /// `page`: allocates a summary node, partitions tuples by quadrant with
  /// fresh source ids (retagged in place), and returns the new node.
  Result<NodeId> SplitCell(const Rect& rect, PageId page, TuplePage page_img,
                           SourceId source);
  /// Moves the keyword cell `source` out of full page `page` (image given)
  /// to a page with room for the cell plus `extra` tuples; returns the new
  /// page. `*image` is updated for the old page and both pages are written.
  Result<PageId> RelocateCell(PageId page, TuplePage* image, SourceId source,
                              const std::vector<SpatialTuple>& extra);

  // --- delete path (Section 4.5) ---
  Status DeleteTuple(const SpatialTuple& t);
  /// Rebuilds `entry` from the tuples of `source` on `page` + `overflow`.
  Result<SummaryEntry> RebuildEntryFromPages(
      PageId page, const std::vector<PageId>& overflow, SourceId source);

  // --- search path (Algorithms 4-6): see i3_search.cc ---
  struct Candidate;
  class SearchContext;

  /// Search body; accumulates per-query statistics into `stats` (stack
  /// storage of the caller, so concurrent searches never share scratch).
  /// `trace` is null unless this query was sampled (obs/trace.h); stage
  /// timers are no-ops then.
  Result<std::vector<ScoredDoc>> SearchImpl(const Query& q, double alpha,
                                            I3SearchStats* stats,
                                            obs::QueryTrace* trace);

  /// Reads all tuples of the keyword cell referenced by (page, overflow,
  /// source), charging data-file I/O. Cold paths only; the query hot path
  /// streams through VisitCellTuples instead of materializing a vector.
  Result<std::vector<SpatialTuple>> ReadCellTuples(
      PageId page, const std::vector<PageId>& overflow, SourceId source);

  /// \brief Single-pass, zero-copy visit of every tuple of the keyword cell
  /// (page, overflow, source): `fn(const SpatialTuple&)` is invoked straight
  /// off the pinned page frames, one charged read per page, no intermediate
  /// vector. `overflow` may be null when the cell has no overflow chain.
  template <typename Fn>
  Status VisitCellTuples(PageId page, const std::vector<PageId>* overflow,
                         SourceId source, Fn&& fn) {
    // Routed through the decoded-cell cache: a fresh entry replays the
    // cell's tuples without a page view (or decode) at all; a miss views
    // the page once and memoizes. Overflow pages cache independently
    // under their own (page, source) keys.
    auto n = data_->VisitSourceCached(page, source, fn);
    if (!n.ok()) return n.status();
    if (overflow != nullptr) {
      for (PageId op : *overflow) {
        auto on = data_->VisitSourceCached(op, source, fn);
        if (!on.ok()) return on.status();
      }
    }
    return Status::OK();
  }

  I3Options options_;
  CellSpace cells_;
  std::unordered_map<TermId, LookupEntry> lookup_;
  std::unique_ptr<DataFile> data_;
  HeadFile head_;
  SourceId next_source_ = 1;
  uint64_t doc_count_ = 0;
  // Guards last_search_stats_ and merged_stats_ (both are snapshot scratch
  // published by/for accessors; the index structures themselves rely on the
  // caller's reader/writer exclusion instead).
  mutable std::mutex stats_mutex_;
  I3SearchStats last_search_stats_;
  mutable IoStats merged_stats_;  // scratch for io_stats()

  // Metric handles cached at construction (see obs/metrics.h: the registry
  // is never touched on the query path). Index 0 = AND, 1 = OR.
  obs::Histogram* search_latency_us_[2];
  obs::Histogram* insert_latency_us_;
  obs::Histogram* delete_latency_us_;
  // Dedicated series for the block-max pruning counters (the per-stat
  // i3_search_stat_total family carries them too; these are the names the
  // bench-regression gate asserts on).
  obs::Counter* cells_skipped_total_;
  obs::Counter* blockmax_prunes_total_;
  SearchStatsEmitter stats_emitter_;
};

}  // namespace i3

#endif  // I3_I3_I3_INDEX_H_
