#include "i3/cell_codec.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "i3/data_file.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define I3_UNPACK_X86 1
#include <immintrin.h>
#endif

namespace i3 {
namespace codec {

namespace {

// ------------------------------------------------------- little-endian I/O

template <typename T>
T LoadLe(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void StoreLe(uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

uint64_t DoubleBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, 8);
  return u;
}

double BitsDouble(uint64_t u) {
  double d;
  std::memcpy(&d, &u, 8);
  return d;
}

uint32_t BitsFor(uint32_t v) {
  return v == 0 ? 0 : 32u - static_cast<uint32_t>(__builtin_clz(v));
}

/// Significant low bytes of an XOR residual: byte count covering the
/// highest set bit (0 for a zero residual).
uint32_t SigBytes(uint64_t x) {
  if (x == 0) return 0;
  return (64u - static_cast<uint32_t>(__builtin_clzll(x)) + 7u) / 8u;
}

// -------------------------------------------------------------- weight q16

constexpr uint8_t kWeightRaw = 0;    // 4B float32 per tuple
constexpr uint8_t kWeightQ16 = 1;    // w_min + q * w_step, 2B per tuple
constexpr uint8_t kWeightConst = 2;  // one float32 for the whole group

uint32_t QuantizeQ16(float w, float w_min, float w_step) {
  const double q = std::lrint((static_cast<double>(w) - w_min) / w_step);
  if (q < 0.0) return 0;
  if (q > 65535.0) return 65535;
  return static_cast<uint32_t>(q);
}

// ------------------------------------------------------------ page planning

struct GroupPlan {
  uint32_t source = 0;
  uint32_t term = 0;
  uint32_t min_doc = 0;
  uint8_t doc_bits = 0;
  uint8_t weight_mode = kWeightRaw;
  uint8_t x_bytes = 0;
  uint8_t y_bytes = 0;
  float w_min = 0.0f;   // q16 minimum / constant value
  float w_step = 0.0f;  // q16 step
  float block_max = 0.0f;
  double base_x = 0.0;
  double base_y = 0.0;
  size_t bytes = 0;  // group header + payload (directory entry excluded)
  std::vector<uint32_t> members;  // slot indexes, in slot order
};

size_t GroupHeaderBytes(uint8_t weight_mode) {
  return 24 + (weight_mode == kWeightQ16 ? 8 : 0) +
         (weight_mode == kWeightConst ? 4 : 0);
}

struct PagePlan {
  std::vector<GroupPlan> groups;  // first-appearance order of sources
  size_t total = 0;
};

PagePlan PlanPage(const StoredTuple* slots, size_t n) {
  PagePlan plan;
  for (size_t s = 0; s < n; ++s) {
    GroupPlan* g = nullptr;
    for (GroupPlan& cand : plan.groups) {
      if (cand.source == slots[s].source) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      plan.groups.emplace_back();
      g = &plan.groups.back();
      g->source = slots[s].source;
      g->term = slots[s].tuple.term;
      g->base_x = slots[s].tuple.location.x;
      g->base_y = slots[s].tuple.location.y;
    }
    g->members.push_back(static_cast<uint32_t>(s));
  }

  plan.total = kV2PageHeaderBytes + plan.groups.size() * kV2DirEntryBytes;
  for (GroupPlan& g : plan.groups) {
    uint32_t min_doc = UINT32_MAX, max_doc = 0;
    float w_min = 0.0f, w_max = 0.0f;
    uint32_t xb = 0, yb = 0;
    bool first = true;
    for (uint32_t s : g.members) {
      const SpatialTuple& t = slots[s].tuple;
      min_doc = std::min(min_doc, t.doc);
      max_doc = std::max(max_doc, t.doc);
      if (first) {
        w_min = w_max = t.weight;
        first = false;
      } else {
        w_min = std::min(w_min, t.weight);
        w_max = std::max(w_max, t.weight);
      }
      xb = std::max(xb, SigBytes(DoubleBits(t.location.x) ^
                                 DoubleBits(g.base_x)));
      yb = std::max(yb, SigBytes(DoubleBits(t.location.y) ^
                                 DoubleBits(g.base_y)));
    }
    g.min_doc = min_doc;
    g.doc_bits = static_cast<uint8_t>(BitsFor(max_doc - min_doc));
    g.x_bytes = static_cast<uint8_t>(xb);
    g.y_bytes = static_cast<uint8_t>(yb);
    g.block_max = w_max;

    if (w_min == w_max) {
      g.weight_mode = kWeightConst;
      g.w_min = w_min;
    } else {
      // Try exact 16-bit quantization; keep it only when every weight
      // round-trips bit for bit (the search path must replay v1 scores).
      const float step = (w_max - w_min) / 65535.0f;
      bool exact = step > 0.0f;
      for (uint32_t s : g.members) {
        const float w = slots[s].tuple.weight;
        if (!exact) break;
        const uint32_t q = QuantizeQ16(w, w_min, step);
        exact = (w_min + static_cast<float>(q) * step) == w;
      }
      if (exact) {
        g.weight_mode = kWeightQ16;
        g.w_min = w_min;
        g.w_step = step;
      } else {
        g.weight_mode = kWeightRaw;
      }
    }

    const size_t count = g.members.size();
    g.bytes = GroupHeaderBytes(g.weight_mode) +
              (count * g.doc_bits + 7) / 8 +
              (g.weight_mode == kWeightRaw
                   ? 4 * count
                   : (g.weight_mode == kWeightQ16 ? 2 * count : 0)) +
              count * (g.x_bytes + g.y_bytes);
    plan.total += g.bytes;
  }
  return plan;
}

}  // namespace

bool IsV2Page(const uint8_t* page, size_t page_size) {
  if (page_size < kV2PageHeaderBytes) return false;
  return LoadLe<uint32_t>(page) == kV2PageMagic &&
         LoadLe<uint16_t>(page + 4) == kV2FormatVersion;
}

size_t EncodedPageSize(const StoredTuple* slots, size_t n) {
  return PlanPage(slots, n).total;
}

size_t CellEnvelopeBytes(const SpatialTuple* tuples, size_t n) {
  if (n == 0) return kV2PageHeaderBytes;
  uint32_t min_doc = tuples[0].doc;
  uint32_t max_doc = tuples[0].doc;
  const uint64_t bx = DoubleBits(tuples[0].location.x);
  const uint64_t by = DoubleBits(tuples[0].location.y);
  uint32_t xb = 0;
  uint32_t yb = 0;
  for (size_t i = 0; i < n; ++i) {
    min_doc = std::min(min_doc, tuples[i].doc);
    max_doc = std::max(max_doc, tuples[i].doc);
    xb = std::max(xb, SigBytes(DoubleBits(tuples[i].location.x) ^ bx));
    yb = std::max(yb, SigBytes(DoubleBits(tuples[i].location.y) ^ by));
  }
  const uint32_t doc_bits = BitsFor(max_doc - min_doc);
  // Weight term: the worse of mode 0 (24B header + 4B/tuple) and mode 1
  // (32B header + 2B/tuple), so whichever mode any subset lands on is
  // covered; mode 2 is smaller than both.
  const size_t weight_bytes = std::max<size_t>(4 * n, 8 + 2 * n);
  return kV2PageHeaderBytes + kV2DirEntryBytes + 24 +
         (n * static_cast<size_t>(doc_bits) + 7) / 8 + weight_bytes +
         static_cast<size_t>(xb + yb) * n;
}

Result<size_t> EncodePage(const StoredTuple* slots, size_t n, uint8_t* out,
                          size_t page_size) {
  PagePlan plan = PlanPage(slots, n);
  if (plan.total > page_size) {
    return Status::ResourceExhausted(
        "v2 page encoding needs " + std::to_string(plan.total) +
        " bytes, page holds " + std::to_string(page_size));
  }
  if (plan.groups.size() > UINT16_MAX) {
    return Status::ResourceExhausted("too many keyword cells on one page");
  }

  StoreLe<uint32_t>(out, kV2PageMagic);
  StoreLe<uint16_t>(out + 4, kV2FormatVersion);
  StoreLe<uint16_t>(out + 6, static_cast<uint16_t>(plan.groups.size()));
  StoreLe<uint32_t>(out + 8, static_cast<uint32_t>(plan.total));

  std::vector<uint32_t> deltas;
  size_t off = kV2PageHeaderBytes + plan.groups.size() * kV2DirEntryBytes;
  for (size_t gi = 0; gi < plan.groups.size(); ++gi) {
    const GroupPlan& g = plan.groups[gi];
    const uint32_t count = static_cast<uint32_t>(g.members.size());

    uint8_t* dir = out + kV2PageHeaderBytes + gi * kV2DirEntryBytes;
    StoreLe<uint32_t>(dir + 0, g.source);
    StoreLe<uint32_t>(dir + 4, g.term);
    StoreLe<uint32_t>(dir + 8, count);
    StoreLe<uint32_t>(dir + 12, static_cast<uint32_t>(off));
    StoreLe<float>(dir + 16, g.block_max);

    uint8_t* p = out + off;
    StoreLe<uint32_t>(p + 0, g.min_doc);
    p[4] = g.doc_bits;
    p[5] = g.weight_mode;
    p[6] = g.x_bytes;
    p[7] = g.y_bytes;
    StoreLe<double>(p + 8, g.base_x);
    StoreLe<double>(p + 16, g.base_y);
    p += 24;
    if (g.weight_mode == kWeightQ16) {
      StoreLe<float>(p, g.w_min);
      StoreLe<float>(p + 4, g.w_step);
      p += 8;
    } else if (g.weight_mode == kWeightConst) {
      StoreLe<float>(p, g.w_min);
      p += 4;
    }

    deltas.clear();
    deltas.reserve(count);
    for (uint32_t s : g.members) {
      deltas.push_back(slots[s].tuple.doc - g.min_doc);
    }
    internal::PackBits(deltas.data(), count, g.doc_bits, p);
    p += (static_cast<size_t>(count) * g.doc_bits + 7) / 8;

    if (g.weight_mode == kWeightRaw) {
      for (uint32_t s : g.members) {
        StoreLe<float>(p, slots[s].tuple.weight);
        p += 4;
      }
    } else if (g.weight_mode == kWeightQ16) {
      for (uint32_t s : g.members) {
        StoreLe<uint16_t>(
            p, static_cast<uint16_t>(
                   QuantizeQ16(slots[s].tuple.weight, g.w_min, g.w_step)));
        p += 2;
      }
    }

    const uint64_t bx = DoubleBits(g.base_x);
    for (uint32_t s : g.members) {
      const uint64_t r = DoubleBits(slots[s].tuple.location.x) ^ bx;
      std::memcpy(p, &r, g.x_bytes);  // low bytes, little-endian
      p += g.x_bytes;
    }
    const uint64_t by = DoubleBits(g.base_y);
    for (uint32_t s : g.members) {
      const uint64_t r = DoubleBits(slots[s].tuple.location.y) ^ by;
      std::memcpy(p, &r, g.y_bytes);
      p += g.y_bytes;
    }

    assert(static_cast<size_t>(p - out) == off + g.bytes);
    off += g.bytes;
  }
  assert(off == plan.total);
  return plan.total;
}

// ---------------------------------------------------------------- read path

Result<uint32_t> GroupCount(const uint8_t* page, size_t page_size) {
  if (!IsV2Page(page, page_size)) {
    return Status::Corruption("not a v2 page");
  }
  const uint32_t gc = LoadLe<uint16_t>(page + 6);
  const uint32_t used = LoadLe<uint32_t>(page + 8);
  if (used > page_size ||
      kV2PageHeaderBytes + static_cast<size_t>(gc) * kV2DirEntryBytes >
          used) {
    return Status::Corruption("v2 page header out of bounds");
  }
  return gc;
}

Status ReadGroupRef(const uint8_t* page, size_t page_size, uint32_t g,
                    GroupRef* out) {
  auto gc = GroupCount(page, page_size);
  if (!gc.ok()) return gc.status();
  if (g >= gc.ValueOrDie()) {
    return Status::Corruption("v2 group index out of range");
  }
  const uint8_t* dir =
      page + kV2PageHeaderBytes + static_cast<size_t>(g) * kV2DirEntryBytes;
  out->source = LoadLe<uint32_t>(dir + 0);
  out->term = LoadLe<uint32_t>(dir + 4);
  out->count = LoadLe<uint32_t>(dir + 8);
  out->offset = LoadLe<uint32_t>(dir + 12);
  out->block_max = LoadLe<float>(dir + 16);
  return Status::OK();
}

Result<bool> FindGroup(const uint8_t* page, size_t page_size, uint32_t source,
                       GroupRef* out) {
  auto gc_res = GroupCount(page, page_size);
  if (!gc_res.ok()) return gc_res.status();
  const uint32_t gc = gc_res.ValueOrDie();
  for (uint32_t g = 0; g < gc; ++g) {
    const uint8_t* dir =
        page + kV2PageHeaderBytes + static_cast<size_t>(g) * kV2DirEntryBytes;
    if (LoadLe<uint32_t>(dir) == source) {
      I3_RETURN_NOT_OK(ReadGroupRef(page, page_size, g, out));
      return true;
    }
  }
  return false;
}

// ------------------------------------------------------------ decode scratch

namespace {

struct ScratchBufs {
  std::vector<uint32_t> docs;
  std::vector<float> weights;
  std::vector<double> xs, ys;

  void Ensure(uint32_t n) {
    if (docs.size() < n) {
      docs.resize(n);
      weights.resize(n);
      xs.resize(n);
      ys.resize(n);
    }
  }
};

struct ScratchStack {
  std::vector<std::unique_ptr<ScratchBufs>> levels;
  size_t depth = 0;
};
thread_local ScratchStack t_decode_scratch;

}  // namespace

DecodeScratch::DecodeScratch() {
  ScratchStack& s = t_decode_scratch;
  if (s.depth == s.levels.size()) {
    s.levels.push_back(std::make_unique<ScratchBufs>());
  }
  slot_ = s.levels[s.depth].get();
  ++s.depth;
}

DecodeScratch::~DecodeScratch() {
  assert(t_decode_scratch.depth > 0);
  --t_decode_scratch.depth;
}

Status DecodeGroup(const uint8_t* page, size_t page_size, const GroupRef& g,
                   DecodeScratch* scratch, DecodedGroup* out) {
  const uint32_t used = LoadLe<uint32_t>(page + 8);
  // Sanity cap: a directory count larger than the bit capacity of the page
  // cannot be honest (it would also make the scratch resize unbounded).
  if (g.count == 0 || g.count > page_size * 8) {
    return Status::Corruption("v2 group count out of bounds");
  }
  if (g.offset < kV2PageHeaderBytes ||
      static_cast<size_t>(g.offset) + 24 > used || used > page_size) {
    return Status::Corruption("v2 group header out of bounds");
  }

  const uint8_t* p = page + g.offset;
  const uint32_t min_doc = LoadLe<uint32_t>(p + 0);
  const uint8_t doc_bits = p[4];
  const uint8_t weight_mode = p[5];
  const uint8_t x_bytes = p[6];
  const uint8_t y_bytes = p[7];
  const double base_x = LoadLe<double>(p + 8);
  const double base_y = LoadLe<double>(p + 16);
  if (doc_bits > 32 || weight_mode > kWeightConst || x_bytes > 8 ||
      y_bytes > 8) {
    return Status::Corruption("v2 group field out of range");
  }

  const size_t n = g.count;
  const size_t header = GroupHeaderBytes(weight_mode);
  const size_t delta_bytes = (n * doc_bits + 7) / 8;
  const size_t weight_bytes =
      weight_mode == kWeightRaw ? 4 * n : (weight_mode == kWeightQ16 ? 2 * n
                                                                     : 0);
  const size_t total =
      header + delta_bytes + weight_bytes + n * (x_bytes + y_bytes);
  if (static_cast<size_t>(g.offset) + total > used) {
    return Status::Corruption("v2 group payload out of bounds");
  }

  ScratchBufs* bufs = static_cast<ScratchBufs*>(scratch->slot_);
  bufs->Ensure(g.count);
  uint32_t* docs = bufs->docs.data();
  float* weights = bufs->weights.data();
  double* xs = bufs->xs.data();
  double* ys = bufs->ys.data();

  const uint8_t* deltas = p + header;
  internal::UnpackBits(deltas, page_size - (g.offset + header),
                       g.count, doc_bits, docs);
  for (size_t i = 0; i < n; ++i) docs[i] += min_doc;

  const uint8_t* wp = deltas + delta_bytes;
  if (weight_mode == kWeightRaw) {
    for (size_t i = 0; i < n; ++i) weights[i] = LoadLe<float>(wp + 4 * i);
  } else if (weight_mode == kWeightQ16) {
    const float w_min = LoadLe<float>(p + 24);
    const float w_step = LoadLe<float>(p + 28);
    for (size_t i = 0; i < n; ++i) {
      weights[i] =
          w_min + static_cast<float>(LoadLe<uint16_t>(wp + 2 * i)) * w_step;
    }
  } else {
    const float w = LoadLe<float>(p + 24);
    for (size_t i = 0; i < n; ++i) weights[i] = w;
  }

  const uint8_t* xp = wp + weight_bytes;
  const uint64_t bx = DoubleBits(base_x);
  for (size_t i = 0; i < n; ++i) {
    uint64_t r = 0;
    std::memcpy(&r, xp + i * x_bytes, x_bytes);
    xs[i] = BitsDouble(r ^ bx);
  }
  const uint8_t* yp = xp + n * x_bytes;
  const uint64_t by = DoubleBits(base_y);
  for (size_t i = 0; i < n; ++i) {
    uint64_t r = 0;
    std::memcpy(&r, yp + i * y_bytes, y_bytes);
    ys[i] = BitsDouble(r ^ by);
  }

  out->docs = docs;
  out->weights = weights;
  out->xs = xs;
  out->ys = ys;
  out->n = g.count;
  return Status::OK();
}

// -------------------------------------------------------------- bit packing

namespace internal {

void PackBits(const uint32_t* vals, uint32_t n, uint32_t bits, uint8_t* dst) {
  if (bits == 0) return;
  const uint64_t mask = bits == 32 ? 0xFFFFFFFFull : ((1ull << bits) - 1);
  uint64_t buf = 0;
  uint32_t have = 0;
  uint8_t* p = dst;
  for (uint32_t i = 0; i < n; ++i) {
    buf |= (static_cast<uint64_t>(vals[i]) & mask) << have;
    have += bits;
    while (have >= 8) {
      *p++ = static_cast<uint8_t>(buf & 0xFF);
      buf >>= 8;
      have -= 8;
    }
  }
  if (have != 0) *p = static_cast<uint8_t>(buf & 0xFF);
}

void UnpackBitsPortable(const uint8_t* src, uint32_t n, uint32_t bits,
                        uint32_t* out) {
  if (bits == 0) {
    std::fill(out, out + n, 0u);
    return;
  }
  const uint64_t mask = bits == 32 ? 0xFFFFFFFFull : ((1ull << bits) - 1);
  uint64_t buf = 0;
  uint32_t have = 0;
  const uint8_t* p = src;
  for (uint32_t i = 0; i < n; ++i) {
    while (have < bits) {
      buf |= static_cast<uint64_t>(*p++) << have;
      have += 8;
    }
    out[i] = static_cast<uint32_t>(buf & mask);
    buf >>= bits;
    have -= bits;
  }
}

#ifdef I3_UNPACK_X86

// Eight values per iteration: gather the 32-bit window containing each
// value's first bit, shift it into place, mask. Sound for widths <= 25 (a
// window shifted by at most 7 bits still holds 25 payload bits); wider
// deltas -- astronomically rare at real cell sizes -- take the portable
// loop. The wrapper guarantees every gathered window lies inside the page.
__attribute__((target("avx2"))) void UnpackBitsAvx2(const uint8_t* src,
                                                    uint32_t n, uint32_t bits,
                                                    uint32_t* out) {
  const uint32_t mask = (1u << bits) - 1;
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
  const __m256i vseven = _mm256_set1_epi32(7);
  const __m256i lane_bits = _mm256_mullo_epi32(
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
      _mm256_set1_epi32(static_cast<int>(bits)));
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i bitpos = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(i * bits)), lane_bits);
    const __m256i byteoff = _mm256_srli_epi32(bitpos, 3);
    const __m256i shift = _mm256_and_si256(bitpos, vseven);
    __m256i w = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(src), byteoff, 1);
    w = _mm256_and_si256(_mm256_srlv_epi32(w, shift), vmask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), w);
  }
  for (; i < n; ++i) {
    const uint64_t bp = static_cast<uint64_t>(i) * bits;
    uint32_t w;
    std::memcpy(&w, src + (bp >> 3), 4);
    out[i] = (w >> (bp & 7)) & mask;
  }
}

// The SIMD path must reproduce the portable unpacker bit for bit across
// every dispatchable width, random payloads, and ragged counts before it
// is allowed to serve (the checksum.cc discipline).
bool SelfTestAvx2() {
  uint8_t packed[256];
  uint32_t vals[48], got[48];
  uint64_t lcg = 0x9E3779B97F4A7C15ull;
  for (uint32_t bits = 1; bits <= 25; ++bits) {
    const uint64_t mask = (1ull << bits) - 1;
    for (uint32_t n : {1u, 7u, 8u, 9u, 31u, 48u}) {
      for (uint32_t i = 0; i < n; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        vals[i] = static_cast<uint32_t>((lcg >> 23) & mask);
      }
      std::memset(packed, 0, sizeof(packed));
      PackBits(vals, n, bits, packed);
      UnpackBitsAvx2(packed, n, bits, got);
      for (uint32_t i = 0; i < n; ++i) {
        if (got[i] != vals[i]) return false;
      }
    }
  }
  return true;
}

bool ChooseSimd() {
  return __builtin_cpu_supports("avx2") && SelfTestAvx2();
}

#else  // !I3_UNPACK_X86

bool ChooseSimd() { return false; }

#endif  // I3_UNPACK_X86

namespace {
const bool g_use_simd = ChooseSimd();
}  // namespace

bool UsingSimdUnpack() { return g_use_simd; }

void UnpackBits(const uint8_t* src, size_t src_readable, uint32_t n,
                uint32_t bits, uint32_t* out) {
  if (bits == 0) {
    std::fill(out, out + n, 0u);
    return;
  }
#ifdef I3_UNPACK_X86
  if (g_use_simd && bits <= 25 && n >= 8) {
    // Every gathered/memcpy'd window is 4 bytes at offset (i*bits)/8.
    const size_t need = (static_cast<size_t>(n - 1) * bits) / 8 + 4;
    if (need <= src_readable) {
      UnpackBitsAvx2(src, n, bits, out);
      return;
    }
  }
#endif
  UnpackBitsPortable(src, n, bits, out);
}

}  // namespace internal

}  // namespace codec
}  // namespace i3
