// The I3 data file (Section 4.3.3).
//
// A sequence of fixed-size pages, each split into P/B fixed-width slots, one
// slot per spatial tuple. Tuples carry a *source id* identifying the
// keyword cell they belong to, so different keyword cells can share a page
// (the index's storage-utilization advantage over S2I) and a page scan can
// separate them. A slot whose source id is zero is free.
//
// Slot layout (B = 32 bytes, little-endian):
//   [0..4)   source id   (uint32; 0 = free slot)
//   [4..8)   term id     (uint32)
//   [8..12)  doc id      (uint32)
//   [12..20) x / lng     (float64)
//   [20..28) y / lat     (float64)
//   [28..32) term weight (float32)

#ifndef I3_I3_DATA_FILE_H_
#define I3_I3_DATA_FILE_H_

#include <cstring>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "model/document.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace i3 {

/// Identifier of a keyword cell within the data file. Zero marks a free
/// slot and is never allocated.
using SourceId = uint32_t;
constexpr SourceId kFreeSlot = 0;

/// Serialized tuple width B. The paper's setting (page capacity P/B = 128
/// at P = 4KB).
constexpr size_t kTupleBytes = 32;

/// \brief One occupied slot: the tuple plus its keyword-cell tag.
struct StoredTuple {
  SourceId source = kFreeSlot;
  SpatialTuple tuple;
};

/// Decodes the non-source fields of one serialized slot into a stack value.
inline SpatialTuple DecodeSlotTuple(const uint8_t* src) {
  SpatialTuple t;
  std::memcpy(&t.term, src + 4, 4);
  std::memcpy(&t.doc, src + 8, 4);
  std::memcpy(&t.location.x, src + 12, 8);
  std::memcpy(&t.location.y, src + 20, 8);
  std::memcpy(&t.weight, src + 28, 4);
  return t;
}

/// Decodes the source tag of one serialized slot.
inline SourceId DecodeSlotSource(const uint8_t* src) {
  SourceId s;
  std::memcpy(&s, src, 4);
  return s;
}

/// \brief Decoded image of one data-file page -- the *write-path*
/// representation (insert, remove, relocation, compaction). Read paths use
/// DataFile::View, which decodes slots lazily out of the buffer-pool frame
/// without materializing this object.
class TuplePage {
 public:
  /// Occupied slots in slot order.
  std::vector<StoredTuple> slots;

  /// Tuples belonging to `source`.
  std::vector<SpatialTuple> OfSource(SourceId source) const;
  /// Number of tuples belonging to `source`.
  uint32_t CountSource(SourceId source) const;
  /// True if every occupied slot belongs to `source` (the "all the tuples
  /// in P are from the same source" test of Algorithms 2-3).
  bool AllFromSource(SourceId source) const;
};

/// \brief Zero-copy read window over one data-file page.
///
/// Obtained from DataFile::View. Points either at a pinned buffer-pool
/// frame (the frame cannot be evicted or recycled while the view lives) or,
/// for an uncached pool, at a per-thread scratch buffer the page was read
/// into. Either way the bytes are decoded lazily, slot by slot, into stack
/// values -- no TuplePage materialization, no per-read heap allocation.
///
/// Lifetime rules: a view is valid until destroyed; destroy views in LIFO
/// order per thread (scratch buffers are stacked); and -- as with every
/// read -- no writer may run concurrently.
class PageView {
 public:
  PageView() = default;
  PageView(PageView&& o) noexcept { *this = std::move(o); }
  PageView& operator=(PageView&& o) noexcept;
  PageView(const PageView&) = delete;
  PageView& operator=(const PageView&) = delete;
  ~PageView();

  /// Slots per page (P/B); slot indexes range over [0, capacity).
  uint32_t capacity() const { return capacity_; }

  /// Source tag of slot `s` (kFreeSlot for a free slot).
  SourceId SlotSource(uint32_t s) const {
    return DecodeSlotSource(data_ + s * kTupleBytes);
  }
  /// Tuple stored in slot `s` (meaningful only for occupied slots).
  SpatialTuple SlotTuple(uint32_t s) const {
    return DecodeSlotTuple(data_ + s * kTupleBytes);
  }

  /// \brief Single-pass visit of every tuple tagged `source`;
  /// `fn(const SpatialTuple&)`. Returns the number visited, so callers that
  /// used to CountSource-then-OfSource get both in one scan.
  template <typename Fn>
  uint32_t ForEachOfSource(SourceId source, Fn&& fn) const {
    uint32_t n = 0;
    for (uint32_t s = 0; s < capacity_; ++s) {
      if (SlotSource(s) == source) {
        fn(SlotTuple(s));
        ++n;
      }
    }
    return n;
  }

  /// \brief Single-pass visit of every occupied slot;
  /// `fn(SourceId, const SpatialTuple&)`.
  template <typename Fn>
  void ForEachSlot(Fn&& fn) const {
    for (uint32_t s = 0; s < capacity_; ++s) {
      const SourceId src = SlotSource(s);
      if (src != kFreeSlot) fn(src, SlotTuple(s));
    }
  }

 private:
  friend class DataFile;

  BufferPool::PinnedPage pin_;
  const uint8_t* data_ = nullptr;
  uint32_t capacity_ = 0;
  bool owns_scratch_ = false;  // holds the top of the thread scratch stack
};

/// \brief Page-slot storage for spatial tuples with free-space tracking.
class DataFile {
 public:
  /// In-memory backing.
  explicit DataFile(size_t page_size = kDefaultPageSize,
                    BufferPoolOptions pool_options = {});
  /// Custom backing (disk files, fault injection, ...).
  DataFile(std::unique_ptr<PageFile> file, BufferPoolOptions pool_options);
  /// Disk backing at `path`.
  static Result<std::unique_ptr<DataFile>> CreateOnDisk(
      const std::string& path, size_t page_size = kDefaultPageSize,
      BufferPoolOptions pool_options = {});

  /// Tuples per page (P/B).
  uint32_t capacity() const { return capacity_; }

  /// \brief A page with at least `want` free slots, allocating a new page
  /// if none qualifies.
  Result<PageId> PageWithFreeSlots(uint32_t want);

  /// \brief Unconditionally appends a fresh empty page (deserialization
  /// path; normal insertion goes through PageWithFreeSlots).
  Result<PageId> AllocatePage();

  /// \brief Reads and decodes page `id` (one charged data-file read) into a
  /// write-path TuplePage image. Query paths should prefer View.
  Result<TuplePage> Read(PageId id);

  /// \brief Zero-copy read window over page `id` (one charged data-file
  /// read). See PageView for the lifetime rules.
  Result<PageView> View(PageId id);

  /// \brief Encodes and writes `page` to `id` (one charged write); updates
  /// the free-space map.
  Status Write(PageId id, const TuplePage& page);

  /// \brief Inserts one tuple into a free slot of `id`; fails with
  /// ResourceExhausted if the page is full.
  Status Insert(PageId id, SourceId source, const SpatialTuple& tuple);

  /// \brief Removes the tuple of `doc` tagged `source`; returns true if one
  /// was removed.
  Result<bool> Remove(PageId id, SourceId source, DocId doc);

  /// \brief Removes and returns every tuple tagged `source` (the fetch step
  /// of the relocation branch in Algorithms 2-3).
  Result<std::vector<SpatialTuple>> TakeSource(PageId id, SourceId source);

  /// \brief Inserts `tuples` under `source` into `id`; the page must have
  /// enough free slots.
  Status InsertAll(PageId id, SourceId source,
                   const std::vector<SpatialTuple>& tuples);

  /// Free slots currently on `id`.
  uint32_t FreeSlots(PageId id) const { return fsm_.FreeSlots(id); }

  PageId PageCount() const { return file_->PageCount(); }
  uint64_t SizeBytes() const { return file_->SizeBytes(); }

  const IoStats& io_stats() const { return file_->io_stats(); }
  IoStats* mutable_io_stats() { return file_->mutable_io_stats(); }
  void ClearCache() { pool_.Clear(); }

 private:
  std::unique_ptr<PageFile> file_;
  BufferPool pool_;
  FreeSpaceMap fsm_;
  uint32_t capacity_;
  std::vector<uint8_t> scratch_;  // page-size encode buffer (write path only;
                                  // Read uses a local buffer so concurrent
                                  // readers do not share state)
};

}  // namespace i3

#endif  // I3_I3_DATA_FILE_H_
