// The I3 data file (Section 4.3.3).
//
// A sequence of fixed-size pages, each split into P/B fixed-width slots, one
// slot per spatial tuple. Tuples carry a *source id* identifying the
// keyword cell they belong to, so different keyword cells can share a page
// (the index's storage-utilization advantage over S2I) and a page scan can
// separate them. A slot whose source id is zero is free.
//
// Slot layout (B = 32 bytes, little-endian):
//   [0..4)   source id   (uint32; 0 = free slot)
//   [4..8)   term id     (uint32)
//   [8..12)  doc id      (uint32)
//   [12..20) x / lng     (float64)
//   [20..28) y / lat     (float64)
//   [28..32) term weight (float32)

#ifndef I3_I3_DATA_FILE_H_
#define I3_I3_DATA_FILE_H_

#include <cstring>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "i3/cell_cache.h"
#include "i3/cell_codec.h"
#include "model/document.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace i3 {

/// Identifier of a keyword cell within the data file. Zero marks a free
/// slot and is never allocated.
using SourceId = uint32_t;
constexpr SourceId kFreeSlot = 0;

/// Serialized tuple width B. The paper's setting (page capacity P/B = 128
/// at P = 4KB).
constexpr size_t kTupleBytes = 32;

/// \brief One occupied slot: the tuple plus its keyword-cell tag.
struct StoredTuple {
  SourceId source = kFreeSlot;
  SpatialTuple tuple;
};

/// Decodes the non-source fields of one serialized slot into a stack value.
inline SpatialTuple DecodeSlotTuple(const uint8_t* src) {
  SpatialTuple t;
  std::memcpy(&t.term, src + 4, 4);
  std::memcpy(&t.doc, src + 8, 4);
  std::memcpy(&t.location.x, src + 12, 8);
  std::memcpy(&t.location.y, src + 20, 8);
  std::memcpy(&t.weight, src + 28, 4);
  return t;
}

/// Decodes the source tag of one serialized slot.
inline SourceId DecodeSlotSource(const uint8_t* src) {
  SourceId s;
  std::memcpy(&s, src, 4);
  return s;
}

/// \brief Decoded image of one data-file page -- the *write-path*
/// representation (insert, remove, relocation, compaction). Read paths use
/// DataFile::View, which decodes slots lazily out of the buffer-pool frame
/// without materializing this object.
class TuplePage {
 public:
  /// Occupied slots in slot order.
  std::vector<StoredTuple> slots;

  /// Tuples belonging to `source`.
  std::vector<SpatialTuple> OfSource(SourceId source) const;
  /// Number of tuples belonging to `source`.
  uint32_t CountSource(SourceId source) const;
  /// True if every occupied slot belongs to `source` (the "all the tuples
  /// in P are from the same source" test of Algorithms 2-3).
  bool AllFromSource(SourceId source) const;
};

/// \brief Zero-copy read window over one data-file page.
///
/// Obtained from DataFile::View. Points either at a pinned buffer-pool
/// frame (the frame cannot be evicted or recycled while the view lives) or,
/// for an uncached pool, at a per-thread scratch buffer the page was read
/// into. Either way the bytes are decoded lazily, slot by slot, into stack
/// values -- no TuplePage materialization, no per-read heap allocation.
///
/// Lifetime rules: a view is valid until destroyed; destroy views in LIFO
/// order per thread (scratch buffers are stacked); and -- as with every
/// read -- no writer may run concurrently.
class PageView {
 public:
  PageView() = default;
  PageView(PageView&& o) noexcept { *this = std::move(o); }
  PageView& operator=(PageView&& o) noexcept;
  PageView(const PageView&) = delete;
  PageView& operator=(const PageView&) = delete;
  ~PageView();

  /// Slots per page (P/B); slot indexes range over [0, capacity).
  uint32_t capacity() const { return capacity_; }

  /// Source tag of slot `s` (kFreeSlot for a free slot).
  SourceId SlotSource(uint32_t s) const {
    return DecodeSlotSource(data_ + s * kTupleBytes);
  }
  /// Tuple stored in slot `s` (meaningful only for occupied slots).
  SpatialTuple SlotTuple(uint32_t s) const {
    return DecodeSlotTuple(data_ + s * kTupleBytes);
  }

  /// \brief Single-pass visit of every tuple tagged `source`;
  /// `fn(const SpatialTuple&)`. Returns the number visited, so callers that
  /// used to CountSource-then-OfSource get both in one scan.
  template <typename Fn>
  uint32_t ForEachOfSource(SourceId source, Fn&& fn) const {
    uint32_t n = 0;
    for (uint32_t s = 0; s < capacity_; ++s) {
      if (SlotSource(s) == source) {
        fn(SlotTuple(s));
        ++n;
      }
    }
    return n;
  }

  /// \brief Single-pass visit of every occupied slot;
  /// `fn(SourceId, const SpatialTuple&)`.
  template <typename Fn>
  void ForEachSlot(Fn&& fn) const {
    for (uint32_t s = 0; s < capacity_; ++s) {
      const SourceId src = SlotSource(s);
      if (src != kFreeSlot) fn(src, SlotTuple(s));
    }
  }

  /// True when the underlying bytes carry the v2 compressed encoding.
  /// (A v1 page starts with a slot-0 source id -- small, sequential -- and
  /// can never alias the v2 magic; fresh zeroed pages read as empty v1.)
  bool compressed() const {
    return codec::IsV2Page(data_, page_size_);
  }

  /// \brief Format-agnostic ForEachOfSource: visits every tuple of
  /// `source`, decoding v2 groups through the block decoder. Returns the
  /// number visited, or Corruption when a damaged v2 page fails to decode.
  template <typename Fn>
  Result<uint32_t> VisitSource(SourceId source, Fn&& fn) const {
    if (!compressed()) return ForEachOfSource(source, std::forward<Fn>(fn));
    codec::GroupRef g;
    auto found = codec::FindGroup(data_, page_size_, source, &g);
    if (!found.ok()) return found.status();
    if (!found.ValueOrDie()) return 0u;
    codec::DecodeScratch scratch;
    codec::DecodedGroup d;
    I3_RETURN_NOT_OK(codec::DecodeGroup(data_, page_size_, g, &scratch, &d));
    SpatialTuple t;
    t.term = g.term;
    for (uint32_t i = 0; i < d.n; ++i) {
      t.doc = d.docs[i];
      t.location.x = d.xs[i];
      t.location.y = d.ys[i];
      t.weight = d.weights[i];
      fn(t);
    }
    return d.n;
  }

  /// \brief Format-agnostic ForEachSlot: visits every stored tuple with its
  /// source tag. v2 pages are visited group by group (first-appearance
  /// order, slot order within a group -- the exact v1 visit sequence).
  template <typename Fn>
  Status VisitSlots(Fn&& fn) const {
    if (!compressed()) {
      ForEachSlot(std::forward<Fn>(fn));
      return Status::OK();
    }
    auto gc = codec::GroupCount(data_, page_size_);
    if (!gc.ok()) return gc.status();
    codec::DecodeScratch scratch;
    for (uint32_t gi = 0; gi < gc.ValueOrDie(); ++gi) {
      codec::GroupRef g;
      I3_RETURN_NOT_OK(codec::ReadGroupRef(data_, page_size_, gi, &g));
      codec::DecodedGroup d;
      I3_RETURN_NOT_OK(
          codec::DecodeGroup(data_, page_size_, g, &scratch, &d));
      SpatialTuple t;
      t.term = g.term;
      for (uint32_t i = 0; i < d.n; ++i) {
        t.doc = d.docs[i];
        t.location.x = d.xs[i];
        t.location.y = d.ys[i];
        t.weight = d.weights[i];
        fn(g.source, t);
      }
    }
    return Status::OK();
  }

 private:
  friend class DataFile;

  BufferPool::PinnedPage pin_;
  const uint8_t* data_ = nullptr;
  uint32_t capacity_ = 0;
  size_t page_size_ = 0;
  bool owns_scratch_ = false;  // holds the top of the thread scratch stack
};

/// \brief Page-slot storage for spatial tuples with free-space tracking.
///
/// Two on-page encodings are supported. With `compress` off every page is
/// the fixed-width v1 slot array above; with it on, written pages use the
/// v2 grouped encoding of i3/cell_codec.h (several times more tuples per
/// page). Reads sniff the per-page magic, so v1 and v2 pages coexist in one
/// file and an index built without compression stays readable with it on.
/// Free space is tracked in bytes (quantized to kTupleBytes buckets), which
/// reduces to the original per-slot bookkeeping for pure-v1 files.
class DataFile {
 public:
  /// In-memory backing. `cell_cache_bytes` bounds the decoded-cell cache
  /// (0 disables it; it is also forced off for an uncached pool, whose
  /// deterministic-I/O contract every access must charge).
  explicit DataFile(size_t page_size = kDefaultPageSize,
                    BufferPoolOptions pool_options = {},
                    bool compress = false, size_t cell_cache_bytes = 0);
  /// Custom backing (disk files, fault injection, ...).
  DataFile(std::unique_ptr<PageFile> file, BufferPoolOptions pool_options,
           bool compress = false, size_t cell_cache_bytes = 0);
  /// Disk backing at `path`.
  static Result<std::unique_ptr<DataFile>> CreateOnDisk(
      const std::string& path, size_t page_size = kDefaultPageSize,
      BufferPoolOptions pool_options = {}, bool compress = false,
      size_t cell_cache_bytes = 0);

  /// Tuples per page in the v1 encoding (P/B); the split threshold of
  /// Algorithms 2-3 under the v1 format (see CellMustSplit for v2).
  uint32_t capacity() const { return capacity_; }

  /// \brief The density test of Algorithms 2-3: true when the keyword cell
  /// `source` on `page`, grown by `incoming`, must split. v1: the cell
  /// reaches the P/B slot capacity. v2: the cell's one-page *envelope*
  /// (codec::CellEnvelopeBytes -- an upper bound covering every subset, so
  /// splits and relocations of an under-threshold cell always land) would
  /// exceed the page size; cells therefore pack several times more tuples
  /// before splitting, which is where the compressed format's page-count
  /// reduction comes from. The quadtree gets a different (shallower) shape
  /// than under v1, but search is exact under any shape, so query results
  /// are identical either way.
  bool CellMustSplit(const TuplePage& page, SourceId source,
                     const SpatialTuple& incoming) const;

  /// \brief Invariant-checker companion of CellMustSplit: true when a
  /// stored cell with these tuples is larger than the split threshold ever
  /// allows (v1: above slot capacity; v2: envelope above the page size).
  bool CellOversized(const std::vector<SpatialTuple>& tuples) const;

  /// Whether written pages use the v2 compressed encoding.
  bool compress() const { return compress_; }

  /// Page size in bytes.
  size_t page_size() const { return file_->page_size(); }

  /// \brief True when `page` can be written to one page under the active
  /// encoding (v1: slot count; v2: exact encoded size).
  bool Fits(const TuplePage& page) const;

  /// \brief A page guaranteed to accept a *new* cell of `want` tuples
  /// (v1: `want` free slots; v2: the worst-case encoded footprint of a new
  /// group), allocating a fresh page if none qualifies.
  Result<PageId> PageWithFreeSlots(uint32_t want);

  /// \brief A page guaranteed to accept the *specific* new cell `group`
  /// (all one source, not currently on any page). Unlike PageWithFreeSlots
  /// this sizes the request by the group's exact encoding -- group
  /// encodings are independent, so adding this group to any page costs
  /// exactly its directory entry + header + payload -- which packs far
  /// tighter than the worst-case bound when cells are large. Falls back to
  /// a fresh page if no page qualifies.
  Result<PageId> PageWithRoomForGroup(const std::vector<StoredTuple>& group);

  /// \brief Unconditionally appends a fresh empty page (deserialization
  /// path; normal insertion goes through PageWithFreeSlots).
  Result<PageId> AllocatePage();

  /// \brief Reads and decodes page `id` (one charged data-file read) into a
  /// write-path TuplePage image. Query paths should prefer View.
  Result<TuplePage> Read(PageId id);

  /// \brief Zero-copy read window over page `id` (one charged data-file
  /// read). See PageView for the lifetime rules.
  Result<PageView> View(PageId id);

  /// \brief Visits every tuple of the keyword cell `source` on page `id`
  /// through the decoded-cell cache: a fresh entry (matching the page's
  /// current write epoch) is replayed without touching the page at all; a
  /// miss views the page once, streams the tuples to `fn` *and* collects
  /// them for insertion at the pinned frame's epoch. Returns the number
  /// visited. Falls back to a plain page visit when the cache is disabled.
  /// Same exclusion contract as View: no concurrent writer.
  template <typename Fn>
  Result<uint32_t> VisitSourceCached(PageId id, SourceId source, Fn&& fn) {
    if (!cell_cache_.enabled() || !pool_.Pinnable()) {
      auto view = View(id);
      if (!view.ok()) return view.status();
      return view.ValueOrDie().VisitSource(source, std::forward<Fn>(fn));
    }
    const uint64_t key = CellCache::Key(id, source);
    const int64_t hit =
        cell_cache_.VisitIfFresh(key, pool_.PageEpoch(id), fn);
    if (hit >= 0) return static_cast<uint32_t>(hit);
    auto view = View(id);
    if (!view.ok()) return view.status();
    CellCache::Collector collect;
    auto n = view.ValueOrDie().VisitSource(
        source, [&fn, &collect](const SpatialTuple& t) {
          collect.Add(t);
          fn(t);
        });
    if (!n.ok()) return n.status();
    // Keyed to the epoch captured *at pin time*: if the page is rewritten
    // between this visit and the next probe, the bumped epoch makes the
    // entry invisible.
    cell_cache_.Insert(key, view.ValueOrDie().pin_.epoch(),
                       std::move(collect));
    return n;
  }

  /// \brief Checksum-verifying *device* read of page `id`, bypassing the
  /// buffer pool: the bytes come straight from the file stack (whose
  /// checksummed wrapper rejects damaged payloads with Corruption), so
  /// latent at-rest damage is detected even while a clean cached frame
  /// exists. One charged read. The scrubber's probe.
  Status VerifyPage(PageId id);

  /// \brief Raw logical bytes of page `id`, read through the pool (the
  /// device path verifies the stored checksum). One charged read. The
  /// heal *source*: replicas are byte-identical, so a healthy peer's page
  /// bytes are exactly what the damaged copy should hold.
  Result<std::vector<uint8_t>> ReadPageBytes(PageId id);

  /// \brief Writes raw logical page bytes through the pool: the checksum
  /// layer re-stamps the page, the write-through bumps the page epoch
  /// (invalidating decoded-cell entries) and clears any quarantine. The
  /// heal *sink* only -- the free-space map is untouched because a heal
  /// replaces a page with its byte-identical peer copy.
  Status WritePageBytes(PageId id, const std::vector<uint8_t>& bytes);

  /// Pages currently quarantined by the pool (last device read returned
  /// Corruption and no verified read/write-through has cleared it).
  size_t QuarantinedPages() const { return pool_.quarantined_count(); }

  /// \brief Encodes and writes `page` to `id` (one charged write); updates
  /// the free-space map.
  Status Write(PageId id, const TuplePage& page);

  /// \brief Inserts one tuple into `id`; fails with ResourceExhausted if
  /// the page cannot hold it (v1: no free slot; v2: encoded overflow).
  Status Insert(PageId id, SourceId source, const SpatialTuple& tuple);

  /// \brief Removes the tuple of `doc` tagged `source`; returns true if one
  /// was removed.
  Result<bool> Remove(PageId id, SourceId source, DocId doc);

  /// \brief Removes and returns every tuple tagged `source` (the fetch step
  /// of the relocation branch in Algorithms 2-3).
  Result<std::vector<SpatialTuple>> TakeSource(PageId id, SourceId source);

  /// \brief Inserts `tuples` under `source` into `id`; the page must have
  /// enough room under the active encoding.
  Status InsertAll(PageId id, SourceId source,
                   const std::vector<SpatialTuple>& tuples);

  /// Free capacity of `id`, expressed in tuple-slot units (free bytes /
  /// kTupleBytes) so existing v1 callers keep their semantics.
  uint32_t FreeSlots(PageId id) const {
    return fsm_.FreeSlots(id) / static_cast<uint32_t>(kTupleBytes);
  }

  PageId PageCount() const { return file_->PageCount(); }
  uint64_t SizeBytes() const { return file_->SizeBytes(); }

  const IoStats& io_stats() const { return file_->io_stats(); }
  IoStats* mutable_io_stats() { return file_->mutable_io_stats(); }
  /// Cold-cache reset: drops cached page frames *and* decoded cells.
  void ClearCache() {
    pool_.Clear();
    cell_cache_.Clear();
  }

  const BufferPool& pool() const { return pool_; }
  const CellCache& cell_cache() const { return cell_cache_; }

 private:
  std::unique_ptr<PageFile> file_;
  BufferPool pool_;
  CellCache cell_cache_;
  FreeSpaceMap fsm_;  // free bytes per page, kTupleBytes-quantized buckets
  uint32_t capacity_;
  bool compress_;
  std::vector<uint8_t> scratch_;  // page-size encode buffer (write path only;
                                  // Read uses a local buffer so concurrent
                                  // readers do not share state)
};

}  // namespace i3

#endif  // I3_I3_DATA_FILE_H_
