#include "i3/i3_index.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "storage/checksummed_page_file.h"

namespace i3 {

namespace {

/// Bytes per physical page in the data file's backing store: the logical
/// page plus the integrity header when checksumming is on, so the
/// caller-facing page size -- and with it the paper's P/B capacity and I/O
/// accounting -- is independent of the checksum option.
size_t PhysicalPageSize(const I3Options& options) {
  return options.page_size +
         (options.checksum_pages ? kPageHeaderBytes : 0);
}

/// Wraps the physical backing in the checksum layer when configured. The
/// checksum layer is outermost (above any fault-injecting backing a test
/// supplies), so corruption introduced anywhere below is detected on read.
std::unique_ptr<PageFile> WithIntegrity(const I3Options& options,
                                        std::unique_ptr<PageFile> base) {
  if (!options.checksum_pages) return base;
  return std::make_unique<ChecksummedPageFile>(std::move(base));
}

/// Builds the data file per the options (factory > in-memory default).
std::unique_ptr<DataFile> MakeDataFile(const I3Options& options) {
  const size_t physical = PhysicalPageSize(options);
  std::unique_ptr<PageFile> base =
      options.page_file_factory
          ? options.page_file_factory(physical)
          : std::make_unique<InMemoryPageFile>(physical);
  return std::make_unique<DataFile>(WithIntegrity(options, std::move(base)),
                                    options.buffer_pool,
                                    options.compress_pages,
                                    options.cell_cache_bytes);
}

}  // namespace

I3Index::I3Index(I3Options options)
    : options_(options),
      cells_(options.space),
      data_(MakeDataFile(options)),
      head_(options.signature_bits),
      stats_emitter_("I3", View(I3SearchStats{})) {
  assert(options_.max_split_level >= 1);
  assert(options_.signature_bits >= 1);
  head_.ConfigurePager(options_.page_size, options_.head_pool_pages);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  search_latency_us_[0] =
      reg.GetHistogram("i3_query_latency_us", "End-to-end Search latency.",
                       {{"index", "I3"}, {"semantics", "and"}});
  search_latency_us_[1] =
      reg.GetHistogram("i3_query_latency_us", "End-to-end Search latency.",
                       {{"index", "I3"}, {"semantics", "or"}});
  insert_latency_us_ =
      reg.GetHistogram("i3_update_latency_us", "Insert/Delete latency.",
                       {{"index", "I3"}, {"op", "insert"}});
  delete_latency_us_ =
      reg.GetHistogram("i3_update_latency_us", "Insert/Delete latency.",
                       {{"index", "I3"}, {"op", "delete"}});
  cells_skipped_total_ = reg.GetCounter(
      "i3_cells_skipped_total",
      "Keyword cells whose deferred page fetch never happened: the "
      "candidate carrying them died (or the search terminated) first.",
      {{"index", "I3"}});
  blockmax_prunes_total_ = reg.GetCounter(
      "i3_blockmax_prunes_total",
      "Deferred candidates discarded at pop time because the exact "
      "re-derived upper bound no longer beats the k-th heap score.",
      {{"index", "I3"}});
}

Result<std::unique_ptr<I3Index>> I3Index::Create(I3Options options) {
  auto index = std::make_unique<I3Index>(options);
  if (!options.data_file_path.empty()) {
    auto file = OnDiskPageFile::Create(options.data_file_path,
                                       PhysicalPageSize(options));
    if (!file.ok()) return file.status();
    index->data_ = std::make_unique<DataFile>(
        WithIntegrity(options, file.MoveValue()), options.buffer_pool,
        options.compress_pages);
  }
  return index;
}

Status I3Index::ValidateDocument(const SpatialDocument& doc) const {
  if (doc.id == kInvalidDocId) {
    return Status::InvalidArgument("invalid document id");
  }
  if (!options_.space.Contains(doc.location)) {
    return Status::InvalidArgument("location " + doc.location.ToString() +
                                   " outside the data space");
  }
  if (doc.terms.empty()) {
    return Status::InvalidArgument("document has no keywords");
  }
  TermId prev = kInvalidTermId;
  for (const WeightedTerm& wt : doc.terms) {
    if (wt.term == kInvalidTermId) {
      return Status::InvalidArgument("invalid term id");
    }
    if (prev != kInvalidTermId && wt.term <= prev) {
      return Status::InvalidArgument(
          "terms must be sorted and duplicate-free");
    }
    if (!(wt.weight > 0.0f) || wt.weight > 1.0f) {
      return Status::InvalidArgument("term weight must be in (0, 1]");
    }
    prev = wt.term;
  }
  return Status::OK();
}

// ------------------------------------------------------------------ insert

Status I3Index::Insert(const SpatialDocument& doc) {
  const uint64_t start_ns = obs::NowNanos();
  I3_RETURN_NOT_OK(ValidateDocument(doc));
  for (const SpatialTuple& t : PartitionDocument(doc)) {
    I3_RETURN_NOT_OK(InsertTuple(t));
  }
  ++doc_count_;
  insert_latency_us_->Record((obs::NowNanos() - start_ns) / 1000);
  return Status::OK();
}

Status I3Index::InsertTuple(const SpatialTuple& t) {
  auto it = lookup_.find(t.term);
  if (it == lookup_.end()) {
    return InsertNewKeyword(t);  // Algorithm 1, lines 1-4
  }
  LookupEntry& entry = it->second;
  if (!entry.dense) {
    return InsertNonDenseRoot(t, &entry);  // Algorithm 1, lines 6-8
  }
  // Algorithm 1, lines 10-16.
  return InsertDense(t, entry.node, CellId::Root(), options_.space);
}

Status I3Index::InsertNewKeyword(const SpatialTuple& t) {
  auto page_res = data_->PageWithFreeSlots(1);
  if (!page_res.ok()) return page_res.status();
  const PageId page = page_res.ValueOrDie();
  const SourceId source = next_source_++;
  I3_RETURN_NOT_OK(data_->Insert(page, source, t));
  LookupEntry entry;
  entry.page = page;
  entry.source = source;
  lookup_.emplace(t.term, entry);
  return Status::OK();
}

// Algorithm 2: insertNonDenseKwd. The density test is on the *cell*, not
// the page: under v1 it is the cell's tuple count against the P/B capacity
// (equivalent to Algorithm 2's "page full and all tuples ours" -- a cell
// can only reach capacity alone on its page); under v2 it is the cell's
// encoded one-page envelope (see DataFile::CellMustSplit), so compressed
// cells pack several times more tuples before going dense.
Status I3Index::InsertNonDenseRoot(const SpatialTuple& t,
                                   LookupEntry* entry) {
  auto page_res = data_->Read(entry->page);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();

  if (data_->CellMustSplit(page, entry->source, t)) {
    // The keyword becomes dense in the root cell: split and re-insert.
    auto node_res =
        SplitCell(options_.space, entry->page, std::move(page),
                  entry->source);
    if (!node_res.ok()) return node_res.status();
    entry->dense = true;
    entry->node = node_res.ValueOrDie();
    entry->page = kInvalidPageId;
    entry->source = kFreeSlot;
    return InsertDense(t, entry->node, CellId::Root(), options_.space);
  }

  page.slots.push_back({entry->source, t});
  if (data_->Fits(page)) {
    return data_->Write(entry->page, page);
  }
  page.slots.pop_back();

  // Full page: relocate this keyword cell to a roomier page.
  auto new_page = RelocateCell(entry->page, &page, entry->source, {t});
  if (!new_page.ok()) return new_page.status();
  entry->page = new_page.ValueOrDie();
  return Status::OK();
}

// Algorithm 3: insertDenseKwd, iteratively along the root-to-leaf path.
Status I3Index::InsertDense(const SpatialTuple& t, NodeId node_id,
                            CellId cell, Rect rect) {
  while (true) {
    // Line 1: fold the new tuple into the summaries on the path. Path
    // nodes are pinned in the maintenance buffer (like B-tree internals),
    // so the descent charges no reads; a node is written back only if a
    // summary actually changed -- signatures only grow, so inserts into
    // well-populated cells usually leave the node clean. Both effects are
    // key reasons I3 updates are cheap.
    SummaryNode* node = head_.MutateDeferred(node_id);
    bool changed = node->self.Add(t.doc, t.weight);
    const int q = CellSpace::QuadrantOf(rect, t.location);
    changed |= node->child_summary[q].Add(t.doc, t.weight);
    if (changed) head_.ChargeWrite();
    rect = CellSpace::ChildRect(rect, q);
    cell = cell.Child(q);

    ChildRef& ref = node->child[q];
    switch (ref.kind) {
      case ChildRef::Kind::kSummary:
        node_id = ref.node;
        continue;

      case ChildRef::Kind::kNone: {
        // First tuple of this child keyword cell.
        auto page_res = data_->PageWithFreeSlots(1);
        if (!page_res.ok()) return page_res.status();
        const PageId page = page_res.ValueOrDie();
        const SourceId source = next_source_++;
        I3_RETURN_NOT_OK(data_->Insert(page, source, t));
        ref = ChildRef::ToPage(page, source);
        return Status::OK();
      }

      case ChildRef::Kind::kPage: {
        // Try the primary page first.
        auto page_res = data_->Read(ref.page);
        if (!page_res.ok()) return page_res.status();
        TuplePage page = page_res.MoveValue();

        // Density test on the cell (see InsertNonDenseRoot: slot capacity
        // under v1, the encoded one-page envelope under v2).
        if (data_->CellMustSplit(page, ref.source, t)) {
          if (cell.level() >= options_.max_split_level) {
            // Cannot split further: extend the overflow chain. Whether a
            // page has room is encoding-dependent, so each candidate --
            // the primary page first, then the chain -- is simply tried;
            // a full page answers ResourceExhausted and the scan moves on.
            Status primary = data_->Insert(ref.page, ref.source, t);
            if (primary.code() != StatusCode::kResourceExhausted) {
              return primary;
            }
            for (PageId op : ref.overflow) {
              Status st = data_->Insert(op, ref.source, t);
              if (st.code() != StatusCode::kResourceExhausted) return st;
            }
            auto extra_res = data_->PageWithFreeSlots(1);
            if (!extra_res.ok()) return extra_res.status();
            PageId extra = extra_res.ValueOrDie();
            Status st = Status::ResourceExhausted("chain page reuse");
            if (extra != ref.page) {
              // (The primary page may well have free bytes, but the chain
              // must stay a set of distinct pages, so it is never reused.)
              st = data_->Insert(extra, ref.source, t);
              if (!st.ok() &&
                  st.code() != StatusCode::kResourceExhausted) {
                return st;
              }
            }
            if (!st.ok()) {
              // Free bytes promised a *new* cell fits; growing an existing
              // group of this cell can still overflow. A fresh page never
              // does.
              auto fresh = data_->AllocatePage();
              if (!fresh.ok()) return fresh.status();
              extra = fresh.ValueOrDie();
              I3_RETURN_NOT_OK(data_->Insert(extra, ref.source, t));
            }
            ref.overflow.push_back(extra);
            return Status::OK();
          }
          // Child keyword cell becomes dense (Algorithm 3, lines 5-10).
          const PageId child_page = ref.page;
          const SourceId child_source = ref.source;
          auto child_node =
              SplitCell(rect, child_page, std::move(page), child_source);
          if (!child_node.ok()) return child_node.status();
          // `node`/`ref` may dangle after head-file allocation; re-acquire.
          head_.Mutate(node_id)->child[q] =
              ChildRef::ToSummary(child_node.ValueOrDie());
          node_id = child_node.ValueOrDie();
          continue;
        }

        page.slots.push_back({ref.source, t});
        if (data_->Fits(page)) {
          return data_->Write(ref.page, page);
        }
        page.slots.pop_back();

        // Full page (Algorithm 3, lines 12-16): move the cell.
        auto new_page = RelocateCell(ref.page, &page, ref.source, {t});
        if (!new_page.ok()) return new_page.status();
        ref.page = new_page.ValueOrDie();
        return Status::OK();
      }
    }
  }
}

Result<NodeId> I3Index::SplitCell(const Rect& rect, PageId page,
                                  TuplePage page_img, SourceId source) {
  const NodeId node_id = head_.Allocate();
  SummaryNode* node = head_.Mutate(node_id);

  SourceId child_sources[kQuadrants] = {kFreeSlot, kFreeSlot, kFreeSlot,
                                        kFreeSlot};
  for (StoredTuple& st : page_img.slots) {
    if (st.source != source) continue;
    const int q = CellSpace::QuadrantOf(rect, st.tuple.location);
    if (child_sources[q] == kFreeSlot) child_sources[q] = next_source_++;
    st.source = child_sources[q];  // retag in place
    node->child_summary[q].Add(st.tuple.doc, st.tuple.weight);
  }
  PageId child_pages[kQuadrants];
  for (int q = 0; q < kQuadrants; ++q) child_pages[q] = page;

  // The v1 layout always re-fits (retagging preserves the slot count), but
  // the v2 encoding can grow: the split turns one group into up to four,
  // each with its own directory entry, header, and bases. When the page
  // overflows, child cells are spilled -- whole groups at a time -- to
  // pages with room until the rest fits; a child cell is a unit, so every
  // ChildRef still names exactly one primary page.
  for (int q = 0; q < kQuadrants && !data_->Fits(page_img); ++q) {
    if (child_sources[q] == kFreeSlot) continue;
    std::vector<StoredTuple> kept;
    std::vector<SpatialTuple> moved;
    for (const StoredTuple& st : page_img.slots) {
      if (st.source == child_sources[q]) {
        moved.push_back(st.tuple);
      } else {
        kept.push_back(st);
      }
    }
    std::vector<StoredTuple> group;
    group.reserve(moved.size());
    for (const SpatialTuple& t : moved) group.push_back({child_sources[q], t});
    auto target_res = data_->PageWithRoomForGroup(group);
    if (!target_res.ok()) return target_res.status();
    PageId target = target_res.ValueOrDie();
    if (target == page) {
      // The free-space map still reflects the pre-split page; a fresh page
      // always has room for one spilled cell.
      auto fresh = data_->AllocatePage();
      if (!fresh.ok()) return fresh.status();
      target = fresh.ValueOrDie();
    }
    I3_RETURN_NOT_OK(data_->InsertAll(target, child_sources[q], moved));
    child_pages[q] = target;
    page_img.slots = std::move(kept);
  }

  for (int q = 0; q < kQuadrants; ++q) {
    if (child_sources[q] != kFreeSlot) {
      node->child[q] = ChildRef::ToPage(child_pages[q], child_sources[q]);
    }
  }
  node->RebuildSelf();
  I3_RETURN_NOT_OK(data_->Write(page, page_img));
  return node_id;
}

Result<PageId> I3Index::RelocateCell(PageId page, TuplePage* image,
                                     SourceId source,
                                     const std::vector<SpatialTuple>& extra) {
  std::vector<StoredTuple> kept;
  std::vector<StoredTuple> moved;
  for (const StoredTuple& st : image->slots) {
    (st.source == source ? moved : kept).push_back(st);
  }
  for (const SpatialTuple& t : extra) moved.push_back({source, t});

  auto target_res = data_->PageWithRoomForGroup(moved);
  if (!target_res.ok()) return target_res.status();
  PageId target = target_res.ValueOrDie();
  if (target == page) {
    // Unreachable for v1 pages (the source page is slot-full), but a v2
    // page can show free bytes while the grown cell's exact encoding
    // overflows it; relocation must leave the page either way.
    auto fresh = data_->AllocatePage();
    if (!fresh.ok()) return fresh.status();
    target = fresh.ValueOrDie();
  }

  image->slots = std::move(kept);
  I3_RETURN_NOT_OK(data_->Write(page, *image));

  auto target_img_res = data_->Read(target);
  if (!target_img_res.ok()) return target_img_res.status();
  TuplePage target_img = target_img_res.MoveValue();
  for (StoredTuple& st : moved) target_img.slots.push_back(st);
  I3_RETURN_NOT_OK(data_->Write(target, target_img));
  return target;
}

// ------------------------------------------------------------------ delete

Status I3Index::Delete(const SpatialDocument& doc) {
  const uint64_t start_ns = obs::NowNanos();
  I3_RETURN_NOT_OK(ValidateDocument(doc));
  for (const SpatialTuple& t : PartitionDocument(doc)) {
    I3_RETURN_NOT_OK(DeleteTuple(t));
  }
  --doc_count_;
  delete_latency_us_->Record((obs::NowNanos() - start_ns) / 1000);
  return Status::OK();
}

Status I3Index::DeleteTuple(const SpatialTuple& t) {
  auto it = lookup_.find(t.term);
  if (it == lookup_.end()) {
    return Status::NotFound("keyword not in lookup table");
  }
  LookupEntry& entry = it->second;

  if (!entry.dense) {
    auto page_res = data_->Read(entry.page);
    if (!page_res.ok()) return page_res.status();
    TuplePage page = page_res.MoveValue();
    bool removed = false;
    uint32_t remaining = 0;
    std::vector<StoredTuple> kept;
    for (const StoredTuple& st : page.slots) {
      if (!removed && st.source == entry.source && st.tuple.doc == t.doc) {
        removed = true;
        continue;
      }
      if (st.source == entry.source) ++remaining;
      kept.push_back(st);
    }
    if (!removed) {
      return Status::NotFound("tuple not found for deletion");
    }
    page.slots = std::move(kept);
    I3_RETURN_NOT_OK(data_->Write(entry.page, page));
    if (remaining == 0) {
      lookup_.erase(it);  // last tuple of the keyword (Section 4.5)
    }
    return Status::OK();
  }

  // Dense keyword: descend to the leaf keyword cell, recording the path.
  struct PathStep {
    NodeId node;
    int quadrant;
  };
  std::vector<PathStep> path;
  NodeId node_id = entry.node;
  Rect rect = options_.space;
  ChildRef* leaf_ref = nullptr;
  while (true) {
    // Descent through buffered path nodes; the bottom-up rebuild below
    // pays the writes.
    SummaryNode* node = head_.MutateDeferred(node_id);
    const int q = CellSpace::QuadrantOf(rect, t.location);
    path.push_back({node_id, q});
    rect = CellSpace::ChildRect(rect, q);
    ChildRef& ref = node->child[q];
    if (ref.kind == ChildRef::Kind::kNone) {
      return Status::NotFound("tuple not found for deletion (empty cell)");
    }
    if (ref.kind == ChildRef::Kind::kSummary) {
      node_id = ref.node;
      continue;
    }
    leaf_ref = &ref;
    break;
  }

  // Remove from the primary page or the overflow chain.
  bool removed = false;
  auto removed_res = data_->Remove(leaf_ref->page, leaf_ref->source, t.doc);
  if (!removed_res.ok()) return removed_res.status();
  removed = removed_res.ValueOrDie();
  if (!removed) {
    for (PageId op : leaf_ref->overflow) {
      auto r = data_->Remove(op, leaf_ref->source, t.doc);
      if (!r.ok()) return r.status();
      if (r.ValueOrDie()) {
        removed = true;
        break;
      }
    }
  }
  if (!removed) {
    return Status::NotFound("tuple not found for deletion (leaf page)");
  }

  // Rebuild the leaf cell's summary from its remaining tuples, then
  // propagate the change bottom-up to the root node (Section 4.5).
  auto entry_res = RebuildEntryFromPages(leaf_ref->page, leaf_ref->overflow,
                                         leaf_ref->source);
  if (!entry_res.ok()) return entry_res.status();
  SummaryEntry rebuilt = entry_res.MoveValue();
  const bool cell_now_empty = rebuilt.sig.IsZero();

  for (size_t i = path.size(); i-- > 0;) {
    SummaryNode* node = head_.Mutate(path[i].node);  // rebuild: real write
    if (i == path.size() - 1) {
      node->child_summary[path[i].quadrant] = rebuilt;
      if (cell_now_empty) {
        node->child[path[i].quadrant] = ChildRef::None();
      }
    } else {
      node->child_summary[path[i].quadrant] = rebuilt;
    }
    node->RebuildSelf();
    rebuilt = node->self;
  }
  return Status::OK();
}

Result<SummaryEntry> I3Index::RebuildEntryFromPages(
    PageId page, const std::vector<PageId>& overflow, SourceId source) {
  SummaryEntry entry;
  entry.sig = Signature(options_.signature_bits);
  I3_RETURN_NOT_OK(VisitCellTuples(
      page, &overflow, source,
      [&entry](const SpatialTuple& t) { entry.Add(t.doc, t.weight); }));
  return entry;
}

Result<std::vector<SpatialTuple>> I3Index::ReadCellTuples(
    PageId page, const std::vector<PageId>& overflow, SourceId source) {
  std::vector<SpatialTuple> out;
  I3_RETURN_NOT_OK(VisitCellTuples(
      page, &overflow, source,
      [&out](const SpatialTuple& t) { out.push_back(t); }));
  return out;
}

// ------------------------------------------------------------------- stats

IndexSizeInfo I3Index::SizeInfo() const {
  IndexSizeInfo info;
  info.components.push_back({"head file", head_.SizeBytes()});
  info.components.push_back({"data file", data_->SizeBytes()});
  // The in-memory lookup table ("quite small" -- Section 6.3): keyword id,
  // dense flag, and a page-or-node reference per keyword.
  info.components.push_back(
      {"lookup table", static_cast<uint64_t>(lookup_.size()) * 13});
  return info;
}

const IoStats& I3Index::io_stats() const {
  // Merged-on-read snapshot. The lock serializes concurrent accessors; the
  // returned reference is stable only until the next io_stats() call, so
  // callers that need a durable value copy it (IoStats is copyable).
  std::lock_guard<std::mutex> lock(stats_mutex_);
  merged_stats_.Reset();
  merged_stats_.MergeFrom(data_->io_stats());
  merged_stats_.MergeFrom(head_.io_stats());
  return merged_stats_;
}

void I3Index::ResetIoStats() {
  data_->mutable_io_stats()->Reset();
  const_cast<HeadFile&>(head_).mutable_io_stats()->Reset();
}

// -------------------------------------------------------------- invariants

Result<uint64_t> I3Index::CheckInvariants() {
  uint64_t tuple_count = 0;
  std::unordered_set<SourceId> seen_sources;

  // Walk every keyword's cell tree.
  for (const auto& [term, entry] : lookup_) {
    if (!entry.dense) {
      auto tuples_res = ReadCellTuples(entry.page, {}, entry.source);
      if (!tuples_res.ok()) return tuples_res.status();
      const auto& tuples = tuples_res.ValueOrDie();
      if (tuples.empty()) {
        return Status::Corruption("non-dense keyword with zero tuples");
      }
      if (data_->CellOversized(tuples)) {
        return Status::Corruption("non-dense root cell above capacity");
      }
      if (!seen_sources.insert(entry.source).second) {
        return Status::Corruption("source id reused across cells");
      }
      for (const auto& t : tuples) {
        if (t.term != term) {
          return Status::Corruption("foreign term in keyword cell");
        }
      }
      tuple_count += tuples.size();
      continue;
    }

    // Dense: recursive check of the summary tree.
    struct Frame {
      NodeId node;
      Rect rect;
      uint8_t level;
    };
    std::vector<Frame> stack{{entry.node, options_.space, 0}};
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      const SummaryNode& node = head_.Read(f.node);
      SummaryEntry expect_self;
      expect_self.sig = Signature(options_.signature_bits);
      for (int q = 0; q < kQuadrants; ++q) {
        expect_self.Merge(node.child_summary[q]);
        const ChildRef& ref = node.child[q];
        const Rect child_rect = CellSpace::ChildRect(f.rect, q);
        if (ref.kind == ChildRef::Kind::kNone) {
          if (!node.child_summary[q].sig.IsZero()) {
            return Status::Corruption("summary for empty child cell");
          }
          continue;
        }
        if (ref.kind == ChildRef::Kind::kSummary) {
          stack.push_back({ref.node, child_rect,
                           static_cast<uint8_t>(f.level + 1)});
          // The child node's self summary must match the parent's child
          // summary (both rebuilt on delete, grown on insert).
          const SummaryNode& child = head_.Read(ref.node);
          if (!(child.self.sig == node.child_summary[q].sig) ||
              child.self.max_s != node.child_summary[q].max_s) {
            return Status::Corruption("parent/child summary mismatch");
          }
          continue;
        }
        // Page-backed child cell.
        if (!seen_sources.insert(ref.source).second) {
          return Status::Corruption("source id reused across cells");
        }
        auto tuples_res = ReadCellTuples(ref.page, ref.overflow, ref.source);
        if (!tuples_res.ok()) return tuples_res.status();
        const auto& tuples = tuples_res.ValueOrDie();
        if (tuples.empty()) {
          return Status::Corruption("page-backed child cell with no tuples");
        }
        if (data_->CellOversized(tuples) &&
            static_cast<uint8_t>(f.level + 1) < options_.max_split_level) {
          return Status::Corruption("splittable cell above capacity");
        }
        SummaryEntry expect;
        expect.sig = Signature(options_.signature_bits);
        for (const auto& t : tuples) {
          if (t.term != term) {
            return Status::Corruption("foreign term in keyword cell");
          }
          if (!child_rect.Contains(t.location)) {
            return Status::Corruption("tuple outside its keyword cell");
          }
          expect.Add(t.doc, t.weight);
        }
        if (!(expect.sig == node.child_summary[q].sig) ||
            expect.max_s != node.child_summary[q].max_s) {
          return Status::Corruption("leaf summary does not match tuples");
        }
        tuple_count += tuples.size();
      }
      if (!(expect_self.sig == node.self.sig) ||
          expect_self.max_s != node.self.max_s) {
        return Status::Corruption("node self summary != union of children");
      }
    }
  }
  return tuple_count;
}

}  // namespace i3
