#include "i3/head_file.h"

namespace i3 {

NodeId HeadFile::Allocate() {
  SummaryNode node;
  node.self.sig = Signature(signature_bits_);
  for (int q = 0; q < kQuadrants; ++q) {
    node.child_summary[q].sig = Signature(signature_bits_);
  }
  nodes_.push_back(std::move(node));
  io_stats_.RecordWrite(IoCategory::kI3HeadFile);
  return static_cast<NodeId>(nodes_.size() - 1);
}

uint64_t HeadFile::NodeBytes() const {
  const uint64_t sig_bytes = (signature_bits_ + 7) / 8;
  const uint64_t entry_bytes = sig_bytes + sizeof(float);
  // kind (1B) + page/node ref (4B) + source id (4B) per child pointer.
  const uint64_t child_ptr_bytes = 9;
  return 5 * entry_bytes + kQuadrants * child_ptr_bytes;
}

}  // namespace i3
