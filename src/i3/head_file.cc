#include "i3/head_file.h"

#include <algorithm>

namespace i3 {

NodeId HeadFile::Allocate() {
  SummaryNode node;
  node.self.sig = Signature(signature_bits_);
  for (int q = 0; q < kQuadrants; ++q) {
    node.child_summary[q].sig = Signature(signature_bits_);
  }
  nodes_.push_back(std::move(node));
  io_stats_.RecordWrite(IoCategory::kI3HeadFile);
  return static_cast<NodeId>(nodes_.size() - 1);
}

uint64_t HeadFile::NodeBytes() const {
  const uint64_t sig_bytes = (signature_bits_ + 7) / 8;
  const uint64_t entry_bytes = sig_bytes + sizeof(float);
  // kind (1B) + page/node ref (4B) + source id (4B) per child pointer.
  const uint64_t child_ptr_bytes = 9;
  return 5 * entry_bytes + kQuadrants * child_ptr_bytes;
}

void HeadFile::ConfigurePager(size_t page_size, uint32_t pool_pages) {
  std::lock_guard<std::mutex> lock(pager_mutex_);
  nodes_per_page_ =
      static_cast<uint32_t>(std::max<uint64_t>(1, page_size / NodeBytes()));
  pool_pages_ = pool_pages;
  resident_.clear();
  lru_prev_.clear();
  lru_next_.clear();
  lru_head_ = lru_tail_ = UINT32_MAX;
  resident_count_ = 0;
}

void HeadFile::ClearCache() {
  std::lock_guard<std::mutex> lock(pager_mutex_);
  std::fill(resident_.begin(), resident_.end(), 0);
  lru_head_ = lru_tail_ = UINT32_MAX;
  resident_count_ = 0;
}

void HeadFile::TouchPage(uint32_t pg) {
  std::lock_guard<std::mutex> lock(pager_mutex_);
  if (pg >= resident_.size()) {
    resident_.resize(pg + 1, 0);
    lru_prev_.resize(pg + 1, UINT32_MAX);
    lru_next_.resize(pg + 1, UINT32_MAX);
  }
  if (resident_[pg]) {
    if (lru_head_ == pg) return;  // already MRU
    // Unlink, then relink at the head.
    const uint32_t p = lru_prev_[pg], n = lru_next_[pg];
    if (p != UINT32_MAX) lru_next_[p] = n;
    if (n != UINT32_MAX) lru_prev_[n] = p;
    if (lru_tail_ == pg) lru_tail_ = p;
  } else {
    io_stats_.RecordRead(IoCategory::kI3HeadFile);
    resident_[pg] = 1;
    ++resident_count_;
    if (resident_count_ > pool_pages_) {
      const uint32_t victim = lru_tail_;
      resident_[victim] = 0;
      lru_tail_ = lru_prev_[victim];
      if (lru_tail_ != UINT32_MAX) lru_next_[lru_tail_] = UINT32_MAX;
      if (lru_head_ == victim) lru_head_ = UINT32_MAX;
      --resident_count_;
    }
  }
  lru_prev_[pg] = UINT32_MAX;
  lru_next_[pg] = lru_head_;
  if (lru_head_ != UINT32_MAX) lru_prev_[lru_head_] = pg;
  lru_head_ = pg;
  if (lru_tail_ == UINT32_MAX) lru_tail_ = pg;
}

}  // namespace i3
