// Configuration of the I3 index.

#ifndef I3_I3_OPTIONS_H_
#define I3_I3_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/geo.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace i3 {

/// \brief Options for I3Index. Defaults reproduce the paper's setup:
/// P = 4KB pages, B = 32-byte tuples (capacity P/B = 128), eta = 300.
struct I3Options {
  /// The data space; every indexed location must fall inside. This is the
  /// root quadtree cell.
  Rect space{-180.0, -90.0, 180.0, 90.0};

  /// Page size P in bytes.
  size_t page_size = kDefaultPageSize;

  /// Signature length eta in bits (tuned in the paper's Figure 5).
  uint32_t signature_bits = 300;

  /// Deepest quadtree level a keyword cell may split to. Cells at this
  /// level grow an overflow page chain instead of splitting (only reachable
  /// with pathological duplicate locations).
  uint8_t max_split_level = 24;

  /// Enables signature-intersection pruning under AND semantics
  /// (Algorithm 5). Disable only for ablation studies.
  bool signature_pruning = true;

  /// Prune child cells with the summaries already held in the parent node
  /// before fetching their data pages. Disable to get the literal eager
  /// fetching of Algorithm 4 (ablation).
  bool summary_screen = true;

  /// Verify every data-file page with a CRC32C checksum header
  /// (storage/checksummed_page_file.h). The physical backing is allocated
  /// kPageHeaderBytes (16) larger per page so the caller-facing page size --
  /// and with it the paper's P/B page capacity and I/O counts -- is
  /// unchanged; a damaged page surfaces as Status::Corruption instead of a
  /// silently wrong top-k. Overhead is one CRC pass per physical page
  /// access (cache hits never pay it). Disable only for ablation.
  bool checksum_pages = true;

  /// Store data-file pages in the v2 compressed cell encoding
  /// (i3/cell_codec.h): per-cell delta + bit-packed doc ids, exactly
  /// round-tripped quantized weights, XOR-residual coordinates, and a
  /// per-cell block-max directory. Several times more tuples fit per 4KB
  /// page, which is where the pages/query reduction comes from; results
  /// are byte-identical to the uncompressed layout. Pages written before
  /// the option flips (e.g. a persisted v1 index) remain readable -- the
  /// format is sniffed per page.
  bool compress_pages = true;

  /// Head-file pager: summary nodes are charged per *page* of
  /// page_size / node-bytes nodes through an LRU pool of this many pages
  /// (the same working-buffer model the data file's buffer pool applies),
  /// instead of one charged read per node access. 0 restores the legacy
  /// per-node charging.
  uint32_t head_pool_pages = 128;

  /// When non-empty, the data file is stored on disk at this path;
  /// otherwise it lives in memory (with identical I/O accounting).
  std::string data_file_path;

  /// Custom data-file backing (takes precedence over data_file_path);
  /// used by the fault-injection tests.
  std::function<std::unique_ptr<PageFile>(size_t page_size)>
      page_file_factory;

  /// Page cache for the data file. The default 512-page (2MB at P = 4KB)
  /// write-through pool models the working buffer any deployment would
  /// give the index; insertions then cost one write instead of a
  /// read-modify-write pair. Benchmarks drop it to a cold state before
  /// every query set (Section 6.3's "clear the system cache").
  BufferPoolOptions buffer_pool{/*capacity_pages=*/512,
                                /*simulated_miss_latency_us=*/0};

  /// Byte budget of the decoded-cell cache (i3/cell_cache.h) layered over
  /// the data-file pool: hot keyword cells replay their decoded tuples
  /// without touching (or re-decoding) the page. 0 disables it; it is
  /// forced off whenever the buffer pool is uncached (capacity 0), keeping
  /// the deterministic-I/O mode deterministic. The default 16MB holds the
  /// hot cells of the benchmark workloads several times over while staying
  /// small next to the data file itself.
  size_t cell_cache_bytes = 16u << 20;
};

}  // namespace i3

#endif  // I3_I3_OPTIONS_H_
