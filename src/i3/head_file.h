// The I3 head file (Section 4.3.2): summary nodes for dense keyword cells.
//
// A dense keyword cell <w, C> owns a summary node holding (a) its own
// summary E = <signature, max_s>, (b) the summaries of its four child
// keyword cells, and (c) four child pointers -- to another summary node if
// the child is itself dense, to a data-file page otherwise, or nothing if
// the child cell is empty. This mirrors the R-tree node layout the paper
// describes ("each tree node has an MBR for itself as well as a list of
// child MBRs").
//
// Nodes are held in memory but every access is charged as one head-file I/O,
// so the I/O breakdowns of Figures 8-9 are reproduced; SizeBytes() accounts
// for the serialized footprint (Table 5 / Figure 5 head-file bars).

#ifndef I3_I3_HEAD_FILE_H_
#define I3_I3_HEAD_FILE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "i3/data_file.h"
#include "i3/signature.h"
#include "quadtree/cell.h"
#include "storage/io_stats.h"

namespace i3 {

/// Index of a summary node within the head file.
using NodeId = uint32_t;
constexpr NodeId kInvalidNodeId = UINT32_MAX;

/// \brief Summary information E of a keyword cell: a signature aggregating
/// the document ids in the cell and the cell's maximum term weight.
struct SummaryEntry {
  Signature sig;
  float max_s = 0.0f;

  void Reset() {
    sig.Clear();
    max_s = 0.0f;
  }

  /// Incorporates one tuple (insert path; signatures only grow).
  /// Returns true if the entry actually changed -- a clean entry needs no
  /// write-back.
  bool Add(DocId doc, float weight) {
    bool changed = sig.Add(doc);
    if (weight > max_s) {
      max_s = weight;
      changed = true;
    }
    return changed;
  }

  /// Incorporates a whole child summary (bottom-up rebuild).
  void Merge(const SummaryEntry& child) {
    sig.UnionWith(child.sig);
    if (child.max_s > max_s) max_s = child.max_s;
  }
};

/// \brief Pointer from a summary node to one child keyword cell.
struct ChildRef {
  enum class Kind : uint8_t {
    kNone,     ///< the child cell holds no tuple of this keyword
    kPage,     ///< non-dense child: tuples on data page `page`, tag `source`
    kSummary,  ///< dense child: summary node `node`
  };

  Kind kind = Kind::kNone;
  PageId page = kInvalidPageId;
  SourceId source = kFreeSlot;
  NodeId node = kInvalidNodeId;

  /// Extra pages of a max-depth cell that outgrew one page (overflow
  /// chain; empty in all but pathological duplicate-location workloads).
  std::vector<PageId> overflow;

  static ChildRef None() { return ChildRef{}; }
  static ChildRef ToPage(PageId page, SourceId source) {
    ChildRef r;
    r.kind = Kind::kPage;
    r.page = page;
    r.source = source;
    return r;
  }
  static ChildRef ToSummary(NodeId node) {
    ChildRef r;
    r.kind = Kind::kSummary;
    r.node = node;
    return r;
  }
};

/// \brief A summary node S_i of a dense keyword cell.
struct SummaryNode {
  SummaryEntry self;
  SummaryEntry child_summary[kQuadrants];
  ChildRef child[kQuadrants];

  /// Recomputes `self` from the four child summaries (delete path).
  void RebuildSelf() {
    self.Reset();
    for (int q = 0; q < kQuadrants; ++q) self.Merge(child_summary[q]);
  }
};

/// \brief Container of summary nodes with I/O accounting.
class HeadFile {
 public:
  /// \param signature_bits eta; every entry's signature length.
  explicit HeadFile(uint32_t signature_bits)
      : signature_bits_(signature_bits) {}

  /// \brief Allocates a node with empty summaries.
  NodeId Allocate();

  /// \brief Enables page-granular read charging: nodes are grouped
  /// page_size / NodeBytes() to a page, and a read is charged only when
  /// the node's page misses an LRU pool of `pool_pages` pages -- the same
  /// working-buffer model the data file gets from its buffer pool.
  /// `pool_pages` == 0 restores the legacy one-charge-per-node model.
  void ConfigurePager(size_t page_size, uint32_t pool_pages);

  /// Drops every resident pager page (benchmark cold-start; a no-op in the
  /// legacy charging model).
  void ClearCache();

  /// \brief Read access to a node; charges one head-file read (or, with
  /// the pager configured, one read per page fault). Safe for concurrent
  /// readers.
  const SummaryNode& Read(NodeId id) {
    if (pool_pages_ == 0) {
      io_stats_.RecordRead(IoCategory::kI3HeadFile);
    } else {
      TouchPage(static_cast<uint32_t>(id / nodes_per_page_));
    }
    return nodes_[id];
  }

  /// \brief Write access to a node; charges one head-file write.
  SummaryNode* Mutate(NodeId id) {
    io_stats_.RecordWrite(IoCategory::kI3HeadFile);
    return &nodes_[id];
  }

  /// \brief Write access without an upfront charge. The caller decides
  /// whether the node actually changed and charges via ChargeWrite --
  /// unchanged nodes (e.g. an insert whose signature bit is already set)
  /// need no write-back.
  SummaryNode* MutateDeferred(NodeId id) { return &nodes_[id]; }

  /// One deferred write-back (see MutateDeferred).
  void ChargeWrite(uint64_t n = 1) {
    io_stats_.RecordWrite(IoCategory::kI3HeadFile, n);
  }

  size_t NodeCount() const { return nodes_.size(); }

  /// \brief Serialized size of one node: five summary entries (signature +
  /// max_s) plus four child pointers.
  uint64_t NodeBytes() const;

  /// \brief Total serialized head-file size (the Table 5 "head file"
  /// column and Figure 5 histogram).
  uint64_t SizeBytes() const { return NodeBytes() * nodes_.size(); }

  uint32_t signature_bits() const { return signature_bits_; }

  const IoStats& io_stats() const { return io_stats_; }
  IoStats* mutable_io_stats() { return &io_stats_; }

 private:
  /// Marks `pg` most-recently-used, charging one read if it was not
  /// resident (and evicting the LRU page when the pool overflows).
  void TouchPage(uint32_t pg);

  uint32_t signature_bits_;
  std::vector<SummaryNode> nodes_;
  IoStats io_stats_;

  // --- pager state (ConfigurePager). Intrusive LRU over page numbers so
  // the steady state allocates nothing; the mutex makes Read safe for the
  // concurrent searches the index supports.
  uint32_t nodes_per_page_ = 1;
  uint32_t pool_pages_ = 0;
  std::mutex pager_mutex_;
  std::vector<uint8_t> resident_;
  std::vector<uint32_t> lru_prev_, lru_next_;  // indexed by page number
  uint32_t lru_head_ = UINT32_MAX, lru_tail_ = UINT32_MAX;
  uint32_t resident_count_ = 0;
};

}  // namespace i3

#endif  // I3_I3_HEAD_FILE_H_
