#include "i3/signature.h"

#include <cassert>

namespace i3 {

void Signature::IntersectWith(const Signature& other) {
  assert(bits_ == other.bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Signature::UnionWith(const Signature& other) {
  assert(bits_ == other.bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

bool Signature::Intersects(const Signature& other) const {
  assert(bits_ == other.bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

std::string Signature::ToString() const {
  std::string out;
  out.reserve(bits_);
  for (uint32_t i = 0; i < bits_; ++i) {
    out += TestBit(i) ? '1' : '0';
  }
  return out;
}

}  // namespace i3
