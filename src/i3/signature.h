// Signature files (Faloutsos & Christodoulakis), the per-keyword-cell
// document-id summaries of I3.
//
// A signature is a bitmap of length eta. Inserting a tuple sets bit
// H(doc_id) with H(id) = id mod eta (the hash used in the paper's worked
// example). Intersecting the signatures of several keywords in the same
// cell conservatively tests whether any document could contain all of them
// -- the core AND-semantics pruning device.

#ifndef I3_I3_SIGNATURE_H_
#define I3_I3_SIGNATURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/document.h"

namespace i3 {

/// \brief A fixed-length bitmap over hashed document ids.
class Signature {
 public:
  /// An empty 0-bit signature (usable only after assignment).
  Signature() = default;

  /// \param bits eta, the signature length in bits (> 0).
  explicit Signature(uint32_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  uint32_t bits() const { return bits_; }

  /// Storage footprint when serialized.
  uint32_t SizeBytes() const { return (bits_ + 7) / 8; }

  /// H(id) = id mod eta.
  uint32_t HashOf(DocId id) const { return id % bits_; }

  /// Sets the bit for `id`; returns true if the bit was newly set.
  bool Add(DocId id) {
    const uint32_t bit = HashOf(id);
    if (TestBit(bit)) return false;
    SetBit(bit);
    return true;
  }

  /// \brief True if `id`'s bit is set (i.e. the cell *may* contain `id`).
  bool MayContain(DocId id) const { return TestBit(HashOf(id)); }

  /// \brief True if no bit is set.
  bool IsZero() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Number of set bits.
  uint32_t PopCount() const {
    uint32_t n = 0;
    for (uint64_t w : words_) {
      n += static_cast<uint32_t>(__builtin_popcountll(w));
    }
    return n;
  }

  /// this &= other. Signatures must have equal length.
  void IntersectWith(const Signature& other);
  /// this |= other. Signatures must have equal length.
  void UnionWith(const Signature& other);

  /// \brief True if `a & b` has any set bit (without materializing it).
  bool Intersects(const Signature& other) const;

  void Clear() {
    for (uint64_t& w : words_) w = 0;
  }

  bool operator==(const Signature& o) const {
    return bits_ == o.bits_ && words_ == o.words_;
  }

  /// Bit string, e.g. "1001" -- for debugging and the doc examples.
  std::string ToString() const;

  /// Raw 64-bit words (serialization).
  const std::vector<uint64_t>& words() const { return words_; }

  /// Reconstructs a signature from serialized words. `words` must have
  /// ceil(bits / 64) entries.
  static Signature FromWords(uint32_t bits, std::vector<uint64_t> words) {
    Signature sig(bits);
    if (words.size() == sig.words_.size()) sig.words_ = std::move(words);
    return sig;
  }

 private:
  void SetBit(uint32_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  bool TestBit(uint32_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  uint32_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace i3

#endif  // I3_I3_SIGNATURE_H_
