// I3 wiring for model/replica_set.h.
//
// ReplicaSet is index-agnostic: recovery and scrubbing go through the
// ReplicaOps hook struct. This header builds those hooks for I3Index --
// snapshots via SaveTo/LoadFrom (re-homed onto the target replica's own
// storage stack, so each replica keeps its page-file factory, checksum
// layer, and buffer pool), and page-level verify/read/write against the
// data file for the scrubber. It lives in i3_core, not i3_model, because
// the dependency points that way: the model library defines the hook
// types, the index library fills them in.

#ifndef I3_I3_REPLICA_OPS_H_
#define I3_I3_REPLICA_OPS_H_

#include <cstdint>
#include <functional>

#include "i3/options.h"
#include "model/replica_set.h"

namespace i3 {

/// \brief ReplicaOps backed by I3Index. `options_for_replica(r)` must
/// return the same I3Options replica `r` was constructed with (page-file
/// factory included): LoadFrom re-homes a snapshot onto that storage
/// stack, so a recovered replica lands back behind its own backing (e.g.
/// the fault injector the chaos rigs planted under it). Every hook
/// expects the index to actually be an I3Index and fails with Internal
/// otherwise -- the factory passed to ReplicaSet::Create establishes
/// that contract.
ReplicaOps MakeI3ReplicaOps(
    std::function<I3Options(uint32_t replica)> options_for_replica);

}  // namespace i3

#endif  // I3_I3_REPLICA_OPS_H_
