#include "i3/data_file.h"

#include <cassert>
#include <cstring>

namespace i3 {

namespace {

void EncodeSlot(uint8_t* dst, const StoredTuple& st) {
  std::memcpy(dst + 0, &st.source, 4);
  std::memcpy(dst + 4, &st.tuple.term, 4);
  std::memcpy(dst + 8, &st.tuple.doc, 4);
  std::memcpy(dst + 12, &st.tuple.location.x, 8);
  std::memcpy(dst + 20, &st.tuple.location.y, 8);
  std::memcpy(dst + 28, &st.tuple.weight, 4);
}

// Per-thread stack of page-size scratch buffers backing PageView for
// uncached pools (and the fault-in copy of PinPage misses). A stack rather
// than a single buffer so nested views (e.g. an invariant checker holding
// one view while opening another) each get their own bytes; buffers are
// retained per thread, so the steady state allocates nothing.
struct ViewScratch {
  std::vector<std::vector<uint8_t>> bufs;
  size_t depth = 0;
};
thread_local ViewScratch t_view_scratch;

uint8_t* AcquireViewScratch(size_t page_size) {
  ViewScratch& s = t_view_scratch;
  if (s.depth == s.bufs.size()) s.bufs.emplace_back();
  std::vector<uint8_t>& buf = s.bufs[s.depth];
  if (buf.size() < page_size) buf.resize(page_size);
  ++s.depth;
  return buf.data();
}

void ReleaseViewScratch() {
  assert(t_view_scratch.depth > 0);
  --t_view_scratch.depth;
}

}  // namespace

PageView& PageView::operator=(PageView&& o) noexcept {
  if (owns_scratch_) ReleaseViewScratch();
  pin_ = std::move(o.pin_);  // releases any pin this view held
  data_ = o.data_;
  capacity_ = o.capacity_;
  page_size_ = o.page_size_;
  owns_scratch_ = o.owns_scratch_;
  o.data_ = nullptr;
  o.capacity_ = 0;
  o.page_size_ = 0;
  o.owns_scratch_ = false;
  return *this;
}

PageView::~PageView() {
  if (owns_scratch_) ReleaseViewScratch();
  owns_scratch_ = false;
}

std::vector<SpatialTuple> TuplePage::OfSource(SourceId source) const {
  std::vector<SpatialTuple> out;
  for (const StoredTuple& st : slots) {
    if (st.source == source) out.push_back(st.tuple);
  }
  return out;
}

uint32_t TuplePage::CountSource(SourceId source) const {
  uint32_t n = 0;
  for (const StoredTuple& st : slots) {
    if (st.source == source) ++n;
  }
  return n;
}

bool TuplePage::AllFromSource(SourceId source) const {
  for (const StoredTuple& st : slots) {
    if (st.source != source) return false;
  }
  return !slots.empty();
}

DataFile::DataFile(size_t page_size, BufferPoolOptions pool_options,
                   bool compress, size_t cell_cache_bytes)
    : DataFile(std::make_unique<InMemoryPageFile>(page_size), pool_options,
               compress, cell_cache_bytes) {}

DataFile::DataFile(std::unique_ptr<PageFile> file,
                   BufferPoolOptions pool_options, bool compress,
                   size_t cell_cache_bytes)
    : file_(std::move(file)),
      pool_(file_.get(), pool_options),
      // An uncached pool is the deterministic-I/O mode (every access
      // charged); serving decoded cells from memory would break it, so the
      // cell cache follows the pool off.
      cell_cache_(CellCacheOptions{
          pool_options.capacity_pages > 0 ? cell_cache_bytes : 0, 0}),
      fsm_(static_cast<uint32_t>(file_->page_size()),
           static_cast<uint32_t>(kTupleBytes)),
      capacity_(static_cast<uint32_t>(file_->page_size() / kTupleBytes)),
      compress_(compress && file_->page_size() >= codec::kV2MinPageSize),
      scratch_(file_->page_size(), 0) {}

Result<std::unique_ptr<DataFile>> DataFile::CreateOnDisk(
    const std::string& path, size_t page_size, BufferPoolOptions pool_options,
    bool compress, size_t cell_cache_bytes) {
  auto file_res = OnDiskPageFile::Create(path, page_size);
  if (!file_res.ok()) return file_res.status();
  return std::unique_ptr<DataFile>(
      new DataFile(std::move(file_res.ValueOrDie()), pool_options, compress,
                   cell_cache_bytes));
}

bool DataFile::Fits(const TuplePage& page) const {
  if (!compress_) return page.slots.size() <= capacity_;
  return codec::EncodedPageSize(page.slots.data(), page.slots.size()) <=
         file_->page_size();
}

bool DataFile::CellMustSplit(const TuplePage& page, SourceId source,
                             const SpatialTuple& incoming) const {
  if (!compress_) {
    // v1: the cell holds P/B tuples, so with `incoming` it can no longer
    // live on one page.
    return page.CountSource(source) >= capacity_;
  }
  std::vector<SpatialTuple> cell;
  for (const StoredTuple& st : page.slots) {
    if (st.source == source) cell.push_back(st.tuple);
  }
  cell.push_back(incoming);
  return codec::CellEnvelopeBytes(cell.data(), cell.size()) >
         file_->page_size();
}

bool DataFile::CellOversized(const std::vector<SpatialTuple>& tuples) const {
  if (!compress_) return tuples.size() > capacity_;
  return codec::CellEnvelopeBytes(tuples.data(), tuples.size()) >
         file_->page_size();
}

Result<PageId> DataFile::PageWithFreeSlots(uint32_t want) {
  // v1 pages need `want` slots; a v2 page is guaranteed to accept a *new*
  // cell whose worst-case footprint (directory entry + group header +
  // uncompressed payload) fits its free bytes -- group encodings are
  // independent, so adding one never grows the others.
  const uint32_t want_bytes =
      compress_ ? static_cast<uint32_t>(codec::NewCellUpperBoundBytes(want))
                : want * static_cast<uint32_t>(kTupleBytes);
  PageId id = fsm_.FindPageWithFreeSlots(want_bytes);
  if (id != kInvalidPageId) return id;
  return AllocatePage();
}

Result<PageId> DataFile::PageWithRoomForGroup(
    const std::vector<StoredTuple>& group) {
  // v1 keeps the slot-count request (identical to PageWithFreeSlots, so
  // the v1 placement sequence is unchanged); v2 asks for the group's exact
  // encoded footprint: EncodedPageSize of the group alone is page header +
  // directory entry + group bytes, and dropping the page header leaves
  // exactly what the group adds to any existing page.
  const uint32_t want_bytes =
      compress_ ? static_cast<uint32_t>(
                      codec::EncodedPageSize(group.data(), group.size()) -
                      codec::kV2PageHeaderBytes)
                : static_cast<uint32_t>(group.size() * kTupleBytes);
  PageId id = fsm_.FindPageWithFreeSlots(want_bytes);
  if (id != kInvalidPageId) return id;
  return AllocatePage();
}

Result<PageId> DataFile::AllocatePage() {
  auto alloc = pool_.AllocatePage();
  if (!alloc.ok()) return alloc.status();
  const PageId id = alloc.ValueOrDie();
  fsm_.AddPage(id);
  return id;
}

Result<PageView> DataFile::View(PageId id) {
  PageView view;
  view.capacity_ = capacity_;
  view.page_size_ = file_->page_size();
  uint8_t* scratch = AcquireViewScratch(file_->page_size());
  if (pool_.Pinnable()) {
    // Zero-copy window: the view reads straight out of the pinned frame;
    // the scratch is only the fault-in buffer of a miss.
    Status st = pool_.PinPage(id, IoCategory::kI3DataFile, scratch,
                              &view.pin_);
    ReleaseViewScratch();
    if (!st.ok()) return st;
    view.data_ = view.pin_.data();
  } else {
    // Uncached pool (the deterministic I/O-figure mode): every access is a
    // charged read into this thread's scratch; the view owns the buffer
    // until destroyed.
    Status st = pool_.ReadPage(id, scratch, IoCategory::kI3DataFile);
    if (!st.ok()) {
      ReleaseViewScratch();
      return st;
    }
    view.data_ = scratch;
    view.owns_scratch_ = true;
  }
  return view;
}

Result<TuplePage> DataFile::Read(PageId id) {
  // Decodes through the view path (one charged read, view-managed scratch;
  // Read runs concurrently from multiple threads, so no shared buffer).
  auto view_res = View(id);
  if (!view_res.ok()) return view_res.status();
  const PageView& view = view_res.ValueOrDie();
  TuplePage page;
  page.slots.reserve(capacity_);
  I3_RETURN_NOT_OK(
      view.VisitSlots([&page](SourceId source, const SpatialTuple& t) {
        page.slots.push_back({source, t});
      }));
  return page;
}

Status DataFile::Write(PageId id, const TuplePage& page) {
  std::memset(scratch_.data(), 0, scratch_.size());
  uint32_t free_bytes;
  if (compress_) {
    auto used = codec::EncodePage(page.slots.data(), page.slots.size(),
                                  scratch_.data(), scratch_.size());
    if (!used.ok()) {
      return Status::InvalidArgument(
          "page overflow: " + std::to_string(page.slots.size()) +
          " tuples (" + used.status().message() + ")");
    }
    free_bytes = static_cast<uint32_t>(scratch_.size()) -
                 static_cast<uint32_t>(used.ValueOrDie());
  } else {
    if (page.slots.size() > capacity_) {
      return Status::InvalidArgument("page overflow: " +
                                     std::to_string(page.slots.size()) +
                                     " tuples");
    }
    for (size_t s = 0; s < page.slots.size(); ++s) {
      EncodeSlot(scratch_.data() + s * kTupleBytes, page.slots[s]);
    }
    free_bytes = (capacity_ - static_cast<uint32_t>(page.slots.size())) *
                 static_cast<uint32_t>(kTupleBytes);
  }
  I3_RETURN_NOT_OK(pool_.WritePage(id, scratch_.data(),
                                   IoCategory::kI3DataFile));
  fsm_.SetFree(id, free_bytes);
  return Status::OK();
}

Status DataFile::Insert(PageId id, SourceId source,
                        const SpatialTuple& tuple) {
  auto page_res = Read(id);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();
  page.slots.push_back({source, tuple});
  if (!Fits(page)) {
    return Status::ResourceExhausted("page " + std::to_string(id) +
                                     " is full");
  }
  return Write(id, page);
}

Result<bool> DataFile::Remove(PageId id, SourceId source, DocId doc) {
  auto page_res = Read(id);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();
  for (auto it = page.slots.begin(); it != page.slots.end(); ++it) {
    if (it->source == source && it->tuple.doc == doc) {
      page.slots.erase(it);
      I3_RETURN_NOT_OK(Write(id, page));
      return true;
    }
  }
  return false;
}

Result<std::vector<SpatialTuple>> DataFile::TakeSource(PageId id,
                                                       SourceId source) {
  auto page_res = Read(id);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();
  std::vector<SpatialTuple> taken;
  std::vector<StoredTuple> kept;
  for (const StoredTuple& st : page.slots) {
    if (st.source == source) {
      taken.push_back(st.tuple);
    } else {
      kept.push_back(st);
    }
  }
  page.slots = std::move(kept);
  I3_RETURN_NOT_OK(Write(id, page));
  return taken;
}

Status DataFile::VerifyPage(PageId id) {
  if (id >= PageCount()) {
    return Status::OutOfRange("verify of unallocated page " +
                              std::to_string(id));
  }
  std::vector<uint8_t> buf(page_size());
  return file_->ReadPage(id, buf.data(), IoCategory::kI3DataFile);
}

Result<std::vector<uint8_t>> DataFile::ReadPageBytes(PageId id) {
  if (id >= PageCount()) {
    return Status::OutOfRange("read of unallocated page " +
                              std::to_string(id));
  }
  std::vector<uint8_t> buf(page_size());
  I3_RETURN_NOT_OK(pool_.ReadPage(id, buf.data(), IoCategory::kI3DataFile));
  return buf;
}

Status DataFile::WritePageBytes(PageId id,
                                const std::vector<uint8_t>& bytes) {
  if (id >= PageCount()) {
    return Status::OutOfRange("write of unallocated page " +
                              std::to_string(id));
  }
  if (bytes.size() != page_size()) {
    return Status::InvalidArgument("page bytes must be exactly one page");
  }
  return pool_.WritePage(id, bytes.data(), IoCategory::kI3DataFile);
}

Status DataFile::InsertAll(PageId id, SourceId source,
                           const std::vector<SpatialTuple>& tuples) {
  auto page_res = Read(id);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();
  for (const SpatialTuple& t : tuples) page.slots.push_back({source, t});
  if (!Fits(page)) {
    return Status::ResourceExhausted("page " + std::to_string(id) +
                                     " lacks room for " +
                                     std::to_string(tuples.size()) +
                                     " tuples");
  }
  return Write(id, page);
}

}  // namespace i3
