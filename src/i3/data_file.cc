#include "i3/data_file.h"

#include <cstring>

namespace i3 {

namespace {

void EncodeSlot(uint8_t* dst, const StoredTuple& st) {
  std::memcpy(dst + 0, &st.source, 4);
  std::memcpy(dst + 4, &st.tuple.term, 4);
  std::memcpy(dst + 8, &st.tuple.doc, 4);
  std::memcpy(dst + 12, &st.tuple.location.x, 8);
  std::memcpy(dst + 20, &st.tuple.location.y, 8);
  std::memcpy(dst + 28, &st.tuple.weight, 4);
}

StoredTuple DecodeSlot(const uint8_t* src) {
  StoredTuple st;
  std::memcpy(&st.source, src + 0, 4);
  std::memcpy(&st.tuple.term, src + 4, 4);
  std::memcpy(&st.tuple.doc, src + 8, 4);
  std::memcpy(&st.tuple.location.x, src + 12, 8);
  std::memcpy(&st.tuple.location.y, src + 20, 8);
  std::memcpy(&st.tuple.weight, src + 28, 4);
  return st;
}

}  // namespace

std::vector<SpatialTuple> TuplePage::OfSource(SourceId source) const {
  std::vector<SpatialTuple> out;
  for (const StoredTuple& st : slots) {
    if (st.source == source) out.push_back(st.tuple);
  }
  return out;
}

uint32_t TuplePage::CountSource(SourceId source) const {
  uint32_t n = 0;
  for (const StoredTuple& st : slots) {
    if (st.source == source) ++n;
  }
  return n;
}

bool TuplePage::AllFromSource(SourceId source) const {
  for (const StoredTuple& st : slots) {
    if (st.source != source) return false;
  }
  return !slots.empty();
}

DataFile::DataFile(size_t page_size, BufferPoolOptions pool_options)
    : DataFile(std::make_unique<InMemoryPageFile>(page_size), pool_options) {}

DataFile::DataFile(std::unique_ptr<PageFile> file,
                   BufferPoolOptions pool_options)
    : file_(std::move(file)),
      pool_(file_.get(), pool_options),
      fsm_(static_cast<uint32_t>(file_->page_size() / kTupleBytes)),
      capacity_(static_cast<uint32_t>(file_->page_size() / kTupleBytes)),
      scratch_(file_->page_size(), 0) {}

Result<std::unique_ptr<DataFile>> DataFile::CreateOnDisk(
    const std::string& path, size_t page_size,
    BufferPoolOptions pool_options) {
  auto file_res = OnDiskPageFile::Create(path, page_size);
  if (!file_res.ok()) return file_res.status();
  return std::unique_ptr<DataFile>(
      new DataFile(std::move(file_res.ValueOrDie()), pool_options));
}

Result<PageId> DataFile::PageWithFreeSlots(uint32_t want) {
  PageId id = fsm_.FindPageWithFreeSlots(want);
  if (id != kInvalidPageId) return id;
  return AllocatePage();
}

Result<PageId> DataFile::AllocatePage() {
  auto alloc = pool_.AllocatePage();
  if (!alloc.ok()) return alloc.status();
  const PageId id = alloc.ValueOrDie();
  fsm_.AddPage(id);
  return id;
}

Result<TuplePage> DataFile::Read(PageId id) {
  // Decodes through a local buffer, not the shared scratch_: Read runs
  // concurrently from multiple searcher threads (scratch_ stays reserved
  // for the write path, which is externally writer-exclusive).
  std::vector<uint8_t> buf(file_->page_size());
  I3_RETURN_NOT_OK(pool_.ReadPage(id, buf.data(), IoCategory::kI3DataFile));
  TuplePage page;
  page.slots.reserve(capacity_);
  for (uint32_t s = 0; s < capacity_; ++s) {
    StoredTuple st = DecodeSlot(buf.data() + s * kTupleBytes);
    if (st.source != kFreeSlot) page.slots.push_back(st);
  }
  return page;
}

Status DataFile::Write(PageId id, const TuplePage& page) {
  if (page.slots.size() > capacity_) {
    return Status::InvalidArgument("page overflow: " +
                                   std::to_string(page.slots.size()) +
                                   " tuples");
  }
  std::memset(scratch_.data(), 0, scratch_.size());
  for (size_t s = 0; s < page.slots.size(); ++s) {
    EncodeSlot(scratch_.data() + s * kTupleBytes, page.slots[s]);
  }
  I3_RETURN_NOT_OK(pool_.WritePage(id, scratch_.data(),
                                   IoCategory::kI3DataFile));
  const uint32_t new_free =
      capacity_ - static_cast<uint32_t>(page.slots.size());
  const uint32_t prev_free = fsm_.FreeSlots(id);
  fsm_.Consume(id, static_cast<int>(prev_free) - static_cast<int>(new_free));
  return Status::OK();
}

Status DataFile::Insert(PageId id, SourceId source,
                        const SpatialTuple& tuple) {
  auto page_res = Read(id);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();
  if (page.slots.size() >= capacity_) {
    return Status::ResourceExhausted("page " + std::to_string(id) +
                                     " is full");
  }
  page.slots.push_back({source, tuple});
  return Write(id, page);
}

Result<bool> DataFile::Remove(PageId id, SourceId source, DocId doc) {
  auto page_res = Read(id);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();
  for (auto it = page.slots.begin(); it != page.slots.end(); ++it) {
    if (it->source == source && it->tuple.doc == doc) {
      page.slots.erase(it);
      I3_RETURN_NOT_OK(Write(id, page));
      return true;
    }
  }
  return false;
}

Result<std::vector<SpatialTuple>> DataFile::TakeSource(PageId id,
                                                       SourceId source) {
  auto page_res = Read(id);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();
  std::vector<SpatialTuple> taken;
  std::vector<StoredTuple> kept;
  for (const StoredTuple& st : page.slots) {
    if (st.source == source) {
      taken.push_back(st.tuple);
    } else {
      kept.push_back(st);
    }
  }
  page.slots = std::move(kept);
  I3_RETURN_NOT_OK(Write(id, page));
  return taken;
}

Status DataFile::InsertAll(PageId id, SourceId source,
                           const std::vector<SpatialTuple>& tuples) {
  auto page_res = Read(id);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();
  if (page.slots.size() + tuples.size() > capacity_) {
    return Status::ResourceExhausted("page " + std::to_string(id) +
                                     " lacks " +
                                     std::to_string(tuples.size()) +
                                     " free slots");
  }
  for (const SpatialTuple& t : tuples) page.slots.push_back({source, t});
  return Write(id, page);
}

}  // namespace i3
