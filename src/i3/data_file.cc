#include "i3/data_file.h"

#include <cassert>
#include <cstring>

namespace i3 {

namespace {

void EncodeSlot(uint8_t* dst, const StoredTuple& st) {
  std::memcpy(dst + 0, &st.source, 4);
  std::memcpy(dst + 4, &st.tuple.term, 4);
  std::memcpy(dst + 8, &st.tuple.doc, 4);
  std::memcpy(dst + 12, &st.tuple.location.x, 8);
  std::memcpy(dst + 20, &st.tuple.location.y, 8);
  std::memcpy(dst + 28, &st.tuple.weight, 4);
}

// Per-thread stack of page-size scratch buffers backing PageView for
// uncached pools (and the fault-in copy of PinPage misses). A stack rather
// than a single buffer so nested views (e.g. an invariant checker holding
// one view while opening another) each get their own bytes; buffers are
// retained per thread, so the steady state allocates nothing.
struct ViewScratch {
  std::vector<std::vector<uint8_t>> bufs;
  size_t depth = 0;
};
thread_local ViewScratch t_view_scratch;

uint8_t* AcquireViewScratch(size_t page_size) {
  ViewScratch& s = t_view_scratch;
  if (s.depth == s.bufs.size()) s.bufs.emplace_back();
  std::vector<uint8_t>& buf = s.bufs[s.depth];
  if (buf.size() < page_size) buf.resize(page_size);
  ++s.depth;
  return buf.data();
}

void ReleaseViewScratch() {
  assert(t_view_scratch.depth > 0);
  --t_view_scratch.depth;
}

}  // namespace

PageView& PageView::operator=(PageView&& o) noexcept {
  if (owns_scratch_) ReleaseViewScratch();
  pin_ = std::move(o.pin_);  // releases any pin this view held
  data_ = o.data_;
  capacity_ = o.capacity_;
  owns_scratch_ = o.owns_scratch_;
  o.data_ = nullptr;
  o.capacity_ = 0;
  o.owns_scratch_ = false;
  return *this;
}

PageView::~PageView() {
  if (owns_scratch_) ReleaseViewScratch();
  owns_scratch_ = false;
}

std::vector<SpatialTuple> TuplePage::OfSource(SourceId source) const {
  std::vector<SpatialTuple> out;
  for (const StoredTuple& st : slots) {
    if (st.source == source) out.push_back(st.tuple);
  }
  return out;
}

uint32_t TuplePage::CountSource(SourceId source) const {
  uint32_t n = 0;
  for (const StoredTuple& st : slots) {
    if (st.source == source) ++n;
  }
  return n;
}

bool TuplePage::AllFromSource(SourceId source) const {
  for (const StoredTuple& st : slots) {
    if (st.source != source) return false;
  }
  return !slots.empty();
}

DataFile::DataFile(size_t page_size, BufferPoolOptions pool_options)
    : DataFile(std::make_unique<InMemoryPageFile>(page_size), pool_options) {}

DataFile::DataFile(std::unique_ptr<PageFile> file,
                   BufferPoolOptions pool_options)
    : file_(std::move(file)),
      pool_(file_.get(), pool_options),
      fsm_(static_cast<uint32_t>(file_->page_size() / kTupleBytes)),
      capacity_(static_cast<uint32_t>(file_->page_size() / kTupleBytes)),
      scratch_(file_->page_size(), 0) {}

Result<std::unique_ptr<DataFile>> DataFile::CreateOnDisk(
    const std::string& path, size_t page_size,
    BufferPoolOptions pool_options) {
  auto file_res = OnDiskPageFile::Create(path, page_size);
  if (!file_res.ok()) return file_res.status();
  return std::unique_ptr<DataFile>(
      new DataFile(std::move(file_res.ValueOrDie()), pool_options));
}

Result<PageId> DataFile::PageWithFreeSlots(uint32_t want) {
  PageId id = fsm_.FindPageWithFreeSlots(want);
  if (id != kInvalidPageId) return id;
  return AllocatePage();
}

Result<PageId> DataFile::AllocatePage() {
  auto alloc = pool_.AllocatePage();
  if (!alloc.ok()) return alloc.status();
  const PageId id = alloc.ValueOrDie();
  fsm_.AddPage(id);
  return id;
}

Result<PageView> DataFile::View(PageId id) {
  PageView view;
  view.capacity_ = capacity_;
  uint8_t* scratch = AcquireViewScratch(file_->page_size());
  if (pool_.Pinnable()) {
    // Zero-copy window: the view reads straight out of the pinned frame;
    // the scratch is only the fault-in buffer of a miss.
    Status st = pool_.PinPage(id, IoCategory::kI3DataFile, scratch,
                              &view.pin_);
    ReleaseViewScratch();
    if (!st.ok()) return st;
    view.data_ = view.pin_.data();
  } else {
    // Uncached pool (the deterministic I/O-figure mode): every access is a
    // charged read into this thread's scratch; the view owns the buffer
    // until destroyed.
    Status st = pool_.ReadPage(id, scratch, IoCategory::kI3DataFile);
    if (!st.ok()) {
      ReleaseViewScratch();
      return st;
    }
    view.data_ = scratch;
    view.owns_scratch_ = true;
  }
  return view;
}

Result<TuplePage> DataFile::Read(PageId id) {
  // Decodes through the view path (one charged read, view-managed scratch;
  // Read runs concurrently from multiple threads, so no shared buffer).
  auto view_res = View(id);
  if (!view_res.ok()) return view_res.status();
  const PageView& view = view_res.ValueOrDie();
  TuplePage page;
  page.slots.reserve(capacity_);
  view.ForEachSlot([&page](SourceId source, const SpatialTuple& t) {
    page.slots.push_back({source, t});
  });
  return page;
}

Status DataFile::Write(PageId id, const TuplePage& page) {
  if (page.slots.size() > capacity_) {
    return Status::InvalidArgument("page overflow: " +
                                   std::to_string(page.slots.size()) +
                                   " tuples");
  }
  std::memset(scratch_.data(), 0, scratch_.size());
  for (size_t s = 0; s < page.slots.size(); ++s) {
    EncodeSlot(scratch_.data() + s * kTupleBytes, page.slots[s]);
  }
  I3_RETURN_NOT_OK(pool_.WritePage(id, scratch_.data(),
                                   IoCategory::kI3DataFile));
  const uint32_t new_free =
      capacity_ - static_cast<uint32_t>(page.slots.size());
  const uint32_t prev_free = fsm_.FreeSlots(id);
  fsm_.Consume(id, static_cast<int>(prev_free) - static_cast<int>(new_free));
  return Status::OK();
}

Status DataFile::Insert(PageId id, SourceId source,
                        const SpatialTuple& tuple) {
  auto page_res = Read(id);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();
  if (page.slots.size() >= capacity_) {
    return Status::ResourceExhausted("page " + std::to_string(id) +
                                     " is full");
  }
  page.slots.push_back({source, tuple});
  return Write(id, page);
}

Result<bool> DataFile::Remove(PageId id, SourceId source, DocId doc) {
  auto page_res = Read(id);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();
  for (auto it = page.slots.begin(); it != page.slots.end(); ++it) {
    if (it->source == source && it->tuple.doc == doc) {
      page.slots.erase(it);
      I3_RETURN_NOT_OK(Write(id, page));
      return true;
    }
  }
  return false;
}

Result<std::vector<SpatialTuple>> DataFile::TakeSource(PageId id,
                                                       SourceId source) {
  auto page_res = Read(id);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();
  std::vector<SpatialTuple> taken;
  std::vector<StoredTuple> kept;
  for (const StoredTuple& st : page.slots) {
    if (st.source == source) {
      taken.push_back(st.tuple);
    } else {
      kept.push_back(st);
    }
  }
  page.slots = std::move(kept);
  I3_RETURN_NOT_OK(Write(id, page));
  return taken;
}

Status DataFile::InsertAll(PageId id, SourceId source,
                           const std::vector<SpatialTuple>& tuples) {
  auto page_res = Read(id);
  if (!page_res.ok()) return page_res.status();
  TuplePage page = page_res.MoveValue();
  if (page.slots.size() + tuples.size() > capacity_) {
    return Status::ResourceExhausted("page " + std::to_string(id) +
                                     " lacks " +
                                     std::to_string(tuples.size()) +
                                     " free slots");
  }
  for (const SpatialTuple& t : tuples) page.slots.push_back({source, t});
  return Write(id, page);
}

}  // namespace i3
