// Serialization of a whole I3 index to a single file and back.
//
// Layout (little-endian):
//   magic "I3IX" + version u32
//   options: space (4 x f64), page_size u64, signature_bits u32,
//            max_split_level u8, signature_pruning u8, summary_screen u8
//   doc_count u64, next_source u32
//   lookup table: count u64, then per entry
//     term u32, dense u8, page u32, source u32, node u32
//   head file: node count u64, then per node
//     5 summary entries (word count u32, words, max_s f32)
//     4 child refs (kind u8, page u32, source u32, node u32,
//                   overflow count u32, overflow page ids)
//   data file: page count u32, then per page
//     slot count u32, slots (source u32, term u32, doc u32, x f64, y f64,
//                            weight f32)

#include <cstdint>
#include <cstring>
#include <fstream>

#include "i3/i3_index.h"

namespace i3 {

namespace {

constexpr char kMagic[4] = {'I', '3', 'I', 'X'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WriteP(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadP(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(is);
}

void WriteEntry(std::ostream& os, const SummaryEntry& e) {
  const auto& words = e.sig.words();
  WriteP(os, static_cast<uint32_t>(words.size()));
  for (uint64_t w : words) WriteP(os, w);
  WriteP(os, e.max_s);
}

bool ReadEntry(std::istream& is, uint32_t bits, SummaryEntry* e) {
  uint32_t n = 0;
  if (!ReadP(is, &n)) return false;
  std::vector<uint64_t> words(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!ReadP(is, &words[i])) return false;
  }
  e->sig = Signature::FromWords(bits, std::move(words));
  return ReadP(is, &e->max_s);
}

void WriteChildRef(std::ostream& os, const ChildRef& ref) {
  WriteP(os, static_cast<uint8_t>(ref.kind));
  WriteP(os, ref.page);
  WriteP(os, ref.source);
  WriteP(os, ref.node);
  WriteP(os, static_cast<uint32_t>(ref.overflow.size()));
  for (PageId p : ref.overflow) WriteP(os, p);
}

bool ReadChildRef(std::istream& is, ChildRef* ref) {
  uint8_t kind = 0;
  if (!ReadP(is, &kind)) return false;
  ref->kind = static_cast<ChildRef::Kind>(kind);
  if (!ReadP(is, &ref->page)) return false;
  if (!ReadP(is, &ref->source)) return false;
  if (!ReadP(is, &ref->node)) return false;
  uint32_t n = 0;
  if (!ReadP(is, &n)) return false;
  ref->overflow.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!ReadP(is, &ref->overflow[i])) return false;
  }
  return true;
}

}  // namespace

Status I3Index::SaveTo(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  os.write(kMagic, 4);
  WriteP(os, kVersion);

  WriteP(os, options_.space.min_x);
  WriteP(os, options_.space.min_y);
  WriteP(os, options_.space.max_x);
  WriteP(os, options_.space.max_y);
  WriteP(os, static_cast<uint64_t>(options_.page_size));
  WriteP(os, options_.signature_bits);
  WriteP(os, options_.max_split_level);
  WriteP(os, static_cast<uint8_t>(options_.signature_pruning));
  WriteP(os, static_cast<uint8_t>(options_.summary_screen));

  WriteP(os, doc_count_);
  WriteP(os, next_source_);

  WriteP(os, static_cast<uint64_t>(lookup_.size()));
  for (const auto& [term, entry] : lookup_) {
    WriteP(os, term);
    WriteP(os, static_cast<uint8_t>(entry.dense));
    WriteP(os, entry.page);
    WriteP(os, entry.source);
    WriteP(os, entry.node);
  }

  // Head file. Mutate-free access via a const_cast'ed Read (charges reads,
  // which is accurate: saving scans the head file once).
  HeadFile& head = const_cast<HeadFile&>(head_);
  WriteP(os, static_cast<uint64_t>(head.NodeCount()));
  for (NodeId id = 0; id < head.NodeCount(); ++id) {
    const SummaryNode& node = head.Read(id);
    WriteEntry(os, node.self);
    for (int q = 0; q < kQuadrants; ++q) {
      WriteEntry(os, node.child_summary[q]);
    }
    for (int q = 0; q < kQuadrants; ++q) {
      WriteChildRef(os, node.child[q]);
    }
  }

  // Data file: decoded pages.
  DataFile& data = const_cast<DataFile&>(*data_);
  WriteP(os, data.PageCount());
  for (PageId p = 0; p < data.PageCount(); ++p) {
    auto page = data.Read(p);
    if (!page.ok()) return page.status();
    const auto& slots = page.ValueOrDie().slots;
    WriteP(os, static_cast<uint32_t>(slots.size()));
    for (const StoredTuple& st : slots) {
      WriteP(os, st.source);
      WriteP(os, st.tuple.term);
      WriteP(os, st.tuple.doc);
      WriteP(os, st.tuple.location.x);
      WriteP(os, st.tuple.location.y);
      WriteP(os, st.tuple.weight);
    }
  }

  if (!os.flush()) {
    return Status::IOError("write to " + path + " failed");
  }
  return Status::OK();
}

Result<std::unique_ptr<I3Index>> I3Index::LoadFrom(const std::string& path) {
  return LoadFrom(path, I3Options{});
}

Result<std::unique_ptr<I3Index>> I3Index::LoadFrom(const std::string& path,
                                                   I3Options base) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::IOError("cannot open " + path);
  }
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  uint32_t version = 0;
  if (!ReadP(is, &version) || version != kVersion) {
    return Status::NotSupported("unsupported index file version");
  }

  // Structural options come from the file; environment options (backing
  // factory, checksumming, buffer pool) are taken from `base` so callers
  // can re-home a persisted index onto a different storage stack.
  I3Options opt = base;
  uint64_t page_size = 0;
  uint8_t sig_pruning = 1, screen = 1;
  if (!ReadP(is, &opt.space.min_x) || !ReadP(is, &opt.space.min_y) ||
      !ReadP(is, &opt.space.max_x) || !ReadP(is, &opt.space.max_y) ||
      !ReadP(is, &page_size) || !ReadP(is, &opt.signature_bits) ||
      !ReadP(is, &opt.max_split_level) || !ReadP(is, &sig_pruning) ||
      !ReadP(is, &screen)) {
    return Status::Corruption("truncated options in " + path);
  }
  opt.page_size = page_size;
  opt.signature_pruning = sig_pruning != 0;
  opt.summary_screen = screen != 0;

  auto index = std::make_unique<I3Index>(opt);
  if (!ReadP(is, &index->doc_count_) || !ReadP(is, &index->next_source_)) {
    return Status::Corruption("truncated header in " + path);
  }

  uint64_t lookup_count = 0;
  if (!ReadP(is, &lookup_count)) {
    return Status::Corruption("truncated lookup table");
  }
  for (uint64_t i = 0; i < lookup_count; ++i) {
    TermId term = 0;
    uint8_t dense = 0;
    LookupEntry entry;
    if (!ReadP(is, &term) || !ReadP(is, &dense) || !ReadP(is, &entry.page) ||
        !ReadP(is, &entry.source) || !ReadP(is, &entry.node)) {
      return Status::Corruption("truncated lookup entry");
    }
    entry.dense = dense != 0;
    index->lookup_.emplace(term, entry);
  }

  uint64_t node_count = 0;
  if (!ReadP(is, &node_count)) {
    return Status::Corruption("truncated head file");
  }
  for (uint64_t i = 0; i < node_count; ++i) {
    const NodeId id = index->head_.Allocate();
    SummaryNode* node = index->head_.Mutate(id);
    if (!ReadEntry(is, opt.signature_bits, &node->self)) {
      return Status::Corruption("truncated summary node");
    }
    for (int q = 0; q < kQuadrants; ++q) {
      if (!ReadEntry(is, opt.signature_bits, &node->child_summary[q])) {
        return Status::Corruption("truncated child summary");
      }
    }
    for (int q = 0; q < kQuadrants; ++q) {
      if (!ReadChildRef(is, &node->child[q])) {
        return Status::Corruption("truncated child ref");
      }
    }
  }

  PageId page_count = 0;
  if (!ReadP(is, &page_count)) {
    return Status::Corruption("truncated data file");
  }
  for (PageId p = 0; p < page_count; ++p) {
    auto alloc = index->data_->AllocatePage();
    if (!alloc.ok()) return alloc.status();
    if (alloc.ValueOrDie() != p) {
      return Status::Internal("page id mismatch during load");
    }
    uint32_t slot_count = 0;
    if (!ReadP(is, &slot_count)) {
      return Status::Corruption("truncated page header");
    }
    TuplePage page;
    page.slots.resize(slot_count);
    for (uint32_t s = 0; s < slot_count; ++s) {
      StoredTuple& st = page.slots[s];
      if (!ReadP(is, &st.source) || !ReadP(is, &st.tuple.term) ||
          !ReadP(is, &st.tuple.doc) || !ReadP(is, &st.tuple.location.x) ||
          !ReadP(is, &st.tuple.location.y) || !ReadP(is, &st.tuple.weight)) {
        return Status::Corruption("truncated tuple slot");
      }
    }
    I3_RETURN_NOT_OK(index->data_->Write(p, page));
  }
  index->ResetIoStats();
  return index;
}

}  // namespace i3
