// Decoded-cell cache: level 2 of the cache hierarchy (DESIGN.md §13).
//
// The buffer pool caches page *bytes*; a hit on a compressed v2 page still
// pays the full group decode (delta-unpack doc ids, dequantize weights,
// XOR-undelta coordinates) on every visit. This cache memoizes the decoded
// image of one keyword cell on one page, keyed by (page, source) and
// versioned by the page's buffer-pool write epoch: an entry is served only
// while its epoch matches the page's current epoch, so a rewritten,
// corrupted-and-quarantined, or healed page can never serve stale decoded
// tuples (the quarantine path bumps the epoch too).
//
// Sized in bytes with the same SIEVE/CLOCK policy as the buffer pool --
// hits set an atomic reference bit, the hand evicts the first unreferenced
// entry, new entries enter unreferenced (scan-resistant). Striped by key;
// lookups take the stripe lock in shared mode, so concurrent readers of
// the same hot cell visit it in parallel.

#ifndef I3_I3_CELL_CACHE_H_
#define I3_I3_CELL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/document.h"
#include "obs/metrics.h"
#include "storage/page_file.h"

namespace i3 {

/// \brief Options controlling CellCache behaviour.
struct CellCacheOptions {
  /// Total resident-byte budget across all stripes; 0 disables the cache.
  size_t capacity_bytes = 0;
  /// Lock stripes; 0 picks 8 (entries are small and keys hash well, so a
  /// fixed small power of two suffices).
  size_t stripes = 0;
};

/// \brief Striped, byte-bounded, epoch-validated cache of decoded keyword
/// cells. Thread-safe; see file comment for the policy.
class CellCache {
 public:
  explicit CellCache(CellCacheOptions options);

  bool enabled() const { return options_.capacity_bytes > 0; }

  /// Cache key of the cell `source` on `page`.
  static uint64_t Key(PageId page, uint32_t source) {
    return static_cast<uint64_t>(page) << 32 | source;
  }

  /// \brief Visits every tuple of the entry at `key` if it is resident and
  /// its epoch matches `epoch`; `fn(const SpatialTuple&)`. Returns the
  /// number visited on a hit, or -1 on a miss (absent or stale -- a stale
  /// entry is dropped on the spot). `fn` runs under the stripe's shared
  /// lock: it must not re-enter the cache.
  template <typename Fn>
  int64_t VisitIfFresh(uint64_t key, uint64_t epoch, Fn&& fn) {
    if (!enabled()) return -1;
    Stripe& s = StripeOf(key);
    {
      std::shared_lock<std::shared_mutex> lock(s.mutex);
      auto it = s.index.find(key);
      if (it != s.index.end()) {
        const Entry& e = s.entries[it->second];
        if (e.epoch == epoch) {
          e.visited.store(1, std::memory_order_relaxed);
          hits_metric_->Increment(1);
          SpatialTuple t;
          t.term = e.term;
          for (size_t i = 0; i < e.docs.size(); ++i) {
            t.doc = e.docs[i];
            t.location.x = e.xs[i];
            t.location.y = e.ys[i];
            t.weight = e.weights[i];
            fn(t);
          }
          return static_cast<int64_t>(e.docs.size());
        }
      }
    }
    DropStale(s, key, epoch);
    misses_metric_->Increment(1);
    return -1;
  }

  /// \brief Collector for the miss path: accumulates the tuples a page
  /// visit streams by, for insertion afterwards. A cell whose tuples carry
  /// more than one term id is never cached (a keyword cell is one term's
  /// quadtree cell; a mixed tag would make the memoized `term` wrong).
  class Collector {
   public:
    void Add(const SpatialTuple& t) {
      if (docs_.empty()) {
        term_ = t.term;
      } else if (t.term != term_) {
        mixed_ = true;
      }
      docs_.push_back(t.doc);
      weights_.push_back(t.weight);
      xs_.push_back(t.location.x);
      ys_.push_back(t.location.y);
    }
    bool cacheable() const { return !mixed_; }

   private:
    friend class CellCache;
    uint32_t term_ = 0;
    bool mixed_ = false;
    std::vector<DocId> docs_;
    std::vector<float> weights_;
    std::vector<double> xs_;
    std::vector<double> ys_;
  };

  /// \brief Inserts the collected cell under (`key`, `epoch`), evicting
  /// SIEVE victims until it fits the stripe's byte budget. Oversized cells
  /// (bigger than one stripe's whole budget) and uncacheable collections
  /// are dropped. An existing entry for `key` is replaced.
  void Insert(uint64_t key, uint64_t epoch, Collector&& c);

  /// \brief Drops every entry (cold-cache reset; pairs with
  /// BufferPool::Clear in DataFile::ClearCache).
  void Clear();

  size_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  size_t entry_count() const;

 private:
  struct Entry {
    uint64_t key = 0;
    uint64_t epoch = 0;
    uint32_t term = 0;
    bool live = false;
    mutable std::atomic<uint8_t> visited{0};
    std::vector<DocId> docs;
    std::vector<float> weights;
    std::vector<double> xs;
    std::vector<double> ys;
  };

  struct Stripe {
    mutable std::shared_mutex mutex;
    std::deque<Entry> entries;  // stable addresses; recycled via free list
    std::vector<uint32_t> free;
    std::unordered_map<uint64_t, uint32_t> index;
    size_t hand = 0;
    size_t bytes = 0;
    size_t capacity_bytes = 0;
  };

  Stripe& StripeOf(uint64_t key) {
    // SplitMix64-style mix: adjacent (page, source) keys spread stripes.
    uint64_t h = key + 0x9e3779b97f4a7c15ull;
    h = (h ^ h >> 30) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ h >> 27) * 0x94d049bb133111ebull;
    return *stripes_[(h ^ h >> 31) % stripes_.size()];
  }

  static size_t EntryBytes(size_t n) {
    return sizeof(Entry) + n * (sizeof(DocId) + sizeof(float) +
                                2 * sizeof(double));
  }

  /// Erases the entry at `key` iff it is still resident with a stale epoch
  /// (takes the stripe lock exclusively; re-checks under it).
  void DropStale(Stripe& s, uint64_t key, uint64_t epoch);
  /// Evicts one SIEVE victim; returns false when the stripe is empty.
  /// Guarded by s.mutex (exclusive).
  bool EvictOne(Stripe& s);
  void EraseEntry(Stripe& s, uint32_t idx);

  const CellCacheOptions options_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<size_t> resident_bytes_{0};

  obs::Counter* hits_metric_;
  obs::Counter* misses_metric_;
  obs::Counter* evictions_metric_;
  obs::Counter* insertions_metric_;
  obs::Gauge* bytes_metric_;
};

}  // namespace i3

#endif  // I3_I3_CELL_CACHE_H_
