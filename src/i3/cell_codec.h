// The v2 compressed keyword-cell page encoding and its block decoder.
//
// Motivation (Navarro & Valenzuela; Hon/Shah/Thankachan, PAPERS.md): most
// of the I3 query cost is page reads whose tuples never enter the top-k
// heap. Packing several times more tuples into each 4KB page shrinks the
// data file -- and with it the cold-cache pages/query figure the paper
// reports -- without changing a single byte of any answer.
//
// A v2 page groups its tuples by keyword cell (source id) and encodes each
// group column-wise. Every transform is *lossless*: doc ids are offsets
// from the group minimum, bit-packed at the narrowest sufficient width;
// term weights are raw float32 unless the whole group survives an exact
// round-trip through 16-bit quantization (or is constant); coordinates are
// stored as the XOR of each double against the group's first tuple,
// truncated to the bytes that actually differ -- tuples of one keyword cell
// are spatially close, so their doubles share sign/exponent/high-mantissa
// bytes. Within-group tuple order is the original slot order, so a v2 page
// replays the exact visit sequence of its v1 counterpart and search results
// are byte-identical.
//
// Page layout (little-endian; all offsets from the page start):
//
//   header  (12B): u32 magic "I3V2" | u16 version | u16 group_count |
//                  u32 used_bytes
//   directory (group_count x 20B): u32 source | u32 term | u32 count |
//                  u32 offset | f32 block_max   (per-group max term weight)
//   groups, each at its directory offset:
//     u32 min_doc | u8 doc_bits | u8 weight_mode | u8 x_bytes | u8 y_bytes |
//     f64 base_x | f64 base_y |
//     [mode 1: f32 w_min, f32 w_step] [mode 2: f32 w_const] |
//     doc deltas   ceil(count * doc_bits / 8) bytes (LSB-first bit stream) |
//     weights      mode 0: 4*count, mode 1: 2*count, mode 2: 0 bytes |
//     x residuals  x_bytes * count | y residuals  y_bytes * count
//
// The directory makes group location and the per-cell block-max bound
// readable without decoding any payload; the block_max field mirrors the
// summary-node max_s for the cell's tuples on this page (cross-checked by
// the invariant tests, usable for page-local skipping diagnostics).
//
// The hot-path decoder is runtime-dispatched like storage/checksum.cc: an
// AVX2 gather/variable-shift bit-unpacker is self-tested against the
// portable implementation at startup and only then allowed to serve.
// Decoding is bounds-checked end to end -- a truncated or bit-flipped page
// surfaces as Status::Corruption, never as out-of-bounds reads -- because
// with checksums disabled this is the only line of defense.
//
// A v1 page is recognized by the absence of the magic (v1 slot 0 starts
// with a source id, allocated sequentially from 1 and nowhere near the
// magic value), so v1 and v2 pages coexist in one file and old indexes
// stay readable with compression enabled.

#ifndef I3_I3_CELL_CODEC_H_
#define I3_I3_CELL_CODEC_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace i3 {

struct StoredTuple;   // i3/data_file.h
struct SpatialTuple;  // model/document.h

namespace codec {

/// "I3V2" little-endian.
constexpr uint32_t kV2PageMagic = 0x32563349u;
constexpr uint16_t kV2FormatVersion = 2;

constexpr size_t kV2PageHeaderBytes = 12;
constexpr size_t kV2DirEntryBytes = 20;
/// Group header plus the largest weight-mode extension (mode 1: 8 bytes).
constexpr size_t kV2MaxGroupHeaderBytes = 24 + 8;
/// Worst case per tuple: 4B doc delta + 4B raw weight + 8B per coordinate.
constexpr size_t kV2MaxTupleBytes = 24;

/// \brief Upper bound on the bytes a *new* group of `n` tuples adds to a
/// page (directory entry + group header + worst-case payload). Used by
/// placement: a page whose free-byte count covers this bound is guaranteed
/// to accept the cell, so FindPageWithFreeSlots keeps its v1 contract.
inline size_t NewCellUpperBoundBytes(size_t n) {
  return kV2DirEntryBytes + kV2MaxGroupHeaderBytes + n * kV2MaxTupleBytes;
}

/// \brief Smallest page size the v2 encoding is used for. Maintenance
/// needs a fresh page to always hold one relocated or spilled cell of up
/// to capacity + 1 = P/32 + 1 tuples, i.e. NewCellUpperBoundBytes(P/32+1)
/// = 76 + 0.75 P <= P - 12, which holds from P = 352; below that (tiny
/// pages appear only in tests) the data file silently stays v1 -- the two
/// formats return identical results anyway.
constexpr size_t kV2MinPageSize = 512;

/// \brief Subset-stable one-page envelope of a keyword cell: an upper
/// bound on the encoded size of `tuples[0..n)` alone on a page that also
/// bounds every *subset* of them (re-based to the subset's own first
/// tuple). Doc-delta widths and coordinate-residual widths only shrink
/// under subsetting -- SigBytes(a^b) never exceeds the wider of
/// SigBytes(a), SigBytes(b), so re-basing cannot widen a residual -- and
/// the weight term takes the worse of raw and quantized layouts. This is
/// the v2 split trigger: while a cell stays under the envelope, the cell
/// itself *and every quadrant piece a split produces* are guaranteed to
/// fit alone on a fresh page, so maintenance never wedges.
size_t CellEnvelopeBytes(const SpatialTuple* tuples, size_t n);

/// True if the page bytes carry the v2 magic + version.
bool IsV2Page(const uint8_t* page, size_t page_size);

// ------------------------------------------------------------- write path

/// \brief Exact encoded size of `slots[0..n)` as one v2 page.
size_t EncodedPageSize(const StoredTuple* slots, size_t n);

/// \brief Encodes `slots[0..n)` into `out` (page_size bytes, pre-zeroed by
/// the caller); groups appear in first-appearance order of their source and
/// tuples keep their slot order within a group. Returns the bytes used, or
/// ResourceExhausted when the encoding exceeds `page_size` (nothing is
/// written then).
Result<size_t> EncodePage(const StoredTuple* slots, size_t n, uint8_t* out,
                          size_t page_size);

// -------------------------------------------------------------- read path

/// One directory entry, decoded.
struct GroupRef {
  uint32_t source = 0;
  uint32_t term = 0;
  uint32_t count = 0;
  uint32_t offset = 0;
  float block_max = 0.0f;
};

/// \brief Validated group count of a v2 page (header + directory bounds).
Result<uint32_t> GroupCount(const uint8_t* page, size_t page_size);

/// \brief Reads directory entry `g` with bounds checks.
Status ReadGroupRef(const uint8_t* page, size_t page_size, uint32_t g,
                    GroupRef* out);

/// \brief Locates the group of `source`; false if the page has none.
Result<bool> FindGroup(const uint8_t* page, size_t page_size, uint32_t source,
                       GroupRef* out);

/// Columnar view of one decoded group; pointers live in a DecodeScratch
/// lease and stay valid until the lease is released.
struct DecodedGroup {
  const uint32_t* docs = nullptr;
  const float* weights = nullptr;
  const double* xs = nullptr;
  const double* ys = nullptr;
  uint32_t n = 0;
};

/// \brief RAII lease on one level of the per-thread decode scratch stack
/// (stacked like DataFile's view scratch, so nested decodes -- an invariant
/// checker holding one view while opening another -- never alias). Steady
/// state allocates nothing.
class DecodeScratch {
 public:
  DecodeScratch();
  ~DecodeScratch();
  DecodeScratch(const DecodeScratch&) = delete;
  DecodeScratch& operator=(const DecodeScratch&) = delete;

 private:
  friend Status DecodeGroup(const uint8_t*, size_t, const GroupRef&,
                            DecodeScratch*, DecodedGroup*);
  void* slot_;  // internal buffer set
};

/// \brief Decodes group `g` into `scratch`, publishing the columnar arrays
/// through `out`. Every field and payload extent is validated against
/// `page_size`; damage surfaces as Status::Corruption.
Status DecodeGroup(const uint8_t* page, size_t page_size, const GroupRef& g,
                   DecodeScratch* scratch, DecodedGroup* out);

namespace internal {

/// Reference bit-unpacker (LSB-first stream of `bits`-wide values).
void UnpackBitsPortable(const uint8_t* src, uint32_t n, uint32_t bits,
                        uint32_t* out);

/// \brief Dispatched bit-unpacker. `src_readable` is the number of bytes
/// that may be touched from `src` onward (the SIMD path reads whole 32-bit
/// windows and falls back to the portable loop near the end of the
/// readable range).
void UnpackBits(const uint8_t* src, size_t src_readable, uint32_t n,
                uint32_t bits, uint32_t* out);

/// Reference packer (write path; scalar only).
void PackBits(const uint32_t* vals, uint32_t n, uint32_t bits, uint8_t* dst);

/// True when the startup self-test selected the SIMD unpacker.
bool UsingSimdUnpack();

}  // namespace internal

}  // namespace codec
}  // namespace i3

#endif  // I3_I3_CELL_CODEC_H_
