// Exporters over MetricsSnapshot: Prometheus text exposition format and
// JSON.
//
// Both work on a snapshot (not the registry) so a scrape handler can take
// the snapshot once and format it without holding any registry state;
// recording proceeds concurrently.

#ifndef I3_OBS_EXPORT_H_
#define I3_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace i3 {
namespace obs {

/// \brief Prometheus text exposition format (version 0.0.4): one
/// `# HELP` / `# TYPE` pair per metric family, label values escaped
/// (backslash, double-quote, newline), histograms expanded into
/// cumulative `_bucket{le=...}` series over the non-empty buckets plus
/// `le="+Inf"`, `_sum`, and `_count`.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// \brief JSON object {"metrics": [...]}: counters/gauges carry "value",
/// histograms carry count/sum/p50/p90/p99/max plus the non-empty
/// [upper_bound, count] bucket pairs. `indent` prefixes every line (for
/// embedding into a larger JSON document, e.g. BENCH_*.json).
std::string ToJson(const MetricsSnapshot& snapshot,
                   const std::string& indent = "");

/// \brief Unescapes a Prometheus label value (the inverse of the escaping
/// ToPrometheusText applies); exposed for the round-trip tests.
std::string UnescapePrometheusLabelValue(const std::string& s);

}  // namespace obs
}  // namespace i3

#endif  // I3_OBS_EXPORT_H_
