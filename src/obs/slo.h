// Per-tenant rolling-window SLO accounting.
//
// Each tenant owns a ring of window_seconds one-second slots; Record()
// lands in the slot of the current second, lazily resetting a slot the
// first time a new second touches it. Reading merges every slot whose
// second falls inside (now - window, now], so the view is a true rolling
// window: counts and quantiles cover exactly the last window_seconds of
// traffic, and a tenant that goes quiet ages out slot by slot.
//
// Latency quantiles reuse the histogram bucket geometry
// (obs/histogram.h): one HistogramSnapshot per slot, merged at read time,
// so the rolling p99 carries the same <= 3.125% relative-error bound as
// every other latency figure in the system.
//
// Concurrency: the tenant table is a small id -> entry map under a
// shared_mutex (reads take the shared side after warmup); each tenant's
// ring has its own mutex, held for a few increments on Record and for
// the merge on read. Tenants beyond max_tenants aggregate into one
// overflow entry so a tenant-id scan cannot grow memory without bound.

#ifndef I3_OBS_SLO_H_
#define I3_OBS_SLO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace i3 {
namespace obs {

class SloTracker {
 public:
  struct Options {
    uint32_t window_seconds = 60;
    /// Distinct tenants tracked individually; the rest share one
    /// "overflow" entry (bounds memory against tenant-id scans).
    uint32_t max_tenants = 16;
  };

  /// Pseudo tenant id of the overflow aggregate.
  static constexpr int64_t kOverflowTenant = -1;

  explicit SloTracker(const Options& options);
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// \brief Accounts one finished request. `now_ns` is the steady clock
  /// (obs::NowNanos) -- injected so tests can drive window rollover.
  /// Shed requests count toward `sheds` but not latency quantiles (a
  /// shed's fast rejection time would drag p99 toward zero).
  void Record(uint32_t tenant, uint64_t latency_us, bool shed,
              bool deadline_miss, uint64_t now_ns);

  struct WindowStats {
    uint64_t requests = 0;
    uint64_t sheds = 0;
    uint64_t deadline_misses = 0;
    uint64_t p50_us = 0;
    uint64_t p99_us = 0;
  };

  /// Rolling-window view of one tenant (kOverflowTenant for the
  /// aggregate); all zeros when the tenant never recorded.
  WindowStats Window(int64_t tenant, uint64_t now_ns) const;

  /// Every tracked tenant (overflow last when present), ascending id.
  std::vector<std::pair<int64_t, WindowStats>> AllWindows(
      uint64_t now_ns) const;

  /// \brief Refreshes the per-tenant SLO gauges in the global metrics
  /// registry (i3_slo_window_requests / _sheds / _deadline_misses /
  /// _p99_us, labelled by tenant). Pull-model: call at scrape/snapshot
  /// time, not per request.
  void ExportMetrics(uint64_t now_ns) const;

  /// {"window_seconds": ..., "tenants": [{...}, ...]}
  std::string ToJson(uint64_t now_ns) const;

  uint32_t window_seconds() const { return window_seconds_; }

 private:
  struct Slot {
    /// Absolute second this slot currently belongs to; stale slots are
    /// recognized (and reset) by mismatch, so idle windows cost nothing.
    uint64_t second = UINT64_MAX;
    uint64_t requests = 0;
    uint64_t sheds = 0;
    uint64_t deadline_misses = 0;
    HistogramSnapshot latency_us;
  };

  struct Tenant {
    mutable std::mutex mutex;
    std::vector<Slot> slots;
  };

  Tenant* FindOrCreate(int64_t tenant);
  const Tenant* Find(int64_t tenant) const;
  WindowStats WindowLocked(const Tenant& t, uint64_t now_ns) const;

  const uint32_t window_seconds_;
  const uint32_t max_tenants_;
  mutable std::shared_mutex table_mutex_;
  std::map<int64_t, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace obs
}  // namespace i3

#endif  // I3_OBS_SLO_H_
