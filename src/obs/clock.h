// Monotonic time helpers shared by the metrics and tracing layers.

#ifndef I3_OBS_CLOCK_H_
#define I3_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace i3 {
namespace obs {

/// \brief Nanoseconds on the steady clock (arbitrary epoch; only
/// differences are meaningful).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// \brief Microseconds on the steady clock.
inline uint64_t NowMicros() { return NowNanos() / 1000; }

}  // namespace obs
}  // namespace i3

#endif  // I3_OBS_CLOCK_H_
