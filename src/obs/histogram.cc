#include "obs/histogram.h"

namespace i3 {
namespace obs {

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target order statistic, 1-based: ceil(q * count), at
  // least 1 so Quantile(0) is the smallest recorded value's bucket.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (uint32_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return HistogramBuckets::UpperBoundInclusive(i);
  }
  return HistogramBuckets::UpperBoundInclusive(HistogramBuckets::kNumBuckets -
                                               1);
}

uint64_t HistogramSnapshot::Min() const {
  if (count_ == 0) return 0;
  for (uint32_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
    if (buckets_[i] != 0) return HistogramBuckets::LowerBound(i);
  }
  return 0;
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  for (uint32_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  for (const Stripe& s : stripes_) {
    if (s.count.load(std::memory_order_relaxed) == 0) continue;
    for (uint32_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
      out.buckets_[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    out.count_ += s.count.load(std::memory_order_relaxed);
    out.sum_ += s.sum.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (Stripe& s : stripes_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace i3
