// Sampled per-query tracing.
//
// A QueryTrace is a flat set of named stage accumulators (total time +
// call count per stage) plus integer annotations, filled on the stack of
// the traced query and published to a bounded ring buffer when the query
// finishes. Tracing is opt-in by sampling: at the default rate 0 the hot
// path pays one relaxed atomic load per query and nothing else; a sampled
// query pays two clock reads per instrumented stage call (and may
// allocate -- sampled queries are off the allocation-free contract).
//
// Stage accumulators (rather than a span-per-call list) keep a traced I3
// descent bounded: pruning and page-scan sites fire hundreds of times per
// query, and the per-stage totals are what the paper-style cost
// breakdowns need. Fan-out parents (ShardedIndex) add one stage per shard
// ("shard0", "shard1", ...) so stragglers are visible individually.

#ifndef I3_OBS_TRACE_H_
#define I3_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace i3 {
namespace obs {

/// \brief One stage's accumulated cost inside a trace.
struct TraceStage {
  std::string name;
  uint64_t total_ns = 0;
  uint64_t calls = 0;
};

/// \brief One sampled query.
struct QueryTrace {
  std::string label;       ///< e.g. "I3.Search"
  uint64_t start_ns = 0;   ///< steady-clock origin of the query
  uint64_t total_ns = 0;   ///< end-to-end query time
  std::vector<TraceStage> stages;
  /// Integer facts attached at the end (search-stat counters, result
  /// sizes).
  std::vector<std::pair<std::string, uint64_t>> annotations;

  /// Accumulates `ns` into the stage named `name` (appending it on first
  /// use; linear scan -- stage counts are small).
  void AddStage(const std::string& name, uint64_t ns);
  void Annotate(std::string key, uint64_t value) {
    annotations.emplace_back(std::move(key), value);
  }
  /// Stage total in ns; 0 when the stage never ran.
  uint64_t StageNs(const std::string& name) const;
};

/// \brief RAII stage timer: no-op when `trace` is null (the unsampled
/// fast path -- one pointer test, no clock read).
class ScopedStage {
 public:
  ScopedStage(QueryTrace* trace, const char* name)
      : trace_(trace), name_(name) {
    if (trace_ != nullptr) start_ = NowNanos();
  }
  ~ScopedStage() {
    if (trace_ != nullptr) trace_->AddStage(name_, NowNanos() - start_);
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  QueryTrace* trace_;
  const char* name_;
  uint64_t start_ = 0;
};

/// \brief The process-wide trace collector: sampling decision + ring
/// buffer of recent traces.
class Tracer {
 public:
  Tracer() = default;
  static Tracer& Global();

  /// Sample rate in [0, 1]: 0 disables tracing (default), 1 traces every
  /// query, otherwise every round(1/rate)-th query per thread is traced
  /// (deterministic countdown; no RNG on the hot path).
  void SetSampleRate(double rate);
  double sample_rate() const;

  /// \brief Begins a trace for this query if the sampler selects it:
  /// initializes `*trace` and returns true, else returns false and the
  /// caller passes a null trace down its pipeline.
  bool StartTrace(const char* label, QueryTrace* trace);

  /// \brief Stamps the end-to-end time and publishes the trace into the
  /// ring buffer (oldest dropped beyond capacity).
  void Finish(QueryTrace&& trace);

  /// Most recent traces, oldest first.
  std::vector<QueryTrace> Recent() const;
  void Clear();

  void SetCapacity(size_t n);
  size_t capacity() const;

 private:
  /// 0 = disabled, N >= 1 = trace every N-th query per thread.
  std::atomic<uint32_t> every_n_{0};
  mutable std::mutex mutex_;
  size_t capacity_ = 128;
  std::deque<QueryTrace> ring_;
};

/// \brief JSON object for one trace ({"label": ..., "total_ns": ...,
/// "stages": [...], "annotations": {...}}).
std::string TraceToJson(const QueryTrace& trace);

/// \brief JSON array of the tracer's recent traces (see export.h for the
/// metrics counterpart).
std::string TracesToJson(const std::vector<QueryTrace>& traces);

}  // namespace obs
}  // namespace i3

#endif  // I3_OBS_TRACE_H_
