// Always-on slow-query log.
//
// Two retention policies share one recorder:
//  - a fixed-size ring of every request that finished over the latency
//    threshold (recent outliers, oldest overwritten), and
//  - the rolling N slowest requests seen so far (the tail that a ring
//    under churn would lose).
//
// Each record carries the request's span timeline (obs::QueryTrace) and
// its canonical wire bytes, so an outlier can be replayed and its time
// attributed stage by stage after the fact.
//
// Fast-path contract: a request below the threshold and below the
// slowest-N admission bar pays exactly two relaxed atomic loads and two
// compares in Qualifies() -- no locks, no clock reads beyond what the
// caller already took, and zero allocation. Only qualifying requests
// build a record (strings, trace copy), which is allocation on the slow
// path by definition.
//
// Concurrency: ring slots are claimed lock-free (one fetch_add); the
// record move into a claimed slot is published under that slot's own
// mutex, so concurrent writers on distinct slots never contend and a
// reader (/tracez) never observes a torn record -- it skips or waits a
// slot-move's worth of time, bounded and tiny. TSan-clean by
// construction (no seqlock-style unsynchronized copies).

#ifndef I3_OBS_SLOW_LOG_H_
#define I3_OBS_SLOW_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace i3 {
namespace obs {

/// \brief One slow request: identity, disposition, timeline, and the
/// canonical request frame (hex) for replay.
struct SlowQueryRecord {
  uint64_t trace_id = 0;
  /// Steady-clock completion time (NowNanos scale; for relative age).
  uint64_t when_ns = 0;
  /// End-to-end server latency in microseconds.
  uint64_t total_us = 0;
  uint32_t tenant = 0;
  /// "ok" / "shed" / "error" (net::ResponseOutcomeName).
  std::string outcome;
  /// Canonical request frame bytes, hex-encoded (replayable).
  std::string request_hex;
  /// Span timeline (server stages; shard/index stages when traced).
  QueryTrace trace;
};

class SlowQueryLog {
 public:
  struct Options {
    /// Over-threshold ring capacity (oldest overwritten).
    size_t ring_capacity = 64;
    /// Rolling slowest-N capacity.
    size_t top_capacity = 8;
    /// Latency threshold in microseconds; requests at or over it are
    /// logged. 0 logs everything (tests).
    uint64_t threshold_us = 50000;
  };

  explicit SlowQueryLog(const Options& options);
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// \brief The fast-path gate: true iff a request of this latency should
  /// build a record. Two relaxed loads + compares, nothing else.
  bool Qualifies(uint64_t total_us) const {
    return total_us >= threshold_us_.load(std::memory_order_relaxed) ||
           total_us > top_bar_us_.load(std::memory_order_relaxed);
  }

  /// \brief Files a record (over-threshold -> ring; slow enough -> the
  /// rolling top-N; both when both hold). Callers gate on Qualifies().
  void Record(SlowQueryRecord&& rec);

  /// Over-threshold ring, oldest first.
  std::vector<SlowQueryRecord> Recent() const;
  /// Rolling N slowest, slowest first.
  std::vector<SlowQueryRecord> Slowest() const;

  void SetThresholdUs(uint64_t us);
  uint64_t threshold_us() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }
  /// Total records filed since construction (ring and/or top-N).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  size_t ring_capacity() const { return ring_.size(); }
  size_t top_capacity() const { return top_capacity_; }

  void Clear();

 private:
  struct Slot {
    /// 0 = never written; else 1 + claim index (global write order).
    uint64_t seq = 0;
    SlowQueryRecord rec;
  };

  std::atomic<uint64_t> threshold_us_;
  /// Admission bar of the rolling top-N: 0 until it fills, then its
  /// current minimum (a new record must beat it to displace).
  std::atomic<uint64_t> top_bar_us_{0};
  std::atomic<uint64_t> recorded_{0};

  /// Ring slot claim counter; slot = claim % ring size.
  std::atomic<uint64_t> ring_claims_{0};
  std::vector<Slot> ring_;
  /// One mutex per slot, held only for the record move/copy.
  mutable std::vector<std::mutex> slot_mutexes_;

  const size_t top_capacity_;
  mutable std::mutex top_mutex_;
  /// Sorted slowest-first, at most top_capacity_ entries.
  std::vector<SlowQueryRecord> top_;
};

/// \brief JSON object for the whole log: {"threshold_us": ...,
/// "recorded": ..., "recent": [...], "slowest": [...]}.
std::string SlowLogToJson(const SlowQueryLog& log);

}  // namespace obs
}  // namespace i3

#endif  // I3_OBS_SLOW_LOG_H_
