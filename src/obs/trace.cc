#include "obs/trace.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

namespace i3 {
namespace obs {

void QueryTrace::AddStage(const std::string& name, uint64_t ns) {
  for (TraceStage& s : stages) {
    if (s.name == name) {
      s.total_ns += ns;
      ++s.calls;
      return;
    }
  }
  stages.push_back({name, ns, 1});
}

uint64_t QueryTrace::StageNs(const std::string& name) const {
  for (const TraceStage& s : stages) {
    if (s.name == name) return s.total_ns;
  }
  return 0;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never freed
  return *tracer;
}

void Tracer::SetSampleRate(double rate) {
  uint32_t n = 0;
  if (rate >= 1.0) {
    n = 1;
  } else if (rate > 0.0) {
    n = static_cast<uint32_t>(std::lround(1.0 / rate));
    if (n == 0) n = 1;
  }
  every_n_.store(n, std::memory_order_relaxed);
}

double Tracer::sample_rate() const {
  const uint32_t n = every_n_.load(std::memory_order_relaxed);
  return n == 0 ? 0.0 : 1.0 / static_cast<double>(n);
}

bool Tracer::StartTrace(const char* label, QueryTrace* trace) {
  const uint32_t n = every_n_.load(std::memory_order_relaxed);
  if (n == 0) return false;
  if (n > 1) {
    // Per-thread countdown: the first call on each thread is traced, then
    // every n-th after it. Deterministic and wait-free.
    thread_local uint32_t countdown = 0;
    if (countdown != 0) {
      --countdown;
      return false;
    }
    countdown = n - 1;
  }
  trace->label = label;
  trace->start_ns = NowNanos();
  trace->total_ns = 0;
  trace->stages.clear();
  trace->annotations.clear();
  return true;
}

void Tracer::Finish(QueryTrace&& trace) {
  trace.total_ns = NowNanos() - trace.start_ns;
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<QueryTrace> Tracer::Recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<QueryTrace>(ring_.begin(), ring_.end());
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
}

void Tracer::SetCapacity(size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = n == 0 ? 1 : n;
  while (ring_.size() > capacity_) ring_.pop_front();
}

size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

namespace {
void AppendJsonEscaped(std::ostringstream* os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\t':
        *os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
}
void AppendTraceJson(std::ostringstream* os, const QueryTrace& tr) {
  *os << "{\"label\": \"";
  AppendJsonEscaped(os, tr.label);
  *os << "\", \"total_ns\": " << tr.total_ns << ", \"stages\": [";
  for (size_t i = 0; i < tr.stages.size(); ++i) {
    if (i != 0) *os << ", ";
    *os << "{\"name\": \"";
    AppendJsonEscaped(os, tr.stages[i].name);
    *os << "\", \"total_ns\": " << tr.stages[i].total_ns
        << ", \"calls\": " << tr.stages[i].calls << "}";
  }
  *os << "], \"annotations\": {";
  for (size_t i = 0; i < tr.annotations.size(); ++i) {
    if (i != 0) *os << ", ";
    *os << "\"";
    AppendJsonEscaped(os, tr.annotations[i].first);
    *os << "\": " << tr.annotations[i].second;
  }
  *os << "}}";
}

}  // namespace

std::string TraceToJson(const QueryTrace& trace) {
  std::ostringstream os;
  AppendTraceJson(&os, trace);
  return os.str();
}

std::string TracesToJson(const std::vector<QueryTrace>& traces) {
  std::ostringstream os;
  os << "[";
  for (size_t t = 0; t < traces.size(); ++t) {
    if (t != 0) os << ",";
    os << "\n  ";
    AppendTraceJson(&os, traces[t]);
  }
  os << "\n]";
  return os.str();
}

}  // namespace obs
}  // namespace i3
