#include "obs/slo.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"

namespace i3 {
namespace obs {

namespace {
constexpr uint64_t kNanosPerSecond = 1000000000ull;
}  // namespace

SloTracker::SloTracker(const Options& options)
    : window_seconds_(std::max<uint32_t>(options.window_seconds, 1)),
      max_tenants_(std::max<uint32_t>(options.max_tenants, 1)) {}

SloTracker::Tenant* SloTracker::FindOrCreate(int64_t tenant) {
  {
    std::shared_lock lock(table_mutex_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return it->second.get();
  }
  std::unique_lock lock(table_mutex_);
  // A real tenant beyond the cap lands in the overflow aggregate; the
  // overflow entry itself is exempt from the cap.
  if (tenant != kOverflowTenant) {
    size_t tracked = tenants_.size();
    if (tenants_.count(kOverflowTenant) != 0) --tracked;
    if (tenants_.count(tenant) == 0 && tracked >= max_tenants_) {
      lock.unlock();
      return FindOrCreate(kOverflowTenant);
    }
  }
  auto& slot = tenants_[tenant];
  if (slot == nullptr) {
    slot = std::make_unique<Tenant>();
    slot->slots.resize(window_seconds_);
  }
  return slot.get();
}

const SloTracker::Tenant* SloTracker::Find(int64_t tenant) const {
  std::shared_lock lock(table_mutex_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void SloTracker::Record(uint32_t tenant, uint64_t latency_us, bool shed,
                        bool deadline_miss, uint64_t now_ns) {
  Tenant* t = FindOrCreate(static_cast<int64_t>(tenant));
  const uint64_t second = now_ns / kNanosPerSecond;
  Slot& slot = t->slots[second % window_seconds_];
  std::lock_guard<std::mutex> lock(t->mutex);
  if (slot.second != second) {
    // First touch of a new second: the slot still holds data from
    // `second - window_seconds`, which just aged out of the window.
    slot = Slot();
    slot.second = second;
  }
  ++slot.requests;
  if (shed) {
    ++slot.sheds;
  } else {
    slot.latency_us.Record(latency_us);
  }
  if (deadline_miss) ++slot.deadline_misses;
}

SloTracker::WindowStats SloTracker::WindowLocked(const Tenant& t,
                                                 uint64_t now_ns) const {
  const uint64_t now_second = now_ns / kNanosPerSecond;
  WindowStats stats;
  HistogramSnapshot merged;
  std::lock_guard<std::mutex> lock(t.mutex);
  for (const Slot& slot : t.slots) {
    if (slot.second == UINT64_MAX) continue;
    // In-window iff within the last window_seconds (inclusive of the
    // current, still-filling second).
    if (slot.second > now_second ||
        now_second - slot.second >= window_seconds_) {
      continue;
    }
    stats.requests += slot.requests;
    stats.sheds += slot.sheds;
    stats.deadline_misses += slot.deadline_misses;
    merged.MergeFrom(slot.latency_us);
  }
  stats.p50_us = merged.Quantile(0.5);
  stats.p99_us = merged.Quantile(0.99);
  return stats;
}

SloTracker::WindowStats SloTracker::Window(int64_t tenant,
                                           uint64_t now_ns) const {
  const Tenant* t = Find(tenant);
  if (t == nullptr) return WindowStats();
  return WindowLocked(*t, now_ns);
}

std::vector<std::pair<int64_t, SloTracker::WindowStats>>
SloTracker::AllWindows(uint64_t now_ns) const {
  std::vector<std::pair<int64_t, const Tenant*>> entries;
  {
    std::shared_lock lock(table_mutex_);
    entries.reserve(tenants_.size());
    for (const auto& [id, t] : tenants_) entries.emplace_back(id, t.get());
  }
  // Ascending tenant id with the overflow aggregate last.
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    const bool a_over = a.first == kOverflowTenant;
    const bool b_over = b.first == kOverflowTenant;
    if (a_over != b_over) return b_over;
    return a.first < b.first;
  });
  std::vector<std::pair<int64_t, WindowStats>> out;
  out.reserve(entries.size());
  for (const auto& [id, t] : entries) {
    out.emplace_back(id, WindowLocked(*t, now_ns));
  }
  return out;
}

void SloTracker::ExportMetrics(uint64_t now_ns) const {
  MetricsRegistry& reg = MetricsRegistry::Global();
  for (const auto& [id, stats] : AllWindows(now_ns)) {
    const std::string tenant =
        id == kOverflowTenant ? "overflow" : std::to_string(id);
    const Labels labels = {{"tenant", tenant}};
    reg.GetGauge("i3_slo_window_requests",
                 "Requests in the rolling SLO window.", labels)
        ->Set(static_cast<int64_t>(stats.requests));
    reg.GetGauge("i3_slo_window_sheds",
                 "Admission sheds in the rolling SLO window.", labels)
        ->Set(static_cast<int64_t>(stats.sheds));
    reg.GetGauge("i3_slo_window_deadline_misses",
                 "Deadline misses in the rolling SLO window.", labels)
        ->Set(static_cast<int64_t>(stats.deadline_misses));
    reg.GetGauge("i3_slo_window_p99_us",
                 "p99 served latency in the rolling SLO window.", labels)
        ->Set(static_cast<int64_t>(stats.p99_us));
  }
}

std::string SloTracker::ToJson(uint64_t now_ns) const {
  std::ostringstream os;
  os << "{\"window_seconds\": " << window_seconds_ << ", \"tenants\": [";
  bool first = true;
  for (const auto& [id, stats] : AllWindows(now_ns)) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"tenant\": ";
    if (id == kOverflowTenant) {
      os << "\"overflow\"";
    } else {
      os << id;
    }
    os << ", \"requests\": " << stats.requests
       << ", \"sheds\": " << stats.sheds
       << ", \"deadline_misses\": " << stats.deadline_misses
       << ", \"p50_us\": " << stats.p50_us << ", \"p99_us\": " << stats.p99_us
       << "}";
  }
  os << "\n  ]}";
  return os.str();
}

}  // namespace obs
}  // namespace i3
