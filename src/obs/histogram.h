// Log-linear latency histograms with a bounded relative error.
//
// Layout (HdrHistogram-style): values below kSubBuckets are counted
// exactly, one bucket per value; from there every power-of-two range
// ("octave") is subdivided into kSubBuckets linear sub-buckets, so a
// bucket's width is at most lower_bound / kSubBuckets and any value
// reported off a bucket boundary is within 1/kSubBuckets (3.125%) of the
// recorded value. Values above kMaxTrackable clamp into the last bucket
// (the exact sum is still accumulated, so Mean() never loses precision).
//
// Two types split the concurrency concern:
//  - HistogramSnapshot: a plain bucket array. Single-threaded recording
//    (bench harnesses collecting per-query latencies), quantiles, and
//    order-independent merging (shard aggregation).
//  - Histogram: the registry-resident concurrent recorder. Recording is
//    three relaxed fetch_adds on a per-thread stripe -- wait-free, no
//    locks, TSan-clean -- and Snapshot() folds the stripes into a
//    HistogramSnapshot.

#ifndef I3_OBS_HISTOGRAM_H_
#define I3_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace i3 {
namespace obs {

namespace internal {
/// Per-thread stripe id, assigned round-robin on first use so concurrent
/// recorders spread across stripes instead of hashing onto the same one.
inline uint32_t ThreadStripe() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}
}  // namespace internal

/// \brief The shared bucket geometry (see the file comment).
struct HistogramBuckets {
  static constexpr uint32_t kSubBits = 5;
  /// Linear sub-buckets per octave; also the exact-count range [0, 32).
  static constexpr uint32_t kSubBuckets = 1u << kSubBits;
  /// Values clamp at 2^kMaxExp - 1 (~17.9 minutes when recording
  /// microseconds).
  static constexpr uint32_t kMaxExp = 30;
  static constexpr uint64_t kMaxTrackable = (uint64_t{1} << kMaxExp) - 1;
  static constexpr uint32_t kNumBuckets =
      kSubBuckets + (kMaxExp - kSubBits) * kSubBuckets;
  /// Worst-case relative width of a bucket: 1 / kSubBuckets.
  static constexpr double kMaxRelativeError =
      1.0 / static_cast<double>(kSubBuckets);

  static uint32_t IndexOf(uint64_t v) {
    if (v > kMaxTrackable) v = kMaxTrackable;
    if (v < kSubBuckets) return static_cast<uint32_t>(v);
    const uint32_t e = 63u - static_cast<uint32_t>(__builtin_clzll(v));
    return kSubBuckets + (e - kSubBits) * kSubBuckets +
           static_cast<uint32_t>((v >> (e - kSubBits)) - kSubBuckets);
  }

  /// Smallest value mapping to bucket `idx`.
  static uint64_t LowerBound(uint32_t idx) {
    if (idx < kSubBuckets) return idx;
    const uint32_t octave = idx / kSubBuckets - 1;
    const uint32_t sub = idx - (octave + 1) * kSubBuckets;
    return (uint64_t{kSubBuckets} + sub) << octave;
  }

  /// Largest value mapping to bucket `idx` (the quantile estimate, so the
  /// reported quantile never understates the recorded value).
  static uint64_t UpperBoundInclusive(uint32_t idx) {
    if (idx < kSubBuckets) return idx;
    const uint32_t octave = idx / kSubBuckets - 1;
    return LowerBound(idx) + (uint64_t{1} << octave) - 1;
  }
};

/// \brief A plain (non-atomic) histogram: bucket counts + exact sum.
class HistogramSnapshot {
 public:
  void Record(uint64_t v) {
    ++buckets_[HistogramBuckets::IndexOf(v)];
    ++count_;
    sum_ += v;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// \brief Value at quantile `q` in [0, 1]: the inclusive upper bound of
  /// the bucket holding the ceil(q * count)-th recorded value (so the
  /// estimate is >= the true order statistic and within
  /// kMaxRelativeError of it). 0 when empty.
  uint64_t Quantile(double q) const;

  /// Bucket-resolution extremes: Min() is the lower bound of the first
  /// non-empty bucket, Max() the inclusive upper bound of the last.
  uint64_t Min() const;
  uint64_t Max() const { return Quantile(1.0); }

  /// Element-wise accumulation; associative and commutative, so shard
  /// snapshots can merge in any grouping with identical results.
  void MergeFrom(const HistogramSnapshot& other);

  const std::array<uint64_t, HistogramBuckets::kNumBuckets>& buckets() const {
    return buckets_;
  }

  bool operator==(const HistogramSnapshot& o) const {
    return count_ == o.count_ && sum_ == o.sum_ && buckets_ == o.buckets_;
  }

 private:
  friend class Histogram;  // Snapshot() folds stripes into these directly

  std::array<uint64_t, HistogramBuckets::kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

/// \brief The concurrent recorder held by the MetricsRegistry.
///
/// Record() touches only the calling thread's stripe with relaxed
/// fetch_adds -- wait-free per thread, no cross-thread cache-line traffic
/// while stripes outnumber recording threads. Snapshot() sums the stripes
/// with relaxed loads: the result is a per-counter snapshot (counts
/// recorded concurrently with the fold may or may not be included), which
/// is the same contract IoStats already documents.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t v) {
    Stripe& s = stripes_[internal::ThreadStripe() & (kStripes - 1)];
    s.buckets[HistogramBuckets::IndexOf(v)].fetch_add(
        1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  /// Zeroes every stripe. Not atomic with concurrent recorders (they may
  /// land on either side of the sweep); meant for benchmark phase resets.
  void Reset();

 private:
  static constexpr uint32_t kStripes = 8;
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, HistogramBuckets::kNumBuckets>
        buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Stripe, kStripes> stripes_;
};

}  // namespace obs
}  // namespace i3

#endif  // I3_OBS_HISTOGRAM_H_
