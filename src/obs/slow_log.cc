#include "obs/slow_log.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace i3 {
namespace obs {

SlowQueryLog::SlowQueryLog(const Options& options)
    : threshold_us_(options.threshold_us),
      ring_(std::max<size_t>(options.ring_capacity, 1)),
      slot_mutexes_(std::max<size_t>(options.ring_capacity, 1)),
      top_capacity_(std::max<size_t>(options.top_capacity, 1)) {}

void SlowQueryLog::Record(SlowQueryRecord&& rec) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  const bool over_threshold =
      rec.total_us >= threshold_us_.load(std::memory_order_relaxed);

  // Rolling top-N first (it may need a copy before the ring consumes the
  // record). The bar check is repeated under the lock: Qualifies() is an
  // optimistic filter, not the admission decision.
  if (rec.total_us > top_bar_us_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(top_mutex_);
    const bool full = top_.size() >= top_capacity_;
    if (!full || rec.total_us > top_.back().total_us) {
      if (full) top_.pop_back();
      // Insert keeping slowest-first order.
      auto pos = std::upper_bound(
          top_.begin(), top_.end(), rec.total_us,
          [](uint64_t us, const SlowQueryRecord& r) {
            return us > r.total_us;
          });
      top_.insert(pos, rec);  // copy: the ring below takes the move
      top_bar_us_.store(
          top_.size() >= top_capacity_ ? top_.back().total_us : 0,
          std::memory_order_relaxed);
    }
  }

  if (!over_threshold) return;
  // Lock-free slot claim; the per-slot mutex only serializes the move
  // against a reader (or a writer lapping the whole ring).
  const uint64_t claim = ring_claims_.fetch_add(1, std::memory_order_relaxed);
  const size_t idx = static_cast<size_t>(claim % ring_.size());
  std::lock_guard<std::mutex> lock(slot_mutexes_[idx]);
  ring_[idx].seq = claim + 1;
  ring_[idx].rec = std::move(rec);
}

std::vector<SlowQueryRecord> SlowQueryLog::Recent() const {
  std::vector<std::pair<uint64_t, SlowQueryRecord>> found;
  found.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    std::lock_guard<std::mutex> lock(slot_mutexes_[i]);
    if (ring_[i].seq != 0) found.emplace_back(ring_[i].seq, ring_[i].rec);
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<SlowQueryRecord> out;
  out.reserve(found.size());
  for (auto& f : found) out.push_back(std::move(f.second));
  return out;
}

std::vector<SlowQueryRecord> SlowQueryLog::Slowest() const {
  std::lock_guard<std::mutex> lock(top_mutex_);
  return top_;
}

void SlowQueryLog::SetThresholdUs(uint64_t us) {
  threshold_us_.store(us, std::memory_order_relaxed);
}

void SlowQueryLog::Clear() {
  for (size_t i = 0; i < ring_.size(); ++i) {
    std::lock_guard<std::mutex> lock(slot_mutexes_[i]);
    ring_[i].seq = 0;
    ring_[i].rec = SlowQueryRecord();
  }
  {
    std::lock_guard<std::mutex> lock(top_mutex_);
    top_.clear();
    top_bar_us_.store(0, std::memory_order_relaxed);
  }
  recorded_.store(0, std::memory_order_relaxed);
}

namespace {

void AppendRecordJson(std::ostringstream* os, const SlowQueryRecord& r) {
  // trace_id as a string: JSON numbers lose 64-bit precision past 2^53.
  *os << "{\"trace_id\": \"" << std::hex << r.trace_id << std::dec
      << "\", \"when_ns\": " << r.when_ns << ", \"total_us\": " << r.total_us
      << ", \"tenant\": " << r.tenant << ", \"outcome\": \"" << r.outcome
      << "\", \"request_hex\": \"" << r.request_hex
      << "\", \"trace\": " << TraceToJson(r.trace) << "}";
}

void AppendRecordsJson(std::ostringstream* os,
                       const std::vector<SlowQueryRecord>& records) {
  *os << "[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i != 0) *os << ",";
    *os << "\n    ";
    AppendRecordJson(os, records[i]);
  }
  *os << "\n  ]";
}

}  // namespace

std::string SlowLogToJson(const SlowQueryLog& log) {
  std::ostringstream os;
  os << "{\n  \"threshold_us\": " << log.threshold_us()
     << ",\n  \"recorded\": " << log.recorded() << ",\n  \"recent\": ";
  AppendRecordsJson(&os, log.Recent());
  os << ",\n  \"slowest\": ";
  AppendRecordsJson(&os, log.Slowest());
  os << "\n}";
  return os.str();
}

}  // namespace obs
}  // namespace i3
