#include "obs/metrics.h"

namespace i3 {
namespace obs {

namespace {

/// Renders labels into the identity key: {a="x",b="y"}. Values are used
/// verbatim (escaping is the exporter's job; identity only needs
/// uniqueness).
std::string LabelKey(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

const char* MetricTypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

bool IsValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

const MetricSample* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const MetricSample* MetricsSnapshot::Find(const std::string& name,
                                          const Labels& labels) const {
  for (const MetricSample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(MetricType type,
                                                      const std::string& name,
                                                      const std::string& help,
                                                      Labels labels) {
  if (!IsValidMetricName(name)) return nullptr;
  for (const auto& [k, v] : labels) {
    (void)v;
    if (!IsValidLabelName(k)) return nullptr;
  }
  const std::string key = name + LabelKey(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    return it->second.type == type ? &it->second : nullptr;
  }
  Entry e;
  e.type = type;
  e.name = name;
  e.help = help;
  e.labels = std::move(labels);
  switch (type) {
    case MetricType::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      e.histogram = std::make_unique<Histogram>();
      break;
  }
  return &entries_.emplace(key, std::move(e)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help, Labels labels) {
  Entry* e =
      FindOrCreate(MetricType::kCounter, name, help, std::move(labels));
  return e == nullptr ? nullptr : e->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help, Labels labels) {
  Entry* e = FindOrCreate(MetricType::kGauge, name, help, std::move(labels));
  return e == nullptr ? nullptr : e->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         Labels labels) {
  Entry* e =
      FindOrCreate(MetricType::kHistogram, name, help, std::move(labels));
  return e == nullptr ? nullptr : e->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.samples.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    (void)key;
    MetricSample s;
    s.name = e.name;
    s.help = e.help;
    s.type = e.type;
    s.labels = e.labels;
    switch (e.type) {
      case MetricType::kCounter:
        s.value = static_cast<double>(e.counter->Value());
        break;
      case MetricType::kGauge:
        s.value = static_cast<double>(e.gauge->Value());
        break;
      case MetricType::kHistogram:
        s.histogram = e.histogram->Snapshot();
        break;
    }
    out.samples.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, e] : entries_) {
    (void)key;
    switch (e.type) {
      case MetricType::kCounter:
        e.counter->Reset();
        break;
      case MetricType::kGauge:
        e.gauge->Reset();
        break;
      case MetricType::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace obs
}  // namespace i3
