// The unified metrics registry: named counters, gauges, and latency
// histograms with Prometheus-style labels.
//
// Design rules (see DESIGN.md §9):
//  - Registration is slow-path: callers fetch metric pointers once (at
//    construction or through a function-local static bundle) and record
//    through the cached pointer. The registry mutex is never taken on a
//    query hot path.
//  - Recording is wait-free per thread: counters and histograms stripe
//    their cells per thread and use relaxed fetch_add only; gauges are a
//    single relaxed atomic. No recording path takes a lock.
//  - Snapshots are per-counter consistent (relaxed reads), the same
//    contract IoStats documents; exporters consume a MetricsSnapshot so
//    formatting never holds the registry lock while recording proceeds.
//
// Naming convention: `i3_<subsystem>_<what>[_total|_us]` -- `_total` for
// monotonic counters, `_us` for microsecond histograms; labels are
// low-cardinality dimensions (index, semantics, category, op, shard).

#ifndef I3_OBS_METRICS_H_
#define I3_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace i3 {
namespace obs {

/// \brief Label set of one metric: ordered (name, value) pairs. Order is
/// part of the identity (callers use a fixed order per metric family).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonic counter, striped per thread.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    cells_[internal::ThreadStripe() & (kStripes - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  /// Benchmark phase reset; not atomic with concurrent increments.
  void Reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr uint32_t kStripes = 16;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// \brief Point-in-time signed value (queue depths, pool occupancy).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void Sub(int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType t);

/// \brief One metric's identity + value at snapshot time.
struct MetricSample {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  /// Counter/gauge value (counters as non-negative integers in a double).
  double value = 0.0;
  /// Histogram payload (empty unless type == kHistogram).
  HistogramSnapshot histogram;
};

/// \brief A point-in-time copy of every registered metric, sorted by
/// (name, labels) so exports are deterministic.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// First sample matching name (+ labels when given); nullptr if absent.
  const MetricSample* Find(const std::string& name) const;
  const MetricSample* Find(const std::string& name,
                           const Labels& labels) const;
};

/// \brief True if `name` is a valid Prometheus metric name
/// ([a-zA-Z_:][a-zA-Z0-9_:]*) / label name ([a-zA-Z_][a-zA-Z0-9_]*).
bool IsValidMetricName(const std::string& name);
bool IsValidLabelName(const std::string& name);

/// \brief Owner of all metrics. Get* registers on first use and returns a
/// pointer that stays valid for the registry's lifetime; subsequent calls
/// with the same (name, labels) return the same object. Returns nullptr
/// for an invalid name/label or a type conflict with an existing
/// registration (programmer error; exercised by tests).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem records into.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          Labels labels = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (registrations survive). Benchmark phase resets;
  /// not atomic with concurrent recorders.
  void ResetAll();

  size_t size() const;

 private:
  struct Entry {
    MetricType type;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(MetricType type, const std::string& name,
                      const std::string& help, Labels labels);

  mutable std::mutex mutex_;
  /// Keyed by name + rendered labels; std::map keeps exports sorted.
  std::map<std::string, Entry> entries_;
};

}  // namespace obs
}  // namespace i3

#endif  // I3_OBS_METRICS_H_
