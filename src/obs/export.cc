#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace i3 {
namespace obs {

namespace {

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
void AppendEscapedLabelValue(std::ostringstream* os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '\\':
        *os << "\\\\";
        break;
      case '"':
        *os << "\\\"";
        break;
      case '\n':
        *os << "\\n";
        break;
      default:
        *os << c;
    }
  }
}

/// Escapes HELP text: backslash and newline only (quotes are legal there).
void AppendEscapedHelp(std::ostringstream* os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      default:
        *os << c;
    }
  }
}

/// Renders {a="x",b="y"}; `extra` appends one more pair (used for `le`).
void AppendLabels(std::ostringstream* os, const Labels& labels,
                  const std::string& extra_name = "",
                  const std::string& extra_value = "") {
  if (labels.empty() && extra_name.empty()) return;
  *os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) *os << ',';
    first = false;
    *os << k << "=\"";
    AppendEscapedLabelValue(os, v);
    *os << '"';
  }
  if (!extra_name.empty()) {
    if (!first) *os << ',';
    *os << extra_name << "=\"" << extra_value << '"';
  }
  *os << '}';
}

/// %g-style number without trailing noise; counters/gauges are integral in
/// practice, so integers print exactly.
std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

void AppendJsonEscaped(std::ostringstream* os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  std::string last_family;
  for (const MetricSample& s : snapshot.samples) {
    // HELP/TYPE once per family (samples arrive sorted by name, so label
    // variants of one family are adjacent).
    if (s.name != last_family) {
      last_family = s.name;
      os << "# HELP " << s.name << ' ';
      AppendEscapedHelp(&os, s.help);
      os << '\n';
      os << "# TYPE " << s.name << ' ' << MetricTypeName(s.type) << '\n';
    }
    if (s.type == MetricType::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      uint64_t cumulative = 0;
      for (uint32_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
        if (h.buckets()[i] == 0) continue;
        cumulative += h.buckets()[i];
        os << s.name << "_bucket";
        AppendLabels(
            &os, s.labels, "le",
            std::to_string(HistogramBuckets::UpperBoundInclusive(i)));
        os << ' ' << cumulative << '\n';
      }
      os << s.name << "_bucket";
      AppendLabels(&os, s.labels, "le", "+Inf");
      os << ' ' << h.count() << '\n';
      os << s.name << "_sum";
      AppendLabels(&os, s.labels);
      os << ' ' << h.sum() << '\n';
      os << s.name << "_count";
      AppendLabels(&os, s.labels);
      os << ' ' << h.count() << '\n';
    } else {
      os << s.name;
      AppendLabels(&os, s.labels);
      os << ' ' << FormatValue(s.value) << '\n';
    }
  }
  return os.str();
}

std::string ToJson(const MetricsSnapshot& snapshot,
                   const std::string& indent) {
  std::ostringstream os;
  os << indent << "{\"metrics\": [";
  for (size_t n = 0; n < snapshot.samples.size(); ++n) {
    const MetricSample& s = snapshot.samples[n];
    if (n != 0) os << ',';
    os << '\n' << indent << "  {\"name\": \"";
    AppendJsonEscaped(&os, s.name);
    os << "\", \"type\": \"" << MetricTypeName(s.type) << "\", \"labels\": {";
    for (size_t i = 0; i < s.labels.size(); ++i) {
      if (i != 0) os << ", ";
      os << '"';
      AppendJsonEscaped(&os, s.labels[i].first);
      os << "\": \"";
      AppendJsonEscaped(&os, s.labels[i].second);
      os << '"';
    }
    os << '}';
    if (s.type == MetricType::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      os << ", \"count\": " << h.count() << ", \"sum\": " << h.sum()
         << ", \"p50\": " << h.Quantile(0.50)
         << ", \"p90\": " << h.Quantile(0.90)
         << ", \"p99\": " << h.Quantile(0.99) << ", \"max\": " << h.Max()
         << ", \"buckets\": [";
      bool first = true;
      for (uint32_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
        if (h.buckets()[i] == 0) continue;
        if (!first) os << ", ";
        first = false;
        os << '[' << HistogramBuckets::UpperBoundInclusive(i) << ", "
           << h.buckets()[i] << ']';
      }
      os << ']';
    } else {
      os << ", \"value\": " << FormatValue(s.value);
    }
    os << '}';
  }
  os << '\n' << indent << "]}";
  return os.str();
}

std::string UnescapePrometheusLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      const char next = s[i + 1];
      if (next == '\\') {
        out += '\\';
        ++i;
        continue;
      }
      if (next == '"') {
        out += '"';
        ++i;
        continue;
      }
      if (next == 'n') {
        out += '\n';
        ++i;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

}  // namespace obs
}  // namespace i3
