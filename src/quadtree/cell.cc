#include "quadtree/cell.h"

namespace i3 {

std::string CellId::ToString() const {
  if (IsRoot()) return "/";
  std::string out;
  for (int d = 0; d < level_; ++d) {
    out += '/';
    out += static_cast<char>('0' + QuadrantAt(d));
  }
  return out;
}

Rect CellSpace::CellRect(const CellId& cell) const {
  Rect r = root_;
  for (int d = 0; d < cell.level(); ++d) {
    r = ChildRect(r, cell.QuadrantAt(d));
  }
  return r;
}

Rect CellSpace::ChildRect(const Rect& parent_rect, int quadrant) {
  const double mid_x = (parent_rect.min_x + parent_rect.max_x) / 2.0;
  const double mid_y = (parent_rect.min_y + parent_rect.max_y) / 2.0;
  Rect r = parent_rect;
  if (quadrant & 0x1) {
    r.min_x = mid_x;
  } else {
    r.max_x = mid_x;
  }
  if (quadrant & 0x2) {
    r.min_y = mid_y;
  } else {
    r.max_y = mid_y;
  }
  return r;
}

int CellSpace::QuadrantOf(const Rect& parent_rect, const Point& p) {
  const double mid_x = (parent_rect.min_x + parent_rect.max_x) / 2.0;
  const double mid_y = (parent_rect.min_y + parent_rect.max_y) / 2.0;
  int q = 0;
  if (p.x >= mid_x) q |= 0x1;
  if (p.y >= mid_y) q |= 0x2;
  return q;
}

CellId CellSpace::Locate(const Point& p, uint8_t level) const {
  CellId cell = CellId::Root();
  Rect r = root_;
  for (uint8_t d = 0; d < level; ++d) {
    const int q = QuadrantOf(r, p);
    cell = cell.Child(q);
    r = ChildRect(r, q);
  }
  return cell;
}

}  // namespace i3
