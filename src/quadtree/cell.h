// Linear quadtree cells.
//
// I3 decomposes the data space with a quadtree (Finkel & Bentley): the root
// cell is the whole space and every cell splits into four equal quadrants.
// Cells are identified by the path of quadrant choices from the root, packed
// into a 64-bit code plus a level -- no tree nodes are materialized, which is
// what makes the scheme "a uniform space decomposition mechanism for all the
// keywords" (Section 4.2): the cell with a given id covers the same region
// in every keyword's inverted list, so signatures of different keywords can
// be intersected per cell.

#ifndef I3_QUADTREE_CELL_H_
#define I3_QUADTREE_CELL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/geo.h"

namespace i3 {

/// Quadrant numbering within a parent cell:
///   0 = south-west, 1 = south-east, 2 = north-west, 3 = north-east
/// (bit 0 = east half, bit 1 = north half).
constexpr int kQuadrants = 4;

/// \brief Identifier of a quadtree cell: a root-to-cell path of quadrant
/// choices. Level 0 is the root (whole space).
class CellId {
 public:
  /// Deepest representable level (2 bits of path per level).
  static constexpr uint8_t kMaxLevel = 30;

  CellId() = default;

  static CellId Root() { return CellId(0, 0); }

  /// \brief The `quadrant`-th child (0..3).
  CellId Child(int quadrant) const {
    return CellId((path_ << 2) | static_cast<uint64_t>(quadrant),
                  static_cast<uint8_t>(level_ + 1));
  }

  /// \brief The enclosing cell. Undefined on the root.
  CellId Parent() const {
    return CellId(path_ >> 2, static_cast<uint8_t>(level_ - 1));
  }

  /// \brief Quadrant taken at descent step `depth` (0-based; depth 0 is the
  /// step leaving the root). Requires depth < level().
  int QuadrantAt(int depth) const {
    const int shift = 2 * (level_ - 1 - depth);
    return static_cast<int>((path_ >> shift) & 0x3u);
  }

  /// \brief Quadrant of this cell within its parent. Requires level() > 0.
  int QuadrantInParent() const { return static_cast<int>(path_ & 0x3u); }

  bool IsRoot() const { return level_ == 0; }
  uint8_t level() const { return level_; }
  uint64_t path() const { return path_; }

  /// \brief True if this cell contains (or equals) `other`.
  bool IsAncestorOf(const CellId& other) const {
    if (other.level_ < level_) return false;
    return (other.path_ >> (2 * (other.level_ - level_))) == path_;
  }

  /// \brief Packs level and path into one ordered 64-bit key (level-major).
  uint64_t Packed() const {
    return (static_cast<uint64_t>(level_) << 60) | path_;
  }

  bool operator==(const CellId& o) const {
    return path_ == o.path_ && level_ == o.level_;
  }
  bool operator!=(const CellId& o) const { return !(*this == o); }

  /// e.g. "/0/3/1" (root is "/").
  std::string ToString() const;

 private:
  CellId(uint64_t path, uint8_t level) : path_(path), level_(level) {}

  uint64_t path_ = 0;
  uint8_t level_ = 0;
};

/// \brief Binds cell arithmetic to a concrete root rectangle.
///
/// All geometry questions the index algorithms ask -- the rectangle of a
/// cell, which child holds a point, the minimum distance from a query point
/// to a cell -- are answered here in O(level) or O(1).
class CellSpace {
 public:
  explicit CellSpace(const Rect& root) : root_(root) {}

  const Rect& root() const { return root_; }

  /// \brief Rectangle covered by `cell` (derived by replaying its path).
  Rect CellRect(const CellId& cell) const;

  /// \brief Rectangle of child `quadrant` of a parent covering
  /// `parent_rect`. O(1); use when descending with the rect in hand.
  static Rect ChildRect(const Rect& parent_rect, int quadrant);

  /// \brief Which quadrant of `parent_rect` contains `p`.
  /// Boundary points go to the east/north side, matching ChildRect edges.
  static int QuadrantOf(const Rect& parent_rect, const Point& p);

  /// \brief The level-`level` cell containing `p`.
  CellId Locate(const Point& p, uint8_t level) const;

  /// \brief Minimum distance from `p` to `cell` (0 when inside).
  double MinDistance(const CellId& cell, const Point& p) const {
    return CellRect(cell).MinDistance(p);
  }

 private:
  Rect root_;
};

}  // namespace i3

namespace std {
template <>
struct hash<i3::CellId> {
  size_t operator()(const i3::CellId& c) const noexcept {
    return std::hash<uint64_t>{}(c.Packed());
  }
};
}  // namespace std

#endif  // I3_QUADTREE_CELL_H_
