// A generic in-memory bucket point-quadtree.
//
// This is the classic Finkel-Bentley structure the paper cites for space
// decomposition. The I3 index itself stores *keyword cells* on pages rather
// than quadtree nodes, so it does not use this class directly; it exists as
// a reference implementation of the decomposition (the unit tests
// cross-check I3's cell splits against it), as the spatial backbone of the
// synthetic data generators, and as a user-facing utility.

#ifndef I3_QUADTREE_POINT_QUADTREE_H_
#define I3_QUADTREE_POINT_QUADTREE_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/geo.h"
#include "quadtree/cell.h"

namespace i3 {

/// \brief Bucket PR quadtree over (Point, V) pairs.
///
/// A leaf holds up to `bucket_capacity` points; an overflowing leaf splits
/// into four quadrants. Points on quadrant boundaries go east/north,
/// matching CellSpace::QuadrantOf.
template <typename V>
class PointQuadtree {
 public:
  /// \param space bounding rectangle of all inserted points
  /// \param bucket_capacity leaf capacity before a split (>= 1)
  /// \param max_depth hard split ceiling; leaves at max_depth overflow in
  ///        place (guards against unbounded splitting of duplicate points)
  explicit PointQuadtree(const Rect& space, size_t bucket_capacity = 32,
                         int max_depth = CellId::kMaxLevel)
      : space_(space),
        bucket_capacity_(std::max<size_t>(1, bucket_capacity)),
        max_depth_(max_depth),
        root_(std::make_unique<Node>()) {}

  size_t size() const { return size_; }

  /// \brief Inserts `value` at `p`. Points outside the space are clamped to
  /// its boundary cell.
  void Insert(const Point& p, V value) {
    InsertRec(root_.get(), space_, 0, p, std::move(value));
    ++size_;
  }

  /// \brief Removes one entry equal to (p, value). Returns true if found.
  bool Remove(const Point& p, const V& value) {
    const bool removed = RemoveRec(root_.get(), space_, p, value);
    if (removed) --size_;
    return removed;
  }

  /// \brief Collects every (point, value) with point inside `range`.
  std::vector<std::pair<Point, V>> RangeQuery(const Rect& range) const {
    std::vector<std::pair<Point, V>> out;
    RangeRec(root_.get(), space_, range, &out);
    return out;
  }

  /// \brief The k entries nearest to `q` in non-decreasing distance
  /// (classic best-first search).
  std::vector<std::pair<Point, V>> NearestNeighbors(const Point& q,
                                                    size_t k) const {
    struct Entry {
      double dist;
      const Node* node;          // nullptr => leaf point
      const std::pair<Point, V>* point;
      Rect rect;
      bool operator>(const Entry& o) const { return dist > o.dist; }
    };
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
    pq.push({0.0, root_.get(), nullptr, space_});
    std::vector<std::pair<Point, V>> out;
    while (!pq.empty() && out.size() < k) {
      Entry e = pq.top();
      pq.pop();
      if (e.node == nullptr) {
        out.push_back(*e.point);
        continue;
      }
      if (e.node->IsLeaf()) {
        for (const auto& pv : e.node->bucket) {
          pq.push({Distance(pv.first, q), nullptr, &pv, Rect{}});
        }
      } else {
        for (int quad = 0; quad < kQuadrants; ++quad) {
          const Rect cr = CellSpace::ChildRect(e.rect, quad);
          pq.push({cr.MinDistance(q), e.node->children[quad].get(), nullptr,
                   cr});
        }
      }
    }
    return out;
  }

  /// \brief Depth of the deepest leaf (root = depth 0).
  int Depth() const { return DepthRec(root_.get()); }

 private:
  struct Node {
    std::vector<std::pair<Point, V>> bucket;
    std::unique_ptr<Node> children[kQuadrants];
    bool IsLeaf() const { return children[0] == nullptr; }
  };

  void InsertRec(Node* node, const Rect& rect, int depth, const Point& p,
                 V value) {
    if (node->IsLeaf()) {
      if (node->bucket.size() < bucket_capacity_ || depth >= max_depth_) {
        node->bucket.emplace_back(p, std::move(value));
        return;
      }
      // Split: push existing points one level down.
      for (int quad = 0; quad < kQuadrants; ++quad) {
        node->children[quad] = std::make_unique<Node>();
      }
      for (auto& pv : node->bucket) {
        const int quad = CellSpace::QuadrantOf(rect, pv.first);
        node->children[quad]->bucket.push_back(std::move(pv));
      }
      node->bucket.clear();
    }
    const int quad = CellSpace::QuadrantOf(rect, p);
    InsertRec(node->children[quad].get(), CellSpace::ChildRect(rect, quad),
              depth + 1, p, std::move(value));
  }

  bool RemoveRec(Node* node, const Rect& rect, const Point& p,
                 const V& value) {
    if (node->IsLeaf()) {
      for (auto it = node->bucket.begin(); it != node->bucket.end(); ++it) {
        if (it->first == p && it->second == value) {
          node->bucket.erase(it);
          return true;
        }
      }
      return false;
    }
    const int quad = CellSpace::QuadrantOf(rect, p);
    return RemoveRec(node->children[quad].get(),
                     CellSpace::ChildRect(rect, quad), p, value);
  }

  void RangeRec(const Node* node, const Rect& rect, const Rect& range,
                std::vector<std::pair<Point, V>>* out) const {
    if (!rect.Intersects(range)) return;
    if (node->IsLeaf()) {
      for (const auto& pv : node->bucket) {
        if (range.Contains(pv.first)) out->push_back(pv);
      }
      return;
    }
    for (int quad = 0; quad < kQuadrants; ++quad) {
      RangeRec(node->children[quad].get(), CellSpace::ChildRect(rect, quad),
               range, out);
    }
  }

  int DepthRec(const Node* node) const {
    if (node->IsLeaf()) return 0;
    int d = 0;
    for (int quad = 0; quad < kQuadrants; ++quad) {
      d = std::max(d, DepthRec(node->children[quad].get()));
    }
    return d + 1;
  }

  const Rect space_;
  const size_t bucket_capacity_;
  const int max_depth_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace i3

#endif  // I3_QUADTREE_POINT_QUADTREE_H_
