// A small vector with inline storage and arena spill.
//
// Built for the I3 query hot path: a partial document carries a handful of
// (query-term, weight) pairs, a candidate cell a handful of dense keywords.
// Inline capacity N absorbs the common case with zero allocator traffic;
// overflow spills into a caller-supplied Arena, so growth never touches the
// global allocator either.
//
// Relocation safety: the active storage is *computed* (`cap_ == N` means
// inline), never a self-pointer, so a SmallVec may be moved around with the
// enclosing object's bytes (FlatMap rehash does exactly that).
//
// Copying: the copy constructor is implicitly available because enclosing
// types must stay trivially copyable for byte relocation -- but a plain
// copy of a *spilled* SmallVec aliases the spill array. For a deep,
// independent copy use AssignFrom. Within one map/arena generation the
// relocation use is safe; everything else should AssignFrom.

#ifndef I3_COMMON_SMALL_VEC_H_
#define I3_COMMON_SMALL_VEC_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/arena.h"

namespace i3 {

template <typename T, uint32_t N>
class SmallVec {
  static_assert(N >= 1, "inline capacity must be at least 1");
  static_assert(std::is_trivially_copyable_v<T>,
                "elements are relocated with memcpy");

 public:
  SmallVec() = default;

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t capacity() const { return cap_; }

  T* data() {
    return cap_ == N ? reinterpret_cast<T*>(inline_) : spill_;
  }
  const T* data() const {
    return cap_ == N ? reinterpret_cast<const T*>(inline_) : spill_;
  }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& operator[](uint32_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](uint32_t i) const {
    assert(i < size_);
    return data()[i];
  }
  T& back() { return data()[size_ - 1]; }

  /// Drops the elements; keeps inline/spill capacity for reuse.
  void Clear() { size_ = 0; }

  void PopBack() {
    assert(size_ > 0);
    --size_;
  }

  /// Shrinks to the first `n` elements (n <= size).
  void Truncate(uint32_t n) {
    assert(n <= size_);
    size_ = n;
  }

  void PushBack(Arena* arena, const T& v) {
    if (size_ == cap_) Grow(arena, cap_ * 2);
    data()[size_++] = v;
  }

  /// \brief Deep copy: contents land in this vector's own (possibly grown)
  /// storage, never aliasing `o`'s spill.
  void AssignFrom(Arena* arena, const SmallVec& o) {
    if (o.size_ > cap_) {
      Grow(arena, o.size_ > cap_ * 2 ? o.size_ : cap_ * 2);
    }
    std::memcpy(data(), o.data(), o.size_ * sizeof(T));
    size_ = o.size_;
  }

 private:
  void Grow(Arena* arena, uint32_t new_cap) {
    T* ns = arena->AllocateArray<T>(new_cap);
    std::memcpy(ns, data(), size_ * sizeof(T));
    spill_ = ns;
    cap_ = new_cap;
  }

  alignas(T) uint8_t inline_[N * sizeof(T)];
  T* spill_ = nullptr;
  uint32_t size_ = 0;
  uint32_t cap_ = N;
};

}  // namespace i3

#endif  // I3_COMMON_SMALL_VEC_H_
