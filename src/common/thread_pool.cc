#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace i3 {

ThreadPool::ThreadPool(size_t num_threads) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  queue_depth_ = reg.GetGauge("i3_thread_pool_queue_depth",
                              "Tasks currently waiting in the pool queue.");
  task_wait_us_ = reg.GetHistogram(
      "i3_thread_pool_task_wait_us",
      "Microseconds a task spent queued before a thread picked it up.");
  task_run_us_ = reg.GetHistogram(
      "i3_thread_pool_task_run_us",
      "Microseconds a task spent executing on a pool thread.");
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    RunTask(std::move(task));
  }
}

void ThreadPool::RunTask(Task task) {
  const uint64_t picked_ns = obs::NowNanos();
  task_wait_us_->Record((picked_ns - task.enqueue_ns) / 1000);
  task.fn();
  task_run_us_->Record((obs::NowNanos() - picked_ns) / 1000);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Work-sharing loop: workers and the caller pull the next index from a
  // shared counter, so an uneven per-index cost (one hot shard) cannot
  // leave threads idle behind a static partition.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const std::function<void(size_t)>* fn_ptr = &fn;  // outlives the waits below
  auto run = [next, n, fn_ptr] {
    for (size_t i = next->fetch_add(1, std::memory_order_relaxed); i < n;
         i = next->fetch_add(1, std::memory_order_relaxed)) {
      (*fn_ptr)(i);
    }
  };
  const size_t helpers = std::min(workers_.size(), n - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (size_t t = 0; t < helpers; ++t) futures.push_back(Submit(run));
  run();  // the caller participates instead of idling
  for (auto& f : futures) f.get();
}

}  // namespace i3
