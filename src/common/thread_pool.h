// A small fixed-size thread pool.
//
// Built for the query fan-out in model/sharded_index.h but generic: tasks
// are arbitrary callables, Submit returns a std::future for the result, and
// ParallelFor runs an index range across the workers with the caller
// participating (so a pool of size 1 still gets two-way parallelism and a
// ParallelFor over an empty pool degrades to a plain loop).
//
// Tasks must not block on other tasks of the same pool (no nested
// Submit-and-wait from a worker thread): the pool has a fixed worker count
// and no work stealing, so such cycles can deadlock. ShardedIndex obeys
// this by fanning out only from caller threads.

#ifndef I3_COMMON_THREAD_POOL_H_
#define I3_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace i3 {

/// \brief Fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed: Submit still works, but
  /// nothing drains the queue until ParallelFor's caller participation or
  /// destruction -- pass 0 only to code that uses ParallelFor).
  explicit ThreadPool(size_t num_threads);

  /// Joins the workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// \brief Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(Task{[task] { (*task)(); }, obs::NowNanos()});
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    cv_.notify_one();
    return future;
  }

  /// \brief Runs fn(0) .. fn(n-1) across the workers and the calling
  /// thread; returns when all n calls have finished. `fn` must tolerate
  /// concurrent invocation with distinct indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  /// A queued callable stamped with its enqueue time so the dequeuer can
  /// charge queue-wait latency to `i3_thread_pool_task_wait_us`.
  struct Task {
    std::function<void()> fn;
    uint64_t enqueue_ns;
  };

  void WorkerLoop();
  void RunTask(Task task);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;

  // Cached once at construction; recording never touches the registry.
  obs::Gauge* queue_depth_;
  obs::Histogram* task_wait_us_;
  obs::Histogram* task_run_us_;
};

}  // namespace i3

#endif  // I3_COMMON_THREAD_POOL_H_
