#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace i3 {

ZipfSampler::ZipfSampler(size_t n, double theta) {
  assert(n > 0);
  cumulative_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cumulative_[r] = total;
  }
  for (size_t r = 0; r < n; ++r) cumulative_[r] /= total;
  cumulative_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble(0.0, 1.0);
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) return cumulative_.size() - 1;
  return static_cast<size_t>(it - cumulative_.begin());
}

double ZipfSampler::Probability(size_t r) const {
  if (r >= cumulative_.size()) return 0.0;
  return r == 0 ? cumulative_[0] : cumulative_[r] - cumulative_[r - 1];
}

}  // namespace i3
