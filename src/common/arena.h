// A bump allocator for per-query scratch memory.
//
// The I3 query hot path (i3_search.cc) builds thousands of short-lived
// candidate cells, partial-document tables, and term lists per query. Giving
// each query a bump arena turns all of that into pointer arithmetic:
// Allocate() is a few instructions, Reset() rewinds to empty while
// *retaining* every block, so a long-lived arena (e.g. one per search
// thread) stops touching the global allocator once it reaches its
// high-water mark.
//
// Contracts:
//   - Objects placed in the arena are never destroyed individually and the
//     arena runs no destructors: only trivially destructible types belong
//     here (New/AllocateArray enforce this).
//   - Not thread-safe. Share nothing: one arena per thread or per query.
//   - Reset() invalidates every pointer previously handed out.

#ifndef I3_COMMON_ARENA_H_
#define I3_COMMON_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace i3 {

class Arena {
 public:
  static constexpr size_t kDefaultMinBlockBytes = 16 * 1024;

  explicit Arena(size_t min_block_bytes = kDefaultMinBlockBytes)
      : min_block_bytes_(min_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// \brief `n` bytes aligned to `align` (power of two, at most the
  /// alignment operator new guarantees -- 16 on the platforms we target).
  void* Allocate(size_t n, size_t align = alignof(std::max_align_t)) {
    assert(align > 0 && (align & (align - 1)) == 0 &&
           align <= alignof(std::max_align_t));
    while (true) {
      if (block_ < blocks_.size()) {
        Block& b = blocks_[block_];
        const size_t aligned = (offset_ + align - 1) & ~(align - 1);
        if (aligned + n <= b.size) {
          offset_ = aligned + n;
          bytes_used_ += n;
          return b.data.get() + aligned;
        }
        // Advance into the next retained block (or mint one below). The
        // tail of the current block is wasted until the next Reset -- the
        // usual bump-allocator trade.
        ++block_;
        offset_ = 0;
        continue;
      }
      NewBlock(n + align);
    }
  }

  /// \brief Uninitialized storage for `count` objects of T.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "the arena never runs destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// \brief Constructs a T in the arena.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "the arena never runs destructors");
    return new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// \brief Rewinds to empty, retaining every block for reuse. O(1); no
  /// memory is returned to the global allocator.
  void Reset() {
    block_ = 0;
    offset_ = 0;
    bytes_used_ = 0;
  }

  /// Bytes handed out since the last Reset (excluding alignment padding).
  size_t BytesUsed() const { return bytes_used_; }

  /// Total bytes held in blocks (the steady-state footprint).
  size_t BytesReserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size;
  };

  void NewBlock(size_t at_least) {
    size_t size = blocks_.empty() ? min_block_bytes_ : blocks_.back().size * 2;
    if (size < at_least) size = at_least;
    blocks_.push_back({std::make_unique<uint8_t[]>(size), size});
    block_ = blocks_.size() - 1;
    offset_ = 0;
  }

  const size_t min_block_bytes_;
  std::vector<Block> blocks_;
  size_t block_ = 0;   // active block index (== blocks_.size() when empty)
  size_t offset_ = 0;  // bump position within the active block
  size_t bytes_used_ = 0;
};

}  // namespace i3

#endif  // I3_COMMON_ARENA_H_
