// A counting allocator hook for allocation-profiling binaries.
//
// bench_hotpath (and any future perf harness) needs "bytes allocated per
// query" as a first-class metric: the I3 hot path is supposed to stay off
// the global allocator after query setup, and a regression there is
// invisible to wall-clock timing on a fast allocator. The hook is a pair of
// thread-local counters plus a macro that defines replacement global
// operator new/delete which bump them.
//
// Usage (exactly one translation unit per binary):
//
//   #include "common/alloc_hook.h"
//   I3_DEFINE_ALLOC_HOOK()
//   ...
//   AllocTally before = ThreadAllocTally();
//   <code under test>
//   AllocTally cost = ThreadAllocTally() - before;
//
// The macro is deliberately not part of any library: linking the
// replacement operators into every test/bench binary would tax all of them
// with two thread-local increments per allocation. Only binaries that opt
// in pay.

#ifndef I3_COMMON_ALLOC_HOOK_H_
#define I3_COMMON_ALLOC_HOOK_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace i3 {

/// \brief Cumulative allocation counters of the calling thread. Frees are
/// not tracked: the metric of interest is allocator traffic, not live size.
struct AllocTally {
  uint64_t bytes = 0;
  uint64_t count = 0;

  AllocTally operator-(const AllocTally& o) const {
    return {bytes - o.bytes, count - o.count};
  }
};

namespace internal {
inline thread_local AllocTally t_alloc_tally;

inline void* HookedAlloc(std::size_t n) {
  t_alloc_tally.bytes += n;
  ++t_alloc_tally.count;
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* HookedAllocAligned(std::size_t n, std::size_t align) {
  t_alloc_tally.bytes += n;
  ++t_alloc_tally.count;
  void* p = std::aligned_alloc(align, (n + align - 1) / align * align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace internal

/// Allocation counters of the calling thread since thread start.
inline AllocTally ThreadAllocTally() { return internal::t_alloc_tally; }

}  // namespace i3

/// Defines the replacement global allocation functions. All new-forms
/// funnel into the hook; all delete-forms are plain free (the pointers come
/// from malloc/aligned_alloc above).
#define I3_DEFINE_ALLOC_HOOK()                                               \
  void* operator new(std::size_t n) { return i3::internal::HookedAlloc(n); } \
  void* operator new[](std::size_t n) {                                      \
    return i3::internal::HookedAlloc(n);                                     \
  }                                                                          \
  void* operator new(std::size_t n, std::align_val_t a) {                    \
    return i3::internal::HookedAllocAligned(n, static_cast<size_t>(a));      \
  }                                                                          \
  void* operator new[](std::size_t n, std::align_val_t a) {                  \
    return i3::internal::HookedAllocAligned(n, static_cast<size_t>(a));      \
  }                                                                          \
  void operator delete(void* p) noexcept { std::free(p); }                   \
  void operator delete[](void* p) noexcept { std::free(p); }                 \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }      \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }    \
  void operator delete(void* p, std::align_val_t) noexcept { std::free(p); } \
  void operator delete[](void* p, std::align_val_t) noexcept {               \
    std::free(p);                                                            \
  }                                                                          \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {    \
    std::free(p);                                                            \
  }                                                                          \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {  \
    std::free(p);                                                            \
  }
#endif  // I3_COMMON_ALLOC_HOOK_H_
