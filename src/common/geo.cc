#include "common/geo.h"

#include <cstdio>
#include <limits>

namespace i3 {

std::string Point::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.6f, %.6f)", x, y);
  return buf;
}

double HaversineKm(const Point& a, const Point& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
  const double lat1 = a.y * kDegToRad;
  const double lat2 = b.y * kDegToRad;
  const double dlat = (b.y - a.y) * kDegToRad;
  const double dlng = (b.x - a.x) * kDegToRad;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlng / 2) *
                       std::sin(dlng / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

Rect Rect::Empty() {
  Rect r;
  r.min_x = std::numeric_limits<double>::max();
  r.min_y = std::numeric_limits<double>::max();
  r.max_x = std::numeric_limits<double>::lowest();
  r.max_y = std::numeric_limits<double>::lowest();
  return r;
}

Rect Rect::Union(const Rect& o) const {
  if (IsEmpty()) return o;
  if (o.IsEmpty()) return *this;
  return {std::min(min_x, o.min_x), std::min(min_y, o.min_y),
          std::max(max_x, o.max_x), std::max(max_y, o.max_y)};
}

Rect Rect::Union(const Point& p) const { return Union(Rect::FromPoint(p)); }

void Rect::Expand(const Rect& o) { *this = Union(o); }
void Rect::Expand(const Point& p) { *this = Union(p); }

double Rect::MinDistance(const Point& p) const {
  const double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
  const double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
  return std::sqrt(dx * dx + dy * dy);
}

double Rect::MaxDistance(const Point& p) const {
  const double dx = std::max(std::abs(p.x - min_x), std::abs(p.x - max_x));
  const double dy = std::max(std::abs(p.y - min_y), std::abs(p.y - max_y));
  return std::sqrt(dx * dx + dy * dy);
}

std::string Rect::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.6f, %.6f] x [%.6f, %.6f]", min_x, max_x,
                min_y, max_y);
  return buf;
}

}  // namespace i3
