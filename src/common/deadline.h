// Shared clock abstraction for every place this library waits on purpose:
// simulated device latency, retry backoff, and per-query deadlines.
//
// Two concerns live here. First, DeadlineTimer::SleepFor centralizes the
// hybrid wait policy that used to be duplicated as open-coded busy-wait
// loops in storage/io_stats.cc and storage/buffer_pool.cc: waits long
// enough for the scheduler to honor accurately (>= 50us) are slept, so a
// blocked "device read" lets other threads run, while shorter waits keep
// busy-waiting because Linux sleep granularity is unreliable below ~50us
// and would distort the microsecond-scale calibration harnesses. Second,
// DeadlineTimer itself is the absolute-deadline object the retry/backoff
// and graceful-degradation paths consult (Expired / RemainingMicros).

#ifndef I3_COMMON_DEADLINE_H_
#define I3_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace i3 {

/// \brief An absolute steady-clock deadline plus the library's wait policy.
class DeadlineTimer {
 public:
  /// Threshold below which SleepFor busy-waits instead of sleeping.
  static constexpr uint32_t kSpinThresholdUs = 50;

  /// A deadline that never expires.
  DeadlineTimer() = default;

  /// A deadline `budget_us` microseconds from now.
  static DeadlineTimer AfterMicros(uint64_t budget_us) {
    DeadlineTimer t;
    t.deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(budget_us);
    t.bounded_ = true;
    return t;
  }

  /// A deadline at the given steady-clock nanosecond timestamp (as produced
  /// by obs::NowNanos); 0 means unbounded.
  static DeadlineTimer AtSteadyNanos(uint64_t deadline_ns) {
    DeadlineTimer t;
    if (deadline_ns != 0) {
      t.deadline_ = std::chrono::steady_clock::time_point(
          std::chrono::nanoseconds(deadline_ns));
      t.bounded_ = true;
    }
    return t;
  }

  bool bounded() const { return bounded_; }

  bool Expired() const {
    return bounded_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// Microseconds until expiry; 0 when expired. Meaningless (max) when
  /// unbounded.
  uint64_t RemainingMicros() const {
    if (!bounded_) return UINT64_MAX;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline_) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(deadline_ - now)
            .count());
  }

  /// \brief Waits `us` microseconds under the hybrid policy: sleep when the
  /// scheduler can honor the wait accurately, busy-wait below that.
  static void SleepFor(uint64_t us) {
    if (us == 0) return;
    if (us >= kSpinThresholdUs) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
      return;
    }
    SpinUntil(std::chrono::steady_clock::now() +
              std::chrono::microseconds(us));
  }

  /// \brief Waits until this deadline passes (hybrid policy). No-op when
  /// unbounded or already expired.
  void WaitUntilExpired() const {
    if (!bounded_) return;
    const uint64_t remaining = RemainingMicros();
    if (remaining == 0) return;
    if (remaining >= kSpinThresholdUs) {
      std::this_thread::sleep_until(deadline_);
      return;
    }
    SpinUntil(deadline_);
  }

 private:
  static void SpinUntil(std::chrono::steady_clock::time_point until) {
    while (std::chrono::steady_clock::now() < until) {
      // Busy-wait: microsecond sleep granularity is unreliable on Linux.
    }
  }

  std::chrono::steady_clock::time_point deadline_{};
  bool bounded_ = false;
};

}  // namespace i3

#endif  // I3_COMMON_DEADLINE_H_
