// Status / Result error-handling primitives, in the style of Apache Arrow and
// RocksDB: library code on hot paths never throws; fallible operations return
// a Status (or Result<T> when they produce a value).

#ifndef I3_COMMON_STATUS_H_
#define I3_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace i3 {

/// \brief Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kCorruption = 6,
  kNotSupported = 7,
  kResourceExhausted = 8,
  kInternal = 9,
  kDeadlineExceeded = 10,
};

/// \brief Human-readable name of a status code ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Follows the Arrow/RocksDB idiom: check with `ok()`, propagate
/// with the I3_RETURN_NOT_OK macro.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    assert(code != StatusCode::kOk);
    state_ = std::make_shared<State>(State{code, std::move(msg)});
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// \brief True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->msg;
  }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeToString(state_->code);
    out += ": ";
    out += state_->msg;
    return out;
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Shared (not unique) so Status is cheaply copyable; errors are cold.
  std::shared_ptr<State> state_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. `ok()` / `status()` inspect; `ValueOrDie()` /
/// `operator*` extract (must be ok); `MoveValue()` extracts by move.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : inner_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status. Must not be OK.
  Result(Status status) : inner_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(inner_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(inner_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(inner_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(inner_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(inner_);
  }
  T MoveValue() {
    assert(ok());
    return std::move(std::get<T>(inner_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> inner_;
};

}  // namespace i3

/// Propagates a non-OK Status out of the enclosing function.
#define I3_RETURN_NOT_OK(expr)               \
  do {                                       \
    ::i3::Status _st = (expr);               \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Assigns the value of a Result to `lhs`, or propagates its error Status.
#define I3_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = tmp.MoveValue();

#define I3_ASSIGN_OR_RETURN(lhs, rexpr) \
  I3_ASSIGN_OR_RETURN_IMPL(I3_CONCAT(_res_, __LINE__), lhs, rexpr)

#define I3_CONCAT_INNER(a, b) a##b
#define I3_CONCAT(a, b) I3_CONCAT_INNER(a, b)

#endif  // I3_COMMON_STATUS_H_
