// An open-addressing hash map over arena storage.
//
// FlatMap replaces unordered_map in the I3 query hot path: power-of-two
// capacity, linear probing, tombstone deletion, and both the control bytes
// and the slot array live in a caller-supplied Arena -- so inserts, erases,
// and rehashes generate zero global-allocator traffic and Clear() recycles
// the table at full capacity.
//
// Requirements on K and V: trivially copyable (rehash relocates slots with
// plain assignment of trivially copyable bytes) and trivially destructible
// (arena memory is never destroyed element-wise). Values are
// value-initialized on first insertion of a key.

#ifndef I3_COMMON_FLAT_MAP_H_
#define I3_COMMON_FLAT_MAP_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/arena.h"

namespace i3 {

/// SplitMix64 finalizer: full-width mixing so that sequential ids (DocId
/// assignment is sequential in every dataset generator) spread over the
/// table instead of clustering a linear probe.
struct FlatMapHash {
  uint64_t operator()(uint64_t k) const {
    k += 0x9E3779B97F4A7C15ull;
    k = (k ^ (k >> 30)) * 0xBF58476D1CE4E5B9ull;
    k = (k ^ (k >> 27)) * 0x94D049BB133111EBull;
    return k ^ (k >> 31);
  }
};

template <typename K, typename V, typename Hash = FlatMapHash>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<K> &&
                    std::is_trivially_destructible_v<V>,
                "FlatMap relocates slots bytewise in arena memory");

 public:
  struct Slot {
    K key;
    V value;
  };

  explicit FlatMap(Arena* arena) : arena_(arena) {}

  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Drops every entry; keeps the table storage for reuse.
  void Clear() {
    if (ctrl_ != nullptr) std::memset(ctrl_, kEmpty, cap_);
    size_ = 0;
    tombs_ = 0;
  }

  /// \brief The value of `key`, or nullptr.
  V* Find(const K& key) {
    if (size_ == 0) return nullptr;
    const uint32_t mask = cap_ - 1;
    uint32_t i = static_cast<uint32_t>(Hash{}(key)) & mask;
    while (true) {
      if (ctrl_[i] == kEmpty) return nullptr;
      if (ctrl_[i] == kFull && slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask;
    }
  }

  /// \brief The value of `key`, value-initialized on first sight.
  V& FindOrInsert(const K& key) {
    if (cap_ == 0 || (size_ + tombs_ + 1) * 4 > cap_ * 3) Rehash();
    const uint32_t mask = cap_ - 1;
    uint32_t i = static_cast<uint32_t>(Hash{}(key)) & mask;
    uint32_t first_tomb = UINT32_MAX;
    while (true) {
      if (ctrl_[i] == kFull) {
        if (slots_[i].key == key) return slots_[i].value;
      } else if (ctrl_[i] == kTomb) {
        if (first_tomb == UINT32_MAX) first_tomb = i;
      } else {  // kEmpty: the key is absent; claim a slot.
        if (first_tomb != UINT32_MAX) {
          i = first_tomb;
          --tombs_;
        }
        ctrl_[i] = kFull;
        ++size_;
        slots_[i].key = key;
        new (&slots_[i].value) V();
        return slots_[i].value;
      }
      i = (i + 1) & mask;
    }
  }

  class iterator {
   public:
    iterator(FlatMap* m, uint32_t i) : m_(m), i_(i) { SkipToFull(); }
    Slot& operator*() const { return m_->slots_[i_]; }
    Slot* operator->() const { return &m_->slots_[i_]; }
    iterator& operator++() {
      ++i_;
      SkipToFull();
      return *this;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    friend class FlatMap;
    void SkipToFull() {
      while (i_ < m_->cap_ && m_->ctrl_[i_] != kFull) ++i_;
    }
    FlatMap* m_;
    uint32_t i_;
  };

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, cap_); }

  /// \brief Tombstones the entry at `it`; returns the next entry.
  iterator Erase(iterator it) {
    assert(it != end());
    ctrl_[it.i_] = kTomb;
    --size_;
    ++tombs_;
    return ++it;
  }

  bool Erase(const K& key) {
    if (size_ == 0) return false;
    const uint32_t mask = cap_ - 1;
    uint32_t i = static_cast<uint32_t>(Hash{}(key)) & mask;
    while (true) {
      if (ctrl_[i] == kEmpty) return false;
      if (ctrl_[i] == kFull && slots_[i].key == key) {
        ctrl_[i] = kTomb;
        --size_;
        ++tombs_;
        return true;
      }
      i = (i + 1) & mask;
    }
  }

 private:
  static constexpr uint8_t kEmpty = 0, kFull = 1, kTomb = 2;
  static constexpr uint32_t kMinCapacity = 16;

  /// Grows (or, when mostly tombstones, rewrites in place size) to keep the
  /// live load factor under 3/4. The previous arrays are abandoned to the
  /// arena -- reclaimed wholesale at the owner's Reset.
  void Rehash() {
    const uint32_t old_cap = cap_;
    uint8_t* old_ctrl = ctrl_;
    Slot* old_slots = slots_;

    uint32_t new_cap = cap_ == 0 ? kMinCapacity : cap_;
    // Double only when genuinely loaded; a tombstone-heavy table rewrites
    // at the same capacity.
    if ((size_ + 1) * 2 > new_cap) new_cap *= 2;

    ctrl_ = arena_->AllocateArray<uint8_t>(new_cap);
    std::memset(ctrl_, kEmpty, new_cap);
    slots_ = arena_->AllocateArray<Slot>(new_cap);
    cap_ = new_cap;
    tombs_ = 0;

    const uint32_t mask = cap_ - 1;
    for (uint32_t s = 0; s < old_cap; ++s) {
      if (old_ctrl[s] != kFull) continue;
      uint32_t i = static_cast<uint32_t>(Hash{}(old_slots[s].key)) & mask;
      while (ctrl_[i] == kFull) i = (i + 1) & mask;
      ctrl_[i] = kFull;
      slots_[i] = old_slots[s];
    }
  }

  Arena* arena_;
  uint8_t* ctrl_ = nullptr;
  Slot* slots_ = nullptr;
  uint32_t cap_ = 0;
  uint32_t size_ = 0;
  uint32_t tombs_ = 0;
};

}  // namespace i3

#endif  // I3_COMMON_FLAT_MAP_H_
