// Planar geometric primitives shared by every index in the library.
//
// The paper models a spatial document as a 2-D point (latitude/longitude).
// Following common practice in the spatial-keyword indexing literature we
// measure proximity with Euclidean distance in coordinate space; a haversine
// helper is provided for applications that want great-circle distances.

#ifndef I3_COMMON_GEO_H_
#define I3_COMMON_GEO_H_

#include <algorithm>
#include <cmath>
#include <string>

namespace i3 {

/// \brief A 2-D point. `x` is longitude-like, `y` is latitude-like.
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
  std::string ToString() const;
};

/// \brief Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// \brief Squared Euclidean distance (avoids the sqrt on hot paths).
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// \brief Great-circle distance in kilometers, treating (x, y) as
/// (longitude, latitude) in degrees. Provided for applications; the index
/// internals use Euclidean distance.
double HaversineKm(const Point& a, const Point& b);

/// \brief An axis-aligned rectangle, closed on all sides.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  static Rect Empty();

  /// Rectangle covering exactly one point.
  static Rect FromPoint(const Point& p) { return {p.x, p.y, p.x, p.y}; }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  double Width() const { return std::max(0.0, max_x - min_x); }
  double Height() const { return std::max(0.0, max_y - min_y); }
  double Area() const { return Width() * Height(); }
  /// Half-perimeter; the classic R-tree "margin" measure.
  double Margin() const { return Width() + Height(); }

  Point Center() const {
    return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  /// Length of the diagonal; used to normalize spatial proximity to [0, 1].
  double Diagonal() const {
    return std::sqrt(Width() * Width() + Height() * Height());
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Contains(const Rect& o) const {
    return o.min_x >= min_x && o.max_x <= max_x && o.min_y >= min_y &&
           o.max_y <= max_y;
  }

  bool Intersects(const Rect& o) const {
    return !(o.min_x > max_x || o.max_x < min_x || o.min_y > max_y ||
             o.max_y < min_y);
  }

  /// Smallest rectangle containing both this and `o`.
  Rect Union(const Rect& o) const;
  /// Smallest rectangle containing this and `p`.
  Rect Union(const Point& p) const;
  /// Grows in place to contain `o` / `p`.
  void Expand(const Rect& o);
  void Expand(const Point& p);

  /// Area increase required to include `o` (the Guttman insertion metric).
  double Enlargement(const Rect& o) const {
    return Union(o).Area() - Area();
  }

  /// Minimum Euclidean distance from `p` to any point of the rectangle
  /// (zero when `p` is inside).
  double MinDistance(const Point& p) const;
  /// Maximum Euclidean distance from `p` to any point of the rectangle.
  double MaxDistance(const Point& p) const;

  bool operator==(const Rect& o) const {
    return min_x == o.min_x && min_y == o.min_y && max_x == o.max_x &&
           max_y == o.max_y;
  }

  std::string ToString() const;
};

}  // namespace i3

#endif  // I3_COMMON_GEO_H_
