// Deterministic random-number utilities used by the synthetic data
// generators and the property tests. Everything is seeded explicitly so that
// every experiment in EXPERIMENTS.md is reproducible bit-for-bit.

#ifndef I3_COMMON_RNG_H_
#define I3_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace i3 {

/// \brief A seeded pseudo-random generator with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled/shifted.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// \brief Zipf-distributed sampler over {0, 1, ..., n-1} where rank 0 is the
/// most frequent.
///
/// Uses the inverse-CDF method over precomputed cumulative weights
/// (O(log n) per sample). Keyword frequencies in real microblog corpora are
/// approximately Zipfian; the Twitter/Wikipedia generators rely on this.
class ZipfSampler {
 public:
  /// \param n number of distinct items (> 0)
  /// \param theta skew parameter; ~1.0 matches natural-language keyword
  ///        frequencies, 0 degenerates to uniform.
  ZipfSampler(size_t n, double theta);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of rank `r`.
  double Probability(size_t r) const;

  size_t n() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized cumulative masses
};

}  // namespace i3

#endif  // I3_COMMON_RNG_H_
