#include "common/status.h"

namespace i3 {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace i3
