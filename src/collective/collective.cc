#include "collective/collective.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "model/scorer.h"

namespace i3 {

namespace {

/// Exact cost of a chosen group under kMaxPlusDiameter.
double MaxPlusDiameterCost(const Point& q,
                           const std::vector<Point>& locations) {
  double max_dist = 0.0;
  double diameter = 0.0;
  for (size_t i = 0; i < locations.size(); ++i) {
    max_dist = std::max(max_dist, Distance(q, locations[i]));
    for (size_t j = i + 1; j < locations.size(); ++j) {
      diameter = std::max(diameter, Distance(locations[i], locations[j]));
    }
  }
  return max_dist + diameter;
}

}  // namespace

Result<std::vector<CollectiveSearcher::Candidate>>
CollectiveSearcher::GatherCandidates(const Point& location,
                                     const std::vector<TermId>& terms,
                                     std::vector<bool>* keyword_covered) {
  // One single-keyword nearest-documents probe per term: alpha = 1 ranks
  // purely by spatial proximity, so score = phi_s and
  // dist = (1 - phi_s) * diag.
  const double diag = space_.Diagonal();
  std::unordered_map<DocId, Candidate> by_doc;
  keyword_covered->assign(terms.size(), false);

  for (size_t i = 0; i < terms.size(); ++i) {
    Query probe;
    probe.location = location;
    probe.terms = {terms[i]};
    probe.k = options_.candidates_per_keyword;
    probe.semantics = Semantics::kAnd;
    auto res = index_->Search(probe, /*alpha=*/1.0);
    if (!res.ok()) return res.status();
    for (const ScoredDoc& sd : res.ValueOrDie()) {
      (*keyword_covered)[i] = true;
      Candidate& c = by_doc[sd.doc];
      c.doc = sd.doc;
      c.loc = sd.location;
      c.dist = (1.0 - sd.score) * diag;
      c.mask |= (1u << i);
    }
  }

  std::vector<Candidate> out;
  out.reserve(by_doc.size());
  for (auto& [doc, c] : by_doc) out.push_back(c);
  // Deterministic order: by distance, then doc id.
  std::sort(out.begin(), out.end(), [](const Candidate& a,
                                       const Candidate& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.doc < b.doc;
  });
  return out;
}

Result<CollectiveResult> CollectiveSearcher::Search(
    const Point& location, std::vector<TermId> terms, CollectiveCost cost) {
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  if (terms.empty()) {
    return Status::InvalidArgument("collective query has no keywords");
  }
  if (terms.size() > 32) {
    return Status::InvalidArgument("more than 32 query keywords");
  }
  if (cost == CollectiveCost::kSumDistance) {
    return SolveSum(location, terms);
  }
  return SolveMaxDiameter(location, terms);
}

// Greedy weighted set cover: repeatedly pick the candidate minimizing
// distance per newly covered keyword (the classical ln-n approximation for
// the sum-of-distances cost).
Result<CollectiveResult> CollectiveSearcher::SolveSum(
    const Point& location, const std::vector<TermId>& terms) {
  std::vector<bool> keyword_covered;
  auto cands_res = GatherCandidates(location, terms, &keyword_covered);
  if (!cands_res.ok()) return cands_res.status();
  const auto& cands = cands_res.ValueOrDie();

  CollectiveResult result;
  const uint32_t full_mask = terms.size() >= 32
                                 ? 0xffffffffu
                                 : ((1u << terms.size()) - 1);
  uint32_t covered = 0;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (!keyword_covered[i]) {
      result.covered = false;  // keyword absent from the whole corpus
      covered |= (1u << i);    // exclude it from the goal
    }
  }

  std::vector<bool> used(cands.size(), false);
  while (covered != full_mask) {
    double best_ratio = std::numeric_limits<double>::max();
    int best = -1;
    for (size_t i = 0; i < cands.size(); ++i) {
      if (used[i]) continue;
      const uint32_t gain_mask = cands[i].mask & ~covered;
      const int gain = __builtin_popcount(gain_mask);
      if (gain == 0) continue;
      const double ratio = cands[i].dist / gain;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // cannot make progress (shouldn't happen)
    used[best] = true;
    covered |= cands[best].mask;
    result.docs.push_back(cands[best].doc);
    result.locations.push_back(cands[best].loc);
    result.cost += cands[best].dist;
  }

  // Canonical order.
  std::vector<size_t> idx(result.docs.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return result.docs[a] < result.docs[b];
  });
  CollectiveResult sorted = result;
  for (size_t i = 0; i < idx.size(); ++i) {
    sorted.docs[i] = result.docs[idx[i]];
    sorted.locations[i] = result.locations[idx[i]];
  }
  return sorted;
}

// Greedy for the max-distance + diameter cost: grow the group by always
// adding the candidate whose inclusion increases the cost least per newly
// covered keyword.
Result<CollectiveResult> CollectiveSearcher::SolveMaxDiameter(
    const Point& location, const std::vector<TermId>& terms) {
  std::vector<bool> keyword_covered;
  auto cands_res = GatherCandidates(location, terms, &keyword_covered);
  if (!cands_res.ok()) return cands_res.status();
  const auto& cands = cands_res.ValueOrDie();

  CollectiveResult result;
  const uint32_t full_mask = terms.size() >= 32
                                 ? 0xffffffffu
                                 : ((1u << terms.size()) - 1);
  uint32_t covered = 0;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (!keyword_covered[i]) {
      result.covered = false;
      covered |= (1u << i);
    }
  }

  std::vector<bool> used(cands.size(), false);
  std::vector<Point> chosen;
  while (covered != full_mask) {
    double best_ratio = std::numeric_limits<double>::max();
    int best = -1;
    for (size_t i = 0; i < cands.size(); ++i) {
      if (used[i]) continue;
      const uint32_t gain_mask = cands[i].mask & ~covered;
      const int gain = __builtin_popcount(gain_mask);
      if (gain == 0) continue;
      std::vector<Point> trial = chosen;
      trial.push_back(cands[i].loc);
      const double delta =
          MaxPlusDiameterCost(location, trial) -
          (chosen.empty() ? 0.0 : MaxPlusDiameterCost(location, chosen));
      const double ratio = delta / gain;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    used[best] = true;
    covered |= cands[best].mask;
    chosen.push_back(cands[best].loc);
    result.docs.push_back(cands[best].doc);
    result.locations.push_back(cands[best].loc);
  }
  result.cost = MaxPlusDiameterCost(location, result.locations);

  std::vector<size_t> idx(result.docs.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return result.docs[a] < result.docs[b];
  });
  CollectiveResult sorted = result;
  for (size_t i = 0; i < idx.size(); ++i) {
    sorted.docs[i] = result.docs[idx[i]];
    sorted.locations[i] = result.locations[idx[i]];
  }
  return sorted;
}

}  // namespace i3
