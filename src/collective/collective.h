// Collective spatial keyword search (Cao, Cong, Jensen & Ooi, SIGMOD 2011)
// -- the AND-semantics application the paper's introduction highlights:
// instead of one document containing all query keywords, find a *group* of
// documents that together cover them, close to the query location and (for
// the MAX cost) close to each other.
//
// Implemented on top of any SpatialKeywordIndex via single-keyword top-k
// probes, so it inherits I3's pruning when run over an I3Index.
//
// Cost functions (following the cited paper):
//   kSumDistance:  cost(S) = sum over chosen documents of dist(q, d),
//                  approximated by greedy weighted set cover (distance per
//                  newly covered keyword);
//   kMaxPlusDiameter: cost(S) = max_d dist(q, d) + max_{d1,d2} dist(d1,d2)
//                  (NP-hard), approximated by a greedy marginal-cost rule.

#ifndef I3_COLLECTIVE_COLLECTIVE_H_
#define I3_COLLECTIVE_COLLECTIVE_H_

#include <vector>

#include "model/index.h"

namespace i3 {

/// \brief Cost function for a collective answer.
enum class CollectiveCost {
  kSumDistance,
  kMaxPlusDiameter,
};

/// \brief A group of documents covering the query keywords.
struct CollectiveResult {
  /// Chosen documents (deduplicated, sorted by DocId).
  std::vector<DocId> docs;
  /// Locations of the chosen documents (parallel to `docs`).
  std::vector<Point> locations;
  /// Value of the requested cost function.
  double cost = 0.0;
  /// False when some query keyword has no matching document at all.
  bool covered = true;
};

/// \brief Options for CollectiveSearcher.
struct CollectiveOptions {
  /// Candidate pool size per keyword: the searcher fetches this many
  /// nearest documents per query keyword before optimizing group
  /// membership. Larger pools improve the approximation for
  /// kMaxPlusDiameter at higher probe cost.
  uint32_t candidates_per_keyword = 8;
};

/// \brief Answers collective spatial keyword queries through a
/// SpatialKeywordIndex.
class CollectiveSearcher {
 public:
  /// \param index underlying index (not owned)
  /// \param space the data space (distance normalization must match the
  ///        index's)
  CollectiveSearcher(SpatialKeywordIndex* index, const Rect& space,
                     CollectiveOptions options = {})
      : index_(index), space_(space), options_(options) {}

  /// \brief Finds a covering group for `terms` near `location` under
  /// `cost`. Duplicated terms are deduplicated.
  Result<CollectiveResult> Search(const Point& location,
                                  std::vector<TermId> terms,
                                  CollectiveCost cost);

 private:
  struct Candidate {
    DocId doc;
    Point loc;
    double dist;
    uint32_t mask;  // which query keywords it contains
  };

  /// Per-keyword nearest candidates via single-keyword top-k probes.
  Result<std::vector<Candidate>> GatherCandidates(
      const Point& location, const std::vector<TermId>& terms,
      std::vector<bool>* keyword_covered);

  Result<CollectiveResult> SolveSum(const Point& location,
                                    const std::vector<TermId>& terms);
  Result<CollectiveResult> SolveMaxDiameter(
      const Point& location, const std::vector<TermId>& terms);

  SpatialKeywordIndex* index_;
  Rect space_;
  CollectiveOptions options_;
};

}  // namespace i3

#endif  // I3_COLLECTIVE_COLLECTIVE_H_
