// S2I: Spatial Inverted Index (Rocha-Junior et al., SSTD 2011) -- the
// stronger of the paper's two baselines.
//
// Textual-first partition with a frequency threshold T: an infrequent
// keyword's postings live as a sequential run of pages in a flat file; once
// a keyword's frequency exceeds T its postings are moved into a dedicated
// aggregated R-tree (one tree file per frequent keyword). Top-k queries
// merge per-keyword sources ordered by alpha*phi_s + (1-alpha)*w with a
// threshold-algorithm scan; multi-keyword aggregation resolves each emitted
// document by random accesses (tree probes) into the other keywords'
// sources -- the cross-tree aggregation cost the I3 paper criticizes.

#ifndef I3_S2I_S2I_INDEX_H_
#define I3_S2I_S2I_INDEX_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/index.h"
#include "model/scorer.h"
#include "rtree/artree.h"
#include "storage/page_file.h"

namespace i3 {

/// \brief Multi-keyword aggregation strategy for S2I.
enum class S2IStrategy {
  /// Threshold-algorithm aggregation with per-document random accesses
  /// into the other keywords' trees, as the I3 paper describes S2I's
  /// behaviour ("a large number of random accesses on tree nodes"). This
  /// is the faithful baseline and reproduces the paper's S2I cost blow-up
  /// on multi-keyword queries.
  kTaRandomAccess,
  /// NRA-style accumulation over the ranked streams with per-candidate
  /// upper bounds; random accesses only to finalize the survivors. A
  /// modernized variant, markedly stronger than the 2011 system -- kept to
  /// show how much of the paper's S2I gap is algorithmic (see the
  /// bench_ablation_s2i harness).
  kNra,
};

/// \brief Options for S2IIndex.
struct S2IOptions {
  /// Data space (distance normalization).
  Rect space{-180.0, -90.0, 180.0, 90.0};

  /// Page size for both the flat file and the tree files.
  size_t page_size = kDefaultPageSize;

  /// Frequency threshold T: a keyword with more than T postings is
  /// "frequent" and gets an aR-tree; at or below T it stays in the flat
  /// file. The I3 paper sets S2I's parameters "as reported in their
  /// experiments"; we default T to the I3 keyword-cell capacity (P/B) so
  /// the two indexes promote keywords at the same scale.
  uint32_t frequency_threshold = 128;

  /// Multi-keyword aggregation strategy (see S2IStrategy).
  S2IStrategy strategy = S2IStrategy::kTaRandomAccess;
};

/// \brief Per-query search statistics for the benchmarks.
struct S2ISearchStats {
  uint64_t docs_resolved = 0;
  uint64_t random_probes = 0;
  uint64_t source_pops = 0;
};

inline SearchStatsView View(const S2ISearchStats& s) {
  SearchStatsView v;
  v.Set("docs_resolved", s.docs_resolved);
  v.Set("random_probes", s.random_probes);
  v.Set("source_pops", s.source_pops);
  return v;
}

/// \brief The S2I baseline index.
class S2IIndex final : public SpatialKeywordIndex {
 public:
  explicit S2IIndex(S2IOptions options = {});

  std::string Name() const override { return "S2I"; }

  Status Insert(const SpatialDocument& doc) override;
  Status Delete(const SpatialDocument& doc) override;
  Result<std::vector<ScoredDoc>> Search(const Query& q,
                                        double alpha) override;

  /// The query path keeps all per-query state on the stack (sources,
  /// heaps, stats) and only reads the postings structures; statistics are
  /// published once per search under stats_mutex_, and ARTree probes /
  /// iterators are const. Safe for concurrent readers in the absence of
  /// writers.
  bool SupportsConcurrentSearch() const override { return true; }

  uint64_t DocumentCount() const override { return doc_count_; }
  IndexSizeInfo SizeInfo() const override;
  const IoStats& io_stats() const override { return io_stats_; }
  void ResetIoStats() override { io_stats_.Reset(); }

  /// Number of per-keyword aR-tree files currently materialized (the
  /// "large number of small index files" of Table 5's discussion).
  size_t TreeFileCount() const { return tree_count_; }
  size_t KeywordCount() const { return terms_.size(); }

  /// Statistics of the most recent completed Search call (snapshot; under
  /// concurrent readers "most recent" is whichever search published last).
  S2ISearchStats last_search_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return last_search_stats_;
  }

  SearchStatsView LastSearchStats() const override {
    return View(last_search_stats());
  }

  const S2IOptions& options() const { return options_; }

 private:
  /// Postings of one keyword: exactly one of `tree` / `flat` is active.
  struct TermPostings {
    std::unique_ptr<ARTree> tree;  // non-null iff frequent
    std::vector<AREntry> flat;
    size_t count = 0;
  };

  /// A ranked stream over one keyword's postings plus random access.
  class Source;

  Status ValidateDocument(const SpatialDocument& doc) const;
  /// Search body: validates, builds the sources, and routes to the
  /// configured strategy. All bodies accumulate statistics into `stats`
  /// (stack storage of the caller, so concurrent searches never share
  /// scratch).
  Result<std::vector<ScoredDoc>> SearchDispatch(const Query& q, double alpha,
                                                S2ISearchStats* stats);
  Result<std::vector<ScoredDoc>> SearchTa(
      const Query& q, double alpha,
      std::vector<std::unique_ptr<Source>>* sources,
      S2ISearchStats* stats);
  Result<std::vector<ScoredDoc>> SearchNra(
      const Query& q, double alpha,
      std::vector<std::unique_ptr<Source>>* sources,
      S2ISearchStats* stats);
  void PromoteToTree(TermPostings* tp);
  void DemoteToFlat(TermPostings* tp);
  /// Charges the sequential read of a flat posting run.
  void ChargeFlatRead(size_t postings_count);
  void ChargeFlatWrite(size_t postings_count);

  S2IOptions options_;
  std::unordered_map<TermId, TermPostings> terms_;
  IoStats io_stats_;
  uint64_t doc_count_ = 0;
  size_t tree_count_ = 0;
  /// Guards last_search_stats_ (snapshot scratch published per search; the
  /// postings structures rely on the caller's reader/writer exclusion).
  mutable std::mutex stats_mutex_;
  S2ISearchStats last_search_stats_;

  // Metric handles cached at construction. Index 0 = AND, 1 = OR.
  obs::Histogram* search_latency_us_[2];
  SearchStatsEmitter stats_emitter_;
};

}  // namespace i3

#endif  // I3_S2I_S2I_INDEX_H_
