#include "s2i/s2i_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_set>

#include "model/topk.h"
#include "obs/clock.h"
#include "obs/trace.h"

namespace i3 {

namespace {
/// Serialized flat posting: point (16) + doc (4) + weight (4).
constexpr size_t kFlatEntryBytes = 24;
}  // namespace

S2IIndex::S2IIndex(S2IOptions options)
    : options_(options), stats_emitter_("S2I", View(S2ISearchStats{})) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  search_latency_us_[0] =
      reg.GetHistogram("i3_query_latency_us", "End-to-end Search latency.",
                       {{"index", "S2I"}, {"semantics", "and"}});
  search_latency_us_[1] =
      reg.GetHistogram("i3_query_latency_us", "End-to-end Search latency.",
                       {{"index", "S2I"}, {"semantics", "or"}});
}

Status S2IIndex::ValidateDocument(const SpatialDocument& doc) const {
  if (doc.id == kInvalidDocId) {
    return Status::InvalidArgument("invalid document id");
  }
  if (!options_.space.Contains(doc.location)) {
    return Status::InvalidArgument("location outside the data space");
  }
  if (doc.terms.empty()) {
    return Status::InvalidArgument("document has no keywords");
  }
  return Status::OK();
}

void S2IIndex::ChargeFlatRead(size_t postings_count) {
  const uint64_t pages = std::max<uint64_t>(
      1, (postings_count * kFlatEntryBytes + options_.page_size - 1) /
             options_.page_size);
  io_stats_.RecordRead(IoCategory::kFlatFile, pages);
}

void S2IIndex::ChargeFlatWrite(size_t postings_count) {
  const uint64_t pages = std::max<uint64_t>(
      1, (postings_count * kFlatEntryBytes + options_.page_size - 1) /
             options_.page_size);
  io_stats_.RecordWrite(IoCategory::kFlatFile, pages);
}

void S2IIndex::PromoteToTree(TermPostings* tp) {
  // Migration flat -> tree: read the whole run, insert every posting into a
  // fresh aR-tree. This data movement is the update overhead the I3 paper
  // attributes to S2I.
  ChargeFlatRead(tp->flat.size());
  tp->tree = std::make_unique<ARTree>(ARTreeOptions{options_.page_size, 0.4},
                                      &io_stats_);
  for (const AREntry& e : tp->flat) {
    tp->tree->Insert(e.point, e.doc, e.weight);
  }
  tp->flat.clear();
  tp->flat.shrink_to_fit();
  ++tree_count_;
}

void S2IIndex::DemoteToFlat(TermPostings* tp) {
  // Migration tree -> flat when the keyword turns infrequent again.
  Scorer scorer(options_.space, 0.0);
  for (auto it = tp->tree->NewIterator(scorer, options_.space.Center());
       it.Valid(); it.Next()) {
    tp->flat.push_back(it.entry());
  }
  ChargeFlatWrite(tp->flat.size());
  tp->tree.reset();
  --tree_count_;
}

Status S2IIndex::Insert(const SpatialDocument& doc) {
  I3_RETURN_NOT_OK(ValidateDocument(doc));
  for (const WeightedTerm& wt : doc.terms) {
    TermPostings& tp = terms_[wt.term];
    if (tp.tree != nullptr) {
      tp.tree->Insert(doc.location, doc.id, wt.weight);
    } else {
      tp.flat.push_back({doc.location, doc.id, wt.weight});
      ChargeFlatWrite(1);
      if (tp.flat.size() > options_.frequency_threshold) {
        PromoteToTree(&tp);
      }
    }
    ++tp.count;
  }
  ++doc_count_;
  return Status::OK();
}

Status S2IIndex::Delete(const SpatialDocument& doc) {
  I3_RETURN_NOT_OK(ValidateDocument(doc));
  for (const WeightedTerm& wt : doc.terms) {
    auto it = terms_.find(wt.term);
    if (it == terms_.end()) {
      return Status::NotFound("keyword not indexed");
    }
    TermPostings& tp = it->second;
    if (tp.tree != nullptr) {
      if (!tp.tree->Delete(doc.location, doc.id)) {
        return Status::NotFound("posting not found in tree");
      }
      --tp.count;
      if (tp.count <= options_.frequency_threshold) {
        DemoteToFlat(&tp);
      }
    } else {
      auto pos = std::find_if(tp.flat.begin(), tp.flat.end(),
                              [&](const AREntry& e) {
                                return e.doc == doc.id &&
                                       e.point == doc.location;
                              });
      if (pos == tp.flat.end()) {
        return Status::NotFound("posting not found in flat run");
      }
      ChargeFlatRead(tp.flat.size());
      tp.flat.erase(pos);
      ChargeFlatWrite(tp.flat.size());
      --tp.count;
    }
    if (tp.count == 0) terms_.erase(it);
  }
  --doc_count_;
  return Status::OK();
}

// ------------------------------------------------------------------- search

/// A ranked posting stream for one query keyword: tree-backed (best-first
/// aR-tree scan) or flat-backed (load, sort by key). Both expose Head()
/// (upper bound of anything not yet emitted) and Probe() random access.
class S2IIndex::Source {
 public:
  Source(const TermPostings* tp, const Scorer& scorer, const Point& qloc,
         S2IIndex* owner)
      : scorer_(scorer), qloc_(qloc) {
    if (tp->tree != nullptr) {
      it_.emplace(tp->tree->NewIterator(scorer, qloc));
      tree_ = tp->tree.get();
      max_weight_ = tp->tree->MaxWeight();
    } else {
      owner->ChargeFlatRead(tp->flat.size());
      flat_ = tp->flat;
      for (const AREntry& e : flat_) {
        max_weight_ = std::max(max_weight_, e.weight);
        keys_.push_back(
            scorer.Combine(scorer.SpatialProximity(qloc, e.point), e.weight));
      }
      order_.resize(flat_.size());
      for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
      std::sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
        return keys_[a] > keys_[b];
      });
    }
  }

  bool Valid() const {
    if (tree_ != nullptr) return it_->Valid();
    return pos_ < order_.size();
  }

  const AREntry& Current() const {
    if (tree_ != nullptr) return it_->entry();
    return flat_[order_[pos_]];
  }

  double Key() const {
    if (tree_ != nullptr) return it_->key();
    return keys_[order_[pos_]];
  }

  /// Upper bound over everything not yet emitted, including the current
  /// entry; -inf when exhausted.
  double Head() const {
    if (!Valid()) return -std::numeric_limits<double>::infinity();
    return Key();
  }

  void Next() {
    if (tree_ != nullptr) {
      it_->Next();
    } else {
      ++pos_;
    }
  }

  /// Random access: exact weight of `doc`, if this keyword contains it.
  std::optional<float> Probe(const Point& p, DocId doc) const {
    if (tree_ != nullptr) return tree_->Probe(p, doc);
    for (const AREntry& e : flat_) {  // run already in memory this query
      if (e.doc == doc && e.point == p) return e.weight;
    }
    return std::nullopt;
  }

  /// Largest term weight in the whole source (for threshold tightening).
  float MaxWeight() const { return max_weight_; }

 private:
  Scorer scorer_;
  Point qloc_;
  float max_weight_ = 0.0f;
  const ARTree* tree_ = nullptr;
  std::optional<ARTree::Iterator> it_;
  std::vector<AREntry> flat_;
  std::vector<double> keys_;
  std::vector<size_t> order_;
  size_t pos_ = 0;
};

Result<std::vector<ScoredDoc>> S2IIndex::Search(const Query& q_in,
                                                double alpha) {
  const uint64_t start_ns = obs::NowNanos();
  S2ISearchStats stats;
  auto result = SearchDispatch(q_in, alpha, &stats);
  search_latency_us_[q_in.semantics == Semantics::kAnd ? 0 : 1]->Record(
      (obs::NowNanos() - start_ns) / 1000);
  stats_emitter_.Emit(View(stats));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    last_search_stats_ = stats;
  }
  return result;
}

Result<std::vector<ScoredDoc>> S2IIndex::SearchDispatch(
    const Query& q_in, double alpha, S2ISearchStats* stats) {
  Query q = q_in;
  q.Normalize();
  if (q.terms.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  const Scorer scorer(options_.space, alpha);

  std::vector<std::unique_ptr<Source>> sources;
  for (TermId t : q.terms) {
    auto it = terms_.find(t);
    if (it == terms_.end()) {
      if (q.semantics == Semantics::kAnd) return std::vector<ScoredDoc>{};
      continue;
    }
    sources.push_back(
        std::make_unique<Source>(&it->second, scorer, q.location, this));
  }
  if (sources.empty()) return std::vector<ScoredDoc>{};

  if (options_.strategy == S2IStrategy::kTaRandomAccess) {
    return SearchTa(q, alpha, &sources, stats);
  }
  return SearchNra(q, alpha, &sources, stats);
}

// The faithful baseline: pop the globally best posting, then resolve its
// document immediately with random accesses (tree probes) into every other
// keyword's source -- the cross-tree aggregation whose cost the I3 paper
// criticizes. Terminates when no unresolved document can beat the k-th
// result.
Result<std::vector<ScoredDoc>> S2IIndex::SearchTa(
    const Query& q, double alpha,
    std::vector<std::unique_ptr<Source>>* sources_in, S2ISearchStats* stats) {
  auto& sources = *sources_in;
  const Scorer scorer(options_.space, alpha);
  TopKHeap heap(q.k);
  std::unordered_set<DocId> resolved;

  while (true) {
    // Unresolved documents are bounded by the source heads: a doc first
    // surfaces at kappa <= max_i Head_i and its remaining textual mass is
    // bounded by the other sources' maximum weights.
    double head_sum = 0.0;
    double head_max = -std::numeric_limits<double>::infinity();
    double wmax_sum = 0.0;
    double wmax_min = std::numeric_limits<double>::infinity();
    bool any_valid = false;
    bool and_dead = false;
    for (const auto& s : sources) {
      if (s->Valid()) {
        head_sum += s->Head();
        head_max = std::max(head_max, s->Head());
        wmax_sum += s->MaxWeight();
        wmax_min = std::min(wmax_min, double{s->MaxWeight()});
        any_valid = true;
      } else if (q.semantics == Semantics::kAnd) {
        and_dead = true;
      }
    }
    if (!any_valid) break;
    if (q.semantics == Semantics::kAnd && and_dead) break;
    const double tau = std::min(
        head_sum, head_max + (1.0 - alpha) * (wmax_sum - wmax_min));
    if (heap.Full() && heap.Threshold() >= tau) break;

    Source* best = nullptr;
    for (const auto& s : sources) {
      if (s->Valid() && (best == nullptr || s->Head() > best->Head())) {
        best = s.get();
      }
    }
    const AREntry e = best->Current();
    best->Next();
    ++stats->source_pops;
    if (!resolved.insert(e.doc).second) continue;

    double text = 0.0;
    bool qualifies = true;
    for (const auto& s : sources) {
      if (s.get() == best) {
        text += e.weight;
        continue;
      }
      auto w = s->Probe(e.point, e.doc);
      ++stats->random_probes;
      if (w.has_value()) {
        text += *w;
      } else if (q.semantics == Semantics::kAnd) {
        qualifies = false;
        break;
      }
    }
    ++stats->docs_resolved;
    if (!qualifies) continue;
    heap.Offer(e.doc,
               scorer.Combine(scorer.SpatialProximity(q.location, e.point),
                              text),
               e.point);
  }
  return heap.Take();
}

// The modernized variant: accumulate partial scores from the ranked
// streams (no random access), then resolve only the surviving candidates.
Result<std::vector<ScoredDoc>> S2IIndex::SearchNra(
    const Query& q, double alpha,
    std::vector<std::unique_ptr<Source>>* sources_in, S2ISearchStats* stats) {
  auto& sources = *sources_in;
  const Scorer scorer(options_.space, alpha);

  // --- Phase 1: NRA-style accumulation over the ranked streams. ---
  //
  // Each source emits (doc, w) in non-increasing kappa = alpha*phi_s +
  // (1-alpha)*w order. We accumulate each document's partial textual sum
  // and which sources have emitted it; no random access happens here (the
  // streams are I/O-cheap: a tree leaf holds ~page_size/24 entries).
  //
  // Bounds:
  //  * unseen doc d (never emitted): it will first surface via some source
  //    i0 at kappa <= Head_i0 <= max_i Head_i, and the rest of its textual
  //    mass is at most sum_{j != i0} wmax_j, so
  //      score(d) <= max_i Head_i
  //                  + (1-alpha) * (sum_j wmax_j - min_j wmax_j),
  //    intersected with the naive sum-of-heads bound;
  //  * seen candidate d: phi_s is known exactly; an unseen source i can
  //    contribute at most (1-alpha) * min(wmax_i, Head_i - alpha*phi_s(d))
  //    because d would otherwise already have been emitted by i.
  struct Cand {
    Point loc;
    double seen_w = 0.0;
    uint32_t seen_mask = 0;
  };
  std::unordered_map<DocId, Cand> cands;
  const uint32_t m = static_cast<uint32_t>(sources.size());
  const uint32_t all_mask = (m >= 32) ? 0xffffffffu : ((1u << m) - 1);

  const double kInf = std::numeric_limits<double>::infinity();
  auto head_of = [&](uint32_t i) {
    return sources[i]->Valid() ? sources[i]->Head() : -kInf;
  };

  // Upper bound of a seen candidate under the current heads.
  auto cand_upper = [&](const Cand& c) {
    const double phi_s = scorer.SpatialProximity(q.location, c.loc);
    double text = c.seen_w;
    for (uint32_t i = 0; i < m; ++i) {
      if (c.seen_mask & (1u << i)) continue;
      if (!sources[i]->Valid()) {
        // Exhausted without emitting the doc: the doc is not in source i.
        if (q.semantics == Semantics::kAnd) return -kInf;
        continue;
      }
      if (q.semantics == Semantics::kAnd || alpha < 1.0) {
        const double by_head =
            alpha >= 1.0 ? double{sources[i]->MaxWeight()}
                         : (head_of(i) - alpha * phi_s) / (1.0 - alpha);
        const double w = std::min(double{sources[i]->MaxWeight()}, by_head);
        if (w < 0.0 && q.semantics == Semantics::kAnd) return -kInf;
        text += std::max(0.0, w);
      }
    }
    return scorer.Combine(phi_s, text);
  };

  // Achievable lower bound: the score the candidate already has in hand.
  // Under AND it only counts once every source has emitted the doc (then
  // it is exact); under OR the partial sum is always achievable.
  auto cand_lower = [&](const Cand& c) {
    if (q.semantics == Semantics::kAnd && c.seen_mask != all_mask) {
      return -kInf;
    }
    return scorer.Combine(scorer.SpatialProximity(q.location, c.loc),
                          c.seen_w);
  };

  auto unseen_tau = [&]() {
    double head_sum = 0.0, head_max = -kInf;
    double wmax_sum = 0.0, wmax_min = kInf;
    bool any_valid = false, and_dead = false;
    for (const auto& s : sources) {
      if (s->Valid()) {
        head_sum += s->Head();
        head_max = std::max(head_max, s->Head());
        wmax_sum += s->MaxWeight();
        wmax_min = std::min(wmax_min, double{s->MaxWeight()});
        any_valid = true;
      } else {
        and_dead = true;
      }
    }
    if (!any_valid) return -kInf;
    if (q.semantics == Semantics::kAnd && and_dead) return -kInf;
    return std::min(head_sum,
                    head_max + (1.0 - alpha) * (wmax_sum - wmax_min));
  };

  // k-th best achievable lower bound among the candidates.
  auto kth_lower = [&]() {
    TopKHeap lowers(q.k);
    for (const auto& [doc, c] : cands) {
      const double l = cand_lower(c);
      if (l > -kInf) lowers.Offer(doc, l);
    }
    return lowers.Full() ? lowers.Threshold() : -kInf;
  };

  constexpr uint32_t kCheckEvery = 256;
  uint32_t since_check = 0;
  while (true) {
    const double tau = unseen_tau();
    // Pop from the source with the highest head.
    int best = -1;
    for (uint32_t i = 0; i < m; ++i) {
      if (sources[i]->Valid() &&
          (best < 0 || sources[i]->Head() > sources[best]->Head())) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // all streams exhausted

    if (since_check++ >= kCheckEvery) {
      since_check = 0;
      const double delta = kth_lower();
      if (delta > -kInf && delta >= tau) {
        bool open = false;
        for (const auto& [doc, c] : cands) {
          if (cand_lower(c) < delta && cand_upper(c) > delta) {
            open = true;
            break;
          }
        }
        if (!open) break;
      }
    }

    const AREntry e = sources[best]->Current();
    sources[best]->Next();
    ++stats->source_pops;
    Cand& c = cands[e.doc];
    c.loc = e.point;
    c.seen_w += e.weight;
    c.seen_mask |= (1u << best);
  }

  // --- Phase 2: resolve the surviving candidates exactly. ---
  //
  // Only candidates whose upper bound can still beat the k-th lower bound
  // need random accesses (the paper's "considerable random access cost to
  // aggregate the final score" applies here, but to a bounded set).
  const double delta = kth_lower();
  TopKHeap heap(q.k);
  for (auto& [doc, c] : cands) {
    if (cand_upper(c) <= delta && cand_lower(c) < delta) continue;
    if (q.semantics == Semantics::kAnd && c.seen_mask == all_mask) {
      heap.Offer(doc, cand_lower(c), c.loc);  // already exact
      ++stats->docs_resolved;
      continue;
    }
    double text = c.seen_w;
    bool qualifies = true;
    for (uint32_t i = 0; i < m; ++i) {
      if (c.seen_mask & (1u << i)) continue;
      if (!sources[i]->Valid()) {
        // Stream drained without emitting the doc: not in this source.
        if (q.semantics == Semantics::kAnd) qualifies = false;
        continue;
      }
      auto w = sources[i]->Probe(c.loc, doc);
      ++stats->random_probes;
      if (w.has_value()) {
        text += *w;
      } else if (q.semantics == Semantics::kAnd) {
        qualifies = false;
      }
      if (!qualifies) break;
    }
    if (!qualifies) continue;
    ++stats->docs_resolved;
    heap.Offer(doc,
               scorer.Combine(scorer.SpatialProximity(q.location, c.loc),
                              text),
               c.loc);
  }
  return heap.Take();
}

// -------------------------------------------------------------------- misc

IndexSizeInfo S2IIndex::SizeInfo() const {
  uint64_t tree_bytes = 0;
  uint64_t flat_entries = 0;
  for (const auto& [term, tp] : terms_) {
    if (tp.tree != nullptr) {
      tree_bytes += tp.tree->SizeBytes();
    } else {
      flat_entries += tp.flat.size();
    }
  }
  // Infrequent keywords' runs are stored consecutively in one flat file.
  const uint64_t flat_bytes =
      ((flat_entries * kFlatEntryBytes + options_.page_size - 1) /
       options_.page_size) *
      options_.page_size;
  IndexSizeInfo info;
  info.components.push_back({"aR-tree files", tree_bytes});
  info.components.push_back({"flat file", flat_bytes});
  return info;
}

}  // namespace i3
