#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/deadline.h"

namespace i3 {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

Result<int> ConnectOnce(const std::string& host, uint16_t port,
                        uint32_t recv_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return fd;
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const ClientOptions& opts) {
  Status last = Status::IOError("no connect attempt made");
  for (uint32_t attempt = 0; attempt <= opts.connect_retries; ++attempt) {
    if (attempt > 0) {
      DeadlineTimer::SleepFor(uint64_t{opts.retry_delay_ms} * 1000);
    }
    auto fd = ConnectOnce(opts.host, opts.port, opts.recv_timeout_ms);
    if (fd.ok()) {
      return std::unique_ptr<Client>(new Client(fd.ValueOrDie(), opts));
    }
    last = fd.status();
  }
  return last;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendBytes(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < len) {
    size_t n = len - sent;
    if (opts_.write_chunk > 0) n = std::min(n, opts_.write_chunk);
    const ssize_t w = ::send(fd_, p + sent, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(w);
    if (opts_.write_chunk > 0 && opts_.write_chunk_delay_us > 0 &&
        sent < len) {
      DeadlineTimer::SleepFor(opts_.write_chunk_delay_us);
    }
  }
  return Status::OK();
}

Status Client::Send(const Request& req) {
  std::string frame;
  EncodeRequest(req, &frame);
  return SendBytes(frame.data(), frame.size());
}

Result<Response> Client::ReadResponse() {
  char chunk[4096];
  while (true) {
    uint32_t payload_len = 0;
    const FrameStatus fs =
        NextFrame(reinterpret_cast<const uint8_t*>(read_buf_.data()),
                  read_buf_.size(), &payload_len);
    if (fs == FrameStatus::kTooLarge) {
      return Status::Corruption("oversized response frame");
    }
    if (fs == FrameStatus::kReady) {
      auto resp = DecodeResponse(
          reinterpret_cast<const uint8_t*>(read_buf_.data()) +
              kFrameHeaderBytes,
          payload_len);
      read_buf_.erase(0, kFrameHeaderBytes + payload_len);
      return resp;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      read_buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("response read timed out");
    }
    return Errno("recv");
  }
}

Result<Response> Client::Call(const Request& req) {
  I3_RETURN_NOT_OK(Send(req));
  return ReadResponse();
}

Status Client::Ping() {
  Request req;
  req.type = MessageType::kPing;
  req.request_id = 0xFFFFFFFF00000001ull;
  auto resp = Call(req);
  if (!resp.ok()) return resp.status();
  if (resp.ValueOrDie().outcome != ResponseOutcome::kOk ||
      resp.ValueOrDie().request_id != req.request_id) {
    return Status::Internal("bad pong");
  }
  return Status::OK();
}

void Client::CloseWrite() { ::shutdown(fd_, SHUT_WR); }

Result<std::string> HttpGet(const std::string& host, uint16_t port,
                            const std::string& path) {
  auto fd = ConnectOnce(host, port, /*recv_timeout_ms=*/10000);
  if (!fd.ok()) return fd.status();
  const int sock = fd.ValueOrDie();
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: " + host + "\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t w =
        ::send(sock, req.data() + sent, req.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      const Status st = Errno("send");
      ::close(sock);
      return st;
    }
    sent += static_cast<size_t>(w);
  }
  std::string out;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(sock, chunk, sizeof(chunk), 0);
    if (n > 0) {
      out.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // server closes after the one-shot response
  }
  ::close(sock);
  if (out.empty()) return Status::IOError("empty HTTP response");
  return out;
}

}  // namespace net
}  // namespace i3
