// Per-tenant token-bucket admission control for the serving front end.
//
// The server admits a request only when its tenant's bucket holds a token;
// otherwise the request is shed *before* touching the index -- a fast
// "shed" response whose cost is independent of index load, so one noisy
// tenant cannot queue everyone else behind its excess traffic
// (tests/test_net_server.cc asserts both the isolation and the bounded
// shed latency).
//
// Buckets refill continuously at `rate` tokens/second up to `burst`.
// Time is passed in by the caller (steady-clock nanoseconds), which keeps
// the policy deterministic under test: the admission tests drive a bucket
// through an explicit timeline instead of sleeping.
//
// Thread model: the server consults the limiter from its single event-loop
// thread, but the limiter locks anyway -- it is also scraped by tests and
// must stay safe if the loop is ever sharded across threads.

#ifndef I3_NET_TOKEN_BUCKET_H_
#define I3_NET_TOKEN_BUCKET_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace i3 {
namespace net {

/// \brief One continuously-refilling bucket.
class TokenBucket {
 public:
  /// \param rate tokens per second; <= 0 means "unlimited" (always admits).
  /// \param burst bucket capacity (and initial fill); floored at 1 token
  ///        when rate limiting is active so a quiet tenant can always send.
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(rate > 0 ? std::max(burst, 1.0) : 0.0) {}

  bool unlimited() const { return rate_ <= 0; }

  /// \brief Takes one token if available. `now_ns` must be monotone
  /// non-decreasing across calls (steady clock).
  bool TryAcquire(uint64_t now_ns) {
    if (unlimited()) return true;
    if (last_ns_ == 0) {
      last_ns_ = now_ns;
      tokens_ = burst_;
    }
    if (now_ns > last_ns_) {
      tokens_ = std::min(
          burst_, tokens_ + (now_ns - last_ns_) * 1e-9 * rate_);
      last_ns_ = now_ns;
    }
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_ = 0.0;
  uint64_t last_ns_ = 0;
};

/// \brief Admission limits of one tenant.
struct TenantLimit {
  double rate = 0.0;   ///< tokens/second; <= 0 = unlimited
  double burst = 0.0;  ///< bucket capacity
};

/// \brief The per-tenant limiter: a default limit plus explicit per-tenant
/// overrides. Buckets are created lazily on a tenant's first request.
class TenantRateLimiter {
 public:
  explicit TenantRateLimiter(TenantLimit default_limit = {})
      : default_limit_(default_limit) {}

  /// Installs an override for `tenant` (before or during serving).
  void SetLimit(uint32_t tenant, TenantLimit limit) {
    std::lock_guard<std::mutex> lock(mutex_);
    limits_[tenant] = limit;
    buckets_.erase(tenant);  // rebuilt with the new limit on next use
  }

  /// \brief True if `tenant` may proceed at `now_ns`; false = shed.
  bool Admit(uint32_t tenant, uint64_t now_ns) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
      TenantLimit limit = default_limit_;
      auto lim = limits_.find(tenant);
      if (lim != limits_.end()) limit = lim->second;
      it = buckets_
               .emplace(tenant, TokenBucket(limit.rate, limit.burst))
               .first;
    }
    return it->second.TryAcquire(now_ns);
  }

 private:
  std::mutex mutex_;
  TenantLimit default_limit_;
  std::unordered_map<uint32_t, TenantLimit> limits_;
  std::unordered_map<uint32_t, TokenBucket> buckets_;
};

}  // namespace net
}  // namespace i3

#endif  // I3_NET_TOKEN_BUCKET_H_
