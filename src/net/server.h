// The async network serving front end: an epoll-based event-loop TCP
// server answering the length-prefixed query protocol (net/protocol.h)
// over a ShardedIndex.
//
// Architecture (DESIGN.md §12):
//
//   accept/read/write ──> [event-loop thread] ──decode──> admission
//        ▲                                                 │
//        │  eventfd                                 shed?──┴──> queue
//        │                                                       │
//   [outbox] <──encode── [worker threads] <──batch (SearchBatch)─┘
//
//  - One event-loop thread owns the listener, every connection, and all
//    epoll state; no connection structure is ever touched off-loop, so
//    the I/O plane needs no locks.
//  - Parsed requests pass admission control (per-tenant token buckets +
//    a global queue-depth bound) on the loop thread. Rejected requests
//    get an immediate "shed" response that never waits behind index
//    work -- the fast path a saturating tenant cannot congest.
//  - Admitted requests are queued; worker threads drain them in batches
//    of up to `batch_max` and answer each batch with one
//    ShardedIndex::SearchBatch call (per-item alpha and degraded
//    outcome). Encoded responses go to the outbox; an eventfd wakes the
//    loop to write them out, with partial writes buffered under
//    EPOLLOUT.
//  - Deadlines propagate from the wire: a request's relative
//    `deadline_ms` becomes an absolute QueryControl deadline at
//    admission, so queue wait counts against the budget and an overrun
//    degrades or fails exactly like a library-level deadline.
//  - A connection whose first bytes are an HTTP request line is served
//    as a one-shot HTTP client: `GET /metrics` returns the process
//    metrics registry in Prometheus text format, and /statusz, /tracez,
//    /cachez, /healthz return live JSON introspection
//    (net/introspection.h); anything else 404.
//  - Observability rides the same paths without taxing them: a request
//    with the wire trace flag gets a server-stamped trace id and a span
//    timeline (admission, queue wait, per-shard search, encode) returned
//    in-band; every request's latency feeds per-tenant rolling SLO
//    windows (obs/slo.h); and requests over a threshold land in the
//    slow-query log (obs/slow_log.h) with replayable request bytes --
//    the untraced fast path pays two relaxed loads for all of it.
//
// Protocol violations (bad magic, oversized length prefix) answer with a
// clean error response and close the connection -- a desynchronized
// stream cannot be trusted further. Malformed-but-framed requests answer
// with an error and keep the connection (framing is still sound).

#ifndef I3_NET_SERVER_H_
#define I3_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "model/sharded_index.h"
#include "net/protocol.h"
#include "net/result_cache.h"
#include "net/token_bucket.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/slow_log.h"
#include "obs/trace.h"

namespace i3 {
namespace net {

struct ServerOptions {
  /// Interface to bind ("127.0.0.1" for loopback-only serving).
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (see Server::port()).
  uint16_t port = 0;
  /// Search worker threads draining the request queue.
  uint32_t worker_threads = 2;
  /// Requests a worker answers with one SearchBatch call. Larger batches
  /// amortize wakeups under load; a batch never waits for fill -- a
  /// worker takes whatever is queued, up to this cap.
  uint32_t batch_max = 16;
  /// Default per-tenant admission limit (rate <= 0 = unlimited).
  TenantLimit default_limit;
  /// Per-tenant overrides.
  std::vector<std::pair<uint32_t, TenantLimit>> tenant_limits;
  /// Admitted-but-unserved requests the queue may hold before the server
  /// sheds regardless of tenant budgets (overload backstop). 0 sheds
  /// every search request -- useful to tests, not to production.
  size_t max_queue = 4096;
  /// Accepted connections beyond this are closed immediately.
  size_t max_connections = 1024;
  /// Whole-query result cache entries (net/result_cache.h); 0 disables.
  /// Hits are answered on the loop thread after admission, so cached
  /// requests still spend tenant tokens but skip the queue and the index.
  size_t result_cache_entries = 4096;
  /// Slow-query log (obs/slow_log.h): requests finishing at or over this
  /// latency are captured with their span timeline and canonical request
  /// bytes. 0 captures every request (tests/diagnosis, not production).
  uint64_t slow_threshold_us = 50000;
  /// Over-threshold ring size and rolling slowest-N size.
  size_t slow_log_ring = 64;
  size_t slow_log_top = 8;
  /// Per-tenant rolling SLO window (obs/slo.h).
  uint32_t slo_window_seconds = 60;
  uint32_t slo_max_tenants = 16;
};

/// \brief The serving front end. Start() binds and spawns the event loop
/// and workers; Stop() (or destruction) shuts everything down. Searches
/// run against the caller-owned index, which must outlive the server.
class Server {
 public:
  Server(ShardedIndex* index, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Binds, listens, and starts serving. InvalidArgument /
  /// IOError on bad options or socket failure.
  Status Start();

  /// \brief Stops accepting, closes every connection, joins all
  /// threads. Idempotent. Queued-but-unanswered requests are dropped
  /// (their connections are closing anyway).
  void Stop();

  /// The bound port (after Start(); with options.port == 0 this is the
  /// kernel-assigned ephemeral port).
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Cumulative dispositions (also exported as metrics; these accessors
  /// keep tests independent of registry state).
  uint64_t requests_ok() const { return ok_count_.load(); }
  uint64_t requests_shed() const { return shed_count_.load(); }
  uint64_t requests_error() const { return error_count_.load(); }

  /// The server's slow-query log and SLO windows (read-only views for
  /// tests and embedding processes; the HTTP side channel renders both).
  const obs::SlowQueryLog& slow_log() const { return slow_log_; }
  const obs::SloTracker& slo() const { return slo_; }

 private:
  struct Connection;

  /// One admitted request travelling loop -> worker.
  struct WorkItem {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    uint64_t arrival_ns = 0;
    /// When admission + cache probe finished and the request entered the
    /// queue (the worker charges queue wait against this).
    uint64_t admitted_ns = 0;
    /// Wire trace flag and the server-stamped id (0 when untraced).
    uint64_t trace_id = 0;
    uint32_t tenant = 0;
    bool traced = false;
    /// Canonical result-cache key; empty when the response must not be
    /// cached (cache disabled or the request opted out via no_cache).
    std::string cache_key;
    /// The decoded request, kept for slow-query capture (canonical
    /// re-encode on the slow path only; holding it here adds no
    /// allocation -- it is moved, not copied).
    Request request;
    ShardedIndex::BatchItem item;
  };

  /// One encoded response travelling worker -> loop.
  struct Outbound {
    uint64_t conn_id = 0;
    std::string bytes;
  };

  void RunLoop();
  void RunWorker();

  void AcceptAll();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  /// Consumes complete frames from conn's read buffer; returns false if
  /// the connection must close (protocol violation).
  bool ConsumeFrames(Connection* conn);
  /// Dispatches one decoded request: ping, shed, or enqueue for workers.
  void DispatchRequest(Connection* conn, Request req, uint64_t arrival_ns);
  /// Serves the HTTP side channel; returns false to close.
  bool ConsumeHttp(Connection* conn);

  /// Appends an encoded response to conn's write buffer (loop thread);
  /// the caller flushes once it is done touching conn.
  void QueueResponse(Connection* conn, const Response& resp);
  /// Worker-side: encode + hand to the outbox, wake the loop.
  void PostResponse(uint64_t conn_id, const Response& resp);
  void DrainOutbox();
  void FlushWrites(Connection* conn);
  void CloseConnection(Connection* conn);
  void UpdateEpoll(Connection* conn);

  void RecordOutcome(ResponseOutcome outcome, bool degraded,
                     bool deadline_miss, uint32_t tenant,
                     uint64_t arrival_ns);

  /// \brief Files a slow-query record when (done - arrival) qualifies;
  /// below the bar this is two relaxed loads and a return (the zero-
  /// allocation fast path). `trace` may be null (untraced request): the
  /// record then synthesizes coarse server stages from the timestamps.
  void MaybeLogSlow(const Request& req, ResponseOutcome outcome,
                    uint64_t trace_id, uint64_t arrival_ns,
                    uint64_t admitted_ns, uint64_t search_ns,
                    uint64_t done_ns, const obs::QueryTrace* trace);

  /// \brief Builds the wire trace section from a finished span timeline.
  static WireTrace BuildWireTrace(uint64_t trace_id, uint64_t total_ns,
                                  const obs::QueryTrace& trace);

  ShardedIndex* index_;
  ServerOptions options_;
  TenantRateLimiter limiter_;
  ResultCache result_cache_;
  obs::SlowQueryLog slow_log_;
  obs::SloTracker slo_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  /// Steady-clock Start() time (uptime on /statusz and /healthz).
  uint64_t start_ns_ = 0;
  /// Trace-id generator: mixed counter, stamped per traced request.
  std::atomic<uint64_t> next_trace_seq_{1};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  /// Loop-thread-only connection table (id -> connection). Ids start
  /// above the reserved epoll tags (listener, wake eventfd).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;

  std::mutex outbox_mutex_;
  std::vector<Outbound> outbox_;

  std::atomic<uint64_t> ok_count_{0};
  std::atomic<uint64_t> shed_count_{0};
  std::atomic<uint64_t> error_count_{0};

  // Cached metric handles (registration is slow-path; see obs/metrics.h).
  obs::Gauge* connections_gauge_;
  obs::Gauge* queue_depth_gauge_;
  obs::Counter* shed_metric_;
  obs::Counter* protocol_errors_metric_;
  obs::Counter* degraded_metric_;
  obs::Counter* requests_metric_[3];   ///< by ResponseOutcome
  obs::Histogram* latency_us_[3];      ///< by ResponseOutcome
  obs::Histogram* batch_size_;
  obs::Counter* traced_requests_metric_;
  obs::Counter* slow_queries_metric_;
};

}  // namespace net
}  // namespace i3

#endif  // I3_NET_SERVER_H_
