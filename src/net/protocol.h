// The wire protocol of the serving front end: length-prefixed frames
// carrying a small parsed query protocol (keywords, k, alpha, semantics,
// deadline, tenant id) and its responses.
//
// Framing: every message is `uint32 payload_len` (little-endian, excluding
// the prefix itself) followed by `payload_len` bytes of payload. A length
// above kMaxFramePayload is a protocol violation -- the receiver cannot
// resynchronize, so it must answer with a clean error and close the
// connection. Multiple frames may be pipelined on one connection;
// responses carry the request's id so they can be matched even though the
// server may batch and reorder internally.
//
// The codec is symmetric with the storage-page codecs (i3/cell_codec.h):
// encoding is explicit little-endian byte writing (no struct casts, no
// padding, endian- and ABI-stable), and decoding goes through a
// bounds-checked cursor that can never over-read -- a damaged or truncated
// payload yields Status::Corruption / InvalidArgument, never undefined
// behavior. tests/test_net_protocol.cc sweeps truncations and every-byte
// corruptions over the codec exactly like test_cell_codec.cc does for
// pages.

#ifndef I3_NET_PROTOCOL_H_
#define I3_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/query.h"

namespace i3 {
namespace net {

/// Protocol version spoken by this tree. A version mismatch is a clean
/// decode error, not a best-effort parse.
inline constexpr uint8_t kProtocolVersion = 1;

/// Frame length prefix size in bytes.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Largest acceptable frame payload. Large enough for kMaxK results with
/// room to spare; small enough that a hostile length prefix cannot balloon
/// a connection buffer.
inline constexpr uint32_t kMaxFramePayload = 64 * 1024;

/// Request validation limits (enforced by the decoder, mirrored by the
/// encoder's own argument checks).
inline constexpr uint32_t kMaxTerms = 256;
inline constexpr uint32_t kMaxK = 1024;
inline constexpr uint32_t kMaxErrorMessage = 512;

/// Trace-section limits: a traced response carries at most this many
/// stage spans / annotations, each with a short name. Keeps the section
/// bounded (~6KB worst case) inside kMaxFramePayload.
inline constexpr uint32_t kMaxTraceSpans = 64;
inline constexpr uint32_t kMaxTraceAnnotations = 32;
inline constexpr uint32_t kMaxTraceName = 48;

/// First two payload bytes of a request / response ("I3" / "3I"): lets a
/// receiver reject garbage immediately and keeps the two directions from
/// being confused for one another.
inline constexpr uint16_t kRequestMagic = 0x3349;   // "I3"
inline constexpr uint16_t kResponseMagic = 0x4933;  // "3I"

enum class MessageType : uint8_t {
  /// Top-k spatial keyword search.
  kSearch = 1,
  /// Liveness probe: answered immediately with an empty OK response.
  kPing = 2,
};

/// \brief How the server disposed of a request.
enum class ResponseOutcome : uint8_t {
  /// Served; results valid (possibly degraded, see Response::degraded).
  kOk = 0,
  /// Load-shed by admission control before reaching the index. The client
  /// should back off and retry; the request was never executed.
  kShed = 1,
  /// A clean failure: malformed request, or the index returned an error.
  kError = 2,
};

const char* ResponseOutcomeName(ResponseOutcome o);

/// \brief One parsed request.
struct Request {
  MessageType type = MessageType::kSearch;
  /// Echoed verbatim in the response (client-side request matching).
  uint64_t request_id = 0;
  /// Admission-control principal; buckets are per tenant id.
  uint32_t tenant = 0;
  uint32_t k = 10;
  Semantics semantics = Semantics::kAnd;
  /// Relative per-request budget in milliseconds; 0 = unbounded. The
  /// server converts it to an absolute QueryControl deadline at admission
  /// time, so queue wait counts against the budget.
  uint32_t deadline_ms = 0;
  double x = 0.0;
  double y = 0.0;
  /// Spatial/textual weighting in [0, 1].
  double alpha = 0.5;
  /// Opt out of the server's whole-query result cache (wire flags bit 0):
  /// the request always reaches the index and its response is not cached.
  bool no_cache = false;
  /// "Trace me" (wire flags bit 1): the server stamps a trace id, records
  /// a span timeline across every serving stage the request touches, and
  /// returns the timeline in the response's trace section. Results are
  /// byte-identical to the untraced request (tracing never changes the
  /// answer, only appends the timeline).
  bool trace = false;
  /// All-or-nothing (wire flags bit 2): a response that would come back
  /// degraded (some shards failed with every replica down) is refused
  /// with the failing shard's typed error instead of a partial top-k.
  /// For clients that must not silently miss documents -- a partial
  /// answer is correct for the surviving shards but incomplete, and this
  /// flag says incomplete is worse than failing.
  bool require_complete = false;
  std::vector<TermId> terms;

  /// \brief The library query this request describes. Deadline/cancel
  /// propagation is the caller's job (the server anchors the deadline at
  /// admission, see above); terms are normalized.
  Query ToQuery() const {
    Query q;
    q.location = {x, y};
    q.terms = terms;
    q.k = k;
    q.semantics = semantics;
    q.Normalize();
    return q;
  }
};

/// \brief One stage of a wire-returned span timeline: accumulated time
/// and call count, mirroring obs::TraceStage.
struct WireTraceSpan {
  std::string name;
  uint64_t total_ns = 0;
  uint32_t calls = 0;
};

/// \brief One integer annotation attached to a wire trace (cache_hit,
/// docs_scored, batch_size, ...).
struct WireTraceAnnotation {
  std::string name;
  uint64_t value = 0;
};

/// \brief The span timeline a traced response carries back: the server's
/// 64-bit trace id, its end-to-end wall time, and the per-stage
/// breakdown (admission, queue wait, cache probes, per-shard search,
/// encode). Clients subtract `total_ns` from their own observed latency
/// to attribute the remainder to the network and client stack.
struct WireTrace {
  uint64_t trace_id = 0;
  uint64_t total_ns = 0;
  std::vector<WireTraceSpan> spans;
  std::vector<WireTraceAnnotation> annotations;
};

/// \brief One response.
struct Response {
  ResponseOutcome outcome = ResponseOutcome::kOk;
  uint64_t request_id = 0;
  /// Partial top-k after shard failures (outcome == kOk only); the scores
  /// present are exact but documents of failed shards are absent.
  bool degraded = false;
  /// StatusCode of the failure (outcome == kError only).
  StatusCode code = StatusCode::kOk;
  /// Human-readable failure/shed detail (truncated to kMaxErrorMessage).
  std::string message;
  std::vector<ScoredDoc> results;
  /// Present iff the request set its trace flag (response flags bit 1);
  /// the section rides after the result list so the result encoding is
  /// byte-identical with and without it.
  bool has_trace = false;
  WireTrace trace;
};

/// \brief Appends a length-prefixed request/response frame to `out`.
/// Oversized inputs (too many terms/results, message overflow) are clamped
/// or rejected at the call site by the validation limits above; Encode
/// itself asserts them in debug builds and clamps in release.
void EncodeRequest(const Request& req, std::string* out);
void EncodeResponse(const Response& resp, std::string* out);

/// \brief Decodes one frame *payload* (the bytes after the length prefix).
/// Never reads past `len`. Any violation -- bad magic/version/type, field
/// out of range, short or trailing bytes -- is a clean error Status.
Result<Request> DecodeRequest(const uint8_t* payload, size_t len);
Result<Response> DecodeResponse(const uint8_t* payload, size_t len);

/// \brief Outcome of scanning a connection buffer for the next frame.
enum class FrameStatus {
  /// A whole frame is buffered: payload at [data + 4, data + 4 + len).
  kReady,
  /// The buffer holds a partial header or partial payload; read more.
  kNeedMore,
  /// The length prefix exceeds kMaxFramePayload: protocol violation, the
  /// stream cannot be resynchronized. Respond with an error and close.
  kTooLarge,
};

/// \brief Scans `buf[0, len)` for one frame. On kReady, *payload_len is
/// the payload size (frame total = kFrameHeaderBytes + *payload_len).
FrameStatus NextFrame(const uint8_t* buf, size_t len, uint32_t* payload_len);

/// \brief Order-sensitive checksum over a result list (doc ids and score
/// bits), used by the differential tests and bench_serving to prove wire
/// results byte-identical to direct library calls.
uint64_t ResultChecksum(const std::vector<ScoredDoc>& results);

}  // namespace net
}  // namespace i3

#endif  // I3_NET_PROTOCOL_H_
