#include "net/protocol.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

namespace i3 {
namespace net {

namespace {

/// Little-endian appenders (no struct casts; ABI/endian stable).
void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked read cursor. Every getter either fills its output and
/// advances, or fails permanently; a failed cursor never reads memory.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t len) : data_(data), end_(len) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return end_ - pos_; }

  bool GetU8(uint8_t* v) {
    if (!Need(1)) return false;
    *v = data_[pos_++];
    return true;
  }

  bool GetU16(uint16_t* v) {
    if (!Need(2)) return false;
    *v = static_cast<uint16_t>(data_[pos_]) |
         static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (!Need(4)) return false;
    uint32_t r = 0;
    for (int i = 3; i >= 0; --i) r = r << 8 | data_[pos_ + i];
    pos_ += 4;
    *v = r;
    return true;
  }

  bool GetU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *v = static_cast<uint64_t>(hi) << 32 | lo;
    return true;
  }

  bool GetF64(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool GetBytes(std::string* out, size_t n) {
    if (!Need(n)) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || end_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t pos_ = 0;
  size_t end_;
  bool ok_ = true;
};

Status Malformed(const char* what) {
  return Status::Corruption(std::string("malformed frame: ") + what);
}

/// A weight/score/coordinate from the wire must be a real number --
/// NaN/Inf scores would poison top-k ordering downstream.
bool FiniteF64(double v) { return std::isfinite(v); }

}  // namespace

const char* ResponseOutcomeName(ResponseOutcome o) {
  switch (o) {
    case ResponseOutcome::kOk:
      return "ok";
    case ResponseOutcome::kShed:
      return "shed";
    case ResponseOutcome::kError:
      return "error";
  }
  return "unknown";
}

void EncodeRequest(const Request& req, std::string* out) {
  const size_t num_terms =
      std::min<size_t>(req.terms.size(), kMaxTerms);
  std::string payload;
  payload.reserve(48 + num_terms * 4);
  PutU16(&payload, kRequestMagic);
  PutU8(&payload, kProtocolVersion);
  PutU8(&payload, static_cast<uint8_t>(req.type));
  PutU64(&payload, req.request_id);
  PutU32(&payload, req.tenant);
  PutU32(&payload, req.k);
  PutU8(&payload, req.semantics == Semantics::kAnd ? 0 : 1);
  // Flags byte: bit 0 = no_cache (result-cache opt-out), bit 1 = trace
  // ("trace me": the response carries a span timeline), bit 2 =
  // require_complete (refuse degraded responses with a typed error).
  // Bits 3..7 stay reserved and must be zero.
  PutU8(&payload, static_cast<uint8_t>((req.no_cache ? 1 : 0) |
                                       (req.trace ? 2 : 0) |
                                       (req.require_complete ? 4 : 0)));
  PutU32(&payload, req.deadline_ms);
  PutF64(&payload, req.x);
  PutF64(&payload, req.y);
  PutF64(&payload, req.alpha);
  PutU16(&payload, static_cast<uint16_t>(num_terms));
  for (size_t i = 0; i < num_terms; ++i) PutU32(&payload, req.terms[i]);

  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

namespace {

/// Appends one trace name: length byte + bytes, clamped to kMaxTraceName.
/// Names are never empty on the encode side (an empty name would not
/// decode); callers filter before reaching here.
void PutTraceName(std::string* payload, const std::string& name) {
  const size_t n = std::min<size_t>(name.size(), kMaxTraceName);
  PutU8(payload, static_cast<uint8_t>(n));
  payload->append(name, 0, n);
}

void EncodeTraceSection(const WireTrace& trace, std::string* payload) {
  PutU64(payload, trace.trace_id);
  PutU64(payload, trace.total_ns);
  size_t num_spans = 0;
  for (const WireTraceSpan& s : trace.spans) {
    if (!s.name.empty()) ++num_spans;
    if (num_spans == kMaxTraceSpans) break;
  }
  PutU8(payload, static_cast<uint8_t>(num_spans));
  size_t written = 0;
  for (const WireTraceSpan& s : trace.spans) {
    if (s.name.empty()) continue;
    if (written == num_spans) break;
    ++written;
    PutTraceName(payload, s.name);
    PutU64(payload, s.total_ns);
    PutU32(payload, s.calls);
  }
  size_t num_annotations = 0;
  for (const WireTraceAnnotation& a : trace.annotations) {
    if (!a.name.empty()) ++num_annotations;
    if (num_annotations == kMaxTraceAnnotations) break;
  }
  PutU8(payload, static_cast<uint8_t>(num_annotations));
  written = 0;
  for (const WireTraceAnnotation& a : trace.annotations) {
    if (a.name.empty()) continue;
    if (written == num_annotations) break;
    ++written;
    PutTraceName(payload, a.name);
    PutU64(payload, a.value);
  }
}

}  // namespace

void EncodeResponse(const Response& resp, std::string* out) {
  const size_t num_results =
      std::min<size_t>(resp.results.size(), kMaxK);
  const size_t msg_len =
      std::min<size_t>(resp.message.size(), kMaxErrorMessage);
  std::string payload;
  payload.reserve(20 + msg_len + num_results * 28 +
                  (resp.has_trace ? 256 : 0));
  PutU16(&payload, kResponseMagic);
  PutU8(&payload, kProtocolVersion);
  PutU8(&payload, static_cast<uint8_t>(resp.outcome));
  PutU64(&payload, resp.request_id);
  // Flags byte: bit 0 = degraded partial top-k, bit 1 = trace section
  // present after the result list. Bits 2..7 reserved, must be zero.
  PutU8(&payload, static_cast<uint8_t>((resp.degraded ? 1 : 0) |
                                       (resp.has_trace ? 2 : 0)));
  PutU8(&payload, static_cast<uint8_t>(resp.code));
  PutU16(&payload, static_cast<uint16_t>(msg_len));
  payload.append(resp.message, 0, msg_len);
  PutU16(&payload, static_cast<uint16_t>(num_results));
  for (size_t i = 0; i < num_results; ++i) {
    const ScoredDoc& d = resp.results[i];
    PutU32(&payload, d.doc);
    PutF64(&payload, d.score);
    PutF64(&payload, d.location.x);
    PutF64(&payload, d.location.y);
  }
  if (resp.has_trace) EncodeTraceSection(resp.trace, &payload);

  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

Result<Request> DecodeRequest(const uint8_t* payload, size_t len) {
  if (len > kMaxFramePayload) return Malformed("oversized payload");
  Cursor c(payload, len);
  uint16_t magic = 0;
  uint8_t version = 0, type = 0, semantics = 0, reserved = 0;
  Request req;
  if (!c.GetU16(&magic)) return Malformed("short header");
  if (magic != kRequestMagic) return Malformed("bad request magic");
  if (!c.GetU8(&version)) return Malformed("short header");
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  if (!c.GetU8(&type)) return Malformed("short header");
  if (type != static_cast<uint8_t>(MessageType::kSearch) &&
      type != static_cast<uint8_t>(MessageType::kPing)) {
    return Malformed("unknown message type");
  }
  req.type = static_cast<MessageType>(type);
  uint16_t num_terms = 0;
  if (!c.GetU64(&req.request_id) || !c.GetU32(&req.tenant) ||
      !c.GetU32(&req.k) || !c.GetU8(&semantics) || !c.GetU8(&reserved) ||
      !c.GetU32(&req.deadline_ms) || !c.GetF64(&req.x) || !c.GetF64(&req.y) ||
      !c.GetF64(&req.alpha) || !c.GetU16(&num_terms)) {
    return Malformed("truncated request");
  }
  if (semantics > 1) return Malformed("bad semantics");
  // Flags byte: bit 0 (no_cache), bit 1 (trace), and bit 2
  // (require_complete) are the only defined flags; any other bit is
  // damage, not a feature. Rejecting the rest keeps decode(payload)
  // canonical: whatever decodes re-encodes byte-identically (asserted by
  // the protocol fuzz tests).
  if ((reserved & ~uint8_t{7}) != 0) return Malformed("reserved flags set");
  req.no_cache = (reserved & 1) != 0;
  req.trace = (reserved & 2) != 0;
  req.require_complete = (reserved & 4) != 0;
  req.semantics = semantics == 0 ? Semantics::kAnd : Semantics::kOr;
  if (req.type == MessageType::kSearch) {
    if (req.k == 0 || req.k > kMaxK) return Malformed("k out of range");
    if (num_terms == 0 || num_terms > kMaxTerms) {
      return Malformed("term count out of range");
    }
    if (!FiniteF64(req.x) || !FiniteF64(req.y)) {
      return Malformed("non-finite location");
    }
    if (!FiniteF64(req.alpha) || req.alpha < 0.0 || req.alpha > 1.0) {
      return Malformed("alpha out of range");
    }
  } else if (num_terms != 0) {
    return Malformed("ping carries terms");
  }
  req.terms.reserve(num_terms);
  for (uint16_t i = 0; i < num_terms; ++i) {
    uint32_t t = 0;
    if (!c.GetU32(&t)) return Malformed("truncated term list");
    req.terms.push_back(t);
  }
  if (c.remaining() != 0) return Malformed("trailing request bytes");
  return req;
}

Result<Response> DecodeResponse(const uint8_t* payload, size_t len) {
  if (len > kMaxFramePayload) return Malformed("oversized payload");
  Cursor c(payload, len);
  uint16_t magic = 0;
  uint8_t version = 0, outcome = 0, degraded = 0, code = 0;
  Response resp;
  if (!c.GetU16(&magic)) return Malformed("short header");
  if (magic != kResponseMagic) return Malformed("bad response magic");
  if (!c.GetU8(&version)) return Malformed("short header");
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  if (!c.GetU8(&outcome)) return Malformed("short header");
  if (outcome > static_cast<uint8_t>(ResponseOutcome::kError)) {
    return Malformed("unknown outcome");
  }
  resp.outcome = static_cast<ResponseOutcome>(outcome);
  uint16_t msg_len = 0;
  if (!c.GetU64(&resp.request_id) || !c.GetU8(&degraded) ||
      !c.GetU8(&code) || !c.GetU16(&msg_len)) {
    return Malformed("truncated response");
  }
  // Response flags byte: bit 0 = degraded, bit 1 = trace section follows
  // the result list. Any other bit is damage.
  if ((degraded & ~uint8_t{3}) != 0) return Malformed("bad response flags");
  resp.degraded = (degraded & 1) != 0;
  resp.has_trace = (degraded & 2) != 0;
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Malformed("unknown status code");
  }
  resp.code = static_cast<StatusCode>(code);
  if (msg_len > kMaxErrorMessage) return Malformed("oversized message");
  if (!c.GetBytes(&resp.message, msg_len)) {
    return Malformed("truncated message");
  }
  uint16_t num_results = 0;
  if (!c.GetU16(&num_results)) return Malformed("truncated response");
  if (num_results > kMaxK) return Malformed("result count out of range");
  resp.results.reserve(num_results);
  for (uint16_t i = 0; i < num_results; ++i) {
    ScoredDoc d;
    if (!c.GetU32(&d.doc) || !c.GetF64(&d.score) ||
        !c.GetF64(&d.location.x) || !c.GetF64(&d.location.y)) {
      return Malformed("truncated result list");
    }
    if (!FiniteF64(d.score)) return Malformed("non-finite score");
    resp.results.push_back(d);
  }
  if (resp.has_trace) {
    uint8_t num_spans = 0, num_annotations = 0;
    if (!c.GetU64(&resp.trace.trace_id) || !c.GetU64(&resp.trace.total_ns) ||
        !c.GetU8(&num_spans)) {
      return Malformed("truncated trace section");
    }
    if (num_spans > kMaxTraceSpans) return Malformed("trace span overflow");
    resp.trace.spans.reserve(num_spans);
    for (uint8_t i = 0; i < num_spans; ++i) {
      WireTraceSpan s;
      uint8_t name_len = 0;
      if (!c.GetU8(&name_len)) return Malformed("truncated trace span");
      if (name_len == 0 || name_len > kMaxTraceName) {
        return Malformed("trace span name out of range");
      }
      if (!c.GetBytes(&s.name, name_len) || !c.GetU64(&s.total_ns) ||
          !c.GetU32(&s.calls)) {
        return Malformed("truncated trace span");
      }
      resp.trace.spans.push_back(std::move(s));
    }
    if (!c.GetU8(&num_annotations))
      return Malformed("truncated trace section");
    if (num_annotations > kMaxTraceAnnotations) {
      return Malformed("trace annotation overflow");
    }
    resp.trace.annotations.reserve(num_annotations);
    for (uint8_t i = 0; i < num_annotations; ++i) {
      WireTraceAnnotation a;
      uint8_t name_len = 0;
      if (!c.GetU8(&name_len)) return Malformed("truncated trace annotation");
      if (name_len == 0 || name_len > kMaxTraceName) {
        return Malformed("trace annotation name out of range");
      }
      if (!c.GetBytes(&a.name, name_len) || !c.GetU64(&a.value)) {
        return Malformed("truncated trace annotation");
      }
      resp.trace.annotations.push_back(std::move(a));
    }
  }
  if (c.remaining() != 0) return Malformed("trailing response bytes");
  return resp;
}

FrameStatus NextFrame(const uint8_t* buf, size_t len, uint32_t* payload_len) {
  if (len < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  uint32_t n = 0;
  for (int i = 3; i >= 0; --i) n = n << 8 | buf[i];
  if (n > kMaxFramePayload) return FrameStatus::kTooLarge;
  *payload_len = n;
  if (len - kFrameHeaderBytes < n) return FrameStatus::kNeedMore;
  return FrameStatus::kReady;
}

uint64_t ResultChecksum(const std::vector<ScoredDoc>& results) {
  // FNV-1a over (rank, doc, score bits): order-sensitive, so a reordered
  // or truncated top-k list produces a different checksum.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= v >> (i * 8) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (size_t i = 0; i < results.size(); ++i) {
    uint64_t score_bits;
    std::memcpy(&score_bits, &results[i].score, sizeof(score_bits));
    mix(i);
    mix(results[i].doc);
    mix(score_bits);
  }
  return h;
}

}  // namespace net
}  // namespace i3
