#include "net/introspection.h"

#include <cstdio>
#include <sstream>

namespace i3 {
namespace net {

namespace {

void AppendEscaped(std::ostringstream* os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\t':
        *os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
}

/// Counter/gauge value by name (no labels), 0 when absent.
double MetricValue(const obs::MetricsSnapshot& snapshot,
                   const std::string& name) {
  const obs::MetricSample* s = snapshot.Find(name);
  return s == nullptr ? 0.0 : s->value;
}

void AppendCacheLevel(std::ostringstream* os, const char* level,
                      double hits, double misses, double evictions,
                      const char* occupancy_key, double occupancy) {
  const double lookups = hits + misses;
  *os << "{\"level\": \"" << level << "\", \"hits\": "
      << static_cast<uint64_t>(hits)
      << ", \"misses\": " << static_cast<uint64_t>(misses)
      << ", \"hit_ratio\": " << (lookups > 0 ? hits / lookups : 0.0)
      << ", \"evictions\": " << static_cast<uint64_t>(evictions) << ", \""
      << occupancy_key << "\": " << static_cast<uint64_t>(occupancy) << "}";
}

}  // namespace

std::string StatuszJson(const ServerStatus& s) {
  std::ostringstream os;
  os << "{\n  \"build\": {\"compiler\": \"";
  AppendEscaped(&os, s.build_compiler);
  os << "\", \"mode\": \"" << s.build_mode
     << "\", \"protocol_version\": " << s.protocol_version << "},\n"
     << "  \"uptime_s\": " << s.uptime_s << ",\n"
     << "  \"config\": {\"shards\": " << s.shards
     << ", \"worker_threads\": " << s.worker_threads
     << ", \"batch_max\": " << s.batch_max
     << ", \"max_queue\": " << s.max_queue
     << ", \"max_connections\": " << s.max_connections
     << ", \"result_cache_entries\": " << s.result_cache_entries
     << ", \"slow_threshold_us\": " << s.slow_threshold_us
     << ", \"slo_window_seconds\": " << s.slo_window_seconds << "},\n"
     << "  \"live\": {\"documents\": " << s.documents
     << ", \"open_connections\": " << s.open_connections
     << ", \"queue_depth\": " << s.queue_depth
     << ", \"requests_ok\": " << s.requests_ok
     << ", \"requests_shed\": " << s.requests_shed
     << ", \"requests_error\": " << s.requests_error << "},\n"
     << "  \"replication\": {\"replicated_shards\": " << s.replicated_shards
     << ", \"failovers\": " << s.failovers
     << ", \"recoveries\": " << s.recoveries
     << ", \"scrub_pages_healed\": " << s.scrub_pages_healed << "},\n"
     << "  \"slo\": " << s.slo_json << "\n}";
  return os.str();
}

std::string TracezJson(double sample_rate,
                       const std::vector<obs::QueryTrace>& recent,
                       const obs::SlowQueryLog& slow_log) {
  std::ostringstream os;
  os << "{\n  \"sample_rate\": " << sample_rate << ",\n  \"recent\": "
     << obs::TracesToJson(recent)
     << ",\n  \"slow_log\": " << obs::SlowLogToJson(slow_log) << "\n}";
  return os.str();
}

std::string CachezJson(const obs::MetricsSnapshot& snapshot,
                       const std::vector<size_t>& result_cache_stripes) {
  std::ostringstream os;
  os << "{\n  \"levels\": [\n    ";
  AppendCacheLevel(&os, "buffer_pool",
                   MetricValue(snapshot, "i3_buffer_pool_hits_total"),
                   MetricValue(snapshot, "i3_buffer_pool_misses_total"),
                   MetricValue(snapshot, "i3_buffer_pool_evictions_total"),
                   "stripes",
                   MetricValue(snapshot, "i3_buffer_pool_stripes"));
  os << ",\n    ";
  AppendCacheLevel(&os, "cell_cache",
                   MetricValue(snapshot, "i3_cell_cache_hits_total"),
                   MetricValue(snapshot, "i3_cell_cache_misses_total"),
                   MetricValue(snapshot, "i3_cell_cache_evictions_total"),
                   "resident_bytes",
                   MetricValue(snapshot, "i3_cell_cache_bytes"));
  os << ",\n    ";
  AppendCacheLevel(&os, "result_cache",
                   MetricValue(snapshot, "i3_result_cache_hits_total"),
                   MetricValue(snapshot, "i3_result_cache_misses_total"),
                   MetricValue(snapshot, "i3_result_cache_evictions_total"),
                   "entries",
                   MetricValue(snapshot, "i3_result_cache_entries"));
  os << "\n  ],\n  \"result_cache_bypass\": "
     << static_cast<uint64_t>(
            MetricValue(snapshot, "i3_result_cache_bypass_total"))
     << ",\n  \"result_cache_stripe_entries\": [";
  for (size_t i = 0; i < result_cache_stripes.size(); ++i) {
    if (i != 0) os << ", ";
    os << result_cache_stripes[i];
  }
  os << "]\n}";
  return os.str();
}

std::string HealthzJson(bool ok, uint64_t uptime_s,
                        const std::vector<ReplicaSetStatus>& shards) {
  std::ostringstream os;
  os << "{\"status\": \"" << (ok ? "ok" : "stopping")
     << "\", \"uptime_s\": " << uptime_s << ", \"shards\": [";
  for (size_t i = 0; i < shards.size(); ++i) {
    const ReplicaSetStatus& s = shards[i];
    if (i != 0) os << ", ";
    os << "{\"shard\": " << s.shard
       << ", \"replicated\": " << (s.replicated ? "true" : "false")
       << ", \"log_head\": " << s.log_head
       << ", \"failovers\": " << s.failovers
       << ", \"recoveries\": " << s.recoveries
       << ", \"scrub\": {\"pages_verified\": " << s.scrub_pages_verified
       << ", \"corrupt_found\": " << s.scrub_corrupt_found
       << ", \"pages_healed\": " << s.scrub_pages_healed << "}"
       << ", \"replicas\": [";
    for (size_t r = 0; r < s.replicas.size(); ++r) {
      const ReplicaStatus& rep = s.replicas[r];
      if (r != 0) os << ", ";
      os << "{\"replica\": " << r << ", \"state\": \""
         << ReplicaStateName(rep.state) << "\", \"watermark\": "
         << rep.watermark << ", \"lag\": " << rep.lag
         << ", \"quarantined_pages\": " << rep.quarantined_pages
         << ", \"read_failures\": " << rep.read_failures
         << ", \"write_failures\": " << rep.write_failures << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string HealthzJson(bool ok, uint64_t uptime_s) {
  return HealthzJson(ok, uptime_s, {});
}

std::string HttpOk(const std::string& content_type, const std::string& body) {
  return "HTTP/1.1 200 OK\r\nContent-Type: " + content_type +
         "\r\nConnection: close\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

std::string HttpNotFound() {
  static constexpr char kBody[] = "not found\n";
  return std::string("HTTP/1.1 404 Not Found\r\nContent-Type: text/plain"
                     "\r\nConnection: close\r\nContent-Length: ") +
         std::to_string(sizeof(kBody) - 1) + "\r\n\r\n" + kBody;
}

}  // namespace net
}  // namespace i3
