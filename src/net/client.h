// Blocking client for the serving protocol: used by tools/loadgen, the
// loopback test suites, and bench_serving. Deliberately simple -- one
// in-flight pipeline per connection, synchronous syscalls -- because its
// jobs are correctness checking and load generation, not throughput
// records.
//
// The fuzz/property tests also drive the raw edges: SendBytes writes
// arbitrary (possibly damaged) bytes, write_chunk simulates slow clients
// dribbling a frame across many packets, and ReadResponse cleanly reports
// a server-side close.

#ifndef I3_NET_CLIENT_H_
#define I3_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/protocol.h"

namespace i3 {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Extra connect attempts (the CI integration test races server
  /// startup), retry_delay_ms apart.
  uint32_t connect_retries = 0;
  uint32_t retry_delay_ms = 50;
  /// When > 0, writes go out in chunks of at most this many bytes with
  /// write_chunk_delay_us between them -- a slow/partial-write client.
  size_t write_chunk = 0;
  uint32_t write_chunk_delay_us = 0;
  /// SO_RCVTIMEO in milliseconds; 0 blocks forever. Reads that time out
  /// return Status::DeadlineExceeded.
  uint32_t recv_timeout_ms = 0;
};

/// \brief One blocking protocol connection.
class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(const ClientOptions& opts);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// \brief Encodes and writes one request frame (honoring write_chunk).
  Status Send(const Request& req);

  /// \brief Writes raw bytes verbatim -- the fuzz tests' entry point for
  /// damaged frames and hostile length prefixes.
  Status SendBytes(const void* data, size_t len);

  /// \brief Blocks for the next response frame. A clean server-side
  /// close is IOError("connection closed by server"); an undecodable
  /// response is Corruption.
  Result<Response> ReadResponse();

  /// \brief Send + ReadResponse. With pipelining in flight, match ids
  /// yourself instead.
  Result<Response> Call(const Request& req);

  /// \brief Round-trips a ping.
  Status Ping();

  /// \brief Half-close (shutdown write side); reads still drain.
  void CloseWrite();

  int fd() const { return fd_; }

 private:
  explicit Client(int fd, ClientOptions opts)
      : fd_(fd), opts_(std::move(opts)) {}

  int fd_;
  ClientOptions opts_;
  std::string read_buf_;
};

/// \brief One-shot HTTP GET against the server's metrics side channel;
/// returns the raw response (status line + headers + body).
Result<std::string> HttpGet(const std::string& host, uint16_t port,
                            const std::string& path);

}  // namespace net
}  // namespace i3

#endif  // I3_NET_CLIENT_H_
