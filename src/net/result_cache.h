// Whole-query result cache: level 3 of the cache hierarchy (DESIGN.md
// §13).
//
// PR 7 made protocol decode canonical -- whatever decodes re-encodes
// byte-identically -- so the frame IS the key: a request's canonical
// re-encoding with the identity fields (request_id, tenant, deadline_ms,
// no_cache) zeroed names exactly the search it performs (terms, k, alpha,
// semantics, location). Zeroing the deadline is sound because only
// complete, non-degraded responses are ever cached, and a complete top-k
// is deadline-independent.
//
// Invalidation is by index generation: ShardedIndex bumps a monotonic
// counter after every Insert/Delete/Update, entries are tagged with the
// generation current when their search *started*, and a lookup serves an
// entry only while its tag equals the index's current generation -- one
// write anywhere invalidates everything, which is deliberately coarse
// (cheap, race-free, and writes are rare next to the repeated-query read
// traffic this cache exists for).
//
// Bounded by entry count with the same striped SIEVE/CLOCK policy as the
// other levels; requests carrying the wire no_cache flag bypass it.

#ifndef I3_NET_RESULT_CACHE_H_
#define I3_NET_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "obs/metrics.h"

namespace i3 {
namespace net {

/// \brief Options controlling ResultCache behaviour.
struct ResultCacheOptions {
  /// Maximum cached responses across all stripes; 0 disables the cache.
  size_t capacity_entries = 0;
  /// Lock stripes; 0 picks 8.
  size_t stripes = 0;
};

/// \brief Striped, generation-validated cache of complete search
/// responses, keyed by canonical request bytes. Thread-safe.
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options);

  bool enabled() const { return options_.capacity_entries > 0; }

  /// Canonical cache key of `req`: its re-encoded frame with the
  /// search-irrelevant identity fields zeroed (see file comment).
  static std::string KeyOf(const Request& req);

  /// \brief Serves the entry at `key` into `out` (outcome kOk, results,
  /// degraded=false; request_id is the caller's to fill) iff it is
  /// resident and tagged with `generation`. A stale entry is dropped on
  /// the spot. Returns hit/miss; counts the corresponding metric.
  bool Lookup(const std::string& key, uint64_t generation, Response* out);

  /// \brief Caches `results` under (`key`, `generation`), evicting SIEVE
  /// victims to stay within the entry bound. Only complete (non-degraded,
  /// ok) results may be inserted -- the caller enforces that.
  void Insert(const std::string& key, uint64_t generation,
              const std::vector<ScoredDoc>& results);

  /// Counts one bypassed (no_cache) request.
  void CountBypass() { bypass_metric_->Increment(1); }

  /// Drops every entry.
  void Clear();

  size_t entry_count() const;

  /// Live entries per stripe (the balance view /cachez renders).
  std::vector<size_t> StripeOccupancy() const;

 private:
  struct Entry {
    std::string key;
    uint64_t generation = 0;
    bool live = false;
    mutable std::atomic<uint8_t> visited{0};
    std::vector<ScoredDoc> results;
  };

  struct Stripe {
    mutable std::mutex mutex;
    std::deque<Entry> entries;  // stable addresses; recycled via free list
    std::vector<uint32_t> free;
    std::unordered_map<std::string, uint32_t> index;
    size_t hand = 0;
    size_t capacity = 0;
  };

  Stripe& StripeOf(const std::string& key) {
    return *stripes_[std::hash<std::string>{}(key) % stripes_.size()];
  }

  /// Evicts one SIEVE victim; false when the stripe is empty. Guarded by
  /// s.mutex.
  bool EvictOne(Stripe& s);
  void EraseEntry(Stripe& s, uint32_t idx);

  const ResultCacheOptions options_;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  obs::Counter* hits_metric_;
  obs::Counter* misses_metric_;
  obs::Counter* bypass_metric_;
  obs::Counter* evictions_metric_;
  obs::Counter* insertions_metric_;
  obs::Gauge* entries_metric_;
};

}  // namespace net
}  // namespace i3

#endif  // I3_NET_RESULT_CACHE_H_
