// Live introspection for the serving front end: the JSON bodies behind
// the HTTP side channel's /statusz, /tracez, /cachez, and /healthz
// endpoints (server.cc routes the paths; these builders render state).
//
// Everything here is pull-model and read-only: a handler samples live
// state (gauges, the trace ring, the slow-query log, cache counters)
// into plain structs/strings and formats them; nothing touches a query
// hot path. All four bodies are strict JSON so dashboards and the CI
// smoke (`curl ... | python3 -m json.tool`) can parse them unmodified.

#ifndef I3_NET_INTROSPECTION_H_
#define I3_NET_INTROSPECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/replica_set.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/trace.h"

namespace i3 {
namespace net {

/// \brief Everything /statusz renders: build identity, static serving
/// configuration, and live gauges, sampled by the server at request time.
struct ServerStatus {
  std::string build_compiler;  ///< e.g. __VERSION__
  std::string build_mode;      ///< "release" / "debug"
  uint32_t protocol_version = 0;

  uint32_t shards = 0;
  uint32_t worker_threads = 0;
  uint32_t batch_max = 0;
  uint64_t max_queue = 0;
  uint64_t max_connections = 0;
  uint64_t result_cache_entries = 0;
  uint64_t slow_threshold_us = 0;
  uint32_t slo_window_seconds = 0;

  uint64_t uptime_s = 0;
  uint64_t documents = 0;
  uint64_t open_connections = 0;
  int64_t queue_depth = 0;
  uint64_t requests_ok = 0;
  uint64_t requests_shed = 0;
  uint64_t requests_error = 0;

  /// Replication summary (all zero when no shard is replicated); the
  /// per-replica detail lives on /healthz.
  uint32_t replicated_shards = 0;
  uint64_t failovers = 0;
  uint64_t recoveries = 0;
  uint64_t scrub_pages_healed = 0;

  /// Pre-rendered per-tenant SLO windows (SloTracker::ToJson), spliced
  /// in verbatim as the "slo" member.
  std::string slo_json;
};

std::string StatuszJson(const ServerStatus& status);

/// \brief /tracez: the sampled-trace ring plus the slow-query log.
std::string TracezJson(double sample_rate,
                       const std::vector<obs::QueryTrace>& recent,
                       const obs::SlowQueryLog& slow_log);

/// \brief /cachez: per-level hit/miss/ratio + occupancy from the metrics
/// snapshot, and the result cache's per-stripe entry counts (balance).
std::string CachezJson(const obs::MetricsSnapshot& snapshot,
                       const std::vector<size_t>& result_cache_stripes);

/// \brief /healthz. Beyond ok/stopping, renders per-shard replica health
/// for every replicated shard (ShardedIndex::ShardReplicaStatuses):
/// replica states and watermarks/lag, quarantined-page counts, scrub
/// progress, and failover/recovery totals -- strict JSON, so probes can
/// alert on "any replica not healthy" without scraping /metrics.
std::string HealthzJson(bool ok, uint64_t uptime_s,
                        const std::vector<ReplicaSetStatus>& shards);

/// Unreplicated form (identical to passing no shards).
std::string HealthzJson(bool ok, uint64_t uptime_s);

/// \brief One-shot HTTP/1.1 responses with the conformance headers every
/// side-channel reply carries: Content-Type, exact Content-Length, and
/// Connection: close (the server closes after the flush).
std::string HttpOk(const std::string& content_type, const std::string& body);
std::string HttpNotFound();

}  // namespace net
}  // namespace i3

#endif  // I3_NET_INTROSPECTION_H_
