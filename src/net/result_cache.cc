#include "net/result_cache.h"

namespace i3 {
namespace net {

ResultCache::ResultCache(ResultCacheOptions options) : options_(options) {
  size_t n = options_.stripes != 0 ? options_.stripes : 8;
  if (options_.capacity_entries == 0) n = 1;
  n = std::min(n, std::max<size_t>(1, options_.capacity_entries));
  stripes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Stripe>();
    s->capacity =
        options_.capacity_entries / n + (i < options_.capacity_entries % n);
    stripes_.push_back(std::move(s));
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  hits_metric_ =
      reg.GetCounter("i3_result_cache_hits_total",
                     "Search requests answered from cached responses.");
  misses_metric_ =
      reg.GetCounter("i3_result_cache_misses_total",
                     "Cacheable search requests that reached the index.");
  bypass_metric_ =
      reg.GetCounter("i3_result_cache_bypass_total",
                     "Search requests that opted out via the wire "
                     "no_cache flag.");
  evictions_metric_ =
      reg.GetCounter("i3_result_cache_evictions_total",
                     "Cached responses dropped (SIEVE victim, stale "
                     "generation, replacement, or Clear).");
  insertions_metric_ = reg.GetCounter(
      "i3_result_cache_insertions_total",
      "Complete responses admitted after a cacheable miss.");
  entries_metric_ = reg.GetGauge(
      "i3_result_cache_entries",
      "Resident cached responses across all constructed caches.");
}

std::string ResultCache::KeyOf(const Request& req) {
  // Canonical re-encode with the fields that do not affect the result
  // zeroed. request_id/tenant are pure identity; deadline_ms is sound to
  // drop because only complete responses are cached (a complete top-k is
  // the same under any deadline that lets it finish); no_cache is always
  // zero here by construction (bypassing requests never reach KeyOf).
  // trace is observability, not identity: a traced request shares the
  // cache line of its untraced twin (the hit shows up in its timeline).
  // require_complete is a refusal policy, not identity: only complete
  // responses are cached, so a cached answer satisfies both settings.
  Request canon = req;
  canon.request_id = 0;
  canon.tenant = 0;
  canon.deadline_ms = 0;
  canon.no_cache = false;
  canon.trace = false;
  canon.require_complete = false;
  std::string key;
  EncodeRequest(canon, &key);
  return key;
}

bool ResultCache::Lookup(const std::string& key, uint64_t generation,
                         Response* out) {
  if (!enabled()) return false;
  Stripe& s = StripeOf(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.index.find(key);
  if (it != s.index.end()) {
    Entry& e = s.entries[it->second];
    if (e.generation == generation) {
      e.visited.store(1, std::memory_order_relaxed);
      out->outcome = ResponseOutcome::kOk;
      out->degraded = false;
      out->code = StatusCode::kOk;
      out->message.clear();
      out->results = e.results;
      hits_metric_->Increment(1);
      return true;
    }
    // Stale: some write completed since this entry's search began.
    EraseEntry(s, it->second);
    evictions_metric_->Increment(1);
  }
  misses_metric_->Increment(1);
  return false;
}

void ResultCache::Insert(const std::string& key, uint64_t generation,
                         const std::vector<ScoredDoc>& results) {
  if (!enabled()) return;
  Stripe& s = StripeOf(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.index.find(key);
  if (it != s.index.end()) {
    // Keep exactly one entry per key (racing workers, or a stale entry
    // another generation left behind).
    EraseEntry(s, it->second);
    evictions_metric_->Increment(1);
  }
  while (s.index.size() >= s.capacity) {
    if (!EvictOne(s)) return;
  }
  uint32_t idx;
  if (!s.free.empty()) {
    idx = s.free.back();
    s.free.pop_back();
  } else {
    s.entries.emplace_back();
    idx = static_cast<uint32_t>(s.entries.size() - 1);
  }
  Entry& e = s.entries[idx];
  e.key = key;
  e.generation = generation;
  e.live = true;
  e.visited.store(0, std::memory_order_relaxed);  // SIEVE: enter unvisited
  e.results = results;
  s.index[key] = idx;
  entries_metric_->Add(1);
  insertions_metric_->Increment(1);
}

void ResultCache::EraseEntry(Stripe& s, uint32_t idx) {
  Entry& e = s.entries[idx];
  s.index.erase(e.key);
  e.live = false;
  e.visited.store(0, std::memory_order_relaxed);
  e.key.clear();
  e.results.clear();
  s.free.push_back(idx);
  entries_metric_->Sub(1);
}

bool ResultCache::EvictOne(Stripe& s) {
  const size_t n = s.entries.size();
  if (s.index.empty()) return false;
  for (size_t step = 0; step < 2 * n; ++step) {
    Entry& e = s.entries[s.hand];
    const uint32_t idx = static_cast<uint32_t>(s.hand);
    s.hand = (s.hand + 1) % n;
    if (!e.live) continue;
    if (e.visited.load(std::memory_order_relaxed) != 0) {
      e.visited.store(0, std::memory_order_relaxed);
      continue;
    }
    EraseEntry(s, idx);
    evictions_metric_->Increment(1);
    return true;
  }
  return false;
}

void ResultCache::Clear() {
  for (auto& sp : stripes_) {
    Stripe& s = *sp;
    std::lock_guard<std::mutex> lock(s.mutex);
    for (size_t i = 0; i < s.entries.size(); ++i) {
      if (!s.entries[i].live) continue;
      EraseEntry(s, static_cast<uint32_t>(i));
      evictions_metric_->Increment(1);
    }
  }
}

size_t ResultCache::entry_count() const {
  size_t n = 0;
  for (const auto& sp : stripes_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    n += sp->index.size();
  }
  return n;
}

std::vector<size_t> ResultCache::StripeOccupancy() const {
  std::vector<size_t> out;
  out.reserve(stripes_.size());
  for (const auto& sp : stripes_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    out.push_back(sp->index.size());
  }
  return out;
}

}  // namespace net
}  // namespace i3
