#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/introspection.h"
#include "obs/clock.h"
#include "obs/export.h"

namespace i3 {
namespace net {

namespace {

/// epoll user-data tags for the two non-connection descriptors;
/// connection ids start above them.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnId = 2;

constexpr size_t kReadChunk = 4096;
/// An HTTP request line + headers larger than this is not /metrics.
constexpr size_t kMaxHttpHeader = 8192;

/// Best-effort request id of an undecodable-but-framed payload, so the
/// error response still matches the client's outstanding request.
uint64_t PeekRequestId(const uint8_t* payload, size_t len) {
  if (len < 12) return 0;
  const uint16_t magic = static_cast<uint16_t>(payload[0]) |
                         static_cast<uint16_t>(payload[1]) << 8;
  if (magic != kRequestMagic) return 0;
  uint64_t id = 0;
  for (int i = 7; i >= 0; --i) id = id << 8 | payload[4 + i];
  return id;
}

Response ErrorResponse(uint64_t request_id, const Status& st) {
  Response resp;
  resp.outcome = ResponseOutcome::kError;
  resp.request_id = request_id;
  resp.code = st.code();
  resp.message = st.message().substr(0, kMaxErrorMessage);
  return resp;
}

/// SplitMix64 finalizer over the trace-id sequence: ids look random on
/// the wire (no cross-request guessing of "the next id") while staying a
/// bijection of a plain counter -- no RNG state, no collisions.
uint64_t MixTraceId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string HexEncode(const std::string& bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

}  // namespace

/// Loop-thread-only per-connection state.
struct Server::Connection {
  uint64_t id = 0;
  int fd = -1;
  /// Unconsumed inbound bytes (partial frames accumulate here).
  std::vector<uint8_t> read_buf;
  /// Encoded-but-unsent outbound bytes.
  std::string write_buf;
  size_t write_pos = 0;
  /// Protocol sniffed from the first bytes: binary frames or one-shot
  /// HTTP (metrics scrape).
  enum class Mode { kUnknown, kBinary, kHttp } mode = Mode::kUnknown;
  /// Set when the connection must close once write_buf drains.
  bool close_after_flush = false;
  /// Whether EPOLLOUT is currently armed.
  bool want_write = false;
};

Server::Server(ShardedIndex* index, ServerOptions options)
    : index_(index),
      options_(std::move(options)),
      limiter_(options_.default_limit),
      result_cache_(ResultCacheOptions{options_.result_cache_entries, 0}),
      slow_log_(obs::SlowQueryLog::Options{options_.slow_log_ring,
                                           options_.slow_log_top,
                                           options_.slow_threshold_us}),
      slo_(obs::SloTracker::Options{options_.slo_window_seconds,
                                    options_.slo_max_tenants}) {
  for (const auto& [tenant, limit] : options_.tenant_limits) {
    limiter_.SetLimit(tenant, limit);
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  connections_gauge_ =
      reg.GetGauge("i3_net_connections", "Open client connections.");
  queue_depth_gauge_ = reg.GetGauge(
      "i3_net_queue_depth", "Admitted requests waiting for a worker.");
  shed_metric_ = reg.GetCounter(
      "i3_requests_shed_total",
      "Requests rejected by admission control (token bucket or queue "
      "bound) before reaching the index.");
  protocol_errors_metric_ = reg.GetCounter(
      "i3_net_protocol_errors_total",
      "Frames rejected as malformed, oversized, or desynchronized.");
  degraded_metric_ = reg.GetCounter(
      "i3_net_degraded_responses_total",
      "OK responses flagged degraded (partial top-k after shard "
      "failures).");
  const char* outcomes[3] = {"ok", "shed", "error"};
  for (int i = 0; i < 3; ++i) {
    requests_metric_[i] =
        reg.GetCounter("i3_net_requests_total", "Requests by disposition.",
                       {{"outcome", outcomes[i]}});
    latency_us_[i] = reg.GetHistogram(
        "i3_request_latency_us",
        "Wire-request latency from admission to response enqueue.",
        {{"outcome", outcomes[i]}});
  }
  batch_size_ = reg.GetHistogram(
      "i3_net_batch_size", "Requests answered per SearchBatch call.");
  traced_requests_metric_ = reg.GetCounter(
      "i3_net_traced_requests_total",
      "Requests that carried the wire trace flag (span timeline "
      "returned in-band).");
  slow_queries_metric_ = reg.GetCounter(
      "i3_slow_queries_total",
      "Requests captured by the slow-query log (over the latency "
      "threshold or among the rolling slowest).");
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load()) return Status::InvalidArgument("already running");
  if (index_ == nullptr) return Status::InvalidArgument("null index");
  if (options_.worker_threads == 0) {
    return Status::InvalidArgument("worker_threads must be >= 1");
  }
  if (options_.batch_max == 0) {
    return Status::InvalidArgument("batch_max must be >= 1");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::IOError("socket: " + std::string(
                                                 std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    Stop();
    return Status::InvalidArgument("bad host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Status::IOError("bind: " +
                                      std::string(std::strerror(errno)));
    Stop();
    return st;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status st = Status::IOError("listen: " +
                                      std::string(std::strerror(errno)));
    Stop();
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return Status::IOError("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stopping_.store(false);
  start_ns_ = obs::NowNanos();
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { RunLoop(); });
  workers_.reserve(options_.worker_threads);
  for (uint32_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { RunWorker(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!stopping_.exchange(true)) {
    // Final pull-model refresh: an embedding process that snapshots the
    // registry after Stop() still sees current SLO windows.
    slo_.ExportMetrics(obs::NowNanos());
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      // Wake every worker so they observe stopping_.
    }
    queue_cv_.notify_all();
    if (wake_fd_ >= 0) {
      const uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    }
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop closed every connection on exit; tear down the listener and
  // loop descriptors here so a failed Start() can also call Stop().
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.clear();
  }
  queue_depth_gauge_->Set(0);
  running_.store(false, std::memory_order_release);
}

void Server::RunLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        AcceptAll();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        DrainOutbox();
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;
      Connection* conn = it->second.get();
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        HandleReadable(conn);
        if (conns_.find(tag) == conns_.end()) continue;  // closed above
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
    }
    // Responses may have been posted while epoll_wait slept between
    // eventfd notifications; drain opportunistically.
    DrainOutbox();
  }
  // Shutdown: close every connection (pending responses are dropped; the
  // peers see a clean close).
  std::vector<Connection*> open;
  open.reserve(conns_.size());
  for (auto& [id, conn] : conns_) open.push_back(conn.get());
  for (Connection* conn : open) CloseConnection(conn);
}

void Server::AcceptAll() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; epoll will re-arm
    if (conns_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    connections_gauge_->Add(1);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::HandleReadable(Connection* conn) {
  uint8_t chunk[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->read_buf.insert(conn->read_buf.end(), chunk, chunk + n);
      if (n < static_cast<ssize_t>(sizeof(chunk))) break;
      continue;
    }
    if (n == 0) {  // orderly peer close
      CloseConnection(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn);
    return;
  }
  if (conn->read_buf.empty()) return;
  if (conn->mode == Connection::Mode::kUnknown) {
    // Sniff once: an HTTP metrics scrape starts with "GET "; anything
    // else is the binary protocol (whose length prefix can never spell
    // ASCII "GET " -- that value exceeds kMaxFramePayload).
    if (conn->read_buf.size() < 4) return;
    conn->mode = std::memcmp(conn->read_buf.data(), "GET ", 4) == 0
                     ? Connection::Mode::kHttp
                     : Connection::Mode::kBinary;
  }
  const bool keep = conn->mode == Connection::Mode::kHttp
                        ? ConsumeHttp(conn)
                        : ConsumeFrames(conn);
  // A protocol violation (or a one-shot HTTP exchange) closes after any
  // queued response drains. FlushWrites may free conn, so it is the last
  // thing this handler touches.
  if (!keep) conn->close_after_flush = true;
  FlushWrites(conn);
}

void Server::HandleWritable(Connection* conn) { FlushWrites(conn); }

bool Server::ConsumeFrames(Connection* conn) {
  size_t consumed = 0;
  const uint64_t arrival_ns = obs::NowNanos();
  while (true) {
    const uint8_t* base = conn->read_buf.data() + consumed;
    const size_t avail = conn->read_buf.size() - consumed;
    uint32_t payload_len = 0;
    const FrameStatus fs = NextFrame(base, avail, &payload_len);
    if (fs == FrameStatus::kNeedMore) break;
    if (fs == FrameStatus::kTooLarge) {
      protocol_errors_metric_->Increment();
      QueueResponse(
          conn, ErrorResponse(0, Status::InvalidArgument(
                                     "frame exceeds maximum payload size")));
      conn->read_buf.clear();
      return false;  // stream cannot be resynchronized
    }
    const uint8_t* payload = base + kFrameHeaderBytes;
    auto req = DecodeRequest(payload, payload_len);
    consumed += kFrameHeaderBytes + payload_len;
    if (!req.ok()) {
      protocol_errors_metric_->Increment();
      QueueResponse(conn, ErrorResponse(PeekRequestId(payload, payload_len),
                                        req.status()));
      // Framing is still sound (the length prefix was honored), so the
      // connection survives a malformed payload.
      continue;
    }
    DispatchRequest(conn, req.MoveValue(), arrival_ns);
  }
  conn->read_buf.erase(conn->read_buf.begin(),
                       conn->read_buf.begin() + consumed);
  return true;
}

void Server::DispatchRequest(Connection* conn, Request req,
                             uint64_t arrival_ns) {
  if (req.type == MessageType::kPing) {
    Response pong;
    pong.request_id = req.request_id;
    QueueResponse(conn, pong);
    return;
  }
  // Trace opt-in: the server stamps the id (clients cannot forge
  // cross-request correlation) and carries the flag with the work item.
  // Untraced requests pay nothing here beyond the flag test.
  const bool traced = req.trace;
  uint64_t trace_id = 0;
  if (traced) {
    traced_requests_metric_->Increment();
    trace_id =
        MixTraceId(next_trace_seq_.fetch_add(1, std::memory_order_relaxed));
  }
  // Admission control, on the loop thread: a rejected request costs one
  // bucket probe and an immediate response -- it never queues behind
  // index work, which is what keeps shed latency bounded under overload.
  const char* shed_reason = nullptr;
  if (!limiter_.Admit(req.tenant, arrival_ns)) {
    shed_reason = "tenant rate limit exceeded";
  } else {
    const uint64_t admit_done_ns = traced ? obs::NowNanos() : 0;
    // Result-cache probe, after admission (a cached answer still spends
    // tenant tokens -- the cache must not turn one tenant's hot query
    // into free capacity) but before the queue: a hit is answered right
    // here on the loop thread and never touches a worker or the index.
    std::string cache_key;
    if (result_cache_.enabled()) {
      if (req.no_cache) {
        result_cache_.CountBypass();
      } else {
        cache_key = ResultCache::KeyOf(req);
        Response cached;
        if (result_cache_.Lookup(cache_key, index_->generation(),
                                 &cached)) {
          cached.request_id = req.request_id;
          const uint64_t done_ns = obs::NowNanos();
          obs::QueryTrace hit_trace;
          if (traced) {
            hit_trace.label = "serve";
            hit_trace.start_ns = arrival_ns;
            hit_trace.total_ns = done_ns - arrival_ns;
            hit_trace.AddStage("admission", admit_done_ns - arrival_ns);
            hit_trace.AddStage("result_cache", done_ns - admit_done_ns);
            hit_trace.Annotate("result_cache_hit", 1);
            cached.has_trace = true;
            cached.trace =
                BuildWireTrace(trace_id, hit_trace.total_ns, hit_trace);
          }
          QueueResponse(conn, cached);
          RecordOutcome(ResponseOutcome::kOk, /*degraded=*/false,
                        /*deadline_miss=*/false, req.tenant, arrival_ns);
          MaybeLogSlow(req, ResponseOutcome::kOk, trace_id, arrival_ns,
                       done_ns, /*search_ns=*/0, done_ns,
                       traced ? &hit_trace : nullptr);
          return;
        }
      }
    }
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= options_.max_queue) {
      shed_reason = "server overloaded (queue full)";
    } else {
      WorkItem item;
      item.conn_id = conn->id;
      item.request_id = req.request_id;
      item.arrival_ns = arrival_ns;
      item.admitted_ns = obs::NowNanos();
      item.trace_id = trace_id;
      item.tenant = req.tenant;
      item.traced = traced;
      item.cache_key = std::move(cache_key);
      item.item.query = req.ToQuery();
      if (req.deadline_ms > 0) {
        // Propagate the wire deadline: anchor the absolute budget now so
        // queue wait is charged against it.
        item.item.query.control =
            QueryControl::AfterMicros(uint64_t{req.deadline_ms} * 1000);
      }
      item.item.alpha = req.alpha;
      item.request = std::move(req);
      queue_.push_back(std::move(item));
      queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  if (shed_reason != nullptr) {
    shed_metric_->Increment();
    Response shed;
    shed.outcome = ResponseOutcome::kShed;
    shed.request_id = req.request_id;
    shed.message = shed_reason;
    const uint64_t done_ns = obs::NowNanos();
    obs::QueryTrace shed_trace;
    if (traced) {
      shed_trace.label = "serve";
      shed_trace.start_ns = arrival_ns;
      shed_trace.total_ns = done_ns - arrival_ns;
      shed_trace.AddStage("admission", done_ns - arrival_ns);
      shed_trace.Annotate("shed", 1);
      shed.has_trace = true;
      shed.trace =
          BuildWireTrace(trace_id, shed_trace.total_ns, shed_trace);
    }
    QueueResponse(conn, shed);
    RecordOutcome(ResponseOutcome::kShed, /*degraded=*/false,
                  /*deadline_miss=*/false, req.tenant, arrival_ns);
    MaybeLogSlow(req, ResponseOutcome::kShed, trace_id, arrival_ns,
                 done_ns, /*search_ns=*/0, done_ns,
                 traced ? &shed_trace : nullptr);
    return;
  }
  queue_cv_.notify_one();
}

bool Server::ConsumeHttp(Connection* conn) {
  static constexpr char kDelim[] = "\r\n\r\n";
  const auto& buf = conn->read_buf;
  auto it = std::search(buf.begin(), buf.end(), kDelim, kDelim + 4);
  if (it == buf.end()) {
    return buf.size() <= kMaxHttpHeader;  // keep reading headers
  }
  const std::string request_line(buf.begin(), it);
  const size_t path_begin = request_line.find(' ');
  const size_t path_end = request_line.find(' ', path_begin + 1);
  std::string path = "/";
  if (path_begin != std::string::npos && path_end != std::string::npos) {
    path = request_line.substr(path_begin + 1, path_end - path_begin - 1);
  }
  const uint64_t now_ns = obs::NowNanos();
  const uint64_t uptime_s =
      start_ns_ == 0 ? 0 : (now_ns - start_ns_) / 1000000000ull;
  std::string http;
  if (path == "/metrics") {
    // Pull-model gauges refresh at scrape time, not per request.
    slo_.ExportMetrics(now_ns);
    http = HttpOk(
        "text/plain; version=0.0.4",
        obs::ToPrometheusText(obs::MetricsRegistry::Global().Snapshot()));
  } else if (path == "/statusz") {
    ServerStatus s;
    s.build_compiler = __VERSION__;
#ifdef NDEBUG
    s.build_mode = "release";
#else
    s.build_mode = "debug";
#endif
    s.protocol_version = kProtocolVersion;
    s.shards = index_->num_shards();
    s.worker_threads = options_.worker_threads;
    s.batch_max = options_.batch_max;
    s.max_queue = options_.max_queue;
    s.max_connections = options_.max_connections;
    s.result_cache_entries = options_.result_cache_entries;
    s.slow_threshold_us = slow_log_.threshold_us();
    s.slo_window_seconds = slo_.window_seconds();
    s.uptime_s = uptime_s;
    s.documents = index_->DocumentCount();
    s.open_connections = conns_.size();  // loop thread owns conns_
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      s.queue_depth = static_cast<int64_t>(queue_.size());
    }
    s.requests_ok = requests_ok();
    s.requests_shed = requests_shed();
    s.requests_error = requests_error();
    for (const auto& rs : index_->ShardReplicaStatuses()) {
      s.replicated_shards += 1;
      s.failovers += rs.failovers;
      s.recoveries += rs.recoveries;
      s.scrub_pages_healed += rs.scrub_pages_healed;
    }
    s.slo_json = slo_.ToJson(now_ns);
    http = HttpOk("application/json", StatuszJson(s));
  } else if (path == "/tracez") {
    http = HttpOk("application/json",
                  TracezJson(obs::Tracer::Global().sample_rate(),
                             obs::Tracer::Global().Recent(), slow_log_));
  } else if (path == "/cachez") {
    http = HttpOk("application/json",
                  CachezJson(obs::MetricsRegistry::Global().Snapshot(),
                             result_cache_.StripeOccupancy()));
  } else if (path == "/healthz") {
    const bool healthy = running_.load(std::memory_order_acquire) &&
                         !stopping_.load(std::memory_order_acquire);
    http = HttpOk("application/json",
                  HealthzJson(healthy, uptime_s,
                              index_->ShardReplicaStatuses()));
  } else {
    http = HttpNotFound();
  }
  conn->write_buf += http;
  return false;  // one-shot: close after the response flushes
}

void Server::QueueResponse(Connection* conn, const Response& resp) {
  // Append-only: the caller flushes when it is done touching conn
  // (FlushWrites may close and free the connection).
  EncodeResponse(resp, &conn->write_buf);
}

void Server::PostResponse(uint64_t conn_id, const Response& resp) {
  Outbound out;
  out.conn_id = conn_id;
  EncodeResponse(resp, &out.bytes);
  {
    std::lock_guard<std::mutex> lock(outbox_mutex_);
    outbox_.push_back(std::move(out));
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::DrainOutbox() {
  std::vector<Outbound> batch;
  {
    std::lock_guard<std::mutex> lock(outbox_mutex_);
    batch.swap(outbox_);
  }
  for (Outbound& out : batch) {
    auto it = conns_.find(out.conn_id);
    if (it == conns_.end()) continue;  // client left; drop the response
    Connection* conn = it->second.get();
    conn->write_buf += out.bytes;
    FlushWrites(conn);
  }
}

void Server::FlushWrites(Connection* conn) {
  while (conn->write_pos < conn->write_buf.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->write_buf.data() + conn->write_pos,
               conn->write_buf.size() - conn->write_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->write_pos += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn->want_write) {
        conn->want_write = true;
        UpdateEpoll(conn);
      }
      return;
    }
    CloseConnection(conn);
    return;
  }
  conn->write_buf.clear();
  conn->write_pos = 0;
  if (conn->want_write) {
    conn->want_write = false;
    UpdateEpoll(conn);
  }
  if (conn->close_after_flush) CloseConnection(conn);
}

void Server::UpdateEpoll(Connection* conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::CloseConnection(Connection* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  connections_gauge_->Sub(1);
  conns_.erase(conn->id);  // frees conn
}

void Server::RecordOutcome(ResponseOutcome outcome, bool degraded,
                           bool deadline_miss, uint32_t tenant,
                           uint64_t arrival_ns) {
  const uint64_t now_ns = obs::NowNanos();
  const uint64_t latency_us = (now_ns - arrival_ns) / 1000;
  const int idx = static_cast<int>(outcome);
  requests_metric_[idx]->Increment();
  latency_us_[idx]->Record(latency_us);
  slo_.Record(tenant, latency_us, outcome == ResponseOutcome::kShed,
              deadline_miss, now_ns);
  switch (outcome) {
    case ResponseOutcome::kOk:
      ok_count_.fetch_add(1, std::memory_order_relaxed);
      if (degraded) degraded_metric_->Increment();
      break;
    case ResponseOutcome::kShed:
      shed_count_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kError:
      error_count_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

WireTrace Server::BuildWireTrace(uint64_t trace_id, uint64_t total_ns,
                                 const obs::QueryTrace& trace) {
  WireTrace wt;
  wt.trace_id = trace_id;
  wt.total_ns = total_ns;
  wt.spans.reserve(trace.stages.size());
  for (const auto& stage : trace.stages) {
    WireTraceSpan span;
    span.name = stage.name;
    span.total_ns = stage.total_ns;
    span.calls = static_cast<uint32_t>(
        std::min<uint64_t>(stage.calls, UINT32_MAX));
    wt.spans.push_back(std::move(span));
  }
  wt.annotations.reserve(trace.annotations.size());
  for (const auto& [key, value] : trace.annotations) {
    wt.annotations.push_back(WireTraceAnnotation{key, value});
  }
  return wt;
}

void Server::MaybeLogSlow(const Request& req, ResponseOutcome outcome,
                          uint64_t trace_id, uint64_t arrival_ns,
                          uint64_t admitted_ns, uint64_t search_ns,
                          uint64_t done_ns, const obs::QueryTrace* trace) {
  const uint64_t total_us = (done_ns - arrival_ns) / 1000;
  if (!slow_log_.Qualifies(total_us)) return;
  slow_queries_metric_->Increment();
  obs::SlowQueryRecord rec;
  rec.trace_id = trace_id;
  rec.when_ns = done_ns;
  rec.total_us = total_us;
  rec.tenant = req.tenant;
  rec.outcome = ResponseOutcomeName(outcome);
  std::string frame;
  EncodeRequest(req, &frame);
  rec.request_hex = HexEncode(frame);
  if (trace != nullptr) {
    rec.trace = *trace;
  } else {
    // Untraced request: synthesize the coarse stages the timestamps
    // alone can attribute -- admission, index search, and the remainder
    // (queue wait + batch assembly + dispatch).
    rec.trace.label = "serve";
    rec.trace.start_ns = arrival_ns;
    rec.trace.total_ns = done_ns - arrival_ns;
    rec.trace.AddStage("admission", admitted_ns - arrival_ns);
    if (search_ns > 0) rec.trace.AddStage("search", search_ns);
    const uint64_t accounted = (admitted_ns - arrival_ns) + search_ns;
    if (rec.trace.total_ns > accounted) {
      rec.trace.AddStage("queue_and_dispatch",
                         rec.trace.total_ns - accounted);
    }
  }
  slow_log_.Record(std::move(rec));
}

void Server::RunWorker() {
  std::vector<WorkItem> taken;
  std::vector<ShardedIndex::BatchItem> items;
  std::vector<obs::QueryTrace> traces;
  while (true) {
    taken.clear();
    items.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      const size_t take = std::min<size_t>(options_.batch_max, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        taken.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
      if (!queue_.empty()) queue_cv_.notify_one();
    }
    const uint64_t dequeue_ns = obs::NowNanos();
    batch_size_->Record(taken.size());
    items.reserve(taken.size());
    // The traces vector is sized once per batch BEFORE any pointer is
    // taken; it must not grow while items reference its elements.
    traces.assign(taken.size(), obs::QueryTrace());
    for (size_t i = 0; i < taken.size(); ++i) {
      const WorkItem& w = taken[i];
      items.push_back(w.item);
      if (!w.traced) continue;
      obs::QueryTrace& t = traces[i];
      t.label = "serve";
      t.start_ns = w.arrival_ns;
      t.AddStage("admission", w.admitted_ns - w.arrival_ns);
      t.AddStage("queue_wait", dequeue_ns - w.admitted_ns);
      t.Annotate("batch_size", taken.size());
      // Request-scoped trace: the index layers accumulate their stages
      // (shard sweeps, descent, cell-cache hits) into this object.
      items[i].query.control.trace = &t;
      items[i].query.control.trace_id = w.trace_id;
    }
    // Capture the generation BEFORE the search: a mutation completing
    // mid-search bumps the counter past this value, so the entry we tag
    // with it can never be served after that mutation (Lookup requires
    // an exact match against the current generation).
    const uint64_t generation = index_->generation();
    const auto results = index_->SearchBatch(items);
    for (size_t i = 0; i < taken.size(); ++i) {
      const auto& r = results[i];
      Response resp;
      resp.request_id = taken[i].request_id;
      if (r.status.ok() && r.degraded &&
          taken[i].request.require_complete) {
        // All-or-nothing: the client said a partial top-k is worse than
        // failing, so surface the failing shard's own error instead.
        Status refusal(r.first_error.ok() ? StatusCode::kResourceExhausted
                                          : r.first_error.code(),
                       "incomplete result (require_complete): " +
                           r.first_error.message());
        resp = ErrorResponse(taken[i].request_id, refusal);
      } else if (r.status.ok()) {
        resp.outcome = ResponseOutcome::kOk;
        resp.degraded = r.degraded;
        resp.results = r.results;
        // Only complete answers are cacheable: a degraded top-k is
        // missing failed shards' documents and must not outlive the
        // failure.
        if (!resp.degraded && !taken[i].cache_key.empty()) {
          result_cache_.Insert(taken[i].cache_key, generation,
                               resp.results);
        }
      } else {
        resp = ErrorResponse(taken[i].request_id, r.status);
      }
      const bool deadline_miss =
          resp.outcome == ResponseOutcome::kError &&
          resp.code == StatusCode::kDeadlineExceeded;
      if (taken[i].traced) {
        obs::QueryTrace& t = traces[i];
        // Time the encode against a scratch buffer first -- the real
        // encode must carry the trace, and the trace must contain the
        // encode stage. The double encode is traced-path-only cost, and
        // it keeps the result bytes identical to the untraced twin
        // (asserted by the differential test).
        std::string scratch;
        const uint64_t encode_start_ns = obs::NowNanos();
        EncodeResponse(resp, &scratch);
        t.AddStage("encode", obs::NowNanos() - encode_start_ns);
        t.Annotate("results", resp.results.size());
        t.total_ns = obs::NowNanos() - taken[i].arrival_ns;
        resp.has_trace = true;
        resp.trace = BuildWireTrace(taken[i].trace_id, t.total_ns, t);
      }
      const uint64_t done_ns = obs::NowNanos();
      RecordOutcome(resp.outcome, resp.degraded, deadline_miss,
                    taken[i].tenant, taken[i].arrival_ns);
      MaybeLogSlow(taken[i].request, resp.outcome, taken[i].trace_id,
                   taken[i].arrival_ns, taken[i].admitted_ns, r.search_ns,
                   done_ns, taken[i].traced ? &traces[i] : nullptr);
      PostResponse(taken[i].conn_id, resp);
    }
  }
}

}  // namespace net
}  // namespace i3
