// The public interface every top-k spatial keyword index implements.
//
// Three concrete implementations exist: i3::I3Index (the paper's
// contribution), i3::IrTreeIndex and i3::S2IIndex (the evaluated baselines),
// plus i3::BruteForceIndex (the correctness oracle used in tests).

#ifndef I3_MODEL_INDEX_H_
#define I3_MODEL_INDEX_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "model/document.h"
#include "model/query.h"
#include "model/search_stats.h"
#include "storage/io_stats.h"

namespace i3 {

class ReplicaSet;

/// \brief Storage footprint of an index, broken down by component (the rows
/// of the paper's Table 5).
struct IndexSizeInfo {
  /// (component name, bytes), e.g. {"head file", ...}, {"data file", ...}.
  std::vector<std::pair<std::string, uint64_t>> components;

  uint64_t TotalBytes() const {
    uint64_t t = 0;
    for (const auto& c : components) t += c.second;
    return t;
  }

  /// \brief Sums `other` into this breakdown, matching components by name
  /// (used by ShardedIndex so "head file" stays one row across shards;
  /// components unique to `other` are appended).
  void MergeFrom(const IndexSizeInfo& other);

  std::string ToString() const;
};

/// \brief Composes a decorator tag into an index name so stacked wrappers
/// stay readable: ("I3", "sharded x8") -> "I3 (sharded x8)", but
/// ("I3 (concurrent)", "sharded x8") -> "I3 (concurrent, sharded x8)".
std::string ComposeIndexName(const std::string& base, const std::string& tag);

/// \brief Abstract top-k spatial keyword index.
///
/// Implementations are single-writer / single-reader, mirroring the paper's
/// experimental setting. All fallible operations return Status; Search
/// returns the top-k documents in decreasing score.
class SpatialKeywordIndex {
 public:
  virtual ~SpatialKeywordIndex() = default;

  /// Short scheme name ("I3", "IR-tree", "S2I", "BruteForce").
  virtual std::string Name() const = 0;

  /// \brief Inserts a document. Term weights must be in (0, 1]; the
  /// document id must be new.
  virtual Status Insert(const SpatialDocument& doc) = 0;

  /// \brief Deletes a previously inserted document. The full document is
  /// passed because textual-partition indexes need its keywords and
  /// location to find every tuple.
  virtual Status Delete(const SpatialDocument& doc) = 0;

  /// \brief Updates a document: delete(old) + insert(new), per Section 4.5.
  virtual Status Update(const SpatialDocument& old_doc,
                        const SpatialDocument& new_doc) {
    I3_RETURN_NOT_OK(Delete(old_doc));
    return Insert(new_doc);
  }

  /// \brief Answers a top-k query under `alpha` spatial weighting. Results
  /// are sorted by decreasing score (ties by increasing DocId) and contain
  /// at most q.k entries (fewer when fewer documents match).
  virtual Result<std::vector<ScoredDoc>> Search(const Query& q,
                                                double alpha) = 0;

  /// \brief True if Search may be called from multiple threads at once (in
  /// the absence of concurrent writers). An implementation may return true
  /// only when its whole query path touches nothing but per-query stack
  /// state and internally synchronized counters -- including statistics:
  /// search stats must be accumulated on the stack and published under a
  /// mutex (see model/search_stats.h), never incremented on a shared
  /// member mid-search. I3, IR-tree, S2I, and BruteForce all satisfy this;
  /// the default stays false so new implementations must opt in
  /// deliberately. The concurrency wrappers consult this to decide whether
  /// readers must be serialized.
  virtual bool SupportsConcurrentSearch() const { return false; }

  /// \brief Name/value view of the most recent completed Search's
  /// statistics (under concurrent readers, whichever search published
  /// last). Default: empty view for indexes without stats.
  virtual SearchStatsView LastSearchStats() const { return {}; }

  /// \brief Number of indexed documents.
  virtual uint64_t DocumentCount() const = 0;

  /// \brief Storage footprint by component.
  virtual IndexSizeInfo SizeInfo() const = 0;

  /// \brief Cumulative page I/O counters.
  virtual const IoStats& io_stats() const = 0;
  virtual void ResetIoStats() = 0;

  /// \brief Drops any cached pages (cold-cache reset); default no-op for
  /// purely in-memory implementations.
  virtual void ClearCache() {}

  /// \brief Checked downcast for replication-aware wrappers: a ReplicaSet
  /// (model/replica_set.h) returns itself, everything else returns null.
  /// Lets ShardedIndex discover failover/scrub capabilities behind the
  /// common interface without RTTI on the query path.
  virtual ReplicaSet* AsReplicaSet() { return nullptr; }
};

}  // namespace i3

#endif  // I3_MODEL_INDEX_H_
