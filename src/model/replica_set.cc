#include "model/replica_set.h"

#include <chrono>
#include <filesystem>
#include <sstream>
#include <utility>

#include "storage/snapshot.h"

namespace i3 {

namespace {

/// Fixed label order for all replica metric families.
obs::Labels ShardLabels(uint32_t shard) {
  return {{"shard", std::to_string(shard)}};
}

}  // namespace

const char* ReplicaStateName(ReplicaState s) {
  switch (s) {
    case ReplicaState::kHealthy:
      return "healthy";
    case ReplicaState::kFailed:
      return "failed";
    case ReplicaState::kRecovering:
      return "recovering";
  }
  return "unknown";
}

Result<std::unique_ptr<ReplicaSet>> ReplicaSet::Create(
    const ReplicaFactory& factory, ReplicaOps ops,
    ReplicaSetOptions options) {
  if (!factory) {
    return Status::InvalidArgument("ReplicaSet: factory is required");
  }
  if (options.replication_factor < 1) {
    return Status::InvalidArgument(
        "ReplicaSet: replication_factor must be >= 1");
  }
  std::vector<std::unique_ptr<SpatialKeywordIndex>> replicas;
  replicas.reserve(options.replication_factor);
  for (uint32_t r = 0; r < options.replication_factor; ++r) {
    std::unique_ptr<SpatialKeywordIndex> index = factory(r);
    if (index == nullptr) {
      return Status::InvalidArgument("ReplicaSet: factory returned null for "
                                     "replica " +
                                     std::to_string(r));
    }
    replicas.push_back(std::move(index));
  }
  return std::unique_ptr<ReplicaSet>(
      new ReplicaSet(std::move(replicas), std::move(ops), std::move(options)));
}

ReplicaSet::ReplicaSet(
    std::vector<std::unique_ptr<SpatialKeywordIndex>> replicas,
    ReplicaOps ops, ReplicaSetOptions options)
    : ops_(std::move(ops)), options_(std::move(options)) {
  replicas_.reserve(replicas.size());
  for (auto& index : replicas) {
    auto rep = std::make_unique<Replica>();
    rep->serialize_queries = !index->SupportsConcurrentSearch();
    rep->index = std::move(index);
    rep->scrub_cursor = ScrubCursor(options_.scrub_pages_per_tick);
    replicas_.push_back(std::move(rep));
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const obs::Labels shard_labels = ShardLabels(options_.shard);
  failover_metric_ = reg.GetCounter(
      "i3_failover_total",
      "Reads served by a non-primary replica after the primary failed.",
      shard_labels);
  replica_write_failures_metric_ = reg.GetCounter(
      "i3_replica_write_failures_total",
      "Replica write applies that failed on storage (replica demoted).",
      shard_labels);
  replica_recoveries_metric_ = reg.GetCounter(
      "i3_replica_recoveries_total",
      "Replicas rebuilt online via snapshot + log catch-up.", shard_labels);
  scrub_pages_metric_ = reg.GetCounter(
      "i3_scrub_pages_total", "Data pages verified by the scrubber.",
      shard_labels);
  scrub_corrupt_metric_ = reg.GetCounter(
      "i3_scrub_corrupt_total", "Corrupt data pages found by the scrubber.",
      shard_labels);
  scrub_healed_metric_ = reg.GetCounter(
      "i3_scrub_healed_total",
      "Corrupt data pages healed by copying from a healthy replica.",
      shard_labels);
  healthy_replicas_metric_ = reg.GetGauge(
      "i3_replica_healthy", "Healthy replicas of this shard.", shard_labels);
  lag_metrics_.reserve(replicas_.size());
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    obs::Labels labels = shard_labels;
    labels.emplace_back("replica", std::to_string(r));
    lag_metrics_.push_back(reg.GetGauge(
        "i3_replica_lag", "Ops this replica is behind the log head.",
        std::move(labels)));
  }
  UpdateHealthGauges();

  if (options_.maintenance_interval_ms > 0) {
    maintenance_ = std::thread([this] { MaintenanceLoop(); });
  }
}

ReplicaSet::~ReplicaSet() {
  if (maintenance_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(maintenance_mutex_);
      stopping_ = true;
    }
    maintenance_cv_.notify_all();
    maintenance_.join();
  }
}

std::string ReplicaSet::Name() const {
  std::shared_lock<std::shared_mutex> lock(replicas_[0]->mutex);
  return ComposeIndexName(
      replicas_[0]->index->Name(),
      "replicated x" + std::to_string(replicas_.size()));
}

bool ReplicaSet::IsStorageFailure(const Status& st) {
  // Logical failures (duplicate insert, missing delete, bad argument) are
  // deterministic: every replica applying the same op from the same state
  // reaches the same verdict, so they do not mean divergence. Storage
  // failures mean this one replica's copy can no longer be trusted.
  switch (st.code()) {
    case StatusCode::kIOError:
    case StatusCode::kCorruption:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

Status ReplicaSet::ApplyOp(SpatialKeywordIndex& index, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsert:
      return index.Insert(op.doc);
    case Op::Kind::kDelete:
      return index.Delete(op.doc);
    case Op::Kind::kUpdate:
      return index.Update(op.old_doc, op.doc);
  }
  return Status::Internal("ReplicaSet: unknown op kind");
}

Status ReplicaSet::Replicate(Op op) {
  std::lock_guard<std::mutex> op_lock(op_mutex_);
  op.seq = log_head_.load(std::memory_order_relaxed) + 1;
  log_head_.store(op.seq, std::memory_order_release);
  log_.push_back(op);
  while (log_.size() > options_.max_log_ops) log_.pop_front();

  Status first_outcome;
  bool applied_anywhere = false;
  Status first_storage_error;
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    Replica& rep = *replicas_[r];
    if (replica_state(r) != ReplicaState::kHealthy) continue;
    Status st;
    {
      std::unique_lock<std::shared_mutex> lock(rep.mutex);
      st = ApplyOp(*rep.index, op);
    }
    if (st.ok() || !IsStorageFailure(st)) {
      // A logical failure still advances the watermark: replaying this op
      // during catch-up reproduces the same (non-)effect deterministically.
      rep.watermark.store(op.seq, std::memory_order_release);
      if (!applied_anywhere) {
        applied_anywhere = true;
        first_outcome = st;
      }
    } else {
      rep.write_failures.fetch_add(1, std::memory_order_relaxed);
      replica_write_failures_metric_->Increment();
      MarkFailed(r, "write apply failed");
      if (first_storage_error.ok()) first_storage_error = st;
    }
  }
  UpdateHealthGauges();
  if (applied_anywhere) return first_outcome;
  if (!first_storage_error.ok()) return first_storage_error;
  return Status::ResourceExhausted(
      "ReplicaSet: no healthy replica to apply write");
}

Status ReplicaSet::Insert(const SpatialDocument& doc) {
  Op op;
  op.kind = Op::Kind::kInsert;
  op.doc = doc;
  return Replicate(std::move(op));
}

Status ReplicaSet::Delete(const SpatialDocument& doc) {
  Op op;
  op.kind = Op::Kind::kDelete;
  op.doc = doc;
  return Replicate(std::move(op));
}

Status ReplicaSet::Update(const SpatialDocument& old_doc,
                          const SpatialDocument& new_doc) {
  Op op;
  op.kind = Op::Kind::kUpdate;
  op.doc = new_doc;
  op.old_doc = old_doc;
  return Replicate(std::move(op));
}

Result<std::vector<ScoredDoc>> ReplicaSet::Search(const Query& q,
                                                  double alpha) {
  return SearchFailover(q, alpha, nullptr);
}

Result<std::vector<ScoredDoc>> ReplicaSet::SearchFailover(
    const Query& q, double alpha, ReplicaSearchReport* report) {
  Status first_error;
  uint32_t attempts = 0;
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    Replica& rep = *replicas_[r];
    if (replica_state(r) != ReplicaState::kHealthy) continue;
    ++attempts;
    Result<std::vector<ScoredDoc>> res = [&]() {
      std::shared_lock<std::shared_mutex> lock(rep.mutex);
      if (rep.serialize_queries) {
        std::lock_guard<std::mutex> qlock(rep.query_mutex);
        return rep.index->Search(q, alpha);
      }
      return rep.index->Search(q, alpha);
    }();
    if (res.ok()) {
      const bool failed_over = (r != 0);
      if (failed_over) {
        failovers_.fetch_add(1, std::memory_order_relaxed);
        failover_metric_->Increment();
      }
      last_served_.store(r, std::memory_order_relaxed);
      if (report != nullptr) {
        report->served_replica = r;
        report->attempts = attempts;
        report->failed_over = failed_over;
      }
      return res;
    }
    // Any per-replica failure -- storage error, deadline blown mid-read --
    // is re-issued to the next healthy replica; the first failure is kept
    // in case all of them fall over.
    rep.read_failures.fetch_add(1, std::memory_order_relaxed);
    if (first_error.ok()) first_error = res.status();
  }
  if (report != nullptr) {
    report->served_replica = 0;
    report->attempts = attempts;
    report->failed_over = false;
  }
  if (!first_error.ok()) return first_error;
  return Status::ResourceExhausted(
      "ReplicaSet: no healthy replica to serve read");
}

SearchStatsView ReplicaSet::LastSearchStats() const {
  const uint32_t r = last_served_.load(std::memory_order_relaxed);
  const Replica& rep = *replicas_[r];
  std::shared_lock<std::shared_mutex> lock(rep.mutex);
  return rep.index->LastSearchStats();
}

uint64_t ReplicaSet::DocumentCount() const {
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    if (replica_state(r) != ReplicaState::kHealthy) continue;
    std::shared_lock<std::shared_mutex> lock(replicas_[r]->mutex);
    return replicas_[r]->index->DocumentCount();
  }
  return 0;
}

IndexSizeInfo ReplicaSet::SizeInfo() const {
  // Replicas are byte-identical, so the logical footprint is one copy;
  // report the first healthy replica's breakdown (physical bytes are R x).
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    if (replica_state(r) != ReplicaState::kHealthy) continue;
    std::shared_lock<std::shared_mutex> lock(replicas_[r]->mutex);
    return replicas_[r]->index->SizeInfo();
  }
  return {};
}

const IoStats& ReplicaSet::io_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  merged_stats_.Reset();
  for (const auto& rep : replicas_) {
    std::shared_lock<std::shared_mutex> rlock(rep->mutex);
    merged_stats_.MergeFrom(rep->index->io_stats());
  }
  return merged_stats_;
}

void ReplicaSet::ResetIoStats() {
  for (auto& rep : replicas_) {
    std::unique_lock<std::shared_mutex> lock(rep->mutex);
    rep->index->ResetIoStats();
  }
}

void ReplicaSet::ClearCache() {
  // Not a logged op: dropping cached pages changes no logical content, so
  // replicas stay byte-identical without replaying it during catch-up.
  for (auto& rep : replicas_) {
    std::unique_lock<std::shared_mutex> lock(rep->mutex);
    rep->index->ClearCache();
  }
}

void ReplicaSet::MarkFailed(uint32_t r, const char* /*why*/) {
  replicas_[r]->state.store(static_cast<int>(ReplicaState::kFailed),
                            std::memory_order_release);
}

Status ReplicaSet::KillReplica(uint32_t r) {
  if (r >= replicas_.size()) {
    return Status::InvalidArgument("ReplicaSet: no replica " +
                                   std::to_string(r));
  }
  // Under op_mutex_ so the healthy count cannot change between the check
  // and the demotion (a concurrent write marking another replica failed
  // could otherwise leave the set with nothing to serve from).
  std::lock_guard<std::mutex> op_lock(op_mutex_);
  uint32_t healthy = 0;
  for (uint32_t i = 0; i < replicas_.size(); ++i) {
    if (replica_state(i) == ReplicaState::kHealthy) ++healthy;
  }
  if (replica_state(r) == ReplicaState::kHealthy && healthy <= 1) {
    return Status::ResourceExhausted(
        "ReplicaSet: refusing to kill the last healthy replica");
  }
  MarkFailed(r, "killed");
  UpdateHealthGauges();
  return Status::OK();
}

uint32_t ReplicaSet::PickHealthySource(uint32_t exclude) const {
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    if (r == exclude) continue;
    if (replica_state(r) == ReplicaState::kHealthy) return r;
  }
  return UINT32_MAX;
}

std::string ReplicaSet::SnapshotPath(uint32_t r) {
  std::error_code ec;
  std::string dir = options_.snapshot_dir;
  if (dir.empty()) {
    dir = std::filesystem::temp_directory_path(ec).string();
    if (ec) dir = ".";
  } else {
    std::filesystem::create_directories(dir, ec);
  }
  std::ostringstream name;
  name << dir << "/i3_snap_shard" << options_.shard << "_r" << r << "_"
       << snapshot_seq_.fetch_add(1, std::memory_order_relaxed) << "_"
       << std::hex << reinterpret_cast<uintptr_t>(this) << ".i3";
  return name.str();
}

Status ReplicaSet::SnapshotInto(uint32_t r, uint32_t source) {
  Replica& src = *replicas_[source];
  Replica& tgt = *replicas_[r];
  const std::string path = SnapshotPath(r);
  uint64_t snap_mark = 0;
  Status save_status;
  {
    // The shared lock blocks write applies to the source (writers take the
    // replica's exclusive lock), so the watermark and the page contents
    // are frozen together for the duration of the serialization. Reads
    // keep flowing on every replica.
    std::shared_lock<std::shared_mutex> src_lock(src.mutex);
    snap_mark = src.watermark.load(std::memory_order_acquire);
    save_status = ops_.save(*src.index, path);
  }
  if (!save_status.ok()) {
    RemoveSnapshot(path);
    if (IsStorageFailure(save_status)) {
      // The source's own checksum layer rejected its pages mid-snapshot:
      // the source is damaged, not the snapshot machinery. Demote it so
      // the retry picks a different replica.
      MarkFailed(source, "snapshot source corrupt");
      UpdateHealthGauges();
    }
    return save_status;
  }
  Status st = WriteSnapshotMeta(path, snap_mark);
  if (st.ok()) st = VerifySnapshot(path).status();
  if (!st.ok()) {
    RemoveSnapshot(path);
    return st;
  }
  Result<std::unique_ptr<SpatialKeywordIndex>> loaded = ops_.load(path, r);
  if (!loaded.ok()) {
    RemoveSnapshot(path);
    return loaded.status();
  }
  {
    std::unique_lock<std::shared_mutex> tgt_lock(tgt.mutex);
    tgt.index = loaded.MoveValue();
    tgt.serialize_queries = !tgt.index->SupportsConcurrentSearch();
    tgt.watermark.store(snap_mark, std::memory_order_release);
  }
  RemoveSnapshot(path);
  return Status::OK();
}

Status ReplicaSet::CatchUp(uint32_t r) {
  Replica& rep = *replicas_[r];
  // Holding op_mutex_ freezes the log head: once the replay below drains
  // the tail, the replica is exactly caught up, and flipping it healthy
  // before releasing the mutex means the very next write includes it.
  std::lock_guard<std::mutex> op_lock(op_mutex_);
  const uint64_t watermark = rep.watermark.load(std::memory_order_acquire);
  const uint64_t head = log_head_.load(std::memory_order_relaxed);
  if (watermark < head) {
    const uint64_t oldest = log_.empty() ? head + 1 : log_.front().seq;
    if (watermark + 1 < oldest) {
      return Status::OutOfRange(
          "ReplicaSet: replication log trimmed past replica watermark");
    }
  }
  std::unique_lock<std::shared_mutex> lock(rep.mutex);
  for (const Op& op : log_) {
    if (op.seq <= watermark) continue;
    Status st = ApplyOp(*rep.index, op);
    if (!st.ok() && IsStorageFailure(st)) {
      rep.write_failures.fetch_add(1, std::memory_order_relaxed);
      return st;
    }
    rep.watermark.store(op.seq, std::memory_order_release);
  }
  rep.state.store(static_cast<int>(ReplicaState::kHealthy),
                  std::memory_order_release);
  return Status::OK();
}

Status ReplicaSet::RecoverReplica(uint32_t r) {
  if (r >= replicas_.size()) {
    return Status::InvalidArgument("ReplicaSet: no replica " +
                                   std::to_string(r));
  }
  if (replica_state(r) == ReplicaState::kHealthy) return Status::OK();
  if (!ops_.save || !ops_.load) {
    return Status::NotSupported(
        "ReplicaSet: recovery requires save/load replica ops");
  }
  Replica& rep = *replicas_[r];
  rep.state.store(static_cast<int>(ReplicaState::kRecovering),
                  std::memory_order_release);
  Status last_error;
  for (uint32_t attempt = 0; attempt < options_.max_snapshot_attempts;
       ++attempt) {
    const uint32_t source = PickHealthySource(r);
    if (source == UINT32_MAX) {
      MarkFailed(r, "no healthy snapshot source");
      UpdateHealthGauges();
      return Status::ResourceExhausted(
          "ReplicaSet: no healthy replica to snapshot from");
    }
    Status st = SnapshotInto(r, source);
    if (st.ok()) st = CatchUp(r);
    if (st.ok()) {
      recoveries_.fetch_add(1, std::memory_order_relaxed);
      replica_recoveries_metric_->Increment();
      UpdateHealthGauges();
      return Status::OK();
    }
    // OutOfRange means the log was trimmed while the snapshot was being
    // taken -- retake a fresh snapshot (at a newer watermark) and retry.
    last_error = st;
  }
  MarkFailed(r, "snapshot attempts exhausted");
  UpdateHealthGauges();
  if (!last_error.ok()) return last_error;
  return Status::ResourceExhausted("ReplicaSet: snapshot attempts exhausted");
}

Status ReplicaSet::RecoverAll() {
  Status first_error;
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    if (replica_state(r) == ReplicaState::kHealthy) continue;
    Status st = RecoverReplica(r);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status ReplicaSet::HealPage(uint32_t r, uint64_t page) {
  Replica& rep = *replicas_[r];
  Status first_error;
  for (uint32_t peer = 0; peer < replicas_.size(); ++peer) {
    if (peer == r) continue;
    if (replica_state(peer) != ReplicaState::kHealthy) continue;
    // Copy the bytes out under the peer's lock, then release it before
    // locking the target: no thread ever holds two replica locks at once.
    std::vector<uint8_t> bytes;
    {
      Replica& p = *replicas_[peer];
      std::shared_lock<std::shared_mutex> peer_lock(p.mutex);
      Result<std::vector<uint8_t>> res = ops_.read_page(*p.index, page);
      if (!res.ok()) {
        if (first_error.ok()) first_error = res.status();
        continue;
      }
      bytes = res.MoveValue();
    }
    std::unique_lock<std::shared_mutex> tgt_lock(rep.mutex);
    return ops_.write_page(*rep.index, page, bytes);
  }
  if (!first_error.ok()) return first_error;
  return Status::ResourceExhausted(
      "ReplicaSet: no healthy peer to heal page " + std::to_string(page));
}

Status ReplicaSet::ScrubTick() {
  if (!ops_.page_count || !ops_.verify_page || !ops_.read_page ||
      !ops_.write_page) {
    return Status::NotSupported(
        "ReplicaSet: scrubbing requires the page-level replica ops");
  }
  std::lock_guard<std::mutex> scrub_lock(scrub_mutex_);
  Status first_heal_error;
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    Replica& rep = *replicas_[r];
    if (replica_state(r) != ReplicaState::kHealthy) continue;
    uint64_t pages = 0;
    {
      std::shared_lock<std::shared_mutex> lock(rep.mutex);
      pages = ops_.page_count(*rep.index);
    }
    const std::vector<uint64_t> batch = rep.scrub_cursor.NextBatch(pages);
    for (uint64_t page : batch) {
      Status st;
      {
        std::shared_lock<std::shared_mutex> lock(rep.mutex);
        st = ops_.verify_page(*rep.index, page);
      }
      scrub_pages_verified_.fetch_add(1, std::memory_order_relaxed);
      scrub_pages_metric_->Increment();
      if (st.ok()) continue;
      // IOError is transient (device hiccup): the next sweep retries.
      // Corruption means the stored bytes are damaged -- heal in place
      // from a peer before a query trips over the page.
      if (!st.IsCorruption()) continue;
      scrub_corrupt_found_.fetch_add(1, std::memory_order_relaxed);
      scrub_corrupt_metric_->Increment();
      Status heal = HealPage(r, page);
      if (heal.ok()) {
        scrub_pages_healed_.fetch_add(1, std::memory_order_relaxed);
        scrub_healed_metric_->Increment();
      } else if (first_heal_error.ok()) {
        first_heal_error = heal;
      }
    }
  }
  return first_heal_error;
}

ReplicaSetStatus ReplicaSet::GetStatus() const {
  ReplicaSetStatus status;
  status.shard = options_.shard;
  status.replicated = replicas_.size() > 1;
  status.log_head = log_head_.load(std::memory_order_acquire);
  status.scrub_pages_verified =
      scrub_pages_verified_.load(std::memory_order_relaxed);
  status.scrub_corrupt_found =
      scrub_corrupt_found_.load(std::memory_order_relaxed);
  status.scrub_pages_healed =
      scrub_pages_healed_.load(std::memory_order_relaxed);
  status.failovers = failovers_.load(std::memory_order_relaxed);
  status.recoveries = recoveries_.load(std::memory_order_relaxed);
  status.replicas.reserve(replicas_.size());
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    const Replica& rep = *replicas_[r];
    ReplicaStatus rs;
    rs.state = replica_state(r);
    rs.watermark = rep.watermark.load(std::memory_order_acquire);
    rs.lag = status.log_head > rs.watermark ? status.log_head - rs.watermark
                                            : 0;
    rs.read_failures = rep.read_failures.load(std::memory_order_relaxed);
    rs.write_failures = rep.write_failures.load(std::memory_order_relaxed);
    if (ops_.quarantined_pages) {
      std::shared_lock<std::shared_mutex> lock(rep.mutex);
      rs.quarantined_pages = ops_.quarantined_pages(*rep.index);
    }
    status.replicas.push_back(rs);
  }
  return status;
}

void ReplicaSet::UpdateHealthGauges() {
  const uint64_t head = log_head_.load(std::memory_order_acquire);
  int64_t healthy = 0;
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    if (replica_state(r) == ReplicaState::kHealthy) ++healthy;
    const uint64_t wm =
        replicas_[r]->watermark.load(std::memory_order_acquire);
    lag_metrics_[r]->Set(head > wm ? static_cast<int64_t>(head - wm) : 0);
  }
  healthy_replicas_metric_->Set(healthy);
}

void ReplicaSet::MaintenanceLoop() {
  std::unique_lock<std::mutex> lk(maintenance_mutex_);
  const auto interval =
      std::chrono::milliseconds(options_.maintenance_interval_ms);
  while (!stopping_) {
    maintenance_cv_.wait_for(lk, interval, [this] { return stopping_; });
    if (stopping_) break;
    lk.unlock();
    if (options_.auto_recover) {
      // Best effort: a failed recovery leaves the replica failed and the
      // next tick tries again (the chaos suites assert convergence).
      (void)RecoverAll();
    }
    (void)ScrubTick();
    lk.lock();
  }
}

}  // namespace i3
