#include "model/index.h"

#include <sstream>

namespace i3 {

std::string IndexSizeInfo::ToString() const {
  std::ostringstream os;
  os << "SizeInfo{";
  for (size_t i = 0; i < components.size(); ++i) {
    if (i > 0) os << ", ";
    os << components[i].first << ": " << components[i].second << "B";
  }
  os << ", total: " << TotalBytes() << "B}";
  return os.str();
}

}  // namespace i3
