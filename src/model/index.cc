#include "model/index.h"

#include <sstream>

namespace i3 {

void IndexSizeInfo::MergeFrom(const IndexSizeInfo& other) {
  for (const auto& [name, bytes] : other.components) {
    bool found = false;
    for (auto& mine : components) {
      if (mine.first == name) {
        mine.second += bytes;
        found = true;
        break;
      }
    }
    if (!found) components.emplace_back(name, bytes);
  }
}

std::string ComposeIndexName(const std::string& base, const std::string& tag) {
  // A name already carrying a decorator group ends in ")"; extend that
  // group instead of nesting parentheses.
  if (!base.empty() && base.back() == ')' &&
      base.rfind(" (") != std::string::npos) {
    return base.substr(0, base.size() - 1) + ", " + tag + ")";
  }
  return base + " (" + tag + ")";
}

std::string IndexSizeInfo::ToString() const {
  std::ostringstream os;
  os << "SizeInfo{";
  for (size_t i = 0; i < components.size(); ++i) {
    if (i > 0) os << ", ";
    os << components[i].first << ": " << components[i].second << "B";
  }
  os << ", total: " << TotalBytes() << "B}";
  return os.str();
}

}  // namespace i3
