// Intra-process shard replication with automatic failover, snapshot-based
// online recovery, and background scrub/heal (DESIGN.md §15).
//
// A ReplicaSet keeps R byte-identical copies of one logical shard behind
// the SpatialKeywordIndex interface, so ShardedIndex (and any other
// wrapper) can treat a replicated shard exactly like a plain one:
//
//   - Writes are primary-first: every mutation is assigned a sequence
//     number under the set's op mutex, appended to a bounded replication
//     log, and applied to each healthy replica in replica order (replica
//     0 = primary). A replica whose *storage* fails mid-apply has
//     diverged and is marked failed on the spot; logical failures
//     (duplicate insert, missing delete) are deterministic across
//     replicas and fail uniformly without demoting anyone.
//   - Reads fail over transparently: Search tries the lowest healthy
//     replica first and re-issues the query to the next healthy replica
//     on any error, so a killed/corrupted/deadline-blown primary read
//     still returns the complete answer as long as one replica survives.
//     Because replicas apply the same ops in the same order from the same
//     initial state, every replica's answer -- and every replica's page
//     bytes -- is identical, which is what makes failover invisible
//     (byte-identical results) and page-level heal-by-copy sound.
//   - Recovery is snapshot + catch-up: a failed replica is rebuilt from a
//     consistent snapshot of a healthy peer (written at a captured
//     watermark under the peer's read lock, CRC-stamped by
//     storage/snapshot.h), re-homed onto the replica's own storage stack,
//     then caught up by replaying the replication log past the watermark
//     -- all while the other replicas keep serving. A snapshot whose
//     source returns corrupt pages fails cleanly (the source is demoted)
//     and recovery retries from another replica.
//   - A scrubber walks data pages at a paced rate (storage/scrub.h),
//     forcing checksum-verifying device reads, and heals a corrupt page
//     by copying its bytes from a healthy peer -- damage is repaired
//     before a query ever trips over it.
//
// Locking: per-replica shared_mutex (searches shared; writes, heals, and
// index swaps exclusive) plus one op mutex serializing write ordering and
// the log. Lock order is always op mutex -> replica mutex; background
// threads (scrub, auto-recovery) take replica locks only, so they
// interleave with queries and writers without deadlock. The set is fully
// internally synchronized -- SupportsConcurrentSearch() is true, and the
// scrub/recovery machinery runs correctly even while an outer wrapper
// (ShardedIndex) holds its own per-shard locks.
//
// The set is index-agnostic: everything type-specific (serialize to a
// snapshot, re-home a snapshot onto a replica's storage stack, raw page
// verify/read/write for scrub) is injected through ReplicaOps;
// i3/replica_ops.h provides the I3 wiring.

#ifndef I3_MODEL_REPLICA_SET_H_
#define I3_MODEL_REPLICA_SET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "model/index.h"
#include "obs/metrics.h"
#include "storage/scrub.h"

namespace i3 {

class ReplicaSet;

/// \brief Lifecycle state of one replica.
enum class ReplicaState : int {
  kHealthy = 0,    ///< serving reads, applying writes
  kFailed = 1,     ///< diverged or killed; excluded until recovered
  kRecovering = 2  ///< snapshot install / catch-up in progress
};

const char* ReplicaStateName(ReplicaState s);

/// \brief Index-type-specific operations the set needs for recovery and
/// scrubbing. All hooks may assume the index was produced by this set's
/// replica factory (i3/replica_ops.h builds the I3 wiring). `save`/`load`
/// are required for snapshot recovery; the page hooks are required for
/// scrub/heal; `quarantined_pages` feeds health reporting. A
/// default-constructed (empty) op makes the dependent feature return
/// NotSupported instead of crashing.
struct ReplicaOps {
  /// Serializes `index` to `path` (reads go through the index's own
  /// checksum layer, so a corrupt source fails here, cleanly).
  std::function<Status(SpatialKeywordIndex&, const std::string& path)> save;
  /// Restores a snapshot at `path` re-homed onto replica `replica`'s own
  /// storage stack (page file factory, buffer pool, checksum layer).
  std::function<Result<std::unique_ptr<SpatialKeywordIndex>>(
      const std::string& path, uint32_t replica)>
      load;
  /// Number of scrubbable data pages.
  std::function<uint64_t(SpatialKeywordIndex&)> page_count;
  /// Checksum-verifying device read of one page (bypassing caches);
  /// Corruption when the stored bytes are damaged.
  std::function<Status(SpatialKeywordIndex&, uint64_t page)> verify_page;
  /// Verified logical bytes of one page (the heal source).
  std::function<Result<std::vector<uint8_t>>(SpatialKeywordIndex&,
                                             uint64_t page)>
      read_page;
  /// Writes logical page bytes through (recomputing the stored checksum,
  /// invalidating derived caches, clearing quarantine) -- the heal sink.
  std::function<Status(SpatialKeywordIndex&, uint64_t page,
                       const std::vector<uint8_t>&)>
      write_page;
  /// Currently quarantined pages (health reporting).
  std::function<uint64_t(const SpatialKeywordIndex&)> quarantined_pages;
};

/// \brief Options for ReplicaSet.
struct ReplicaSetOptions {
  /// Replicas per logical shard (>= 1; 1 disables redundancy but keeps
  /// the scrub/health machinery).
  uint32_t replication_factor = 2;
  /// Replication-log bound: ops a recovering replica may lag before
  /// catch-up falls back to a fresh snapshot.
  size_t max_log_ops = 4096;
  /// Snapshot-recovery attempts (each from the then-healthiest source)
  /// before RecoverReplica gives up.
  uint32_t max_snapshot_attempts = 3;
  /// Directory for snapshot payloads; empty uses the system temp dir.
  std::string snapshot_dir;
  /// Pages each replica verifies per ScrubTick.
  uint32_t scrub_pages_per_tick = 8;
  /// Background maintenance cadence: every `maintenance_interval_ms` the
  /// set runs one ScrubTick and (with auto_recover) retries recovery of
  /// failed replicas. 0 disables the thread -- callers drive ScrubTick /
  /// RecoverReplica explicitly (the deterministic mode tests use).
  uint32_t maintenance_interval_ms = 0;
  bool auto_recover = false;
  /// Shard number, for metric labels and snapshot file names.
  uint32_t shard = 0;
};

/// \brief Health/progress snapshot of one replica.
struct ReplicaStatus {
  ReplicaState state = ReplicaState::kHealthy;
  /// Last op sequence applied.
  uint64_t watermark = 0;
  /// Ops behind the log head.
  uint64_t lag = 0;
  uint64_t quarantined_pages = 0;
  uint64_t read_failures = 0;
  uint64_t write_failures = 0;
};

/// \brief Health/progress snapshot of the whole set (rendered by /healthz).
struct ReplicaSetStatus {
  uint32_t shard = 0;
  bool replicated = false;
  /// Ops accepted by the set (log head sequence).
  uint64_t log_head = 0;
  uint64_t scrub_pages_verified = 0;
  uint64_t scrub_corrupt_found = 0;
  uint64_t scrub_pages_healed = 0;
  uint64_t failovers = 0;
  uint64_t recoveries = 0;
  std::vector<ReplicaStatus> replicas;
};

/// \brief Which replica answered a failover read.
struct ReplicaSearchReport {
  /// Replica index that served the result.
  uint32_t served_replica = 0;
  /// Replicas tried (1 = primary answered directly).
  uint32_t attempts = 0;
  /// True when a non-primary replica served (replica 0 failed or was
  /// unhealthy).
  bool failed_over = false;
};

/// \brief R byte-identical replicas of one logical shard behind one
/// SpatialKeywordIndex. See the file comment for the protocol.
class ReplicaSet final : public SpatialKeywordIndex {
 public:
  /// Builds replica `r` (0-based). Replicas must be configured
  /// structurally identically (same space, page size, signature bits,
  /// compression) -- only the storage backing may differ -- or the
  /// byte-identity invariant breaks.
  using ReplicaFactory =
      std::function<std::unique_ptr<SpatialKeywordIndex>(uint32_t replica)>;

  static Result<std::unique_ptr<ReplicaSet>> Create(
      const ReplicaFactory& factory, ReplicaOps ops,
      ReplicaSetOptions options = {});

  ~ReplicaSet() override;

  std::string Name() const override;

  Status Insert(const SpatialDocument& doc) override;
  Status Delete(const SpatialDocument& doc) override;
  Status Update(const SpatialDocument& old_doc,
                const SpatialDocument& new_doc) override;

  Result<std::vector<ScoredDoc>> Search(const Query& q,
                                        double alpha) override;

  /// \brief Search with failover bookkeeping: tries healthy replicas in
  /// ascending order, re-issuing on any per-replica failure; `report`
  /// (optional) receives which replica served and whether that was a
  /// failover. All replicas exhausted => the first failure's status.
  Result<std::vector<ScoredDoc>> SearchFailover(const Query& q, double alpha,
                                                ReplicaSearchReport* report);

  bool SupportsConcurrentSearch() const override { return true; }
  SearchStatsView LastSearchStats() const override;

  uint64_t DocumentCount() const override;
  IndexSizeInfo SizeInfo() const override;
  const IoStats& io_stats() const override;
  void ResetIoStats() override;
  void ClearCache() override;

  ReplicaSet* AsReplicaSet() override { return this; }

  uint32_t replication_factor() const {
    return static_cast<uint32_t>(replicas_.size());
  }

  ReplicaState replica_state(uint32_t r) const {
    return static_cast<ReplicaState>(
        replicas_[r]->state.load(std::memory_order_acquire));
  }

  /// \brief Marks replica `r` failed (chaos drills, admin kill). Reads
  /// and writes route around it immediately; its storage is untouched
  /// until recovery replaces the index. Failing the last healthy replica
  /// is refused (the set would have nothing left to serve from).
  Status KillReplica(uint32_t r);

  /// \brief Rebuilds replica `r` online: consistent snapshot from a
  /// healthy peer + catch-up replay of the replication log, then marks it
  /// healthy. No-op for an already-healthy replica. Serving continues
  /// throughout on the other replicas. NotSupported without save/load
  /// ops; ResourceExhausted when no healthy source exists or every
  /// snapshot attempt failed.
  Status RecoverReplica(uint32_t r);

  /// \brief RecoverReplica over every failed replica; first error wins
  /// (remaining replicas are still attempted).
  Status RecoverAll();

  /// \brief One scrub round: each healthy replica verifies the next
  /// `scrub_pages_per_tick` data pages with checksum-verifying device
  /// reads; a corrupt page is healed in place by copying its bytes from
  /// a healthy peer. Returns the first heal failure (detection without a
  /// usable peer keeps the page quarantine-guarded and is not an error).
  /// NotSupported without the page-level ops.
  Status ScrubTick();

  ReplicaSetStatus GetStatus() const;

  /// Direct replica access (tests/diagnostics); synchronization is the
  /// caller's problem for anything but stats reads.
  SpatialKeywordIndex* replica(uint32_t r) {
    return replicas_[r]->index.get();
  }

 private:
  struct Replica {
    std::unique_ptr<SpatialKeywordIndex> index;
    /// Searches shared; writes, heals, and index swaps exclusive.
    mutable std::shared_mutex mutex;
    /// Search serialization for non-reader-safe implementations.
    mutable std::mutex query_mutex;
    bool serialize_queries = false;
    std::atomic<int> state{static_cast<int>(ReplicaState::kHealthy)};
    /// Last op sequence applied (written under mutex; read lock-free by
    /// status reporting).
    std::atomic<uint64_t> watermark{0};
    std::atomic<uint64_t> read_failures{0};
    std::atomic<uint64_t> write_failures{0};
    /// Scrub walk state; touched only under scrub_mutex_.
    ScrubCursor scrub_cursor{1};
  };

  /// One replicated mutation in the log.
  struct Op {
    enum class Kind : uint8_t { kInsert, kDelete, kUpdate };
    Kind kind = Kind::kInsert;
    uint64_t seq = 0;
    SpatialDocument doc;      ///< insert/delete doc; update's new doc
    SpatialDocument old_doc;  ///< update only
  };

  ReplicaSet(std::vector<std::unique_ptr<SpatialKeywordIndex>> replicas,
             ReplicaOps ops, ReplicaSetOptions options);

  /// True when `st` means the replica's storage diverged (vs a
  /// deterministic logical failure every replica shares).
  static bool IsStorageFailure(const Status& st);

  /// Applies `op` to one replica's index (caller holds the replica's
  /// exclusive lock).
  Status ApplyOp(SpatialKeywordIndex& index, const Op& op);

  /// \brief The write path: assigns a sequence under op_mutex_, logs the
  /// op, applies it to every healthy replica primary-first. Returns the
  /// outcome of the first healthy replica (the deterministic logical
  /// result); storage failures demote the affected replica and are
  /// surfaced only when *no* replica applied the op.
  Status Replicate(Op op);

  void MarkFailed(uint32_t r, const char* why);

  /// Lowest healthy replica != `exclude` (UINT32_MAX = none).
  uint32_t PickHealthySource(uint32_t exclude) const;

  /// One snapshot + install attempt for replica `r` from `source`.
  Status SnapshotInto(uint32_t r, uint32_t source);

  /// Replays logged ops past replica `r`'s watermark; flips it healthy
  /// under op_mutex_ once caught up. OutOfRange when the log was trimmed
  /// past the replica's watermark (caller retakes a snapshot).
  Status CatchUp(uint32_t r);

  /// Heals one corrupt page of replica `r` from any healthy peer.
  Status HealPage(uint32_t r, uint64_t page);

  /// Unique payload path for one snapshot attempt of replica `r`.
  std::string SnapshotPath(uint32_t r);

  /// Refreshes the healthy-count and per-replica lag gauges.
  void UpdateHealthGauges();

  void MaintenanceLoop();

  std::vector<std::unique_ptr<Replica>> replicas_;
  ReplicaOps ops_;
  ReplicaSetOptions options_;

  /// Serializes write ordering, the log, and recovery commit points.
  mutable std::mutex op_mutex_;
  std::deque<Op> log_;
  /// Sequence of the last accepted op. Written only under op_mutex_;
  /// atomic so gauge/status readers can load it without the mutex.
  std::atomic<uint64_t> log_head_{0};
  /// Snapshot file uniquifier (one temp dir may host many sets).
  std::atomic<uint64_t> snapshot_seq_{0};

  /// Serializes ScrubTick (cursors + scrub counters); independent of the
  /// query/write locks.
  mutable std::mutex scrub_mutex_;
  std::atomic<uint64_t> scrub_pages_verified_{0};
  std::atomic<uint64_t> scrub_corrupt_found_{0};
  std::atomic<uint64_t> scrub_pages_healed_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> recoveries_{0};
  /// Replica that served the most recent successful Search (feeds
  /// LastSearchStats through to the right underlying index).
  std::atomic<uint32_t> last_served_{0};

  /// Background maintenance thread (present iff interval > 0).
  std::thread maintenance_;
  std::mutex maintenance_mutex_;
  std::condition_variable maintenance_cv_;
  bool stopping_ = false;

  mutable std::mutex stats_mutex_;
  mutable IoStats merged_stats_;  ///< scratch for io_stats()

  // Metric handles, cached at construction (obs/metrics.h: the registry
  // is never touched on a hot path).
  obs::Counter* failover_metric_;
  obs::Counter* replica_write_failures_metric_;
  obs::Counter* replica_recoveries_metric_;
  obs::Counter* scrub_pages_metric_;
  obs::Counter* scrub_corrupt_metric_;
  obs::Counter* scrub_healed_metric_;
  obs::Gauge* healthy_replicas_metric_;
  /// Per-replica lag gauges, indexed by replica.
  std::vector<obs::Gauge*> lag_metrics_;
};

}  // namespace i3

#endif  // I3_MODEL_REPLICA_SET_H_
