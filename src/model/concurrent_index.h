// A thread-safety decorator for SpatialKeywordIndex.
//
// The index implementations are single-threaded by design (the paper's
// setting). ConcurrentIndex makes any of them safe to share: writers
// (Insert/Delete/Update) take an exclusive lock, readers (Search and the
// stats accessors) a shared lock. Search is declared non-const on the
// interface because implementations touch caches and I/O counters, so
// readers serialize those side effects behind the same shared lock plus a
// small internal mutex where needed; the coarse-grained design favours
// obviousness over scalability, which is appropriate for an index whose
// queries are millisecond-scale.
//
// Caveat: std::shared_mutex on glibc is reader-preferring. A reader pool
// that re-acquires the shared lock in a tight loop can starve writers;
// pace readers (or bound their work) in write-heavy deployments.

#ifndef I3_MODEL_CONCURRENT_INDEX_H_
#define I3_MODEL_CONCURRENT_INDEX_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "model/index.h"

namespace i3 {

/// \brief Wraps an index with reader-writer locking.
class ConcurrentIndex final : public SpatialKeywordIndex {
 public:
  explicit ConcurrentIndex(std::unique_ptr<SpatialKeywordIndex> base)
      : base_(std::move(base)) {}

  std::string Name() const override {
    return base_->Name() + " (concurrent)";
  }

  Status Insert(const SpatialDocument& doc) override {
    std::unique_lock lock(mutex_);
    return base_->Insert(doc);
  }

  Status Delete(const SpatialDocument& doc) override {
    std::unique_lock lock(mutex_);
    return base_->Delete(doc);
  }

  Status Update(const SpatialDocument& old_doc,
                const SpatialDocument& new_doc) override {
    // One exclusive section for the whole update: readers never observe
    // the document half-removed.
    std::unique_lock lock(mutex_);
    I3_RETURN_NOT_OK(base_->Delete(old_doc));
    return base_->Insert(new_doc);
  }

  Result<std::vector<ScoredDoc>> Search(const Query& q,
                                        double alpha) override {
    // Queries mutate per-query statistics and cache state inside the
    // implementations, so they serialize against each other with a second
    // mutex while still excluding writers via the shared lock.
    std::shared_lock lock(mutex_);
    std::lock_guard<std::mutex> query_lock(query_mutex_);
    return base_->Search(q, alpha);
  }

  uint64_t DocumentCount() const override {
    std::shared_lock lock(mutex_);
    return base_->DocumentCount();
  }

  IndexSizeInfo SizeInfo() const override {
    std::shared_lock lock(mutex_);
    return base_->SizeInfo();
  }

  const IoStats& io_stats() const override {
    std::shared_lock lock(mutex_);
    return base_->io_stats();
  }

  void ResetIoStats() override {
    std::unique_lock lock(mutex_);
    base_->ResetIoStats();
  }

  void ClearCache() override {
    std::unique_lock lock(mutex_);
    base_->ClearCache();
  }

  /// The wrapped index; synchronization is the caller's problem once this
  /// escapes.
  SpatialKeywordIndex* base() { return base_.get(); }

 private:
  std::unique_ptr<SpatialKeywordIndex> base_;
  mutable std::shared_mutex mutex_;
  mutable std::mutex query_mutex_;
};

}  // namespace i3

#endif  // I3_MODEL_CONCURRENT_INDEX_H_
