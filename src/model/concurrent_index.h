// A thread-safety decorator for SpatialKeywordIndex.
//
// ConcurrentIndex makes any index safe to share: writers (Insert/Delete/
// Update) take an exclusive lock, readers (Search and the stats accessors)
// a shared lock. Whether readers also serialize against each other depends
// on the wrapped index: implementations whose query path is reader-safe
// (SupportsConcurrentSearch() == true, e.g. I3 and BruteForce, whose
// per-query state lives on the stack and whose I/O counters are atomic)
// run Search fully in parallel; the rest (IR-tree, S2I, whose query paths
// still write per-index scratch) fall back to a query mutex so correctness
// never depends on the caller knowing the implementation.
//
// Fairness caveats:
//  - std::shared_mutex on glibc is reader-preferring. A reader pool that
//    re-acquires the shared lock in a tight loop can starve writers; pace
//    readers (or bound their work) in write-heavy deployments.
//  - The serialized fallback (and ConcurrentIndexOptions::
//    force_serialized_queries) hands the query mutex to readers in an
//    unspecified order; under heavy contention individual queries can see
//    unbounded latency even though throughput is fair on average. For
//    scalable read throughput over a reader-safe index, prefer
//    ShardedIndex, which also spreads the work.

#ifndef I3_MODEL_CONCURRENT_INDEX_H_
#define I3_MODEL_CONCURRENT_INDEX_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "model/index.h"

namespace i3 {

/// \brief Options for ConcurrentIndex.
struct ConcurrentIndexOptions {
  /// Serialize Search calls even when the wrapped index is reader-safe.
  /// This reproduces the wrapper's historical coarse-grained behaviour and
  /// serves as the baseline in bench_concurrency.
  bool force_serialized_queries = false;
};

/// \brief Wraps an index with reader-writer locking.
class ConcurrentIndex final : public SpatialKeywordIndex {
 public:
  explicit ConcurrentIndex(std::unique_ptr<SpatialKeywordIndex> base,
                           ConcurrentIndexOptions options = {})
      : base_(std::move(base)),
        options_(options),
        serialize_queries_(options_.force_serialized_queries ||
                           !base_->SupportsConcurrentSearch()) {}

  std::string Name() const override {
    return ComposeIndexName(base_->Name(), "concurrent");
  }

  Status Insert(const SpatialDocument& doc) override {
    std::unique_lock lock(mutex_);
    return base_->Insert(doc);
  }

  Status Delete(const SpatialDocument& doc) override {
    std::unique_lock lock(mutex_);
    return base_->Delete(doc);
  }

  Status Update(const SpatialDocument& old_doc,
                const SpatialDocument& new_doc) override {
    // One exclusive section for the whole update: readers never observe
    // the document half-removed.
    std::unique_lock lock(mutex_);
    I3_RETURN_NOT_OK(base_->Delete(old_doc));
    return base_->Insert(new_doc);
  }

  Result<std::vector<ScoredDoc>> Search(const Query& q,
                                        double alpha) override {
    std::shared_lock lock(mutex_);
    if (serialize_queries_) {
      // The wrapped implementation mutates per-index scratch during a
      // query (or the caller asked for the serialized baseline), so
      // readers exclude each other while still excluding writers via the
      // shared lock.
      std::lock_guard<std::mutex> query_lock(query_mutex_);
      return base_->Search(q, alpha);
    }
    return base_->Search(q, alpha);
  }

  /// Search is always safe to call concurrently on this wrapper (it
  /// serializes internally when the base requires it).
  bool SupportsConcurrentSearch() const override { return true; }

  uint64_t DocumentCount() const override {
    std::shared_lock lock(mutex_);
    return base_->DocumentCount();
  }

  IndexSizeInfo SizeInfo() const override {
    std::shared_lock lock(mutex_);
    return base_->SizeInfo();
  }

  const IoStats& io_stats() const override {
    std::shared_lock lock(mutex_);
    return base_->io_stats();
  }

  void ResetIoStats() override {
    std::unique_lock lock(mutex_);
    base_->ResetIoStats();
  }

  void ClearCache() override {
    std::unique_lock lock(mutex_);
    base_->ClearCache();
  }

  /// True if Search calls serialize against each other (wrapped index not
  /// reader-safe, or forced by options).
  bool serializes_queries() const { return serialize_queries_; }

  /// The wrapped index; synchronization is the caller's problem once this
  /// escapes.
  SpatialKeywordIndex* base() { return base_.get(); }

 private:
  std::unique_ptr<SpatialKeywordIndex> base_;
  const ConcurrentIndexOptions options_;
  const bool serialize_queries_;
  mutable std::shared_mutex mutex_;
  mutable std::mutex query_mutex_;
};

}  // namespace i3

#endif  // I3_MODEL_CONCURRENT_INDEX_H_
