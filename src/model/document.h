// The data model of the paper (Section 3): spatial documents and the
// one-keyword spatial tuples produced by textual-first partitioning.

#ifndef I3_MODEL_DOCUMENT_H_
#define I3_MODEL_DOCUMENT_H_

#include <cstdint>
#include <vector>

#include "common/geo.h"
#include "text/tfidf.h"

namespace i3 {

/// Document identifier.
using DocId = uint32_t;
constexpr DocId kInvalidDocId = UINT32_MAX;

/// \brief A spatial document: D = <id, lat, lng, {(w_i, s_i)}>.
///
/// `location.x` holds the longitude-like coordinate and `location.y` the
/// latitude-like one. `terms` is sorted by TermId and contains no
/// duplicates; every weight is in (0, 1].
struct SpatialDocument {
  DocId id = kInvalidDocId;
  Point location;
  std::vector<WeightedTerm> terms;

  /// \brief Weight of `term` in this document, or 0 if absent.
  /// O(log |terms|) via binary search on the sorted term vector.
  float WeightOf(TermId term) const;

  /// \brief True if the document contains `term`.
  bool Contains(TermId term) const { return WeightOf(term) > 0.0f; }
};

/// \brief A spatial tuple: T = <w, doc_id, lat, lng, s> -- one keyword of
/// one document, the unit of textual-first partitioning (Section 4.1).
struct SpatialTuple {
  TermId term = kInvalidTermId;
  DocId doc = kInvalidDocId;
  Point location;
  float weight = 0.0f;

  bool operator==(const SpatialTuple& o) const {
    return term == o.term && doc == o.doc && location == o.location &&
           weight == o.weight;
  }
};

/// \brief Splits a document into its per-keyword tuples.
std::vector<SpatialTuple> PartitionDocument(const SpatialDocument& doc);

}  // namespace i3

#endif  // I3_MODEL_DOCUMENT_H_
