#include "model/brute_force.h"

namespace i3 {

Status BruteForceIndex::Insert(const SpatialDocument& doc) {
  if (doc.id == kInvalidDocId) {
    return Status::InvalidArgument("invalid document id");
  }
  auto [it, inserted] = docs_.emplace(doc.id, doc);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("document " + std::to_string(doc.id) +
                                 " already indexed");
  }
  return Status::OK();
}

Status BruteForceIndex::Delete(const SpatialDocument& doc) {
  if (docs_.erase(doc.id) == 0) {
    return Status::NotFound("document " + std::to_string(doc.id) +
                            " not indexed");
  }
  return Status::OK();
}

Result<std::vector<ScoredDoc>> BruteForceIndex::Search(const Query& q,
                                                       double alpha) {
  Query query = q;
  query.Normalize();
  const Scorer scorer(space_, alpha);
  TopKHeap heap(query.k);
  for (const auto& [id, doc] : docs_) {
    if (!scorer.IsCandidate(query, doc)) continue;
    heap.Offer(id, scorer.Score(query, doc), doc.location);
  }
  return heap.Take();
}

IndexSizeInfo BruteForceIndex::SizeInfo() const {
  uint64_t bytes = 0;
  for (const auto& [id, doc] : docs_) {
    (void)id;
    bytes += sizeof(SpatialDocument) + doc.terms.size() * sizeof(WeightedTerm);
  }
  return IndexSizeInfo{{{"documents", bytes}}};
}

}  // namespace i3
