// Linear-scan oracle: scores every stored document. O(N) per query, used as
// the gold standard in correctness and property tests, and as the "no index"
// reference point in the examples.

#ifndef I3_MODEL_BRUTE_FORCE_H_
#define I3_MODEL_BRUTE_FORCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "model/index.h"
#include "model/scorer.h"
#include "model/topk.h"

namespace i3 {

/// \brief Exhaustive-scan implementation of SpatialKeywordIndex.
class BruteForceIndex final : public SpatialKeywordIndex {
 public:
  /// \param space data-space rectangle used to normalize distances.
  explicit BruteForceIndex(const Rect& space) : space_(space) {}

  std::string Name() const override { return "BruteForce"; }

  Status Insert(const SpatialDocument& doc) override;
  Status Delete(const SpatialDocument& doc) override;
  Result<std::vector<ScoredDoc>> Search(const Query& q,
                                        double alpha) override;

  /// Search only reads docs_ into stack-local state.
  bool SupportsConcurrentSearch() const override { return true; }

  uint64_t DocumentCount() const override { return docs_.size(); }
  IndexSizeInfo SizeInfo() const override;
  const IoStats& io_stats() const override { return io_stats_; }
  void ResetIoStats() override { io_stats_.Reset(); }

 private:
  Rect space_;
  std::unordered_map<DocId, SpatialDocument> docs_;
  IoStats io_stats_;
};

}  // namespace i3

#endif  // I3_MODEL_BRUTE_FORCE_H_
