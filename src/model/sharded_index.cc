#include "model/sharded_index.h"

#include <algorithm>
#include <utility>

#include "common/deadline.h"
#include "model/topk.h"

namespace i3 {

namespace {

/// SplitMix64-style mixer: DocIds are often sequential, so shard assignment
/// must not be `id % N` (that would put every N-th insert on the same shard
/// under strided writers and skew range-correlated workloads).
inline uint64_t MixDocId(DocId doc) {
  uint64_t z = static_cast<uint64_t>(doc) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Result<std::unique_ptr<ShardedIndex>> ShardedIndex::Create(
    const ShardFactory& factory, ShardedIndexOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::vector<std::unique_ptr<SpatialKeywordIndex>> shards;
  shards.reserve(options.num_shards);
  for (uint32_t i = 0; i < options.num_shards; ++i) {
    auto shard = factory(i);
    if (shard == nullptr) {
      return Status::InvalidArgument("shard factory returned null for shard " +
                                     std::to_string(i));
    }
    shards.push_back(std::move(shard));
  }
  return std::make_unique<ShardedIndex>(std::move(shards), options);
}

ShardedIndex::ShardedIndex(
    std::vector<std::unique_ptr<SpatialKeywordIndex>> shards,
    ShardedIndexOptions options)
    : options_(options) {
  shards_.reserve(shards.size());
  for (auto& index : shards) {
    auto s = std::make_unique<Shard>();
    s->serialize_queries = !index->SupportsConcurrentSearch();
    s->index = std::move(index);
    s->replica_set = s->index->AsReplicaSet();
    shards_.push_back(std::move(s));
  }
  if (options_.search_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.search_threads);
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  search_latency_us_[0] =
      reg.GetHistogram("i3_query_latency_us", "End-to-end Search latency.",
                       {{"index", "sharded"}, {"semantics", "and"}});
  search_latency_us_[1] =
      reg.GetHistogram("i3_query_latency_us", "End-to-end Search latency.",
                       {{"index", "sharded"}, {"semantics", "or"}});
  degraded_metric_ = reg.GetCounter(
      "i3_degraded_queries_total",
      "Queries answered with a partial top-k after shard failures.");
  shard_stage_names_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    // One stage name per (shard, serving replica): the primary keeps the
    // bare "shardN" so unreplicated traces look unchanged, and a failover
    // renames the stage to "shardN.rR" -- /tracez then shows which
    // replica answered without a separate annotation.
    const uint32_t replicas = shards_[i]->replica_set != nullptr
                                  ? shards_[i]->replica_set
                                        ->replication_factor()
                                  : 1;
    std::vector<std::string> names;
    names.reserve(replicas);
    names.push_back("shard" + std::to_string(i));
    for (uint32_t r = 1; r < replicas; ++r) {
      names.push_back("shard" + std::to_string(i) + ".r" +
                      std::to_string(r));
    }
    shard_stage_names_.push_back(std::move(names));
    shards_[i]->latency_us = reg.GetHistogram(
        "i3_shard_search_latency_us", "Per-shard local top-k latency.",
        {{"shard", std::to_string(i)}});
  }
}

std::string ShardedIndex::Name() const {
  return ComposeIndexName(shards_[0]->index->Name(),
                          "sharded x" + std::to_string(shards_.size()));
}

uint32_t ShardedIndex::ShardOf(DocId doc) const {
  return static_cast<uint32_t>(MixDocId(doc) % shards_.size());
}

Status ShardedIndex::Insert(const SpatialDocument& doc) {
  Shard& s = *shards_[ShardOf(doc.id)];
  std::unique_lock lock(s.mutex);
  const Status st = s.index->Insert(doc);
  lock.unlock();
  // Bumped *after* the mutation: a result cached under a generation
  // captured before its search began is then stale the moment any write
  // that could have raced that search completes. (Bumping before the
  // write would let a search started in between carry the new generation
  // while reading pre-mutation pages.) Failed writes bump too -- they may
  // have touched pages before erroring.
  generation_.fetch_add(1, std::memory_order_release);
  return st;
}

Status ShardedIndex::Delete(const SpatialDocument& doc) {
  Shard& s = *shards_[ShardOf(doc.id)];
  std::unique_lock lock(s.mutex);
  const Status st = s.index->Delete(doc);
  lock.unlock();
  generation_.fetch_add(1, std::memory_order_release);  // see Insert
  return st;
}

Status ShardedIndex::Update(const SpatialDocument& old_doc,
                            const SpatialDocument& new_doc) {
  // Every return path below bumps the generation (see Insert).
  struct BumpOnExit {
    std::atomic<uint64_t>* gen;
    ~BumpOnExit() { gen->fetch_add(1, std::memory_order_release); }
  } bump{&generation_};
  const uint32_t from = ShardOf(old_doc.id);
  const uint32_t to = ShardOf(new_doc.id);
  if (from == to) {
    Shard& s = *shards_[from];
    std::unique_lock lock(s.mutex);
    I3_RETURN_NOT_OK(s.index->Delete(old_doc));
    return s.index->Insert(new_doc);
  }
  // Cross-shard id change: lock both shards in index order so concurrent
  // updates crossing the opposite way cannot deadlock. Readers of *other*
  // shards proceed; a reader fanning across both shards between the two
  // lock acquisitions could observe neither version -- the same
  // delete-then-insert window the single-index Update closes. Callers that
  // need cross-shard update atomicity must quiesce searches.
  Shard& first = *shards_[std::min(from, to)];
  Shard& second = *shards_[std::max(from, to)];
  std::unique_lock lock_first(first.mutex);
  std::unique_lock lock_second(second.mutex);
  I3_RETURN_NOT_OK(shards_[from]->index->Delete(old_doc));
  return shards_[to]->index->Insert(new_doc);
}

Result<std::vector<ScoredDoc>> ShardedIndex::SearchShard(
    const Shard& s, const Query& q, double alpha,
    ReplicaSearchReport* report) const {
  *report = {};
  std::shared_lock lock(s.mutex);
  const uint64_t start_ns = obs::NowNanos();
  Result<std::vector<ScoredDoc>> res = [&] {
    // A replicated shard handles its own retry: a failed (or
    // deadline-blown) primary read is re-issued to a healthy follower
    // before this fan-out ever sees an error, so degradation only
    // surfaces when every replica of the shard is down.
    if (s.replica_set != nullptr) {
      return s.replica_set->SearchFailover(q, alpha, report);
    }
    if (s.serialize_queries) {
      std::lock_guard<std::mutex> query_lock(s.query_mutex);
      return s.index->Search(q, alpha);
    }
    return s.index->Search(q, alpha);
  }();
  s.latency_us->Record((obs::NowNanos() - start_ns) / 1000);
  return res;
}

std::vector<ScoredDoc> ShardedIndex::MergeTopK(
    const std::vector<std::vector<ScoredDoc>>& per_shard, uint32_t k) {
  // Each document lives in exactly one shard, so offering every local
  // result reproduces the single-index total order (score desc, DocId asc)
  // regardless of shard visit order.
  TopKHeap heap(k);
  for (const auto& results : per_shard) {
    for (const ScoredDoc& r : results) heap.Offer(r.doc, r.score, r.location);
  }
  return heap.Take();
}

Result<std::vector<ScoredDoc>> ShardedIndex::SearchSequential(
    const Query& q, double alpha, obs::QueryTrace* trace,
    FanOutOutcome* outcome) const {
  const DeadlineTimer deadline =
      DeadlineTimer::AtSteadyNanos(q.control.deadline_ns);
  std::vector<std::vector<ScoredDoc>> per_shard(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    // A sequential sweep past the deadline must not pay for the remaining
    // shards: mark them overrun and let the merge degrade (the shards
    // already swept still count).
    if (outcome != nullptr && deadline.Expired()) {
      outcome->RecordFailure(
          i, Status::DeadlineExceeded("query deadline exceeded"));
      continue;
    }
    const uint64_t t0 = trace != nullptr ? obs::NowNanos() : 0;
    ReplicaSearchReport report;
    auto res = SearchShard(*shards_[i], q, alpha, &report);
    if (trace != nullptr) {
      trace->AddStage(StageName(i, report), obs::NowNanos() - t0);
    }
    if (!res.ok()) {
      if (outcome == nullptr) return res.status();  // strict (SearchMany)
      outcome->RecordFailure(i, res.status());
      continue;
    }
    if (outcome != nullptr) outcome->RecordServed(i, report);
    per_shard[i] = res.MoveValue();
  }
  if (outcome != nullptr) {
    outcome->shards = static_cast<uint32_t>(shards_.size());
    if (outcome->failed == shards_.size()) return outcome->first_error;
  }
  return MergeTopK(per_shard, q.k);
}

Result<std::vector<ScoredDoc>> ShardedIndex::Search(const Query& q,
                                                    double alpha) {
  const uint64_t start_ns = obs::NowNanos();
  // Request-scoped sink wins over sampling (see I3Index::Search): the
  // caller publishes the timeline, the sampled ring stays untouched.
  obs::QueryTrace* request_trace = q.control.trace;
  obs::QueryTrace trace_storage;
  obs::QueryTrace* trace = request_trace;
  if (trace == nullptr &&
      obs::Tracer::Global().StartTrace("Sharded.Search", &trace_storage)) {
    trace = &trace_storage;
  }
  FanOutOutcome outcome;
  auto result = SearchFanOut(q, alpha, trace, &outcome);
  search_latency_us_[q.semantics == Semantics::kAnd ? 0 : 1]->Record(
      (obs::NowNanos() - start_ns) / 1000);
  const bool degraded = result.ok() && outcome.failed > 0;
  if (degraded) degraded_metric_->Increment(1);
  if (trace != nullptr) {
    trace->Annotate("shards", shards_.size());
    trace->Annotate("failed_shards", outcome.failed);
    if (outcome.failovers > 0) trace->Annotate("failovers", outcome.failovers);
    if (degraded) trace->Annotate("degraded", 1);
    if (result.ok()) trace->Annotate("results", result.ValueOrDie().size());
    if (trace != request_trace)
      obs::Tracer::Global().Finish(std::move(*trace));
  }
  SearchStatsView view;
  view.Set("shards", shards_.size());
  view.Set("failed_shards", outcome.failed);
  view.Set("failed_shard_mask", outcome.failed_mask);
  view.Set("degraded", degraded ? 1 : 0);
  view.Set("failovers", outcome.failovers);
  view.Set("served_replica_by_shard", outcome.served_replica_nibbles);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    last_search_stats_ = view;
    if (degraded) ++degraded_queries_;
  }
  return result;
}

Result<std::vector<ScoredDoc>> ShardedIndex::SearchFanOut(
    const Query& q, double alpha, obs::QueryTrace* trace,
    FanOutOutcome* outcome) const {
  if (pool_ == nullptr || shards_.size() == 1) {
    return SearchSequential(q, alpha, trace, outcome);
  }
  std::vector<Result<std::vector<ScoredDoc>>> results(
      shards_.size(),
      Result<std::vector<ScoredDoc>>(std::vector<ScoredDoc>{}));
  // Per-shard wall times and replica reports are captured in preallocated
  // slots per shard (no shared trace mutation from the workers) and folded
  // into the trace after the barrier.
  std::vector<uint64_t> shard_ns;
  if (trace != nullptr) shard_ns.assign(shards_.size(), 0);
  std::vector<ReplicaSearchReport> reports(shards_.size());
  // The fan-out workers share one Query; a request-scoped span sink is a
  // single-writer structure, so shards must not write it concurrently.
  // The parallel path detaches it (per-shard wall times below still reach
  // the trace after the barrier); only the sequential path gets inner
  // per-shard stage detail.
  Query q_shard = q;
  q_shard.control.trace = nullptr;
  pool_->ParallelFor(shards_.size(), [&](size_t i) {
    const uint64_t t0 = trace != nullptr ? obs::NowNanos() : 0;
    results[i] = SearchShard(*shards_[i], q_shard, alpha, &reports[i]);
    if (trace != nullptr) shard_ns[i] = obs::NowNanos() - t0;
  });
  if (trace != nullptr) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      trace->AddStage(StageName(i, reports[i]), shard_ns[i]);
    }
  }
  // Failure isolation: a failing shard (storage fault, deadline overrun)
  // removes only its own documents from the merge; the lowest failing
  // shard's error is kept for the all-failed case so the surfaced error
  // stays deterministic and matches the sequential path.
  outcome->shards = static_cast<uint32_t>(shards_.size());
  std::vector<std::vector<ScoredDoc>> per_shard(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!results[i].ok()) {
      outcome->RecordFailure(i, results[i].status());
      continue;
    }
    outcome->RecordServed(i, reports[i]);
    per_shard[i] = results[i].MoveValue();
  }
  if (outcome->failed == shards_.size()) return outcome->first_error;
  return MergeTopK(per_shard, q.k);
}

Result<std::vector<std::vector<ScoredDoc>>> ShardedIndex::SearchMany(
    const std::vector<Query>& queries, double alpha) {
  std::vector<std::vector<ScoredDoc>> out(queries.size());
  if (pool_ == nullptr || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      const uint64_t t0 = obs::NowNanos();
      auto res = SearchSequential(queries[i], alpha);
      search_latency_us_[queries[i].semantics == Semantics::kAnd ? 0 : 1]
          ->Record((obs::NowNanos() - t0) / 1000);
      if (!res.ok()) return res.status();
      out[i] = res.MoveValue();
    }
    return out;
  }
  std::mutex error_mutex;
  Status first_error = Status::OK();
  size_t first_error_index = queries.size();
  pool_->ParallelFor(queries.size(), [&](size_t i) {
    const uint64_t t0 = obs::NowNanos();
    auto res = SearchSequential(queries[i], alpha);
    search_latency_us_[queries[i].semantics == Semantics::kAnd ? 0 : 1]
        ->Record((obs::NowNanos() - t0) / 1000);
    if (res.ok()) {
      out[i] = res.MoveValue();
    } else {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (i < first_error_index) {
        first_error_index = i;
        first_error = res.status();
      }
    }
  });
  if (!first_error.ok()) return first_error;
  return out;
}

std::vector<ShardedIndex::BatchItemResult> ShardedIndex::SearchBatch(
    const std::vector<BatchItem>& items) {
  std::vector<BatchItemResult> out(items.size());
  auto run_one = [&](size_t i) {
    const uint64_t t0 = obs::NowNanos();
    FanOutOutcome outcome;
    // A traced request rides its span sink in the query control; the
    // executing worker is the only writer, so per-shard stages land in
    // the request's own timeline without synchronization.
    auto res = SearchSequential(items[i].query, items[i].alpha,
                                items[i].query.control.trace, &outcome);
    const uint64_t elapsed_ns = obs::NowNanos() - t0;
    search_latency_us_[items[i].query.semantics == Semantics::kAnd ? 0 : 1]
        ->Record(elapsed_ns / 1000);
    BatchItemResult& r = out[i];
    r.search_ns = elapsed_ns;
    r.failed_shards = outcome.failed;
    r.failovers = outcome.failovers;
    if (!res.ok()) {
      r.status = res.status();
      return;
    }
    r.results = res.MoveValue();
    r.degraded = outcome.failed > 0;
    if (r.degraded) {
      r.first_error = outcome.first_error;
      degraded_metric_->Increment(1);
    }
  };
  if (pool_ == nullptr || items.size() <= 1) {
    for (size_t i = 0; i < items.size(); ++i) run_one(i);
  } else {
    pool_->ParallelFor(items.size(), run_one);
  }
  if (!items.empty()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (const BatchItemResult& r : out) {
      if (r.degraded) ++degraded_queries_;
    }
  }
  return out;
}

std::vector<ReplicaSetStatus> ShardedIndex::ShardReplicaStatuses() const {
  std::vector<ReplicaSetStatus> out;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->replica_set == nullptr) continue;
    ReplicaSetStatus st = shards_[i]->replica_set->GetStatus();
    st.shard = static_cast<uint32_t>(i);
    out.push_back(std::move(st));
  }
  return out;
}

uint64_t ShardedIndex::DocumentCount() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    std::shared_lock lock(s->mutex);
    total += s->index->DocumentCount();
  }
  return total;
}

IndexSizeInfo ShardedIndex::SizeInfo() const {
  IndexSizeInfo info;
  for (const auto& s : shards_) {
    std::shared_lock lock(s->mutex);
    info.MergeFrom(s->index->SizeInfo());
  }
  return info;
}

const IoStats& ShardedIndex::io_stats() const {
  // Merged-on-read aggregate (see the header's IoStats aggregation rule).
  // The lock serializes concurrent accessors; the reference is stable only
  // until the next io_stats() call -- copy it for a durable snapshot.
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  merged_stats_.Reset();
  for (const auto& s : shards_) {
    std::shared_lock lock(s->mutex);
    merged_stats_.MergeFrom(s->index->io_stats());
  }
  return merged_stats_;
}

void ShardedIndex::ResetIoStats() {
  for (auto& s : shards_) {
    std::unique_lock lock(s->mutex);
    s->index->ResetIoStats();
  }
}

void ShardedIndex::ClearCache() {
  for (auto& s : shards_) {
    std::unique_lock lock(s->mutex);
    s->index->ClearCache();
  }
  // ClearCache is a request for cold behavior: bump the generation so
  // result caches keyed on it (net/result_cache.h) stop serving answers
  // computed before the clear as well.
  generation_.fetch_add(1, std::memory_order_release);
}

}  // namespace i3
