// Sharded parallel execution over N inner indexes.
//
// The paper partitions by keyword so per-query work is bounded; this layer
// extends the decomposition across threads: documents are hash-partitioned
// by DocId over N shards (each a full SpatialKeywordIndex covering the whole
// data space), writers lock only the target shard, and a top-k query fans
// out to every shard's local top-k and merges.
//
// Merge contract: because every document lives in exactly one shard and its
// score depends only on the document and the query (Section 3's ranking
// function has no cross-document terms), the global top-k is a subset of
// the union of the shards' local top-k lists. Merging through TopKHeap
// reproduces the single-index ordering exactly -- decreasing score, ties by
// increasing DocId -- so a ShardedIndex over I3 returns byte-identical
// results to an unsharded I3Index on the same corpus (asserted by
// tests/test_sharded.cc).
//
// Locking: one shared_mutex per shard (writers exclusive, searches shared).
// Shards whose implementation is not reader-safe
// (!SupportsConcurrentSearch()) additionally serialize their searches
// behind a per-shard query mutex -- cross-shard parallelism then still
// applies. IoStats aggregation rule: every shard keeps its own (atomic)
// counters; io_stats() merges them on read, so concurrent shard searches
// never contend on a shared counter cache line and the aggregate is a
// per-counter snapshot, not a cross-shard atomic cut.
//
// Degradation contract (fault tolerance): the fan-out isolates per-shard
// failures. When some -- but not all -- shards fail (storage error,
// exhausted retries, or a per-query deadline), Search still returns ok with
// the merge of the shards that answered, and flags the response as degraded:
// LastSearchStats() reports {degraded=1, failed_shards, failed_shard_mask}
// and `i3_degraded_queries_total` is incremented. A degraded top-k is a
// correct top-k of the surviving shards' documents -- scores are exact, but
// documents homed on failed shards are silently absent, which is why the
// flag must accompany the result. When every shard fails, the first shard's
// (by shard order, deterministically) error is returned, matching the
// sequential path and the unsharded index.
//
// Replication (DESIGN.md §15): a shard built as a ReplicaSet
// (model/replica_set.h) promotes degradation to transparent retry -- a
// failed or deadline-blown primary read is re-issued to a healthy follower
// *inside* the shard sweep, before the merge, so the query completes with
// byte-identical results and `degraded` becomes the last resort (every
// replica of a shard down). The fan-out records which attempt served each
// shard: LastSearchStats() adds {failovers, served_replica_by_shard} (the
// latter nibble-packed, 4 bits per shard for the first 16 shards) and the
// trace stage for a failed-over shard is named "shardN.rR" instead of
// "shardN", so /tracez shows failover per shard.

#ifndef I3_MODEL_SHARDED_INDEX_H_
#define I3_MODEL_SHARDED_INDEX_H_

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "model/index.h"
#include "model/replica_set.h"
#include "obs/trace.h"

namespace i3 {

/// \brief Options for ShardedIndex.
struct ShardedIndexOptions {
  /// Number of shards created by Create().
  uint32_t num_shards = 8;

  /// Worker threads for the per-query shard fan-out. 0 visits the shards
  /// sequentially on the caller's thread -- the right choice for
  /// query-throughput workloads where many caller threads (or SearchMany)
  /// already saturate the cores; a nonzero pool parallelizes a *single*
  /// query's latency instead.
  uint32_t search_threads = 0;
};

/// \brief Hash-partitions documents across N inner indexes and fans
/// searches out to all of them.
class ShardedIndex final : public SpatialKeywordIndex {
 public:
  /// Builds shard `i` (0-based). All shards must be configured identically
  /// (same space, page size, eta, ...) or results will diverge from an
  /// unsharded index.
  using ShardFactory =
      std::function<std::unique_ptr<SpatialKeywordIndex>(uint32_t shard)>;

  /// \brief Creates options.num_shards shards via `factory`.
  static Result<std::unique_ptr<ShardedIndex>> Create(
      const ShardFactory& factory, ShardedIndexOptions options = {});

  /// \brief Takes ownership of pre-built shards (deserialization path and
  /// tests). `shards` must be non-empty.
  explicit ShardedIndex(
      std::vector<std::unique_ptr<SpatialKeywordIndex>> shards,
      ShardedIndexOptions options = {});

  std::string Name() const override;

  Status Insert(const SpatialDocument& doc) override;
  Status Delete(const SpatialDocument& doc) override;
  /// Routes by id: same shard updates under one exclusive section; an id
  /// change locks both shards in index order (no deadlock with concurrent
  /// updates crossing the other way).
  Status Update(const SpatialDocument& old_doc,
                const SpatialDocument& new_doc) override;

  Result<std::vector<ScoredDoc>> Search(const Query& q,
                                        double alpha) override;

  /// \brief Batched search for query-throughput workloads: answers
  /// `queries` (all under the same alpha) using the internal pool, each
  /// worker running whole queries with a sequential shard sweep -- queries
  /// are the unit of parallelism, so throughput scales without oversplitting
  /// individual queries. Returns one result vector per query, in order.
  /// Requires search_threads > 0 for actual parallelism (otherwise runs
  /// sequentially, same results).
  Result<std::vector<std::vector<ScoredDoc>>> SearchMany(
      const std::vector<Query>& queries, double alpha);

  /// \brief One request of a SearchBatch: a query plus its own alpha (the
  /// serving wire protocol carries alpha per request, unlike SearchMany's
  /// shared alpha).
  struct BatchItem {
    Query query;
    double alpha = 0.5;
  };

  /// \brief Per-item outcome of a SearchBatch. Unlike SearchMany (strict:
  /// the first error aborts the whole batch) every item gets an
  /// independent disposition, and unlike Search the degraded flag is
  /// returned in-band instead of through LastSearchStats -- the serving
  /// front end answers many interleaved requests and cannot rely on a
  /// last-query stats slot.
  struct BatchItemResult {
    /// ok() => `results` is a valid (possibly degraded) top-k.
    Status status;
    std::vector<ScoredDoc> results;
    /// Some -- but not all -- shards failed; see the degradation contract.
    bool degraded = false;
    uint32_t failed_shards = 0;
    /// Shards served by a non-primary replica after the primary failed.
    uint32_t failovers = 0;
    /// Error of the lowest-indexed failing shard when `degraded` (OK
    /// otherwise): what a require_complete refusal surfaces as the typed
    /// error instead of the partial result.
    Status first_error;
    /// Wall time this item spent inside the index search, always
    /// measured (one clock pair per item): the serving layer attributes
    /// "search" time for slow-query records without a full trace.
    uint64_t search_ns = 0;
  };

  /// \brief The serving batch hook: answers every item under the
  /// per-query degradation contract (partial top-k with `degraded` set
  /// when some shards fail; an error status only when all fail or the
  /// deadline expired before any shard answered). Items run in parallel
  /// on the internal pool when search_threads > 0, sequentially
  /// otherwise; results come back in item order either way. Never
  /// returns a short vector -- out.size() == items.size() always.
  std::vector<BatchItemResult> SearchBatch(
      const std::vector<BatchItem>& items);

  bool SupportsConcurrentSearch() const override { return true; }

  /// \brief Stats of the most recent Search (any thread): shards queried,
  /// how many failed, a bitmask of the failed shard indexes (shards beyond
  /// 63 are counted but not mask-visible), and whether the result was
  /// degraded (partial). Published once per query under the stats mutex.
  SearchStatsView LastSearchStats() const override {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return last_search_stats_;
  }

  /// Queries answered with a partial (degraded) top-k since construction.
  uint64_t degraded_queries() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return degraded_queries_;
  }

  uint64_t DocumentCount() const override;
  IndexSizeInfo SizeInfo() const override;

  const IoStats& io_stats() const override;
  void ResetIoStats() override;
  void ClearCache() override;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// \brief Monotonic index-generation counter: bumped by every Insert,
  /// Delete, and Update (attempted mutations count -- a failed write may
  /// still have changed pages, so invalidation stays conservative).
  /// Result caches (net/result_cache.h) tag entries with the generation
  /// current when their search *started* and serve them only while it
  /// still matches, so a cached response can never outlive a mutation.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Which shard holds `doc`.
  uint32_t ShardOf(DocId doc) const;

  /// Direct shard access (tests/diagnostics); synchronization is the
  /// caller's problem for anything but stats reads.
  SpatialKeywordIndex* shard(uint32_t i) { return shards_[i]->index.get(); }

  /// Shard `i`'s ReplicaSet, or nullptr for an unreplicated shard.
  ReplicaSet* replica_set(uint32_t i) { return shards_[i]->replica_set; }

  /// \brief Replica health/progress of every replicated shard, with the
  /// ReplicaSetStatus::shard field rewritten to the *outer* shard index
  /// (one ReplicaSet per shard; renders in /healthz). Empty when no shard
  /// is replicated.
  std::vector<ReplicaSetStatus> ShardReplicaStatuses() const;

 private:
  struct Shard {
    std::unique_ptr<SpatialKeywordIndex> index;
    /// `index->AsReplicaSet()`, cached at construction so the query path
    /// routes through SearchFailover without a per-query virtual probe.
    ReplicaSet* replica_set = nullptr;
    /// Writers exclusive, searches/stats shared.
    mutable std::shared_mutex mutex;
    /// Search serialization for non-reader-safe implementations.
    mutable std::mutex query_mutex;
    bool serialize_queries = false;
    /// `i3_shard_search_latency_us{shard=...}`, cached at construction.
    obs::Histogram* latency_us = nullptr;
  };

  /// Per-query fan-out failure bookkeeping (see the degradation contract
  /// in the file comment).
  struct FanOutOutcome {
    uint32_t shards = 0;
    uint32_t failed = 0;
    /// Bit i set = shard i failed, for the first 64 shards.
    uint64_t failed_mask = 0;
    /// Shards answered by a non-primary replica (replicated shards only).
    uint32_t failovers = 0;
    /// Replica that served shard i, nibble-packed: bits [4i, 4i+4) for
    /// the first 16 shards (replicas above 15 saturate at 15).
    uint64_t served_replica_nibbles = 0;
    /// Error of the lowest-indexed failing shard.
    Status first_error = Status::OK();

    void RecordFailure(size_t shard, const Status& st) {
      if (failed == 0) first_error = st;
      ++failed;
      if (shard < 64) failed_mask |= uint64_t{1} << shard;
    }

    void RecordServed(size_t shard, const ReplicaSearchReport& report) {
      if (report.failed_over) ++failovers;
      if (shard < 16) {
        const uint64_t nibble =
            report.served_replica < 15 ? report.served_replica : 15;
        served_replica_nibbles |= nibble << (4 * shard);
      }
    }
  };

  /// One shard's local top-k under the shard's shared lock. A ReplicaSet
  /// shard routes through SearchFailover; `report` (never null) records
  /// which replica served (all zeros for unreplicated shards).
  Result<std::vector<ScoredDoc>> SearchShard(const Shard& s, const Query& q,
                                             double alpha,
                                             ReplicaSearchReport* report)
      const;
  /// Sequential fan-out + merge on the calling thread. When `trace` is
  /// non-null, one stage per shard ("shard0", ...) is added so stragglers
  /// are individually visible. With a null `outcome` the sweep is strict
  /// (first shard failure aborts, SearchMany semantics); with an outcome it
  /// degrades per the contract above.
  Result<std::vector<ScoredDoc>> SearchSequential(
      const Query& q, double alpha, obs::QueryTrace* trace = nullptr,
      FanOutOutcome* outcome = nullptr) const;
  /// Search body behind the metrics/trace wrapper: parallel fan-out via
  /// the pool when present, else sequential.
  Result<std::vector<ScoredDoc>> SearchFanOut(const Query& q, double alpha,
                                              obs::QueryTrace* trace,
                                              FanOutOutcome* outcome) const;
  /// Merges per-shard local top-k lists under the single-index contract.
  static std::vector<ScoredDoc> MergeTopK(
      const std::vector<std::vector<ScoredDoc>>& per_shard, uint32_t k);

  std::vector<std::unique_ptr<Shard>> shards_;
  ShardedIndexOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // present iff search_threads > 0
  /// See generation(). fetch_add with release so a reader that observes
  /// the new generation also observes the mutation's writes.
  std::atomic<uint64_t> generation_{0};
  mutable std::mutex stats_mutex_;
  mutable IoStats merged_stats_;  // scratch for io_stats()
  /// Last query's fan-out stats; guarded by stats_mutex_.
  SearchStatsView last_search_stats_;
  uint64_t degraded_queries_ = 0;

  /// Stable fan-out trace stage names, [shard][served replica]:
  /// "shard3" when the primary answered, "shard3.r1" after a failover.
  std::vector<std::vector<std::string>> shard_stage_names_;
  /// Stage name for shard `i` served by `report`'s replica.
  const std::string& StageName(size_t i,
                               const ReplicaSearchReport& report) const {
    const auto& names = shard_stage_names_[i];
    const size_t r = report.served_replica < names.size()
                         ? report.served_replica
                         : names.size() - 1;
    return names[r];
  }
  /// Merged-query latency, cached at construction. Index 0 = AND, 1 = OR.
  obs::Histogram* search_latency_us_[2];
  /// `i3_degraded_queries_total`, cached at construction.
  obs::Counter* degraded_metric_;
};

}  // namespace i3

#endif  // I3_MODEL_SHARDED_INDEX_H_
