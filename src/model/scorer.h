// The ranking function of the paper (Section 3):
//
//   score(D) = alpha * phi_s(D) + (1 - alpha) * phi_t(D)
//
// phi_s is spatial proximity, inversely proportional to the distance from
// the query location: phi_s = 1 - dist / diag(space), clamped to [0, 1].
// phi_t is the sum of the document's tf-idf weights over the query keywords.
// Upper-bound variants over rectangles (cells, MBRs) drive the pruning in
// every index.

#ifndef I3_MODEL_SCORER_H_
#define I3_MODEL_SCORER_H_

#include <algorithm>

#include "common/geo.h"
#include "model/document.h"
#include "model/query.h"

namespace i3 {

/// \brief Evaluates the alpha-combined ranking function over a fixed data
/// space. Cheap to copy; all methods are const.
class Scorer {
 public:
  /// \param space the root data-space rectangle; its diagonal normalizes
  ///        distances into [0, 1]
  /// \param alpha weight of spatial proximity in [0, 1]
  Scorer(const Rect& space, double alpha)
      : alpha_(alpha),
        inv_diag_(space.Diagonal() > 0 ? 1.0 / space.Diagonal() : 0.0) {}

  double alpha() const { return alpha_; }

  /// \brief phi_s for an exact point.
  double SpatialProximity(const Point& query, const Point& p) const {
    return ProximityFromDistance(Distance(query, p));
  }

  /// \brief Upper bound of phi_s over all points of `r`.
  double SpatialProximityUpper(const Point& query, const Rect& r) const {
    return ProximityFromDistance(r.MinDistance(query));
  }

  /// \brief phi_t of `doc` for the query terms; under AND semantics returns
  /// 0 for non-matching documents (the caller filters candidacy
  /// separately).
  double TextualScore(const Query& q, const SpatialDocument& doc) const {
    double sum = 0.0;
    for (TermId t : q.terms) sum += doc.WeightOf(t);
    return sum;
  }

  /// \brief Full score from its two components.
  double Combine(double phi_s, double phi_t) const {
    return alpha_ * phi_s + (1.0 - alpha_) * phi_t;
  }

  /// \brief Full score of a document.
  double Score(const Query& q, const SpatialDocument& doc) const {
    return Combine(SpatialProximity(q.location, doc.location),
                   TextualScore(q, doc));
  }

  /// \brief True if `doc` satisfies the query's textual constraint.
  bool IsCandidate(const Query& q, const SpatialDocument& doc) const {
    if (q.semantics == Semantics::kAnd) {
      for (TermId t : q.terms) {
        if (!doc.Contains(t)) return false;
      }
      return !q.terms.empty();
    }
    for (TermId t : q.terms) {
      if (doc.Contains(t)) return true;
    }
    return false;
  }

 private:
  double ProximityFromDistance(double dist) const {
    return std::clamp(1.0 - dist * inv_diag_, 0.0, 1.0);
  }

  double alpha_;
  double inv_diag_;
};

}  // namespace i3

#endif  // I3_MODEL_SCORER_H_
