#include "model/document.h"

#include <algorithm>

namespace i3 {

float SpatialDocument::WeightOf(TermId term) const {
  auto it = std::lower_bound(
      terms.begin(), terms.end(), term,
      [](const WeightedTerm& wt, TermId t) { return wt.term < t; });
  if (it != terms.end() && it->term == term) return it->weight;
  return 0.0f;
}

std::vector<SpatialTuple> PartitionDocument(const SpatialDocument& doc) {
  std::vector<SpatialTuple> tuples;
  tuples.reserve(doc.terms.size());
  for (const WeightedTerm& wt : doc.terms) {
    tuples.push_back({wt.term, doc.id, doc.location, wt.weight});
  }
  return tuples;
}

}  // namespace i3
