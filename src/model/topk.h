// Bounded top-k result accumulator.

#ifndef I3_MODEL_TOPK_H_
#define I3_MODEL_TOPK_H_

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

#include "model/query.h"

namespace i3 {

/// \brief Keeps the k highest-scoring documents seen so far and exposes the
/// running k-th score delta (the pruning threshold of Algorithm 4).
///
/// Ties on score are broken by smaller DocId so results are deterministic
/// across index implementations (needed for cross-index equivalence tests).
class TopKHeap {
 public:
  explicit TopKHeap(uint32_t k) : k_(k) {}

  /// \brief Offers a candidate; ignored if it cannot enter the top k or if
  /// the doc is already present (documents may be scored once only --
  /// callers ensure that; the set is a safety net).
  void Offer(DocId doc, double score, const Point& location = {}) {
    if (k_ == 0) return;
    if (!seen_.insert(doc).second) return;
    if (heap_.size() < k_) {
      heap_.push({doc, score, location});
      return;
    }
    if (Better({doc, score, location}, heap_.top())) {
      heap_.pop();
      heap_.push({doc, score, location});
    }
  }

  /// \brief delta: the k-th best score, or -infinity while fewer than k
  /// results are held. Cells/nodes with upper bound <= delta are prunable.
  double Threshold() const {
    if (heap_.size() < k_) return -std::numeric_limits<double>::infinity();
    return heap_.top().score;
  }

  bool Full() const { return heap_.size() >= k_; }
  size_t size() const { return heap_.size(); }

  /// \brief Extracts results in decreasing score (ties: increasing DocId).
  /// The heap is consumed.
  std::vector<ScoredDoc> Take() {
    std::vector<ScoredDoc> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  /// True if `a` ranks strictly higher than `b`.
  static bool Better(const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  }

  struct WorstFirst {
    bool operator()(const ScoredDoc& a, const ScoredDoc& b) const {
      return Better(a, b);  // priority_queue: top = worst-ranked
    }
  };

  uint32_t k_;
  std::priority_queue<ScoredDoc, std::vector<ScoredDoc>, WorstFirst> heap_;
  std::unordered_set<DocId> seen_;
};

}  // namespace i3

#endif  // I3_MODEL_TOPK_H_
