// Bounded top-k result accumulator.

#ifndef I3_MODEL_TOPK_H_
#define I3_MODEL_TOPK_H_

#include <algorithm>
#include <limits>
#include <vector>

#include "model/query.h"

namespace i3 {

/// \brief Keeps the k highest-scoring documents seen so far and exposes the
/// running k-th score delta (the pruning threshold of Algorithm 4).
///
/// Ties on score are broken by smaller DocId so results are deterministic
/// across index implementations (needed for cross-index equivalence tests).
///
/// Allocation: the heap storage is reserved up front (capped for absurd k),
/// so a search performs at most one heap allocation for its results -- the
/// vector that Take() hands back. Duplicate suppression is a linear scan of
/// the at-most-k held entries rather than a hash set: every caller offers a
/// document at most once per heap, and a re-offered document necessarily
/// carries the same score, so it is rejected by the threshold once evicted
/// and found by the scan while held.
class TopKHeap {
 public:
  explicit TopKHeap(uint32_t k) : k_(k) {
    heap_.reserve(std::min(k_, kMaxUpfrontReserve));
  }

  /// \brief Offers a candidate; ignored if it cannot enter the top k or if
  /// the doc is already present.
  void Offer(DocId doc, double score, const Point& location = {}) {
    if (k_ == 0) return;
    const ScoredDoc cand{doc, score, location};
    const bool full = heap_.size() >= k_;
    // Fast reject: a full heap only admits entries beating the current
    // worst, and such an entry cannot be a duplicate (same doc => same
    // score, which ties with -- not beats -- the held copy).
    if (full && !Better(cand, heap_.front())) return;
    for (const ScoredDoc& held : heap_) {
      if (held.doc == doc) return;
    }
    if (!full) {
      heap_.push_back(cand);
      std::push_heap(heap_.begin(), heap_.end(), WorstFirst{});
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), WorstFirst{});
    heap_.back() = cand;
    std::push_heap(heap_.begin(), heap_.end(), WorstFirst{});
  }

  /// \brief delta: the k-th best score, or -infinity while fewer than k
  /// results are held. Cells/nodes with upper bound <= delta are prunable.
  double Threshold() const {
    if (heap_.size() < k_) return -std::numeric_limits<double>::infinity();
    return heap_.front().score;
  }

  bool Full() const { return heap_.size() >= k_; }
  size_t size() const { return heap_.size(); }

  /// \brief Extracts results in decreasing score (ties: increasing DocId).
  /// The heap is consumed.
  std::vector<ScoredDoc> Take() {
    // sort_heap under WorstFirst orders "less" (= better-ranked) first.
    std::sort_heap(heap_.begin(), heap_.end(), WorstFirst{});
    return std::move(heap_);
  }

 private:
  // Reserve ceiling: a pathological k must not pre-commit megabytes.
  static constexpr uint32_t kMaxUpfrontReserve = 4096;

  /// True if `a` ranks strictly higher than `b`.
  static bool Better(const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  }

  struct WorstFirst {
    bool operator()(const ScoredDoc& a, const ScoredDoc& b) const {
      return Better(a, b);  // max-heap by "worseness": front = worst-ranked
    }
  };

  uint32_t k_;
  std::vector<ScoredDoc> heap_;  // binary heap via std::push_heap/pop_heap
};

}  // namespace i3

#endif  // I3_MODEL_TOPK_H_
