// Top-k spatial keyword queries.

#ifndef I3_MODEL_QUERY_H_
#define I3_MODEL_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/geo.h"
#include "model/document.h"
#include "text/vocabulary.h"

namespace i3 {

/// \brief Textual matching semantics (Section 3).
enum class Semantics {
  /// Every query keyword must appear in a result document.
  kAnd,
  /// At least one query keyword must appear.
  kOr,
};

inline const char* SemanticsName(Semantics s) {
  return s == Semantics::kAnd ? "AND" : "OR";
}

/// \brief Q = <lat, lng, terms, k> plus the semantics under which it runs.
struct Query {
  Point location;
  std::vector<TermId> terms;
  uint32_t k = 10;
  Semantics semantics = Semantics::kAnd;

  /// \brief Sorts terms and drops duplicates (all query processors assume a
  /// canonical term list).
  void Normalize() {
    std::sort(terms.begin(), terms.end());
    terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  }
};

/// \brief One ranked answer.
struct ScoredDoc {
  DocId doc = kInvalidDocId;
  double score = 0.0;
  /// Location of the document (filled by every index).
  Point location;

  bool operator==(const ScoredDoc& o) const {
    return doc == o.doc && score == o.score;
  }
};

}  // namespace i3

#endif  // I3_MODEL_QUERY_H_
