// Top-k spatial keyword queries.

#ifndef I3_MODEL_QUERY_H_
#define I3_MODEL_QUERY_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/geo.h"
#include "model/document.h"
#include "obs/clock.h"
#include "text/vocabulary.h"

namespace i3 {

namespace obs {
struct QueryTrace;
}  // namespace obs

/// \brief Textual matching semantics (Section 3).
enum class Semantics {
  /// Every query keyword must appear in a result document.
  kAnd,
  /// At least one query keyword must appear.
  kOr,
};

inline const char* SemanticsName(Semantics s) {
  return s == Semantics::kAnd ? "AND" : "OR";
}

/// \brief Per-query execution controls: an absolute deadline and an
/// external cancellation flag. The default-constructed control is
/// unbounded (run to completion) and costs one predictable branch on the
/// search hot path.
///
/// A query that trips either control returns Status::DeadlineExceeded from
/// a single index; ShardedIndex instead degrades -- shards that finished in
/// time still contribute to a partial top-k (see model/sharded_index.h).
struct QueryControl {
  /// Absolute steady-clock deadline in nanoseconds (obs::NowNanos scale);
  /// 0 means no deadline.
  uint64_t deadline_ns = 0;
  /// Checked cooperatively at search checkpoints when non-null; the pointee
  /// must outlive the query. Setting it aborts the query at the next check.
  const std::atomic<bool>* cancel = nullptr;
  /// Server-stamped 64-bit trace id; 0 = untraced. Pure identification --
  /// it ties wire responses, slow-query records, and /tracez entries to
  /// one request without affecting execution.
  uint64_t trace_id = 0;
  /// Request-scoped span sink: when non-null every layer the query
  /// touches records its stage timings here instead of relying on the
  /// sampled global tracer. The pointee must outlive the query; single
  /// writer (the executing thread) -- fan-out parents aggregate shard
  /// stages after joining, never concurrently.
  obs::QueryTrace* trace = nullptr;

  bool bounded() const { return deadline_ns != 0 || cancel != nullptr; }
  bool Cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  /// A control whose deadline is `budget_us` microseconds from now.
  static QueryControl AfterMicros(uint64_t budget_us) {
    QueryControl c;
    c.deadline_ns = obs::NowNanos() + budget_us * 1000;
    return c;
  }
};

/// \brief Q = <lat, lng, terms, k> plus the semantics under which it runs.
struct Query {
  Point location;
  std::vector<TermId> terms;
  uint32_t k = 10;
  Semantics semantics = Semantics::kAnd;
  /// Deadline/cancellation; not part of the query's identity (Normalize and
  /// result semantics ignore it).
  QueryControl control;

  /// \brief Sorts terms and drops duplicates (all query processors assume a
  /// canonical term list).
  void Normalize() {
    std::sort(terms.begin(), terms.end());
    terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  }
};

/// \brief One ranked answer.
struct ScoredDoc {
  DocId doc = kInvalidDocId;
  double score = 0.0;
  /// Location of the document (filled by every index).
  Point location;

  bool operator==(const ScoredDoc& o) const {
    return doc == o.doc && score == o.score;
  }
};

}  // namespace i3

#endif  // I3_MODEL_QUERY_H_
