// A shared, index-agnostic view over per-query search statistics.
//
// Each index keeps its own typed stats struct (I3SearchStats,
// S2ISearchStats, IrTreeSearchStats) because the interesting counters
// differ per algorithm; this header is the common denominator: a flat
// (name, value) view each struct converts into, a virtual accessor on
// SpatialKeywordIndex (see model/index.h), and an emitter that turns a view
// into `i3_search_stat_total{index,stat}` counters in the metrics registry.
//
// The view also fixes the publication discipline: search paths accumulate
// into a *stack-local* stats struct and publish it once, under the index's
// stats mutex, after the search completes. That is what makes concurrent
// readers safe -- the historical pattern of incrementing a member
// `last_search_stats_` mid-search raced as soon as two readers overlapped.

#ifndef I3_MODEL_SEARCH_STATS_H_
#define I3_MODEL_SEARCH_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "obs/metrics.h"

namespace i3 {

/// \brief Flat (name, value) view of one search's statistics. Names must be
/// string literals (the view stores pointers, not copies) and each index
/// must produce them in a fixed order, so views of the same index are
/// positionally comparable and an emitter can pre-register counters.
struct SearchStatsView {
  static constexpr size_t kMaxStats = 8;

  size_t count = 0;
  std::array<const char*, kMaxStats> names{};
  std::array<uint64_t, kMaxStats> values{};

  void Set(const char* name, uint64_t value) {
    if (count < kMaxStats) {
      names[count] = name;
      values[count] = value;
      ++count;
    }
  }

  /// Value of the named stat, or 0 when absent.
  uint64_t Get(const char* name) const {
    for (size_t i = 0; i < count; ++i) {
      if (std::strcmp(names[i], name) == 0) return values[i];
    }
    return 0;
  }

  std::string ToString() const {
    std::ostringstream os;
    os << '{';
    for (size_t i = 0; i < count; ++i) {
      if (i != 0) os << ", ";
      os << names[i] << ": " << values[i];
    }
    os << '}';
    return os.str();
  }
};

/// \brief Pre-registered `i3_search_stat_total{index,stat}` counters for one
/// index's stat schema. Construct once (with a view of a default stats
/// struct, which carries the names); Emit is then lock-free -- positional
/// counter increments, safe from concurrent searches.
class SearchStatsEmitter {
 public:
  SearchStatsEmitter(const std::string& index_label,
                     const SearchStatsView& schema) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    count_ = schema.count;
    for (size_t i = 0; i < schema.count; ++i) {
      counters_[i] = reg.GetCounter(
          "i3_search_stat_total",
          "Per-algorithm search work counters, summed over queries.",
          {{"index", index_label}, {"stat", schema.names[i]}});
    }
  }

  /// `view` must come from the same stats struct type as the construction
  /// schema (same names, same order).
  void Emit(const SearchStatsView& view) const {
    for (size_t i = 0; i < view.count && i < count_; ++i) {
      if (view.values[i] != 0) counters_[i]->Increment(view.values[i]);
    }
  }

 private:
  std::array<obs::Counter*, SearchStatsView::kMaxStats> counters_{};
  size_t count_ = 0;
};

}  // namespace i3

#endif  // I3_MODEL_SEARCH_STATS_H_
