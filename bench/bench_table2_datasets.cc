// Table 2: dataset description -- cardinality, number of unique keywords,
// average keywords per document, for the five (scaled) datasets.

#include <cstdio>

#include "bench_common.h"

using namespace i3;
using namespace i3::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf("== Table 2: dataset description (scale=%.2f) ==\n", cfg.scale);
  PrintRow({"DataSets", "NumTuples", "UniqueKeywords", "AvgKwPerDoc"}, 18);
  PrintRule(4, 18);

  auto report = [](const Dataset& ds) {
    PrintRow({ds.name, std::to_string(ds.NumDocs()),
              std::to_string(ds.UniqueKeywords()),
              Fmt(ds.AvgKeywordsPerDoc(), 4)},
             18);
  };

  for (int tier = 0; tier < 4; ++tier) {
    report(MakeTwitter(cfg, tier));
  }
  report(MakeWikipedia(cfg));
  return 0;
}
