// Ablation of I3's two pruning devices (DESIGN.md, Section 4-5 of the
// paper): signature-intersection pruning for AND semantics, and the
// summary screen that prunes child cells with the parent node's summaries
// before fetching their data pages. Reports query time, per-query page
// reads, and the search-statistics counters.

#include <cstdio>

#include "bench_common.h"

using namespace i3;
using namespace i3::bench;

namespace {

std::unique_ptr<I3Index> Build(const Dataset& ds, uint32_t eta,
                               bool signatures, bool screen) {
  I3Options opt;
  opt.space = ds.space;
  opt.signature_bits = eta;
  opt.signature_pruning = signatures;
  opt.summary_screen = screen;
  auto idx = std::make_unique<I3Index>(opt);
  for (const auto& d : ds.docs) {
    auto st = idx->Insert(d);
    if (!st.ok()) std::abort();
  }
  return idx;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf(
      "== Ablation: I3 pruning devices, FREQ_%u, Twitter5M (scale=%.2f, "
      "k=%u, alpha=%.1f) ==\n",
      cfg.default_qn, cfg.scale, cfg.default_k, cfg.default_alpha);

  const Dataset ds = MakeTwitter(cfg, 1);
  const QueryGenerator qgen(ds);

  struct Config {
    const char* name;
    bool signatures;
    bool screen;
  };
  const Config configs[] = {
      {"full", true, true},
      {"no-signatures", false, true},
      {"no-screen", true, false},
      {"neither", false, false},
  };

  for (Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    std::printf("\n-- %s --\n", SemanticsName(sem));
    PrintRow({"config", "time(ms)", "io/query", "popped", "sig-pruned"},
             14);
    PrintRule(5, 14);
    auto queries = qgen.Freq(cfg.default_qn, cfg.num_queries, cfg.default_k,
                             sem, /*seed=*/1600);
    for (const Config& c : configs) {
      auto idx = Build(ds, cfg.eta, c.signatures, c.screen);
      const auto cost =
          RunQuerySet(idx.get(), queries, cfg.default_alpha,
                      cfg.io_latency_us);
      const auto& stats = idx->last_search_stats();
      PrintRow({c.name, Fmt(cost.avg_ms, 3), Fmt(cost.avg_io_reads, 1),
                std::to_string(stats.candidates_popped),
                std::to_string(stats.cells_pruned_signature)},
               14);
    }
  }
  return 0;
}
