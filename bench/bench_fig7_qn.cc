// Figure 7: query running time vs the number of query keywords qn (FREQ_2
// .. FREQ_5) under AND and OR semantics, on Twitter5M-scale and Wikipedia.
// Four panels: (a) AND/Twitter5M (b) OR/Twitter5M (c) AND/Wikipedia
// (d) OR/Wikipedia.

#include <cstdio>

#include "bench_common.h"

using namespace i3;
using namespace i3::bench;

namespace {

void Panel(const BenchConfig& cfg, const Dataset& ds, bool irtree_bulk) {
  auto i3x = BuildI3(ds, cfg.eta);
  auto s2i = BuildS2I(ds);
  std::unique_ptr<IrTreeIndex> ir;
  if (!cfg.skip_irtree) ir = BuildIrTree(ds, irtree_bulk);
  const QueryGenerator qgen(ds);

  for (Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    std::printf("\n-- %s in %s --\n", SemanticsName(sem), ds.name.c_str());
    PrintRow({"qn", "I3(ms)", "S2I(ms)", "IR-tree(ms)"});
    PrintRule(4);
    for (uint32_t qn = 2; qn <= 5; ++qn) {
      auto queries = qgen.Freq(qn, cfg.num_queries, cfg.default_k, sem,
                               /*seed=*/700 + qn);
      const auto c_i3 = RunQuerySet(i3x.get(), queries, cfg.default_alpha,
                                    cfg.io_latency_us);
      const auto c_s2i = RunQuerySet(s2i.get(), queries, cfg.default_alpha,
                                     cfg.io_latency_us);
      std::string ir_ms = "skipped";
      if (ir != nullptr) {
        ir_ms = Fmt(RunQuerySet(ir.get(), queries, cfg.default_alpha,
                                cfg.io_latency_us)
                        .avg_ms,
                    3);
      }
      PrintRow({std::to_string(qn), Fmt(c_i3.avg_ms, 3),
                Fmt(c_s2i.avg_ms, 3), ir_ms});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf(
      "== Figure 7: running time vs number of query keywords (scale=%.2f, "
      "k=%u, alpha=%.1f, FREQ) ==\n",
      cfg.scale, cfg.default_k, cfg.default_alpha);
  Panel(cfg, MakeTwitter(cfg, 1), /*irtree_bulk=*/false);
  Panel(cfg, MakeWikipedia(cfg), /*irtree_bulk=*/true);
  return 0;
}
