// Single-thread query hot-path benchmark: queries/sec, bytes allocated per
// query, and pages touched per query on the Table-2-style synthetic
// workload, written to BENCH_hotpath.json so successive PRs have a perf
// trajectory to regress against.
//
// Three metrics, three reasons:
//   qps              -- the headline: CPU cost of Algorithms 4-6 once the
//                       buffer pool is warm (no simulated device latency).
//   alloc bytes/query-- allocator traffic of the steady-state loop (via the
//                       common/alloc_hook.h counting allocator); the
//                       zero-copy + arena hot path is supposed to keep this
//                       near zero, and a wall-clock-invisible regression
//                       here shows up first.
//   pages/query      -- cold-cache page accesses, the paper's own cost
//                       model; guards against "faster by reading more".
//
// Flags (on top of the shared bench flags): --smoke (tiny config for CI),
// --json=PATH (default BENCH_hotpath.json), --reps=N.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/alloc_hook.h"
#include "common/timer.h"
#include "datagen/query_gen.h"

I3_DEFINE_ALLOC_HOOK()

namespace i3 {
namespace bench {
namespace {

struct HotpathResult {
  const char* semantics;
  double qps = 0.0;
  double us_per_query = 0.0;
  /// Steady-state per-query latency distribution (log-linear histogram,
  /// <= 3.125% relative error).
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  double alloc_bytes_per_query = 0.0;
  double alloc_count_per_query = 0.0;
  double pages_per_query = 0.0;
  uint64_t checksum = 0;  // defeats dead-code elimination; sanity across runs
};

HotpathResult MeasureSemantics(I3Index* index,
                               const std::vector<Query>& queries,
                               double alpha, uint32_t reps) {
  HotpathResult r;
  r.semantics = SemanticsName(queries.front().semantics);

  obs::HistogramSnapshot latencies_us;
  auto run_set = [&](bool fold, bool timed) {
    for (const Query& q : queries) {
      const uint64_t q0 = timed ? obs::NowNanos() : 0;
      auto res = index->Search(q, alpha);
      if (timed) latencies_us.Record((obs::NowNanos() - q0) / 1000);
      if (!res.ok()) {
        std::fprintf(stderr, "search failed: %s\n",
                     res.status().ToString().c_str());
        std::abort();
      }
      if (fold) {
        for (const ScoredDoc& d : res.ValueOrDie()) r.checksum += d.doc;
      }
    }
  };

  // Cold pass: every page access charged (the paper's I/O metric).
  index->ClearCache();
  index->ResetIoStats();
  run_set(/*fold=*/true, /*timed=*/false);
  r.pages_per_query = static_cast<double>(index->io_stats().TotalReads()) /
                      queries.size();
  RecordIoMetrics(index->io_stats());  // cold-pass delta (stats just reset)

  // Warm pass to fill the buffer pool, then the timed steady-state loop.
  run_set(/*fold=*/false, /*timed=*/false);
  const AllocTally before = ThreadAllocTally();
  Timer timer;
  for (uint32_t rep = 0; rep < reps; ++rep)
    run_set(/*fold=*/false, /*timed=*/true);
  const double secs = timer.ElapsedMillis() / 1e3;
  const AllocTally cost = ThreadAllocTally() - before;

  const double n = static_cast<double>(queries.size()) * reps;
  r.qps = n / secs;
  r.us_per_query = secs * 1e6 / n;
  r.p50_us = static_cast<double>(latencies_us.Quantile(0.50));
  r.p90_us = static_cast<double>(latencies_us.Quantile(0.90));
  r.p99_us = static_cast<double>(latencies_us.Quantile(0.99));
  r.max_us = static_cast<double>(latencies_us.Max());
  r.alloc_bytes_per_query = static_cast<double>(cost.bytes) / n;
  r.alloc_count_per_query = static_cast<double>(cost.count) / n;
  return r;
}

struct SmokeBaseline {
  const char* semantics;
  double pages_per_query = 0.0;
  uint64_t checksum = 0;
};

/// \brief Warm repeated-query figures of the smoke workload: the cache
/// hierarchy's own benchmark. One cold pass fills the buffer pool and the
/// decoded-cell cache, then `reps` timed passes replay the identical
/// query set. The checksum is folded on every pass and must not move --
/// a warm cache that changes an answer is a correctness bug, not a perf
/// win -- and pages_per_query counts device reads during the warm passes
/// (near zero when the hierarchy holds the working set).
struct WarmSmoke {
  const char* semantics;
  double qps = 0.0;
  double pages_per_query = 0.0;
  uint64_t checksum = 0;
};

WarmSmoke MeasureWarmSmoke(I3Index* index, const std::vector<Query>& queries,
                           double alpha, uint32_t reps) {
  WarmSmoke w;
  w.semantics = SemanticsName(queries.front().semantics);
  auto run_set = [&](uint64_t* fold) {
    for (const Query& q : queries) {
      auto res = index->Search(q, alpha);
      if (!res.ok()) {
        std::fprintf(stderr, "warm smoke search failed: %s\n",
                     res.status().ToString().c_str());
        std::abort();
      }
      if (fold != nullptr) {
        for (const ScoredDoc& d : res.ValueOrDie()) *fold += d.doc;
      }
    }
  };
  index->ClearCache();
  run_set(nullptr);  // cold fill pass
  index->ResetIoStats();
  Timer timer;
  for (uint32_t rep = 0; rep < reps; ++rep) {
    uint64_t sum = 0;
    run_set(&sum);
    if (rep == 0) {
      w.checksum = sum;
    } else if (sum != w.checksum) {
      std::fprintf(stderr,
                   "warm smoke checksum drifted between passes "
                   "(%" PRIu64 " != %" PRIu64 "): the cache hierarchy "
                   "changed an answer\n",
                   sum, w.checksum);
      std::abort();
    }
  }
  const double secs = timer.ElapsedMillis() / 1e3;
  const double n = static_cast<double>(queries.size()) * reps;
  w.qps = n / secs;
  w.pages_per_query =
      static_cast<double>(index->io_stats().TotalReads()) / n;
  return w;
}

/// \brief Cold-pass figures of the exact workload `--smoke` runs (tier-0
/// dataset, 20 queries, seed 42). A full run embeds these in its JSON as
/// "smoke_baseline", which is what tools/check_bench.py compares a CI
/// smoke run's results against: same tier, same queries, so checksums
/// must match bit for bit and pages/query may only drift within the
/// regression budget. Deliberately metrics-silent -- the "obs" snapshot
/// in the JSON stays a pure tier-1 capture.
std::vector<SmokeBaseline> MeasureSmokeBaseline(
    const BenchConfig& cfg, uint32_t num_queries,
    std::vector<WarmSmoke>* warm_out) {
  Dataset ds = MakeTwitter(cfg, /*tier=*/0);
  auto index = BuildI3(ds, cfg);
  QueryGenerator qgen(ds);
  std::vector<SmokeBaseline> out;
  for (Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    auto queries = qgen.Freq(cfg.default_qn, num_queries, /*k=*/10, sem,
                             /*seed=*/42);
    SmokeBaseline b;
    b.semantics = SemanticsName(sem);
    index->ClearCache();
    index->ResetIoStats();
    for (const Query& q : queries) {
      auto res = index->Search(q, cfg.default_alpha);
      if (!res.ok()) {
        std::fprintf(stderr, "smoke baseline search failed: %s\n",
                     res.status().ToString().c_str());
        std::abort();
      }
      for (const ScoredDoc& d : res.ValueOrDie()) b.checksum += d.doc;
    }
    b.pages_per_query =
        static_cast<double>(index->io_stats().TotalReads()) / queries.size();
    out.push_back(b);
    if (warm_out != nullptr) {
      warm_out->push_back(MeasureWarmSmoke(index.get(), queries,
                                           cfg.default_alpha, /*reps=*/5));
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  bool smoke = false;
  uint32_t reps = 0;
  std::string json_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<uint32_t>(std::atoi(argv[i] + 7));
    }
  }
  const int tier = smoke ? 0 : 1;  // 20K docs (smoke) / 100K docs at scale 1
  const uint32_t num_queries = smoke ? 20 : 100;
  if (reps == 0) reps = smoke ? 3 : 20;

  std::printf("building %s (scale %.2f)...\n", kTwitterNames[tier],
              cfg.scale);
  Dataset ds = MakeTwitter(cfg, tier);
  auto index = BuildI3(ds, cfg);
  QueryGenerator qgen(ds);

  std::vector<HotpathResult> results;
  std::vector<WarmSmoke> warm;
  for (Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    auto queries = qgen.Freq(cfg.default_qn, num_queries, /*k=*/10, sem,
                             /*seed=*/42);
    results.push_back(MeasureSemantics(index.get(), queries,
                                       cfg.default_alpha, reps));
    // Smoke runs measure the warm repeated-query figures on the smoke
    // index itself (it IS the smoke-tier workload); full runs measure
    // them on the separately built smoke-tier index below.
    if (smoke) {
      warm.push_back(MeasureWarmSmoke(index.get(), queries,
                                      cfg.default_alpha, /*reps=*/5));
    }
  }

  PrintRule(9, 11);
  PrintRow({"semantics", "qps", "us/query", "p50us", "p90us", "p99us",
            "B alloc/q", "allocs/q", "pages/q"},
           11);
  PrintRule(9, 11);
  for (const HotpathResult& r : results) {
    PrintRow({r.semantics, Fmt(r.qps, 0), Fmt(r.us_per_query, 1),
              Fmt(r.p50_us, 0), Fmt(r.p90_us, 0), Fmt(r.p99_us, 0),
              Fmt(r.alloc_bytes_per_query, 0),
              Fmt(r.alloc_count_per_query, 1), Fmt(r.pages_per_query, 1)},
             11);
  }
  PrintRule(9, 11);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"hotpath\",\n"
               "  \"dataset\": {\"name\": \"%s\", \"docs\": %zu},\n"
               "  \"config\": {\"k\": 10, \"qn\": %u, \"eta\": %u, "
               "\"alpha\": %.2f, \"queries\": %u, \"reps\": %u, "
               "\"smoke\": %s},\n"
               "  \"results\": [\n",
               ds.name.c_str(), ds.docs.size(), cfg.default_qn, cfg.eta,
               cfg.default_alpha, num_queries, reps, smoke ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const HotpathResult& r = results[i];
    std::fprintf(f,
                 "    {\"semantics\": \"%s\", \"qps\": %.1f, "
                 "\"us_per_query\": %.2f, \"p50_us\": %.0f, "
                 "\"p90_us\": %.0f, \"p99_us\": %.0f, \"max_us\": %.0f, "
                 "\"alloc_bytes_per_query\": %.1f, "
                 "\"alloc_count_per_query\": %.2f, \"pages_per_query\": "
                 "%.2f, \"checksum\": %" PRIu64 "}%s\n",
                 r.semantics, r.qps, r.us_per_query, r.p50_us, r.p90_us,
                 r.p99_us, r.max_us, r.alloc_bytes_per_query,
                 r.alloc_count_per_query, r.pages_per_query, r.checksum,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Full runs additionally record the smoke-tier workload's cold-pass
  // figures so the committed BENCH_hotpath.json doubles as the baseline
  // the CI bench-regression gate (tools/check_bench.py) checks smoke runs
  // against. The obs snapshot is captured first, so it stays a pure
  // tier-1 measurement.
  const std::string obs_json = MetricsSnapshotJson("  ");
  if (!smoke) {
    std::printf("measuring smoke baseline (%s)...\n", kTwitterNames[0]);
    const auto baseline =
        MeasureSmokeBaseline(cfg, /*num_queries=*/20, &warm);
    std::fprintf(f, "  \"smoke_baseline\": [\n");
    for (size_t i = 0; i < baseline.size(); ++i) {
      const SmokeBaseline& b = baseline[i];
      std::fprintf(f,
                   "    {\"semantics\": \"%s\", \"pages_per_query\": %.2f, "
                   "\"checksum\": %" PRIu64 "}%s\n",
                   b.semantics, b.pages_per_query, b.checksum,
                   i + 1 < baseline.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
  }
  // Warm repeated-query figures of the smoke workload (same entries in
  // smoke and full runs, so a smoke candidate gates against a committed
  // full run): the checksum must equal the cold smoke checksum -- caches
  // may only make answers faster, never different -- and pages_per_query
  // bounds device reads once the hierarchy is warm.
  std::fprintf(f, "  \"warm_smoke\": [\n");
  for (size_t i = 0; i < warm.size(); ++i) {
    const WarmSmoke& w = warm[i];
    std::printf("warm smoke %s: %.0f qps, %.3f pages/query\n", w.semantics,
                w.qps, w.pages_per_query);
    std::fprintf(f,
                 "    {\"semantics\": \"%s\", \"qps\": %.1f, "
                 "\"pages_per_query\": %.3f, \"checksum\": %" PRIu64 "}%s\n",
                 w.semantics, w.qps, w.pages_per_query, w.checksum,
                 i + 1 < warm.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Process-wide metrics snapshot (query/update histograms, buffer pool,
  // per-category I/O, search-stat counters) for scrapers and the CI gate.
  std::fprintf(f, "  \"obs\":\n%s\n}\n", obs_json.c_str());
  DumpMetricsIfRequested(cfg);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace i3

int main(int argc, char** argv) { return i3::bench::Main(argc, argv); }
