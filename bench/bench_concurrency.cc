// Multi-threaded search throughput of the concurrency layer.
//
// Compares, at 1/2/4/8 client threads over the same Twitter-tier corpus:
//   serialized : ConcurrentIndex(I3) with force_serialized_queries -- the
//                wrapper's historical coarse locking, every Search holds one
//                query mutex (the pre-fix baseline);
//   concurrent : ConcurrentIndex(I3) as shipped -- readers share the lock
//                and run in parallel;
//   sharded    : ShardedIndex(I3 x S), each client thread fanning out over
//                the shards sequentially (search_threads = 0: client
//                threads are already the parallelism);
// plus one batched row: ShardedIndex::SearchMany driving its internal pool
// from a single caller.
//
// Simulated per-page IO latency is armed during measurement, so the figures
// reflect the paper's disk-resident setting where concurrent queries
// overlap their IO stalls.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "model/concurrent_index.h"
#include "model/sharded_index.h"
#include "storage/io_stats.h"

using namespace i3;
using namespace i3::bench;

namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr uint32_t kNumShards = 8;
constexpr int kQueriesPerThread = 50;

/// Per-page device latency for this harness. Unlike the figure harnesses'
/// few-microsecond calibration (which busy-waits), a disk-class latency is
/// slept (see storage/io_stats.cc), so concurrent queries overlap their IO
/// stalls exactly as they would against a real device -- which is what a
/// throughput benchmark must capture, and the only effect observable on a
/// single-core CI box. --iolat overrides.
constexpr uint32_t kDiskLatencyUs = 100;

/// Runs `threads` clients, each issuing kQueriesPerThread round-robin
/// queries, and returns aggregate queries per second.
double MeasureQps(SpatialKeywordIndex* index,
                  const std::vector<Query>& queries, double alpha,
                  int threads) {
  std::atomic<bool> go{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const Query& q = queries[(t + i) % queries.size()];
        if (!index->Search(q, alpha).ok()) ++bad;
      }
    });
  }
  Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& c : clients) c.join();
  const double seconds = timer.ElapsedSeconds();
  if (bad.load() != 0) {
    std::fprintf(stderr, "%d queries failed\n", bad.load());
    std::abort();
  }
  return static_cast<double>(threads) * kQueriesPerThread / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  // BenchConfig's default --iolat is tuned for the busy-wait simulation;
  // this harness wants the blocking disk-class latency unless overridden.
  const uint32_t iolat =
      cfg.io_latency_us == BenchConfig{}.io_latency_us ? kDiskLatencyUs
                                                       : cfg.io_latency_us;
  std::printf(
      "== Concurrency: search throughput vs client threads (scale=%.2f, "
      "k=%u, alpha=%.1f, qn=%u, iolat=%uus) ==\n",
      cfg.scale, cfg.default_k, cfg.default_alpha, cfg.default_qn, iolat);

  const Dataset ds = MakeTwitter(cfg, /*tier=*/1);
  std::printf("dataset %s: %llu docs, %llu unique keywords\n",
              ds.name.c_str(),
              static_cast<unsigned long long>(ds.NumDocs()),
              static_cast<unsigned long long>(ds.UniqueKeywords()));

  const QueryGenerator qgen(ds);
  const std::vector<Query> queries =
      qgen.Freq(cfg.default_qn, std::max(cfg.num_queries, 64u),
                cfg.default_k, Semantics::kOr, /*seed=*/4242);

  ConcurrentIndex serialized(BuildI3(ds, cfg.eta),
                             {.force_serialized_queries = true});
  ConcurrentIndex concurrent(BuildI3(ds, cfg.eta));

  I3Options shard_opt;
  shard_opt.space = ds.space;
  shard_opt.signature_bits = cfg.eta;
  auto sharded_res = ShardedIndex::Create(
      [&](uint32_t) { return std::make_unique<I3Index>(shard_opt); },
      {.num_shards = kNumShards});
  auto batched_res = ShardedIndex::Create(
      [&](uint32_t) { return std::make_unique<I3Index>(shard_opt); },
      {.num_shards = kNumShards, .search_threads = 8});
  if (!sharded_res.ok() || !batched_res.ok()) {
    std::fprintf(stderr, "sharded build failed\n");
    return 1;
  }
  auto& sharded = *sharded_res.ValueOrDie();
  auto& batched = *batched_res.ValueOrDie();
  for (const auto& d : ds.docs) {
    if (!sharded.Insert(d).ok() || !batched.Insert(d).ok()) {
      std::fprintf(stderr, "sharded insert failed\n");
      return 1;
    }
  }

  // Warm each index's caches once so every mode is measured steady-state.
  for (const Query& q : queries) {
    serialized.Search(q, cfg.default_alpha).ok();
    concurrent.Search(q, cfg.default_alpha).ok();
    sharded.Search(q, cfg.default_alpha).ok();
    batched.Search(q, cfg.default_alpha).ok();
  }

  ScopedIoLatency latency(iolat);

  std::printf("\n-- OR FREQ_%u throughput (queries/s; speedup vs serialized "
              "at the same thread count) --\n", cfg.default_qn);
  PrintRow({"Threads", "serialized", "concurrent", "sharded x8"});
  PrintRule(4);
  double serialized_1t = 0.0, sharded_best = 0.0, serialized_at_best = 0.0;
  for (int threads : kThreadCounts) {
    const double qps_ser =
        MeasureQps(&serialized, queries, cfg.default_alpha, threads);
    const double qps_con =
        MeasureQps(&concurrent, queries, cfg.default_alpha, threads);
    const double qps_sha =
        MeasureQps(&sharded, queries, cfg.default_alpha, threads);
    if (threads == 1) serialized_1t = qps_ser;
    if (threads == kThreadCounts[3]) {
      sharded_best = qps_sha;
      serialized_at_best = qps_ser;
    }
    PrintRow({std::to_string(threads), Fmt(qps_ser, 0),
              Fmt(qps_con, 0) + " (" + Fmt(qps_con / qps_ser, 2) + "x)",
              Fmt(qps_sha, 0) + " (" + Fmt(qps_sha / qps_ser, 2) + "x)"});
  }

  // Batched mode: one caller, the internal pool spreads whole queries.
  Timer timer;
  constexpr int kBatches = 25;
  for (int i = 0; i < kBatches; ++i) {
    auto res = batched.SearchMany(queries, cfg.default_alpha);
    if (!res.ok()) {
      std::fprintf(stderr, "SearchMany failed\n");
      return 1;
    }
  }
  const double batched_qps = static_cast<double>(kBatches) * queries.size() /
                             (timer.ElapsedSeconds());
  std::printf("\nSearchMany (1 caller, pool=8): %s q/s (%sx vs serialized "
              "1 thread)\n",
              Fmt(batched_qps, 0).c_str(),
              Fmt(batched_qps / serialized_1t, 2).c_str());
  std::printf("sharded x8 @ %d threads vs serialized @ %d threads: %sx\n",
              kThreadCounts[3], kThreadCounts[3],
              Fmt(sharded_best / serialized_at_best, 2).c_str());
  return 0;
}
