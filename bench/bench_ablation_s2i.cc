// Ablation beyond the paper: how much of the S2I query-cost blow-up the
// paper reports is the 2011 aggregation algorithm rather than the index
// layout. Compares the faithful TA-with-random-access strategy (the
// behaviour the I3 paper measured) with a modernized NRA bound over the
// same per-keyword aR-trees, on the Twitter5M-scale dataset.

#include <cstdio>

#include "bench_common.h"

using namespace i3;
using namespace i3::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf(
      "== Ablation: S2I aggregation strategy, FREQ queries, Twitter5M "
      "(scale=%.2f, k=%u, alpha=%.1f) ==\n",
      cfg.scale, cfg.default_k, cfg.default_alpha);

  const Dataset ds = MakeTwitter(cfg, 1);
  S2IOptions opt;
  opt.space = ds.space;

  auto build = [&](S2IStrategy strategy) {
    opt.strategy = strategy;
    auto idx = std::make_unique<S2IIndex>(opt);
    for (const auto& d : ds.docs) {
      auto st = idx->Insert(d);
      if (!st.ok()) std::abort();
    }
    return idx;
  };
  auto ta = build(S2IStrategy::kTaRandomAccess);
  auto nra = build(S2IStrategy::kNra);
  const QueryGenerator qgen(ds);

  for (Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    std::printf("\n-- %s --\n", SemanticsName(sem));
    PrintRow({"qn", "TA(io)", "TA(ms)", "NRA(io)", "NRA(ms)"});
    PrintRule(5);
    for (uint32_t qn = 2; qn <= 5; ++qn) {
      auto queries = qgen.Freq(qn, cfg.num_queries, cfg.default_k, sem,
                               /*seed=*/1500 + qn);
      const auto c_ta =
          RunQuerySet(ta.get(), queries, cfg.default_alpha,
                      cfg.io_latency_us);
      const auto c_nra =
          RunQuerySet(nra.get(), queries, cfg.default_alpha,
                      cfg.io_latency_us);
      PrintRow({std::to_string(qn), Fmt(c_ta.avg_io_reads, 0),
                Fmt(c_ta.avg_ms, 3), Fmt(c_nra.avg_io_reads, 0),
                Fmt(c_nra.avg_ms, 3)});
    }
  }
  return 0;
}
