// Shared infrastructure for the per-figure benchmark harnesses: scaled
// dataset construction, index builders, query-set measurement, and
// paper-style table printing.
//
// Scaling: the paper's datasets are Twitter 1M/5M/10M/15M and Wikipedia
// 400K. The default --scale=1 maps those to 20K/100K/200K/300K and 8K so
// every figure regenerates in minutes on a laptop; pass a larger --scale to
// approach the paper's cardinalities (shape, not absolute time, is the
// reproduction target -- see EXPERIMENTS.md).

#ifndef I3_BENCH_BENCH_COMMON_H_
#define I3_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "datagen/dataset.h"
#include "datagen/query_gen.h"
#include "i3/i3_index.h"
#include "irtree/irtree_index.h"
#include "model/index.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "s2i/s2i_index.h"

namespace i3 {
namespace bench {

/// \brief Command-line configuration shared by all harnesses.
struct BenchConfig {
  /// Dataset scale multiplier (1.0 = the laptop defaults above).
  double scale = 1.0;
  /// Queries per query set (the paper uses 100; we default to 20 to keep
  /// the full suite of harnesses tractable at scale 1 -- pass
  /// --queries=100 for the paper's setting).
  uint32_t num_queries = 20;
  /// Skip the IR-tree baseline (it is by far the slowest to build).
  bool skip_irtree = false;
  /// Signature length eta for I3.
  uint32_t eta = 300;
  /// Simulated per-page device latency (microseconds) armed around the
  /// measured phases, so wall-clock follows the I/O profile of the paper's
  /// disk-resident setup. 0 = pure CPU timing.
  uint32_t io_latency_us = 2;
  /// Default parameters (bold in Table 4).
  uint32_t default_k = 50;
  double default_alpha = 0.5;
  uint32_t default_qn = 3;
  /// --metrics / --metrics=PATH: dump a Prometheus-text snapshot of the
  /// metrics registry when the harness exits (empty path = stdout).
  bool dump_metrics = false;
  std::string metrics_path;
  /// --trace-sample-rate=R in [0, 1]: fraction of queries to trace
  /// (obs/trace.h); applied to the global Tracer by FromArgs. 0 = off.
  double trace_sample_rate = 0.0;
  /// --fault-profile=SPEC: build I3 data files over a fault-injecting
  /// backing (storage/fault_injection.h spec grammar). Empty = off.
  std::string fault_profile;
  /// --deadline-ms=N: per-query deadline; overruns degrade or fail instead
  /// of running to completion. 0 = unbounded.
  uint64_t deadline_ms = 0;
  /// --pool-pages=N: data-file buffer-pool capacity (0 = uncached,
  /// deterministic I/O). Mirrors I3Options::buffer_pool.
  uint32_t pool_pages = 512;
  /// --head-pool-pages=N: head-file pager capacity (0 = legacy per-node
  /// charging). Mirrors I3Options::head_pool_pages.
  uint32_t head_pool_pages = 128;
  /// --cell-cache-mb=N: decoded-cell cache budget in MB (0 disables; also
  /// forced off when pool_pages == 0). Mirrors I3Options::cell_cache_bytes.
  size_t cell_cache_mb = 16;
  /// --result-cache-entries=N: whole-query result cache of the serving
  /// front end (bench_serving only; 0 disables).
  size_t result_cache_entries = 4096;

  /// Parses --scale=X --queries=N --skip-irtree --eta=N --iolat=US
  /// --metrics[=PATH] --trace-sample-rate=R --fault-profile=SPEC
  /// --deadline-ms=N --pool-pages=N --head-pool-pages=N --cell-cache-mb=N
  /// --result-cache-entries=N.
  static BenchConfig FromArgs(int argc, char** argv);
};

/// Base cardinalities at scale 1 standing in for the paper's datasets.
constexpr uint32_t kTwitterBase[] = {20000, 100000, 200000, 300000};
constexpr const char* kTwitterNames[] = {"Twitter1M", "Twitter5M",
                                         "Twitter10M", "Twitter15M"};
constexpr uint32_t kWikipediaBase = 8000;

/// \brief Builds the scaled Twitter-like dataset standing in for
/// kTwitterNames[tier].
Dataset MakeTwitter(const BenchConfig& cfg, int tier);
/// \brief Builds the scaled Wikipedia-like dataset.
Dataset MakeWikipedia(const BenchConfig& cfg);

/// \brief Index builders (timed by the caller where construction time is
/// the measurement).
std::unique_ptr<I3Index> BuildI3(const Dataset& ds, uint32_t eta);
/// BuildI3 honoring cfg.eta and cfg.fault_profile (the data file is backed
/// by a fault-injecting in-memory PageFile when a profile is set).
std::unique_ptr<I3Index> BuildI3(const Dataset& ds, const BenchConfig& cfg);
std::unique_ptr<S2IIndex> BuildS2I(const Dataset& ds);
/// \param bulk use STR bulk loading (the paper's static Wikipedia build).
std::unique_ptr<IrTreeIndex> BuildIrTree(const Dataset& ds, bool bulk);

/// \brief Cost of running one query set: mean and percentile latency and
/// mean per-query I/O, split by category.
struct QuerySetCost {
  double avg_ms = 0.0;
  /// Latency percentiles over the set's individual query times, estimated
  /// from a log-linear histogram (<= 3.125% relative error, see
  /// obs/histogram.h).
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double avg_io_reads = 0.0;
  /// Per-category mean reads, indexed by IoCategory.
  double avg_reads_by_cat[kNumIoCategories] = {};
  /// Queries that returned an error (only nonzero under
  /// QueryRunOptions::allow_errors -- fault / deadline runs).
  uint64_t failed_queries = 0;
  /// Queries answered degraded (partial top-k; sharded indexes only).
  uint64_t degraded_queries = 0;
};

/// \brief Fault-tolerance knobs for RunQuerySet; the default is the strict
/// behavior every figure harness uses (any failure aborts).
struct QueryRunOptions {
  /// Per-query deadline in microseconds; 0 = unbounded.
  uint64_t deadline_us = 0;
  /// Count per-query failures (QuerySetCost::failed_queries) instead of
  /// aborting the harness -- required for fault/deadline runs where errors
  /// are the expected outcome.
  bool allow_errors = false;

  /// Derived from --fault-profile / --deadline-ms: errors become tolerable
  /// as soon as either fault source is armed.
  static QueryRunOptions FromConfig(const BenchConfig& cfg) {
    QueryRunOptions run;
    run.deadline_us = cfg.deadline_ms * 1000;
    run.allow_errors = cfg.deadline_ms > 0 || !cfg.fault_profile.empty();
    return run;
  }
};

/// \brief Runs `queries` against `index` with cold caches and averaged
/// timing/IO, under the configured simulated device latency.
QuerySetCost RunQuerySet(SpatialKeywordIndex* index,
                         const std::vector<Query>& queries, double alpha,
                         uint32_t io_latency_us = 20,
                         const QueryRunOptions& run = {});

/// \brief Honors cfg.dump_metrics: writes the global metrics registry as
/// Prometheus text to cfg.metrics_path (stdout when the path is empty).
/// No-op when --metrics was not passed.
void DumpMetricsIfRequested(const BenchConfig& cfg);

/// \brief The global metrics registry as an embeddable JSON object (see
/// obs::ToJson); `indent` prefixes every line. For BENCH_*.json artifacts.
std::string MetricsSnapshotJson(const std::string& indent = "");

/// \brief Fixed-width table printing.
void PrintRow(const std::vector<std::string>& cells, int width = 14);
void PrintRule(size_t cells, int width = 14);
std::string Fmt(double v, int precision = 2);
std::string FmtBytes(uint64_t bytes);

}  // namespace bench
}  // namespace i3

#endif  // I3_BENCH_BENCH_COMMON_H_
