// Figure 10: query running time vs the number of results k in
// {10, 50, 100, 150, 200} -- eight panels spanning {AND, OR} x
// {Twitter5M, Wikipedia} x {REST, FREQ_3}.

#include <cstdio>

#include "bench_common.h"

using namespace i3;
using namespace i3::bench;

namespace {

void Panels(const BenchConfig& cfg, const Dataset& ds, bool irtree_bulk) {
  auto i3x = BuildI3(ds, cfg.eta);
  auto s2i = BuildS2I(ds);
  std::unique_ptr<IrTreeIndex> ir;
  if (!cfg.skip_irtree) ir = BuildIrTree(ds, irtree_bulk);
  const QueryGenerator qgen(ds);

  for (Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    for (const char* qtype : {"REST", "FREQ"}) {
      std::printf("\n-- %s / %s / %s --\n", SemanticsName(sem),
                  ds.name.c_str(), qtype);
      PrintRow({"k", "I3(ms)", "S2I(ms)", "IR-tree(ms)"});
      PrintRule(4);
      for (uint32_t k : {10u, 50u, 100u, 150u, 200u}) {
        std::vector<Query> queries =
            qtype[0] == 'R'
                ? qgen.Rest(cfg.num_queries, k, sem, /*seed=*/1000 + k)
                : qgen.Freq(cfg.default_qn, cfg.num_queries, k, sem,
                            /*seed=*/1000 + k);
        const auto c_i3 = RunQuerySet(i3x.get(), queries, cfg.default_alpha,
                                      cfg.io_latency_us);
        const auto c_s2i = RunQuerySet(s2i.get(), queries,
                                       cfg.default_alpha, cfg.io_latency_us);
        std::string ir_ms = "skipped";
        if (ir != nullptr) {
          ir_ms = Fmt(RunQuerySet(ir.get(), queries, cfg.default_alpha,
                                  cfg.io_latency_us)
                          .avg_ms,
                      3);
        }
        PrintRow({std::to_string(k), Fmt(c_i3.avg_ms, 3),
                  Fmt(c_s2i.avg_ms, 3), ir_ms});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf(
      "== Figure 10: running time vs number of results k (scale=%.2f, "
      "alpha=%.1f) ==\n",
      cfg.scale, cfg.default_alpha);
  Panels(cfg, MakeTwitter(cfg, 1), /*irtree_bulk=*/false);
  Panels(cfg, MakeWikipedia(cfg), /*irtree_bulk=*/true);
  return 0;
}
