// Figure 12: query running time vs Twitter cardinality (the 1M/5M/10M/15M
// tiers, scaled) -- four panels: {AND, OR} x {REST, FREQ_3}.

#include <cstdio>

#include "bench_common.h"

using namespace i3;
using namespace i3::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf(
      "== Figure 12: running time vs Twitter cardinality (scale=%.2f, k=%u, "
      "alpha=%.1f) ==\n",
      cfg.scale, cfg.default_k, cfg.default_alpha);

  struct Built {
    Dataset ds;
    std::unique_ptr<I3Index> i3;
    std::unique_ptr<S2IIndex> s2i;
    std::unique_ptr<IrTreeIndex> ir;
  };
  std::vector<Built> tiers;
  for (int tier = 0; tier < 4; ++tier) {
    Built b;
    b.ds = MakeTwitter(cfg, tier);
    b.i3 = BuildI3(b.ds, cfg.eta);
    b.s2i = BuildS2I(b.ds);
    if (!cfg.skip_irtree) b.ir = BuildIrTree(b.ds, /*bulk=*/false);
    tiers.push_back(std::move(b));
  }

  for (Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    for (const char* qtype : {"REST", "FREQ"}) {
      std::printf("\n-- %s using %s --\n", SemanticsName(sem), qtype);
      PrintRow({"Dataset", "I3(ms)", "S2I(ms)", "IR-tree(ms)"});
      PrintRule(4);
      for (auto& b : tiers) {
        const QueryGenerator qgen(b.ds);
        std::vector<Query> queries =
            qtype[0] == 'R'
                ? qgen.Rest(cfg.num_queries, cfg.default_k, sem,
                            /*seed=*/1200)
                : qgen.Freq(cfg.default_qn, cfg.num_queries, cfg.default_k,
                            sem, /*seed=*/1200);
        const auto c_i3 = RunQuerySet(b.i3.get(), queries,
                                      cfg.default_alpha, cfg.io_latency_us);
        const auto c_s2i = RunQuerySet(b.s2i.get(), queries,
                                       cfg.default_alpha, cfg.io_latency_us);
        std::string ir_ms = "skipped";
        if (b.ir != nullptr) {
          ir_ms = Fmt(RunQuerySet(b.ir.get(), queries, cfg.default_alpha,
                                  cfg.io_latency_us)
                          .avg_ms,
                      3);
        }
        PrintRow({b.ds.name, Fmt(c_i3.avg_ms, 3), Fmt(c_s2i.avg_ms, 3),
                  ir_ms});
      }
    }
  }
  return 0;
}
