// Figure 11: query running time vs the spatial weight alpha in
// {0.1, 0.3, 0.5, 0.7, 0.9} under OR semantics -- four panels:
// {Twitter5M, Wikipedia} x {REST, FREQ_3}.

#include <cstdio>

#include "bench_common.h"

using namespace i3;
using namespace i3::bench;

namespace {

void Panels(const BenchConfig& cfg, const Dataset& ds, bool irtree_bulk) {
  auto i3x = BuildI3(ds, cfg.eta);
  auto s2i = BuildS2I(ds);
  std::unique_ptr<IrTreeIndex> ir;
  if (!cfg.skip_irtree) ir = BuildIrTree(ds, irtree_bulk);
  const QueryGenerator qgen(ds);

  for (const char* qtype : {"REST", "FREQ"}) {
    std::printf("\n-- OR / %s / %s --\n", ds.name.c_str(), qtype);
    PrintRow({"alpha", "I3(ms)", "S2I(ms)", "IR-tree(ms)"});
    PrintRule(4);
    std::vector<Query> queries =
        qtype[0] == 'R'
            ? qgen.Rest(cfg.num_queries, cfg.default_k, Semantics::kOr,
                        /*seed=*/1100)
            : qgen.Freq(cfg.default_qn, cfg.num_queries, cfg.default_k,
                        Semantics::kOr, /*seed=*/1100);
    for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const auto c_i3 =
          RunQuerySet(i3x.get(), queries, alpha, cfg.io_latency_us);
      const auto c_s2i =
          RunQuerySet(s2i.get(), queries, alpha, cfg.io_latency_us);
      std::string ir_ms = "skipped";
      if (ir != nullptr) {
        ir_ms = Fmt(
            RunQuerySet(ir.get(), queries, alpha, cfg.io_latency_us).avg_ms,
            3);
      }
      PrintRow({Fmt(alpha, 1), Fmt(c_i3.avg_ms, 3), Fmt(c_s2i.avg_ms, 3),
                ir_ms});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf(
      "== Figure 11: running time vs alpha, OR semantics (scale=%.2f, "
      "k=%u) ==\n",
      cfg.scale, cfg.default_k);
  Panels(cfg, MakeTwitter(cfg, 1), /*irtree_bulk=*/false);
  Panels(cfg, MakeWikipedia(cfg), /*irtree_bulk=*/true);
  return 0;
}
