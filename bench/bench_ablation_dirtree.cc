// Ablation reproducing a textual claim of the paper (Section 6): the
// DIR-tree variant "showed little improvement in query processing
// performance but took much longer time to build the index". Compares
// IR-tree vs DIR-tree construction time and query latency on the
// Twitter5M-scale dataset.

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"

using namespace i3;
using namespace i3::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf(
      "== Ablation: IR-tree vs DIR-tree, Twitter5M (scale=%.2f, k=%u, "
      "alpha=%.1f, FREQ_%u) ==\n",
      cfg.scale, cfg.default_k, cfg.default_alpha, cfg.default_qn);

  const Dataset ds = MakeTwitter(cfg, 1);
  const QueryGenerator qgen(ds);

  auto build = [&](IrInsertionPolicy policy, double* build_s) {
    IrTreeOptions opt;
    opt.space = ds.space;
    opt.policy = policy;
    auto idx = std::make_unique<IrTreeIndex>(opt);
    ScopedIoLatency latency(cfg.io_latency_us);
    Timer t;
    for (const auto& d : ds.docs) {
      auto st = idx->Insert(d);
      if (!st.ok()) std::abort();
    }
    *build_s = t.ElapsedSeconds();
    return idx;
  };

  double ir_build = 0, dir_build = 0;
  auto ir = build(IrInsertionPolicy::kSpatialOnly, &ir_build);
  auto dir = build(IrInsertionPolicy::kDir, &dir_build);

  std::printf("\nconstruction: IR-tree %.2fs, DIR-tree %.2fs (%.1fx)\n\n",
              ir_build, dir_build, dir_build / ir_build);

  PrintRow({"semantics", "IR(ms)", "DIR(ms)", "IR(io)", "DIR(io)"});
  PrintRule(5);
  for (Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    auto queries = qgen.Freq(cfg.default_qn, cfg.num_queries, cfg.default_k,
                             sem, /*seed=*/1700);
    const auto c_ir =
        RunQuerySet(ir.get(), queries, cfg.default_alpha, cfg.io_latency_us);
    const auto c_dir = RunQuerySet(dir.get(), queries, cfg.default_alpha,
                                   cfg.io_latency_us);
    PrintRow({SemanticsName(sem), Fmt(c_ir.avg_ms, 3), Fmt(c_dir.avg_ms, 3),
              Fmt(c_ir.avg_io_reads, 1), Fmt(c_dir.avg_io_reads, 1)});
  }
  return 0;
}
