// Table 5: index size, per component -- I3 head/data file, S2I trees + flat
// file (and its tree-file count), IR-tree inverted files + R-tree.

#include <cstdio>

#include "bench_common.h"

using namespace i3;
using namespace i3::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf("== Table 5: index size (scale=%.2f) ==\n", cfg.scale);
  PrintRow({"Dataset", "I3-Head", "I3-Data", "S2I-Index", "S2I-files",
            "IR-InvIdx", "IR-Rtree"},
           13);
  PrintRule(7, 13);

  auto run = [&](const Dataset& ds, bool irtree_bulk) {
    auto i3x = BuildI3(ds, cfg.eta);
    auto s2i = BuildS2I(ds);
    const auto i3_info = i3x->SizeInfo();
    const auto s2_info = s2i->SizeInfo();

    std::string ir_inv = "skipped";
    std::string ir_rt = "skipped";
    if (!cfg.skip_irtree) {
      auto ir = BuildIrTree(ds, irtree_bulk);
      const auto info = ir->SizeInfo();
      ir_rt = FmtBytes(info.components[0].second);   // "R-tree"
      ir_inv = FmtBytes(info.components[1].second);  // "inverted files"
    }

    PrintRow({ds.name, FmtBytes(i3_info.components[0].second),
              FmtBytes(i3_info.components[1].second),
              FmtBytes(s2_info.TotalBytes()),
              std::to_string(s2i->TreeFileCount()), ir_inv, ir_rt},
             13);
  };

  for (int tier = 0; tier < 4; ++tier) {
    run(MakeTwitter(cfg, tier), false);
  }
  run(MakeWikipedia(cfg), true);
  return 0;
}
