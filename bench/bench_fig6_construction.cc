// Figure 6: index construction time for I3, S2I and IR-tree on the four
// Twitter datasets and Wikipedia.
//
// As in the paper, the IR-tree is built incrementally on the Twitter
// datasets (repeated insertion with node splits re-organizing the per-node
// inverted files) and bulk-loaded (STR) on Wikipedia, where the authors'
// implementation "is based on a static dataset".

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"

using namespace i3;
using namespace i3::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf("== Figure 6: index construction time (scale=%.2f) ==\n",
              cfg.scale);
  PrintRow({"Dataset", "I3(s)", "S2I(s)", "IR-tree(s)"});
  PrintRule(4);

  auto run = [&](const Dataset& ds, bool irtree_bulk) {
    // Construction in the paper's setup is disk-bound: arm the simulated
    // device latency so build times follow the I/O profile.
    ScopedIoLatency latency(cfg.io_latency_us);
    Timer t1;
    auto i3x = BuildI3(ds, cfg.eta);
    const double t_i3 = t1.ElapsedSeconds();

    Timer t2;
    auto s2i = BuildS2I(ds);
    const double t_s2i = t2.ElapsedSeconds();

    double t_ir = -1.0;
    if (!cfg.skip_irtree) {
      Timer t3;
      auto ir = BuildIrTree(ds, irtree_bulk);
      t_ir = t3.ElapsedSeconds();
    }
    PrintRow({ds.name, Fmt(t_i3), Fmt(t_s2i),
              t_ir < 0 ? "skipped" : Fmt(t_ir)});
  };

  for (int tier = 0; tier < 4; ++tier) {
    run(MakeTwitter(cfg, tier), /*irtree_bulk=*/false);
  }
  run(MakeWikipedia(cfg), /*irtree_bulk=*/true);
  return 0;
}
