// Figure 13: index update time -- build each index to a moderate size, then
// execute 4000 random data operations (document insertions and deletions)
// and report the total time, for I3 vs S2I on growing Twitter and Wikipedia
// datasets. (The paper omits IR-tree here because its update implementation
// was not provided; ours supports updates, so pass --with-irtree via
// --skip-irtree=false semantics is the default off to match the paper.)

#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"

using namespace i3;
using namespace i3::bench;

namespace {

constexpr int kOps = 4000;

/// Runs the 4000-op workload: ~half deletions of random live documents,
/// half insertions of fresh documents (drawn from the same generator
/// distribution).
double RunUpdates(SpatialKeywordIndex* index, const Dataset& ds,
                  const std::vector<SpatialDocument>& fresh, uint64_t seed,
                  uint32_t io_latency_us) {
  Rng rng(seed);
  std::vector<size_t> live(ds.docs.size());
  for (size_t i = 0; i < live.size(); ++i) live[i] = i;
  size_t next_fresh = 0;

  index->ResetIoStats();
  ScopedIoLatency latency(io_latency_us);
  Timer timer;
  for (int op = 0; op < kOps; ++op) {
    const bool do_insert =
        next_fresh < fresh.size() && (live.empty() || rng.Chance(0.5));
    if (do_insert) {
      auto st = index->Insert(fresh[next_fresh++]);
      if (!st.ok()) {
        std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
        std::abort();
      }
    } else {
      const size_t pick = rng.UniformInt(0, live.size() - 1);
      auto st = index->Delete(ds.docs[live[pick]]);
      if (!st.ok()) {
        std::fprintf(stderr, "delete failed: %s\n", st.ToString().c_str());
        std::abort();
      }
      live[pick] = live.back();
      live.pop_back();
    }
  }
  return timer.ElapsedSeconds();
}

void Panel(const BenchConfig& cfg, bool wikipedia, bool with_irtree) {
  std::printf("\n-- %s --\n", wikipedia ? "Wikipedia" : "Twitter");
  PrintRow({"DatasetSize", "I3(s)", "S2I(s)",
            with_irtree ? "IR-tree(s)" : ""});
  PrintRule(with_irtree ? 4 : 3);

  // The paper grows the base index: Twitter 0.5M..2M, Wikipedia 100K..400K;
  // we use the same 4-step ramp at the configured scale.
  const uint32_t twitter_sizes[] = {10000, 20000, 30000, 40000};
  const uint32_t wiki_sizes[] = {2000, 4000, 6000, 8000};
  for (int step = 0; step < 4; ++step) {
    const uint32_t n = static_cast<uint32_t>(
        (wikipedia ? wiki_sizes[step] : twitter_sizes[step]) * cfg.scale);
    GeneratorSpec spec = wikipedia ? WikipediaSpec(n, 300 + step)
                                   : TwitterSpec(n, 300 + step);
    Dataset ds = Generate(spec);
    // Fresh documents to insert during the update phase.
    GeneratorSpec fresh_spec = spec;
    fresh_spec.num_docs = kOps;
    fresh_spec.seed = 999 + step;
    Dataset fresh = Generate(fresh_spec);
    for (auto& d : fresh.docs) d.id += 10000000;  // disjoint id space

    auto i3x = BuildI3(ds, cfg.eta);
    const double t_i3 =
        RunUpdates(i3x.get(), ds, fresh.docs, 17, cfg.io_latency_us);

    auto s2i = BuildS2I(ds);
    const double t_s2i =
        RunUpdates(s2i.get(), ds, fresh.docs, 17, cfg.io_latency_us);

    std::string t_ir;
    if (with_irtree) {
      auto ir = BuildIrTree(ds, /*bulk=*/false);
      t_ir =
          Fmt(RunUpdates(ir.get(), ds, fresh.docs, 17, cfg.io_latency_us), 3);
    }
    PrintRow({std::to_string(n), Fmt(t_i3, 3), Fmt(t_s2i, 3), t_ir});
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  bool with_irtree = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--with-irtree") == 0) with_irtree = true;
  }
  std::printf(
      "== Figure 13: index update time, %d random insert/delete ops "
      "(scale=%.2f) ==\n",
      kOps, cfg.scale);
  Panel(cfg, /*wikipedia=*/false, with_irtree);
  Panel(cfg, /*wikipedia=*/true, with_irtree);
  return 0;
}
