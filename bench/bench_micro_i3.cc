// Microbenchmarks (google-benchmark) of the I3 building blocks: tuple
// insertion, deletion, top-k search under both semantics, signature
// operations, and quadtree cell arithmetic.

#include <benchmark/benchmark.h>

#include "datagen/dataset.h"
#include "datagen/query_gen.h"
#include "i3/i3_index.h"
#include "i3/signature.h"
#include "quadtree/cell.h"

namespace i3 {
namespace {

Dataset& SharedDataset() {
  static Dataset ds = Generate(TwitterSpec(20000, /*seed=*/42));
  return ds;
}

I3Index& SharedIndex() {
  static I3Index* index = [] {
    I3Options opt;
    opt.space = SharedDataset().space;
    auto* idx = new I3Index(opt);
    for (const auto& d : SharedDataset().docs) {
      auto st = idx->Insert(d);
      if (!st.ok()) std::abort();
    }
    return idx;
  }();
  return *index;
}

void BM_I3Insert(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  I3Options opt;
  opt.space = ds.space;
  I3Index index(opt);
  size_t i = 0;
  DocId next_id = 1u << 28;
  for (auto _ : state) {
    SpatialDocument d = ds.docs[i % ds.docs.size()];
    d.id = next_id++;
    benchmark::DoNotOptimize(index.Insert(d));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_I3Insert);

void BM_I3InsertDelete(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  I3Options opt;
  opt.space = ds.space;
  I3Index index(opt);
  size_t i = 0;
  for (auto _ : state) {
    SpatialDocument d = ds.docs[i % ds.docs.size()];
    d.id = 1u << 28;
    benchmark::DoNotOptimize(index.Insert(d));
    benchmark::DoNotOptimize(index.Delete(d));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_I3InsertDelete);

void BM_I3SearchAnd(benchmark::State& state) {
  I3Index& index = SharedIndex();
  const QueryGenerator qgen(SharedDataset());
  auto queries = qgen.Freq(static_cast<uint32_t>(state.range(0)), 64, 10,
                           Semantics::kAnd, 7);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(queries[i % queries.size()], 0.5));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_I3SearchAnd)->Arg(2)->Arg(3)->Arg(5);

void BM_I3SearchOr(benchmark::State& state) {
  I3Index& index = SharedIndex();
  const QueryGenerator qgen(SharedDataset());
  auto queries = qgen.Freq(static_cast<uint32_t>(state.range(0)), 64, 10,
                           Semantics::kOr, 7);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(queries[i % queries.size()], 0.5));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_I3SearchOr)->Arg(2)->Arg(3)->Arg(5);

void BM_SignatureIntersect(benchmark::State& state) {
  Signature a(static_cast<uint32_t>(state.range(0)));
  Signature b(static_cast<uint32_t>(state.range(0)));
  for (DocId d = 0; d < 64; ++d) {
    a.Add(d * 3);
    b.Add(d * 7);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
}
BENCHMARK(BM_SignatureIntersect)->Arg(64)->Arg(300)->Arg(1024);

void BM_CellLocate(benchmark::State& state) {
  const CellSpace space(Rect{-180, -90, 180, 90});
  double x = -180;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        space.Locate({x, x / 2}, static_cast<uint8_t>(state.range(0))));
    x += 0.37;
    if (x > 180) x = -180;
  }
}
BENCHMARK(BM_CellLocate)->Arg(8)->Arg(16)->Arg(24);

}  // namespace
}  // namespace i3

BENCHMARK_MAIN();
