// Serving-stack benchmark: the full wire path (client -> TCP -> epoll
// loop -> admission -> SearchBatch -> response) against an in-process
// net::Server, plus a forced-overload phase measuring shed behavior.
//
// Differential anchor: the query workload is EXACTLY the hot-path smoke
// workload (tier-0 Twitter stand-in, 20 queries per semantics, seed 42,
// k=10), and the doc-id-sum checksum is folded exactly like
// bench_hotpath's smoke baseline -- so tools/check_bench.py can assert
// that answers served over the wire are the very answers the committed
// BENCH_hotpath.json baseline records, across the whole serving stack.
// Within the run, a second (order- and score-sensitive) checksum proves
// wire results byte-identical to direct ShardedIndex::Search calls.
//
// Shed phase: a fresh server with a starvation-level default tenant
// budget takes a burst; the gate requires shed > 0 with zero errors.
// Throughput/latency figures are recorded for trend-watching but NOT
// gated (CI timing noise); checksums and outcome counts are noise-free.
//
// Observability phase: a fresh server with the slow-query threshold on
// the floor serves traced requests; the gate requires every response to
// carry a consistent span timeline, every request to land in the slow
// log, and the i3_slow_queries_total / i3_net_traced_requests_total /
// i3_slo_window_* series to exist and move in the "obs" snapshot.
//
// Flags (on top of the shared bench flags): --smoke (tiny config for CI),
// --json=PATH (default BENCH_serving.json), --reps=N.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "model/sharded_index.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/clock.h"
#include "obs/histogram.h"

namespace i3 {
namespace bench {
namespace {

struct ServingResult {
  const char* semantics;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// Order+score-sensitive FNV fold over the wire responses, and the same
  /// fold over direct ShardedIndex::Search -- equal iff the wire serves
  /// byte-identical results.
  uint64_t wire_checksum = 0;
  uint64_t direct_checksum = 0;
  /// Doc-id sum folded like bench_hotpath's smoke baseline -- comparable
  /// against the committed BENCH_hotpath.json "smoke_baseline" entry.
  uint64_t docsum_checksum = 0;
  /// The wire fold repeated over the timed warm passes, which are served
  /// almost entirely by the server's result cache -- equal to
  /// wire_checksum iff cached responses are byte-identical to the
  /// uncached first pass.
  uint64_t warm_wire_checksum = 0;
};

/// FNV-fold a per-query result checksum into a workload checksum.
void FoldChecksum(uint64_t* acc, uint64_t qsum) {
  for (int i = 0; i < 8; ++i) {
    *acc ^= qsum >> (i * 8) & 0xff;
    *acc *= 1099511628211ull;
  }
}

net::Request ToRequest(const Query& q, uint64_t id, double alpha) {
  net::Request req;
  req.request_id = id;
  req.k = q.k;
  req.semantics = q.semantics;
  req.x = q.location.x;
  req.y = q.location.y;
  req.alpha = alpha;
  req.terms = q.terms;
  return req;
}

ServingResult MeasureSemantics(net::Client* client, ShardedIndex* index,
                               const std::vector<Query>& queries,
                               double alpha, uint32_t reps) {
  ServingResult r;
  r.semantics = SemanticsName(queries.front().semantics);
  r.wire_checksum = 1469598103934665603ull;
  r.direct_checksum = 1469598103934665603ull;

  // Checksum pass: wire vs direct on identical queries.
  for (size_t i = 0; i < queries.size(); ++i) {
    auto wire = client->Call(ToRequest(queries[i], i, alpha));
    if (!wire.ok() ||
        wire.ValueOrDie().outcome != net::ResponseOutcome::kOk) {
      std::fprintf(stderr, "wire search failed: %s\n",
                   wire.ok() ? wire.ValueOrDie().message.c_str()
                             : wire.status().ToString().c_str());
      std::abort();
    }
    FoldChecksum(&r.wire_checksum,
                 net::ResultChecksum(wire.ValueOrDie().results));
    for (const ScoredDoc& d : wire.ValueOrDie().results) {
      r.docsum_checksum += d.doc;
    }
    auto direct = index->Search(queries[i], alpha);
    if (!direct.ok()) {
      std::fprintf(stderr, "direct search failed: %s\n",
                   direct.status().ToString().c_str());
      std::abort();
    }
    FoldChecksum(&r.direct_checksum,
                 net::ResultChecksum(direct.ValueOrDie()));
  }

  // Timed closed-loop passes over the warm index. The repeated queries
  // are result-cache hits after the first pass; folding the checksum per
  // pass proves cached responses byte-identical to the uncached pass.
  obs::HistogramSnapshot latencies_us;
  Timer timer;
  for (uint32_t rep = 0; rep < reps; ++rep) {
    uint64_t fold = 1469598103934665603ull;
    for (size_t i = 0; i < queries.size(); ++i) {
      const uint64_t q0 = obs::NowNanos();
      auto wire = client->Call(ToRequest(queries[i], i, alpha));
      latencies_us.Record((obs::NowNanos() - q0) / 1000);
      if (!wire.ok() ||
          wire.ValueOrDie().outcome != net::ResponseOutcome::kOk) {
        std::fprintf(stderr, "timed wire search failed\n");
        std::abort();
      }
      FoldChecksum(&fold, net::ResultChecksum(wire.ValueOrDie().results));
    }
    if (rep == 0) {
      r.warm_wire_checksum = fold;
    } else if (fold != r.warm_wire_checksum) {
      std::fprintf(stderr, "warm wire checksum drifted between passes\n");
      std::abort();
    }
  }
  const double secs = timer.ElapsedMillis() / 1e3;
  const double n = static_cast<double>(queries.size()) * reps;
  r.qps = n / secs;
  r.p50_us = static_cast<double>(latencies_us.Quantile(0.50));
  r.p99_us = static_cast<double>(latencies_us.Quantile(0.99));
  return r;
}

struct ShedResult {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t error = 0;
  double shed_p50_us = 0.0;
  double shed_p99_us = 0.0;
};

/// Overload phase: a starvation-level default budget (burst 5, 1/s) takes
/// a burst of `sent` requests; everything past the burst must shed, fast.
ShedResult MeasureShedding(ShardedIndex* index, const Query& query,
                           double alpha) {
  ShedResult out;
  net::ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.default_limit = {.rate = 1.0, .burst = 5.0};
  net::Server server(index, sopts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "shed-phase server failed to start\n");
    std::abort();
  }
  net::ClientOptions copts;
  copts.port = server.port();
  copts.recv_timeout_ms = 30000;
  auto client = net::Client::Connect(copts);
  if (!client.ok()) {
    std::fprintf(stderr, "shed-phase connect failed\n");
    std::abort();
  }
  obs::HistogramSnapshot shed_us;
  constexpr uint64_t kBurst = 100;
  for (uint64_t i = 0; i < kBurst; ++i) {
    const uint64_t q0 = obs::NowNanos();
    auto resp = client.ValueOrDie()->Call(ToRequest(query, i, alpha));
    const uint64_t us = (obs::NowNanos() - q0) / 1000;
    if (!resp.ok()) {
      std::fprintf(stderr, "shed-phase request failed: %s\n",
                   resp.status().ToString().c_str());
      std::abort();
    }
    ++out.sent;
    switch (resp.ValueOrDie().outcome) {
      case net::ResponseOutcome::kOk:
        ++out.ok;
        break;
      case net::ResponseOutcome::kShed:
        ++out.shed;
        shed_us.Record(us);
        break;
      case net::ResponseOutcome::kError:
        ++out.error;
        break;
    }
  }
  out.shed_p50_us = static_cast<double>(shed_us.Quantile(0.50));
  out.shed_p99_us = static_cast<double>(shed_us.Quantile(0.99));
  server.Stop();
  return out;
}

struct ObsPhaseResult {
  uint64_t sent = 0;
  /// Responses that came back with a non-empty span timeline.
  uint64_t traced_responses = 0;
  /// Timelines where no stage outruns the end-to-end time.
  uint64_t timeline_consistent = 0;
  /// Slow-query log records on the phase's server (threshold 0: all).
  uint64_t slow_recorded = 0;
};

/// Observability phase: every request is traced and the slow-query
/// threshold is 0, so every request must return a timeline and land in
/// the slow log -- and the traced/slow/SLO metric series must move.
ObsPhaseResult MeasureObservability(ShardedIndex* index,
                                    const std::vector<Query>& queries,
                                    double alpha) {
  ObsPhaseResult out;
  net::ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.slow_threshold_us = 0;
  net::Server server(index, sopts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "obs-phase server failed to start\n");
    std::abort();
  }
  net::ClientOptions copts;
  copts.port = server.port();
  copts.recv_timeout_ms = 30000;
  auto client = net::Client::Connect(copts);
  if (!client.ok()) {
    std::fprintf(stderr, "obs-phase connect failed\n");
    std::abort();
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    net::Request req = ToRequest(queries[i], i, alpha);
    req.trace = true;
    req.no_cache = true;  // exercise the full queue + index path
    auto resp = client.ValueOrDie()->Call(req);
    if (!resp.ok() ||
        resp.ValueOrDie().outcome != net::ResponseOutcome::kOk) {
      std::fprintf(stderr, "obs-phase request failed\n");
      std::abort();
    }
    ++out.sent;
    const net::Response& r = resp.ValueOrDie();
    if (r.has_trace && r.trace.total_ns > 0 && !r.trace.spans.empty()) {
      ++out.traced_responses;
      bool consistent = true;
      for (const net::WireTraceSpan& s : r.trace.spans) {
        if (s.total_ns > r.trace.total_ns) consistent = false;
      }
      if (consistent) ++out.timeline_consistent;
    }
  }
  out.slow_recorded = server.slow_log().recorded();
  // Stop() pulls a final SLO export into the global registry, so the
  // i3_slo_window_* gauges below reflect this phase's traffic.
  server.Stop();
  return out;
}

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  bool smoke = false;
  uint32_t reps = 0;
  std::string json_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<uint32_t>(std::atoi(argv[i] + 7));
    }
  }
  const int tier = smoke ? 0 : 1;
  // The smoke workload mirrors bench_hotpath's smoke baseline exactly
  // (tier 0, 20 queries, seed 42, k=10) so the docsum checksum is
  // comparable against the committed BENCH_hotpath.json.
  const uint32_t num_queries = smoke ? 20 : 100;
  if (reps == 0) reps = smoke ? 3 : 20;

  std::printf("building %s (scale %.2f)...\n", kTwitterNames[tier],
              cfg.scale);
  Dataset ds = MakeTwitter(cfg, tier);
  auto inner = BuildI3(ds, cfg);
  std::vector<std::unique_ptr<SpatialKeywordIndex>> shards;
  shards.push_back(std::move(inner));
  ShardedIndex index(std::move(shards));
  QueryGenerator qgen(ds);

  net::ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.result_cache_entries = cfg.result_cache_entries;
  net::Server server(&index, sopts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server failed to start\n");
    return 1;
  }
  net::ClientOptions copts;
  copts.port = server.port();
  copts.recv_timeout_ms = 30000;
  auto client = net::Client::Connect(copts);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  std::vector<ServingResult> results;
  std::vector<Query> shed_query;
  for (Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    auto queries = qgen.Freq(cfg.default_qn, num_queries, /*k=*/10, sem,
                             /*seed=*/42);
    if (shed_query.empty()) shed_query.push_back(queries.front());
    results.push_back(MeasureSemantics(client.ValueOrDie().get(), &index,
                                       queries, cfg.default_alpha, reps));
  }
  server.Stop();

  const ShedResult shed =
      MeasureShedding(&index, shed_query.front(), cfg.default_alpha);

  const ObsPhaseResult obs_phase = MeasureObservability(
      &index,
      qgen.Freq(cfg.default_qn, num_queries, /*k=*/10, Semantics::kOr,
                /*seed=*/42),
      cfg.default_alpha);

  PrintRule(5, 12);
  PrintRow({"semantics", "qps", "p50us", "p99us", "wire==direct"}, 12);
  PrintRule(5, 12);
  for (const ServingResult& r : results) {
    PrintRow({r.semantics, Fmt(r.qps, 0), Fmt(r.p50_us, 0),
              Fmt(r.p99_us, 0),
              r.wire_checksum == r.direct_checksum ? "yes" : "NO"},
             12);
  }
  PrintRule(5, 12);
  std::printf("shed phase: %" PRIu64 "/%" PRIu64
              " shed (%" PRIu64 " ok, %" PRIu64 " error), "
              "shed p50 %.0fus p99 %.0fus\n",
              shed.shed, shed.sent, shed.ok, shed.error, shed.shed_p50_us,
              shed.shed_p99_us);
  std::printf("obs phase: %" PRIu64 "/%" PRIu64 " traced (%" PRIu64
              " consistent), %" PRIu64 " slow-log records\n",
              obs_phase.traced_responses, obs_phase.sent,
              obs_phase.timeline_consistent, obs_phase.slow_recorded);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serving\",\n"
               "  \"dataset\": {\"name\": \"%s\", \"docs\": %zu},\n"
               "  \"config\": {\"k\": 10, \"qn\": %u, \"eta\": %u, "
               "\"alpha\": %.2f, \"queries\": %u, \"reps\": %u, "
               "\"smoke\": %s},\n"
               "  \"results\": [\n",
               ds.name.c_str(), ds.docs.size(), cfg.default_qn, cfg.eta,
               cfg.default_alpha, num_queries, reps,
               smoke ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const ServingResult& r = results[i];
    std::fprintf(f,
                 "    {\"semantics\": \"%s\", \"qps\": %.1f, "
                 "\"p50_us\": %.0f, \"p99_us\": %.0f, "
                 "\"wire_checksum\": %" PRIu64 ", "
                 "\"direct_checksum\": %" PRIu64 ", "
                 "\"docsum_checksum\": %" PRIu64 ", "
                 "\"warm_wire_checksum\": %" PRIu64 "}%s\n",
                 r.semantics, r.qps, r.p50_us, r.p99_us, r.wire_checksum,
                 r.direct_checksum, r.docsum_checksum,
                 r.warm_wire_checksum, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"shed\": {\"sent\": %" PRIu64 ", \"ok\": %" PRIu64 ", "
               "\"shed\": %" PRIu64 ", \"error\": %" PRIu64 ", "
               "\"shed_p50_us\": %.0f, \"shed_p99_us\": %.0f},\n",
               shed.sent, shed.ok, shed.shed, shed.error, shed.shed_p50_us,
               shed.shed_p99_us);
  std::fprintf(f,
               "  \"obs_phase\": {\"sent\": %" PRIu64
               ", \"traced_responses\": %" PRIu64
               ", \"timeline_consistent\": %" PRIu64
               ", \"slow_recorded\": %" PRIu64 "},\n",
               obs_phase.sent, obs_phase.traced_responses,
               obs_phase.timeline_consistent, obs_phase.slow_recorded);
  // Process-wide metrics snapshot: includes the serving families
  // (i3_net_requests_total, i3_requests_shed_total, i3_request_latency_us,
  // ...) the CI gate requires to exist and move.
  std::fprintf(f, "  \"obs\":\n%s\n}\n",
               MetricsSnapshotJson("  ").c_str());
  DumpMetricsIfRequested(cfg);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace i3

int main(int argc, char** argv) { return i3::bench::Main(argc, argv); }
