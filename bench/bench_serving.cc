// Serving-stack benchmark: the full wire path (client -> TCP -> epoll
// loop -> admission -> SearchBatch -> response) against an in-process
// net::Server, plus a forced-overload phase measuring shed behavior.
//
// Differential anchor: the query workload is EXACTLY the hot-path smoke
// workload (tier-0 Twitter stand-in, 20 queries per semantics, seed 42,
// k=10), and the doc-id-sum checksum is folded exactly like
// bench_hotpath's smoke baseline -- so tools/check_bench.py can assert
// that answers served over the wire are the very answers the committed
// BENCH_hotpath.json baseline records, across the whole serving stack.
// Within the run, a second (order- and score-sensitive) checksum proves
// wire results byte-identical to direct ShardedIndex::Search calls.
//
// Shed phase: a fresh server with a starvation-level default tenant
// budget takes a burst; the gate requires shed > 0 with zero errors.
// Throughput/latency figures are recorded for trend-watching but NOT
// gated (CI timing noise); checksums and outcome counts are noise-free.
//
// Observability phase: a fresh server with the slow-query threshold on
// the floor serves traced requests; the gate requires every response to
// carry a consistent span timeline, every request to land in the slow
// log, and the i3_slow_queries_total / i3_net_traced_requests_total /
// i3_slo_window_* series to exist and move in the "obs" snapshot.
//
// Replication phase: the same workload against a server whose one shard
// is a 2-replica ReplicaSet, with the corpus inserted through the
// replicated write path. Four wire checksums must all be equal --
// all-healthy cold, warm (result cache), primary-killed cold (every
// query fails over), and post-recovery cold -- proving failover and
// online recovery are invisible at the byte level. A full scrub sweep
// runs with queries in flight to measure scrub overhead (recorded, not
// gated) and to move the i3_scrub_* / i3_failover_total /
// i3_replica_recoveries_total series the CI gate requires.
//
// Flags (on top of the shared bench flags): --smoke (tiny config for CI),
// --json=PATH (default BENCH_serving.json), --reps=N.

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "i3/replica_ops.h"
#include "model/replica_set.h"
#include "model/sharded_index.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/clock.h"
#include "obs/histogram.h"

namespace i3 {
namespace bench {
namespace {

struct ServingResult {
  const char* semantics;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// Order+score-sensitive FNV fold over the wire responses, and the same
  /// fold over direct ShardedIndex::Search -- equal iff the wire serves
  /// byte-identical results.
  uint64_t wire_checksum = 0;
  uint64_t direct_checksum = 0;
  /// Doc-id sum folded like bench_hotpath's smoke baseline -- comparable
  /// against the committed BENCH_hotpath.json "smoke_baseline" entry.
  uint64_t docsum_checksum = 0;
  /// The wire fold repeated over the timed warm passes, which are served
  /// almost entirely by the server's result cache -- equal to
  /// wire_checksum iff cached responses are byte-identical to the
  /// uncached first pass.
  uint64_t warm_wire_checksum = 0;
};

/// FNV-fold a per-query result checksum into a workload checksum.
void FoldChecksum(uint64_t* acc, uint64_t qsum) {
  for (int i = 0; i < 8; ++i) {
    *acc ^= qsum >> (i * 8) & 0xff;
    *acc *= 1099511628211ull;
  }
}

net::Request ToRequest(const Query& q, uint64_t id, double alpha) {
  net::Request req;
  req.request_id = id;
  req.k = q.k;
  req.semantics = q.semantics;
  req.x = q.location.x;
  req.y = q.location.y;
  req.alpha = alpha;
  req.terms = q.terms;
  return req;
}

ServingResult MeasureSemantics(net::Client* client, ShardedIndex* index,
                               const std::vector<Query>& queries,
                               double alpha, uint32_t reps) {
  ServingResult r;
  r.semantics = SemanticsName(queries.front().semantics);
  r.wire_checksum = 1469598103934665603ull;
  r.direct_checksum = 1469598103934665603ull;

  // Checksum pass: wire vs direct on identical queries.
  for (size_t i = 0; i < queries.size(); ++i) {
    auto wire = client->Call(ToRequest(queries[i], i, alpha));
    if (!wire.ok() ||
        wire.ValueOrDie().outcome != net::ResponseOutcome::kOk) {
      std::fprintf(stderr, "wire search failed: %s\n",
                   wire.ok() ? wire.ValueOrDie().message.c_str()
                             : wire.status().ToString().c_str());
      std::abort();
    }
    FoldChecksum(&r.wire_checksum,
                 net::ResultChecksum(wire.ValueOrDie().results));
    for (const ScoredDoc& d : wire.ValueOrDie().results) {
      r.docsum_checksum += d.doc;
    }
    auto direct = index->Search(queries[i], alpha);
    if (!direct.ok()) {
      std::fprintf(stderr, "direct search failed: %s\n",
                   direct.status().ToString().c_str());
      std::abort();
    }
    FoldChecksum(&r.direct_checksum,
                 net::ResultChecksum(direct.ValueOrDie()));
  }

  // Timed closed-loop passes over the warm index. The repeated queries
  // are result-cache hits after the first pass; folding the checksum per
  // pass proves cached responses byte-identical to the uncached pass.
  obs::HistogramSnapshot latencies_us;
  Timer timer;
  for (uint32_t rep = 0; rep < reps; ++rep) {
    uint64_t fold = 1469598103934665603ull;
    for (size_t i = 0; i < queries.size(); ++i) {
      const uint64_t q0 = obs::NowNanos();
      auto wire = client->Call(ToRequest(queries[i], i, alpha));
      latencies_us.Record((obs::NowNanos() - q0) / 1000);
      if (!wire.ok() ||
          wire.ValueOrDie().outcome != net::ResponseOutcome::kOk) {
        std::fprintf(stderr, "timed wire search failed\n");
        std::abort();
      }
      FoldChecksum(&fold, net::ResultChecksum(wire.ValueOrDie().results));
    }
    if (rep == 0) {
      r.warm_wire_checksum = fold;
    } else if (fold != r.warm_wire_checksum) {
      std::fprintf(stderr, "warm wire checksum drifted between passes\n");
      std::abort();
    }
  }
  const double secs = timer.ElapsedMillis() / 1e3;
  const double n = static_cast<double>(queries.size()) * reps;
  r.qps = n / secs;
  r.p50_us = static_cast<double>(latencies_us.Quantile(0.50));
  r.p99_us = static_cast<double>(latencies_us.Quantile(0.99));
  return r;
}

struct ShedResult {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t error = 0;
  double shed_p50_us = 0.0;
  double shed_p99_us = 0.0;
};

/// Overload phase: a starvation-level default budget (burst 5, 1/s) takes
/// a burst of `sent` requests; everything past the burst must shed, fast.
ShedResult MeasureShedding(ShardedIndex* index, const Query& query,
                           double alpha) {
  ShedResult out;
  net::ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.default_limit = {.rate = 1.0, .burst = 5.0};
  net::Server server(index, sopts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "shed-phase server failed to start\n");
    std::abort();
  }
  net::ClientOptions copts;
  copts.port = server.port();
  copts.recv_timeout_ms = 30000;
  auto client = net::Client::Connect(copts);
  if (!client.ok()) {
    std::fprintf(stderr, "shed-phase connect failed\n");
    std::abort();
  }
  obs::HistogramSnapshot shed_us;
  constexpr uint64_t kBurst = 100;
  for (uint64_t i = 0; i < kBurst; ++i) {
    const uint64_t q0 = obs::NowNanos();
    auto resp = client.ValueOrDie()->Call(ToRequest(query, i, alpha));
    const uint64_t us = (obs::NowNanos() - q0) / 1000;
    if (!resp.ok()) {
      std::fprintf(stderr, "shed-phase request failed: %s\n",
                   resp.status().ToString().c_str());
      std::abort();
    }
    ++out.sent;
    switch (resp.ValueOrDie().outcome) {
      case net::ResponseOutcome::kOk:
        ++out.ok;
        break;
      case net::ResponseOutcome::kShed:
        ++out.shed;
        shed_us.Record(us);
        break;
      case net::ResponseOutcome::kError:
        ++out.error;
        break;
    }
  }
  out.shed_p50_us = static_cast<double>(shed_us.Quantile(0.50));
  out.shed_p99_us = static_cast<double>(shed_us.Quantile(0.99));
  server.Stop();
  return out;
}

struct ObsPhaseResult {
  uint64_t sent = 0;
  /// Responses that came back with a non-empty span timeline.
  uint64_t traced_responses = 0;
  /// Timelines where no stage outruns the end-to-end time.
  uint64_t timeline_consistent = 0;
  /// Slow-query log records on the phase's server (threshold 0: all).
  uint64_t slow_recorded = 0;
};

/// Observability phase: every request is traced and the slow-query
/// threshold is 0, so every request must return a timeline and land in
/// the slow log -- and the traced/slow/SLO metric series must move.
ObsPhaseResult MeasureObservability(ShardedIndex* index,
                                    const std::vector<Query>& queries,
                                    double alpha) {
  ObsPhaseResult out;
  net::ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.slow_threshold_us = 0;
  net::Server server(index, sopts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "obs-phase server failed to start\n");
    std::abort();
  }
  net::ClientOptions copts;
  copts.port = server.port();
  copts.recv_timeout_ms = 30000;
  auto client = net::Client::Connect(copts);
  if (!client.ok()) {
    std::fprintf(stderr, "obs-phase connect failed\n");
    std::abort();
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    net::Request req = ToRequest(queries[i], i, alpha);
    req.trace = true;
    req.no_cache = true;  // exercise the full queue + index path
    auto resp = client.ValueOrDie()->Call(req);
    if (!resp.ok() ||
        resp.ValueOrDie().outcome != net::ResponseOutcome::kOk) {
      std::fprintf(stderr, "obs-phase request failed\n");
      std::abort();
    }
    ++out.sent;
    const net::Response& r = resp.ValueOrDie();
    if (r.has_trace && r.trace.total_ns > 0 && !r.trace.spans.empty()) {
      ++out.traced_responses;
      bool consistent = true;
      for (const net::WireTraceSpan& s : r.trace.spans) {
        if (s.total_ns > r.trace.total_ns) consistent = false;
      }
      if (consistent) ++out.timeline_consistent;
    }
  }
  out.slow_recorded = server.slow_log().recorded();
  // Stop() pulls a final SLO export into the global registry, so the
  // i3_slo_window_* gauges below reflect this phase's traffic.
  server.Stop();
  return out;
}

struct ReplicaPhaseResult {
  /// Wire checksums (order+score-sensitive fold); the gate requires all
  /// four equal.
  uint64_t baseline_checksum = 0;   ///< all replicas healthy, cache off
  uint64_t warm_checksum = 0;       ///< all healthy, result-cache hits
  uint64_t failover_checksum = 0;   ///< primary killed, cache off
  uint64_t recovered_checksum = 0;  ///< after online recovery, cache off
  uint64_t failovers = 0;           ///< reads served by a non-primary
  uint64_t recoveries = 0;
  uint64_t scrub_pages_verified = 0;
  /// Wall time of the online snapshot + catch-up recovery.
  double recover_ms = 0.0;
  /// p99 of the cold pass with all replicas healthy vs failed-over
  /// (recorded, not gated -- CI timing noise).
  double baseline_p99_us = 0.0;
  double failover_p99_us = 0.0;
  /// Cold-pass qps without / with a concurrent full scrub sweep.
  double qps_quiet = 0.0;
  double qps_scrubbing = 0.0;
};

/// One cold (cache-bypassing) wire pass; returns the checksum fold and
/// fills `p99_us`/`qps` when non-null.
uint64_t ColdWirePass(net::Client* client, const std::vector<Query>& queries,
                      double alpha, double* p99_us, double* qps) {
  uint64_t fold = 1469598103934665603ull;
  obs::HistogramSnapshot us;
  Timer timer;
  for (size_t i = 0; i < queries.size(); ++i) {
    net::Request req = ToRequest(queries[i], i, alpha);
    req.no_cache = true;
    const uint64_t q0 = obs::NowNanos();
    auto wire = client->Call(req);
    us.Record((obs::NowNanos() - q0) / 1000);
    if (!wire.ok() ||
        wire.ValueOrDie().outcome != net::ResponseOutcome::kOk ||
        wire.ValueOrDie().degraded) {
      std::fprintf(stderr, "replica-phase wire search failed%s\n",
                   wire.ok() && wire.ValueOrDie().degraded ? " (degraded)"
                                                           : "");
      std::abort();
    }
    FoldChecksum(&fold, net::ResultChecksum(wire.ValueOrDie().results));
  }
  const double secs = timer.ElapsedMillis() / 1e3;
  if (p99_us != nullptr) {
    *p99_us = static_cast<double>(us.Quantile(0.99));
  }
  if (qps != nullptr && secs > 0) {
    *qps = static_cast<double>(queries.size()) / secs;
  }
  return fold;
}

/// Replication phase: 2-replica shard, corpus inserted through the
/// replicated write path; checksum equality across healthy / warm /
/// failed-over / recovered serving, plus scrub overhead.
ReplicaPhaseResult MeasureReplication(const Dataset& ds,
                                      const BenchConfig& cfg,
                                      const std::vector<Query>& queries,
                                      double alpha) {
  ReplicaPhaseResult out;
  I3Options opt;
  opt.space = ds.space;
  opt.signature_bits = cfg.eta;
  opt.buffer_pool.capacity_pages = cfg.pool_pages;
  opt.head_pool_pages = cfg.head_pool_pages;
  opt.cell_cache_bytes = cfg.cell_cache_mb << 20;
  ReplicaSetOptions ropt;
  ropt.replication_factor = 2;
  auto set = ReplicaSet::Create(
      [&opt](uint32_t) { return std::make_unique<I3Index>(opt); },
      MakeI3ReplicaOps([opt](uint32_t) { return opt; }), ropt);
  if (!set.ok()) {
    std::fprintf(stderr, "replica-phase set failed: %s\n",
                 set.status().ToString().c_str());
    std::abort();
  }
  std::vector<std::unique_ptr<SpatialKeywordIndex>> shards;
  shards.push_back(set.MoveValue());
  ShardedIndex index(std::move(shards));
  for (const auto& d : ds.docs) {
    auto st = index.Insert(d);
    if (!st.ok()) {
      std::fprintf(stderr, "replicated insert failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
  }
  ReplicaSet* rset = index.replica_set(0);

  net::ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.result_cache_entries = cfg.result_cache_entries;
  net::Server server(&index, sopts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "replica-phase server failed to start\n");
    std::abort();
  }
  net::ClientOptions copts;
  copts.port = server.port();
  copts.recv_timeout_ms = 30000;
  auto client = net::Client::Connect(copts);
  if (!client.ok()) {
    std::fprintf(stderr, "replica-phase connect failed\n");
    std::abort();
  }
  net::Client* c = client.ValueOrDie().get();

  // All-healthy cold baseline, then a warm (result-cache) pass.
  out.baseline_checksum =
      ColdWirePass(c, queries, alpha, &out.baseline_p99_us, nullptr);
  for (int pass = 0; pass < 2; ++pass) {
    uint64_t fold = 1469598103934665603ull;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto wire = c->Call(ToRequest(queries[i], i, alpha));
      if (!wire.ok() ||
          wire.ValueOrDie().outcome != net::ResponseOutcome::kOk) {
        std::fprintf(stderr, "replica-phase warm search failed\n");
        std::abort();
      }
      FoldChecksum(&fold, net::ResultChecksum(wire.ValueOrDie().results));
    }
    out.warm_checksum = fold;
  }

  // Kill the primary: every query must fail over to replica 1 and still
  // serve the identical bytes.
  if (auto st = rset->KillReplica(0); !st.ok()) {
    std::fprintf(stderr, "KillReplica failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  index.ClearCache();
  out.failover_checksum =
      ColdWirePass(c, queries, alpha, &out.failover_p99_us, nullptr);

  // Online recovery (snapshot + catch-up) while the set keeps serving,
  // then the recovered primary serves the same bytes again.
  Timer recover_timer;
  if (auto st = rset->RecoverReplica(0); !st.ok()) {
    std::fprintf(stderr, "RecoverReplica failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  out.recover_ms = recover_timer.ElapsedMillis();
  index.ClearCache();
  out.recovered_checksum = ColdWirePass(c, queries, alpha, nullptr, nullptr);

  // Scrub overhead: cold query passes with and without a concurrent
  // full CRC sweep. One throwaway pass first so both measurements run
  // at the same (lower-level-cache) warmth.
  ColdWirePass(c, queries, alpha, nullptr, nullptr);
  ColdWirePass(c, queries, alpha, nullptr, &out.qps_quiet);
  std::atomic<bool> scrub_done{false};
  // The bench built the replicas itself, so the downcast is safe.
  const uint64_t data_pages =
      static_cast<I3Index*>(rset->replica(0))->DataPageCount();
  std::thread scrubber([&rset, &scrub_done, data_pages]() {
    const uint64_t pages = rset->GetStatus().scrub_pages_verified;
    uint64_t verified = pages;
    // Sweep until every page of both replicas was verified at least once
    // more (the tick size is ReplicaSetOptions::scrub_pages_per_tick).
    while (verified < pages + 2 * data_pages) {
      if (auto st = rset->ScrubTick(); !st.ok()) {
        std::fprintf(stderr, "ScrubTick failed: %s\n",
                     st.ToString().c_str());
        std::abort();
      }
      verified = rset->GetStatus().scrub_pages_verified;
    }
    scrub_done.store(true);
  });
  while (!scrub_done.load()) {
    ColdWirePass(c, queries, alpha, nullptr, &out.qps_scrubbing);
  }
  scrubber.join();

  const ReplicaSetStatus status = rset->GetStatus();
  out.failovers = status.failovers;
  out.recoveries = status.recoveries;
  out.scrub_pages_verified = status.scrub_pages_verified;
  server.Stop();
  return out;
}

int Main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  bool smoke = false;
  uint32_t reps = 0;
  std::string json_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<uint32_t>(std::atoi(argv[i] + 7));
    }
  }
  const int tier = smoke ? 0 : 1;
  // The smoke workload mirrors bench_hotpath's smoke baseline exactly
  // (tier 0, 20 queries, seed 42, k=10) so the docsum checksum is
  // comparable against the committed BENCH_hotpath.json.
  const uint32_t num_queries = smoke ? 20 : 100;
  if (reps == 0) reps = smoke ? 3 : 20;

  std::printf("building %s (scale %.2f)...\n", kTwitterNames[tier],
              cfg.scale);
  Dataset ds = MakeTwitter(cfg, tier);
  auto inner = BuildI3(ds, cfg);
  std::vector<std::unique_ptr<SpatialKeywordIndex>> shards;
  shards.push_back(std::move(inner));
  ShardedIndex index(std::move(shards));
  QueryGenerator qgen(ds);

  net::ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.result_cache_entries = cfg.result_cache_entries;
  net::Server server(&index, sopts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server failed to start\n");
    return 1;
  }
  net::ClientOptions copts;
  copts.port = server.port();
  copts.recv_timeout_ms = 30000;
  auto client = net::Client::Connect(copts);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  std::vector<ServingResult> results;
  std::vector<Query> shed_query;
  for (Semantics sem : {Semantics::kAnd, Semantics::kOr}) {
    auto queries = qgen.Freq(cfg.default_qn, num_queries, /*k=*/10, sem,
                             /*seed=*/42);
    if (shed_query.empty()) shed_query.push_back(queries.front());
    results.push_back(MeasureSemantics(client.ValueOrDie().get(), &index,
                                       queries, cfg.default_alpha, reps));
  }
  server.Stop();

  const ShedResult shed =
      MeasureShedding(&index, shed_query.front(), cfg.default_alpha);

  const ObsPhaseResult obs_phase = MeasureObservability(
      &index,
      qgen.Freq(cfg.default_qn, num_queries, /*k=*/10, Semantics::kOr,
                /*seed=*/42),
      cfg.default_alpha);

  const ReplicaPhaseResult replica_phase = MeasureReplication(
      ds, cfg,
      qgen.Freq(cfg.default_qn, num_queries, /*k=*/10, Semantics::kOr,
                /*seed=*/42),
      cfg.default_alpha);

  PrintRule(5, 12);
  PrintRow({"semantics", "qps", "p50us", "p99us", "wire==direct"}, 12);
  PrintRule(5, 12);
  for (const ServingResult& r : results) {
    PrintRow({r.semantics, Fmt(r.qps, 0), Fmt(r.p50_us, 0),
              Fmt(r.p99_us, 0),
              r.wire_checksum == r.direct_checksum ? "yes" : "NO"},
             12);
  }
  PrintRule(5, 12);
  std::printf("shed phase: %" PRIu64 "/%" PRIu64
              " shed (%" PRIu64 " ok, %" PRIu64 " error), "
              "shed p50 %.0fus p99 %.0fus\n",
              shed.shed, shed.sent, shed.ok, shed.error, shed.shed_p50_us,
              shed.shed_p99_us);
  std::printf("obs phase: %" PRIu64 "/%" PRIu64 " traced (%" PRIu64
              " consistent), %" PRIu64 " slow-log records\n",
              obs_phase.traced_responses, obs_phase.sent,
              obs_phase.timeline_consistent, obs_phase.slow_recorded);
  const bool replica_identical =
      replica_phase.baseline_checksum == replica_phase.warm_checksum &&
      replica_phase.baseline_checksum == replica_phase.failover_checksum &&
      replica_phase.baseline_checksum == replica_phase.recovered_checksum;
  std::printf("replica phase: checksums %s, %" PRIu64 " failovers, "
              "%" PRIu64 " recoveries (%.1fms), %" PRIu64
              " pages scrubbed, qps %.0f quiet / %.0f scrubbing\n",
              replica_identical ? "identical" : "DIVERGED",
              replica_phase.failovers, replica_phase.recoveries,
              replica_phase.recover_ms, replica_phase.scrub_pages_verified,
              replica_phase.qps_quiet, replica_phase.qps_scrubbing);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serving\",\n"
               "  \"dataset\": {\"name\": \"%s\", \"docs\": %zu},\n"
               "  \"config\": {\"k\": 10, \"qn\": %u, \"eta\": %u, "
               "\"alpha\": %.2f, \"queries\": %u, \"reps\": %u, "
               "\"smoke\": %s},\n"
               "  \"results\": [\n",
               ds.name.c_str(), ds.docs.size(), cfg.default_qn, cfg.eta,
               cfg.default_alpha, num_queries, reps,
               smoke ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const ServingResult& r = results[i];
    std::fprintf(f,
                 "    {\"semantics\": \"%s\", \"qps\": %.1f, "
                 "\"p50_us\": %.0f, \"p99_us\": %.0f, "
                 "\"wire_checksum\": %" PRIu64 ", "
                 "\"direct_checksum\": %" PRIu64 ", "
                 "\"docsum_checksum\": %" PRIu64 ", "
                 "\"warm_wire_checksum\": %" PRIu64 "}%s\n",
                 r.semantics, r.qps, r.p50_us, r.p99_us, r.wire_checksum,
                 r.direct_checksum, r.docsum_checksum,
                 r.warm_wire_checksum, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"shed\": {\"sent\": %" PRIu64 ", \"ok\": %" PRIu64 ", "
               "\"shed\": %" PRIu64 ", \"error\": %" PRIu64 ", "
               "\"shed_p50_us\": %.0f, \"shed_p99_us\": %.0f},\n",
               shed.sent, shed.ok, shed.shed, shed.error, shed.shed_p50_us,
               shed.shed_p99_us);
  std::fprintf(f,
               "  \"obs_phase\": {\"sent\": %" PRIu64
               ", \"traced_responses\": %" PRIu64
               ", \"timeline_consistent\": %" PRIu64
               ", \"slow_recorded\": %" PRIu64 "},\n",
               obs_phase.sent, obs_phase.traced_responses,
               obs_phase.timeline_consistent, obs_phase.slow_recorded);
  std::fprintf(f,
               "  \"replica_phase\": {\"baseline_checksum\": %" PRIu64
               ", \"warm_checksum\": %" PRIu64
               ", \"failover_checksum\": %" PRIu64
               ", \"recovered_checksum\": %" PRIu64
               ", \"failovers\": %" PRIu64 ", \"recoveries\": %" PRIu64
               ", \"scrub_pages_verified\": %" PRIu64
               ", \"recover_ms\": %.1f, \"baseline_p99_us\": %.0f, "
               "\"failover_p99_us\": %.0f, \"qps_quiet\": %.0f, "
               "\"qps_scrubbing\": %.0f},\n",
               replica_phase.baseline_checksum, replica_phase.warm_checksum,
               replica_phase.failover_checksum,
               replica_phase.recovered_checksum, replica_phase.failovers,
               replica_phase.recoveries, replica_phase.scrub_pages_verified,
               replica_phase.recover_ms, replica_phase.baseline_p99_us,
               replica_phase.failover_p99_us, replica_phase.qps_quiet,
               replica_phase.qps_scrubbing);
  // Process-wide metrics snapshot: includes the serving families
  // (i3_net_requests_total, i3_requests_shed_total, i3_request_latency_us,
  // ...) the CI gate requires to exist and move.
  std::fprintf(f, "  \"obs\":\n%s\n}\n",
               MetricsSnapshotJson("  ").c_str());
  DumpMetricsIfRequested(cfg);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace i3

int main(int argc, char** argv) { return i3::bench::Main(argc, argv); }
