#include "bench_common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/clock.h"
#include "obs/histogram.h"
#include "storage/fault_injection.h"

namespace i3 {
namespace bench {

BenchConfig BenchConfig::FromArgs(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      cfg.scale = std::atof(a + 8);
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      cfg.num_queries = static_cast<uint32_t>(std::atoi(a + 10));
    } else if (std::strcmp(a, "--skip-irtree") == 0) {
      cfg.skip_irtree = true;
    } else if (std::strncmp(a, "--eta=", 6) == 0) {
      cfg.eta = static_cast<uint32_t>(std::atoi(a + 6));
    } else if (std::strncmp(a, "--iolat=", 8) == 0) {
      cfg.io_latency_us = static_cast<uint32_t>(std::atoi(a + 8));
    } else if (std::strcmp(a, "--metrics") == 0) {
      cfg.dump_metrics = true;
    } else if (std::strncmp(a, "--metrics=", 10) == 0) {
      cfg.dump_metrics = true;
      cfg.metrics_path = a + 10;
    } else if (std::strncmp(a, "--trace-sample-rate=", 20) == 0) {
      cfg.trace_sample_rate = std::atof(a + 20);
    } else if (std::strncmp(a, "--fault-profile=", 16) == 0) {
      cfg.fault_profile = a + 16;
    } else if (std::strncmp(a, "--deadline-ms=", 14) == 0) {
      cfg.deadline_ms = std::strtoull(a + 14, nullptr, 10);
    } else if (std::strncmp(a, "--pool-pages=", 13) == 0) {
      cfg.pool_pages = static_cast<uint32_t>(std::atoi(a + 13));
    } else if (std::strncmp(a, "--head-pool-pages=", 18) == 0) {
      cfg.head_pool_pages = static_cast<uint32_t>(std::atoi(a + 18));
    } else if (std::strncmp(a, "--cell-cache-mb=", 16) == 0) {
      cfg.cell_cache_mb = static_cast<size_t>(std::atoi(a + 16));
    } else if (std::strncmp(a, "--result-cache-entries=", 23) == 0) {
      cfg.result_cache_entries = static_cast<size_t>(std::atoi(a + 23));
    } else if (std::strcmp(a, "--help") == 0) {
      std::printf(
          "flags: --scale=X (dataset scale, default 1) --queries=N "
          "--skip-irtree --eta=N --iolat=US (simulated page latency) "
          "--metrics[=PATH] (Prometheus dump on exit, stdout if no path) "
          "--trace-sample-rate=R (fraction of queries traced) "
          "--fault-profile=SPEC (storage fault injection, see "
          "storage/fault_injection.h) --deadline-ms=N (per-query "
          "deadline) --pool-pages=N (data-file buffer pool, 0 = uncached) "
          "--head-pool-pages=N (head-file pager, 0 = per-node charging) "
          "--cell-cache-mb=N (decoded-cell cache budget, 0 = off) "
          "--result-cache-entries=N (serving result cache, 0 = off)\n");
      std::exit(0);
    }
  }
  obs::Tracer::Global().SetSampleRate(cfg.trace_sample_rate);
  return cfg;
}

Dataset MakeTwitter(const BenchConfig& cfg, int tier) {
  const uint32_t n = static_cast<uint32_t>(kTwitterBase[tier] * cfg.scale);
  GeneratorSpec spec = TwitterSpec(n, /*seed=*/100 + tier);
  spec.name = kTwitterNames[tier];
  return Generate(spec);
}

Dataset MakeWikipedia(const BenchConfig& cfg) {
  const uint32_t n = static_cast<uint32_t>(kWikipediaBase * cfg.scale);
  GeneratorSpec spec = WikipediaSpec(n, /*seed=*/200);
  spec.name = "Wikipedia";
  return Generate(spec);
}

std::unique_ptr<I3Index> BuildI3(const Dataset& ds, uint32_t eta) {
  I3Options opt;
  opt.space = ds.space;
  opt.signature_bits = eta;
  auto index = std::make_unique<I3Index>(opt);
  for (const auto& d : ds.docs) {
    auto st = index->Insert(d);
    if (!st.ok()) {
      std::fprintf(stderr, "I3 insert failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  return index;
}

std::unique_ptr<I3Index> BuildI3(const Dataset& ds, const BenchConfig& cfg) {
  I3Options opt;
  opt.space = ds.space;
  opt.signature_bits = cfg.eta;
  opt.buffer_pool.capacity_pages = cfg.pool_pages;
  opt.head_pool_pages = cfg.head_pool_pages;
  opt.cell_cache_bytes = cfg.cell_cache_mb << 20;
  if (!cfg.fault_profile.empty()) {
    auto parsed = FaultProfile::Parse(cfg.fault_profile);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --fault-profile: %s\n",
                   parsed.status().ToString().c_str());
      std::abort();
    }
    const FaultProfile profile = parsed.ValueOrDie();
    opt.page_file_factory = [profile](size_t page_size) {
      return std::make_unique<FaultInjectionPageFile>(
          std::make_unique<InMemoryPageFile>(page_size), profile);
    };
  }
  auto index = std::make_unique<I3Index>(opt);
  for (const auto& d : ds.docs) {
    auto st = index->Insert(d);
    // Injected build-phase faults are expected; the document is skipped.
    if (!st.ok() && !st.IsIOError()) {
      std::fprintf(stderr, "I3 insert failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  return index;
}

std::unique_ptr<S2IIndex> BuildS2I(const Dataset& ds) {
  S2IOptions opt;
  opt.space = ds.space;
  auto index = std::make_unique<S2IIndex>(opt);
  for (const auto& d : ds.docs) {
    auto st = index->Insert(d);
    if (!st.ok()) {
      std::fprintf(stderr, "S2I insert failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  return index;
}

std::unique_ptr<IrTreeIndex> BuildIrTree(const Dataset& ds, bool bulk) {
  IrTreeOptions opt;
  opt.space = ds.space;
  if (bulk) {
    auto res = IrTreeIndex::BulkLoad(opt, ds.docs);
    if (!res.ok()) {
      std::fprintf(stderr, "IR-tree bulk load failed: %s\n",
                   res.status().ToString().c_str());
      std::abort();
    }
    return res.MoveValue();
  }
  auto index = std::make_unique<IrTreeIndex>(opt);
  for (const auto& d : ds.docs) {
    auto st = index->Insert(d);
    if (!st.ok()) {
      std::fprintf(stderr, "IR-tree insert failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
  }
  return index;
}

QuerySetCost RunQuerySet(SpatialKeywordIndex* index,
                         const std::vector<Query>& queries, double alpha,
                         uint32_t io_latency_us, const QueryRunOptions& run) {
  QuerySetCost cost;
  if (queries.empty()) return cost;
  index->ClearCache();  // cold cache per query set, as in Section 6.3
  index->ResetIoStats();
  ScopedIoLatency latency(io_latency_us);
  obs::HistogramSnapshot latencies_us;
  Timer timer;
  for (const Query& q_in : queries) {
    Query q = q_in;
    if (run.deadline_us > 0) {
      q.control = QueryControl::AfterMicros(run.deadline_us);
    }
    const uint64_t q0 = obs::NowNanos();
    auto res = index->Search(q, alpha);
    latencies_us.Record((obs::NowNanos() - q0) / 1000);
    if (!res.ok()) {
      if (!run.allow_errors) {
        std::fprintf(stderr, "%s search failed: %s\n", index->Name().c_str(),
                     res.status().ToString().c_str());
        std::abort();
      }
      ++cost.failed_queries;
      continue;
    }
    cost.degraded_queries += index->LastSearchStats().Get("degraded");
  }
  cost.avg_ms = timer.ElapsedMillis() / queries.size();
  cost.p50_ms = static_cast<double>(latencies_us.Quantile(0.50)) / 1000.0;
  cost.p90_ms = static_cast<double>(latencies_us.Quantile(0.90)) / 1000.0;
  cost.p99_ms = static_cast<double>(latencies_us.Quantile(0.99)) / 1000.0;
  cost.max_ms = static_cast<double>(latencies_us.Max()) / 1000.0;
  const IoStats& io = index->io_stats();
  // The stats were reset above, so the cumulative counters are exactly
  // this query set's delta.
  RecordIoMetrics(io);
  cost.avg_io_reads =
      static_cast<double>(io.TotalReads()) / queries.size();
  for (int c = 0; c < kNumIoCategories; ++c) {
    cost.avg_reads_by_cat[c] =
        static_cast<double>(io.reads(static_cast<IoCategory>(c))) /
        queries.size();
  }
  return cost;
}

void DumpMetricsIfRequested(const BenchConfig& cfg) {
  if (!cfg.dump_metrics) return;
  const std::string text =
      obs::ToPrometheusText(obs::MetricsRegistry::Global().Snapshot());
  if (cfg.metrics_path.empty()) {
    std::printf("\n--- metrics ---\n%s", text.c_str());
    return;
  }
  std::ofstream out(cfg.metrics_path);
  if (!out) {
    std::fprintf(stderr, "cannot write metrics to %s\n",
                 cfg.metrics_path.c_str());
    return;
  }
  out << text;
}

std::string MetricsSnapshotJson(const std::string& indent) {
  return obs::ToJson(obs::MetricsRegistry::Global().Snapshot(), indent);
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

void PrintRule(size_t cells, int width) {
  std::string rule(cells * static_cast<size_t>(width), '-');
  std::printf("%s\n", rule.c_str());
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (uint64_t{1} << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(bytes) / (uint64_t{1} << 30));
  } else if (bytes >= (uint64_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB",
                  static_cast<double>(bytes) / (uint64_t{1} << 20));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fKB",
                  static_cast<double>(bytes) / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "B", bytes);
  }
  return buf;
}

}  // namespace bench
}  // namespace i3
