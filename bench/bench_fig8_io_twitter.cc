// Figure 8: I/O cost of increasing qn under OR semantics on the
// Twitter5M-scale dataset, split by file type: I3 head file vs data file,
// S2I tree nodes, IR-tree tree nodes vs inverted files (the stacked
// histograms of the paper).

#include <cstdio>

#include "bench_common.h"

using namespace i3;
using namespace i3::bench;

namespace {

void RunPanel(const BenchConfig& cfg, const Dataset& ds, bool irtree_bulk) {
  auto i3x = BuildI3(ds, cfg.eta);
  auto s2i = BuildS2I(ds);
  std::unique_ptr<IrTreeIndex> ir;
  if (!cfg.skip_irtree) ir = BuildIrTree(ds, irtree_bulk);
  const QueryGenerator qgen(ds);

  PrintRow({"qn", "I3.head", "I3.data", "S2I.tree", "S2I.flat", "IR.tree",
            "IR.inv"},
           12);
  PrintRule(7, 12);
  for (uint32_t qn = 2; qn <= 5; ++qn) {
    auto queries = qgen.Freq(qn, cfg.num_queries, cfg.default_k,
                             Semantics::kOr, /*seed=*/800 + qn);
    const auto c_i3 =
        RunQuerySet(i3x.get(), queries, cfg.default_alpha, cfg.io_latency_us);
    const auto c_s2i =
        RunQuerySet(s2i.get(), queries, cfg.default_alpha, cfg.io_latency_us);
    std::string ir_tree = "skipped", ir_inv = "skipped";
    if (ir != nullptr) {
      const auto c_ir =
          RunQuerySet(ir.get(), queries, cfg.default_alpha, cfg.io_latency_us);
      ir_tree = Fmt(
          c_ir.avg_reads_by_cat[static_cast<int>(IoCategory::kRTreeNode)],
          1);
      ir_inv = Fmt(
          c_ir.avg_reads_by_cat[static_cast<int>(IoCategory::kInvertedFile)],
          1);
    }
    PrintRow(
        {std::to_string(qn),
         Fmt(c_i3.avg_reads_by_cat[static_cast<int>(IoCategory::kI3HeadFile)],
             1),
         Fmt(c_i3.avg_reads_by_cat[static_cast<int>(IoCategory::kI3DataFile)],
             1),
         Fmt(c_s2i.avg_reads_by_cat[static_cast<int>(IoCategory::kRTreeNode)],
             1),
         Fmt(c_s2i.avg_reads_by_cat[static_cast<int>(IoCategory::kFlatFile)],
             1),
         ir_tree, ir_inv},
        12);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf(
      "== Figure 8: I/O cost (avg page reads / query) of increasing qn, OR "
      "semantics, Twitter5M (scale=%.2f) ==\n",
      cfg.scale);
  RunPanel(cfg, MakeTwitter(cfg, 1), /*irtree_bulk=*/false);
  return 0;
}
