// Figure 5: tuning the signature length eta on the Twitter1M-scale dataset
// with the REST (AOL-style) query set. Reports top-k query time under AND
// and OR semantics (the two lines) and the head-file size (the histogram).

#include <cstdio>

#include "bench_common.h"

using namespace i3;
using namespace i3::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf("== Figure 5: performance tuning for eta (scale=%.2f) ==\n",
              cfg.scale);

  const Dataset ds = MakeTwitter(cfg, 0);
  const QueryGenerator qgen(ds);
  auto and_queries = qgen.Rest(cfg.num_queries, cfg.default_k,
                               Semantics::kAnd, /*seed=*/500);
  auto or_queries = qgen.Rest(cfg.num_queries, cfg.default_k,
                              Semantics::kOr, /*seed=*/500);

  PrintRow({"eta", "AND(ms)", "OR(ms)", "HeadFile"});
  PrintRule(4);
  for (uint32_t eta : {50u, 100u, 150u, 200u, 300u, 400u, 500u}) {
    auto index = BuildI3(ds, eta);
    const auto and_cost = RunQuerySet(index.get(), and_queries,
                                      cfg.default_alpha, cfg.io_latency_us);
    const auto or_cost = RunQuerySet(index.get(), or_queries,
                                     cfg.default_alpha, cfg.io_latency_us);
    PrintRow({std::to_string(eta), Fmt(and_cost.avg_ms, 3),
              Fmt(or_cost.avg_ms, 3),
              FmtBytes(index->SizeInfo().components[0].second)});
  }
  return 0;
}
