file(REMOVE_RECURSE
  "CMakeFiles/i3_quadtree.dir/cell.cc.o"
  "CMakeFiles/i3_quadtree.dir/cell.cc.o.d"
  "libi3_quadtree.a"
  "libi3_quadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i3_quadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
