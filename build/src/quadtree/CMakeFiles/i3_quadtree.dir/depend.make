# Empty dependencies file for i3_quadtree.
# This may be replaced when dependencies are built.
