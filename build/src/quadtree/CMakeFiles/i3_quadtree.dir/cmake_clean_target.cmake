file(REMOVE_RECURSE
  "libi3_quadtree.a"
)
