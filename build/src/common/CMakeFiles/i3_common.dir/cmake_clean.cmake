file(REMOVE_RECURSE
  "CMakeFiles/i3_common.dir/geo.cc.o"
  "CMakeFiles/i3_common.dir/geo.cc.o.d"
  "CMakeFiles/i3_common.dir/rng.cc.o"
  "CMakeFiles/i3_common.dir/rng.cc.o.d"
  "CMakeFiles/i3_common.dir/status.cc.o"
  "CMakeFiles/i3_common.dir/status.cc.o.d"
  "CMakeFiles/i3_common.dir/thread_pool.cc.o"
  "CMakeFiles/i3_common.dir/thread_pool.cc.o.d"
  "libi3_common.a"
  "libi3_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i3_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
