file(REMOVE_RECURSE
  "libi3_common.a"
)
