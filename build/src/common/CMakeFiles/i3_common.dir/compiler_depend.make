# Empty compiler generated dependencies file for i3_common.
# This may be replaced when dependencies are built.
