# Empty dependencies file for i3_text.
# This may be replaced when dependencies are built.
