file(REMOVE_RECURSE
  "libi3_text.a"
)
