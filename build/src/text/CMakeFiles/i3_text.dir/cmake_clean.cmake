file(REMOVE_RECURSE
  "CMakeFiles/i3_text.dir/tfidf.cc.o"
  "CMakeFiles/i3_text.dir/tfidf.cc.o.d"
  "CMakeFiles/i3_text.dir/tokenizer.cc.o"
  "CMakeFiles/i3_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/i3_text.dir/vocabulary.cc.o"
  "CMakeFiles/i3_text.dir/vocabulary.cc.o.d"
  "libi3_text.a"
  "libi3_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i3_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
