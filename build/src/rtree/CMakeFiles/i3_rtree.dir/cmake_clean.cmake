file(REMOVE_RECURSE
  "CMakeFiles/i3_rtree.dir/artree.cc.o"
  "CMakeFiles/i3_rtree.dir/artree.cc.o.d"
  "CMakeFiles/i3_rtree.dir/split.cc.o"
  "CMakeFiles/i3_rtree.dir/split.cc.o.d"
  "libi3_rtree.a"
  "libi3_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i3_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
