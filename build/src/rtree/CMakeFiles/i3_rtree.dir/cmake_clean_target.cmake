file(REMOVE_RECURSE
  "libi3_rtree.a"
)
