# Empty compiler generated dependencies file for i3_rtree.
# This may be replaced when dependencies are built.
