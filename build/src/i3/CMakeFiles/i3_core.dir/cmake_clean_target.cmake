file(REMOVE_RECURSE
  "libi3_core.a"
)
