# Empty compiler generated dependencies file for i3_core.
# This may be replaced when dependencies are built.
