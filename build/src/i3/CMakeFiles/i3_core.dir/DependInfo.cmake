
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/i3/data_file.cc" "src/i3/CMakeFiles/i3_core.dir/data_file.cc.o" "gcc" "src/i3/CMakeFiles/i3_core.dir/data_file.cc.o.d"
  "/root/repo/src/i3/head_file.cc" "src/i3/CMakeFiles/i3_core.dir/head_file.cc.o" "gcc" "src/i3/CMakeFiles/i3_core.dir/head_file.cc.o.d"
  "/root/repo/src/i3/i3_index.cc" "src/i3/CMakeFiles/i3_core.dir/i3_index.cc.o" "gcc" "src/i3/CMakeFiles/i3_core.dir/i3_index.cc.o.d"
  "/root/repo/src/i3/i3_persist.cc" "src/i3/CMakeFiles/i3_core.dir/i3_persist.cc.o" "gcc" "src/i3/CMakeFiles/i3_core.dir/i3_persist.cc.o.d"
  "/root/repo/src/i3/i3_search.cc" "src/i3/CMakeFiles/i3_core.dir/i3_search.cc.o" "gcc" "src/i3/CMakeFiles/i3_core.dir/i3_search.cc.o.d"
  "/root/repo/src/i3/signature.cc" "src/i3/CMakeFiles/i3_core.dir/signature.cc.o" "gcc" "src/i3/CMakeFiles/i3_core.dir/signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/i3_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/i3_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/quadtree/CMakeFiles/i3_quadtree.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/i3_model.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/i3_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
