file(REMOVE_RECURSE
  "CMakeFiles/i3_core.dir/data_file.cc.o"
  "CMakeFiles/i3_core.dir/data_file.cc.o.d"
  "CMakeFiles/i3_core.dir/head_file.cc.o"
  "CMakeFiles/i3_core.dir/head_file.cc.o.d"
  "CMakeFiles/i3_core.dir/i3_index.cc.o"
  "CMakeFiles/i3_core.dir/i3_index.cc.o.d"
  "CMakeFiles/i3_core.dir/i3_persist.cc.o"
  "CMakeFiles/i3_core.dir/i3_persist.cc.o.d"
  "CMakeFiles/i3_core.dir/i3_search.cc.o"
  "CMakeFiles/i3_core.dir/i3_search.cc.o.d"
  "CMakeFiles/i3_core.dir/signature.cc.o"
  "CMakeFiles/i3_core.dir/signature.cc.o.d"
  "libi3_core.a"
  "libi3_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i3_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
