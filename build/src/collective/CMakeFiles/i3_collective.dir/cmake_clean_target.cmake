file(REMOVE_RECURSE
  "libi3_collective.a"
)
