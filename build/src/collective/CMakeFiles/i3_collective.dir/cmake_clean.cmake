file(REMOVE_RECURSE
  "CMakeFiles/i3_collective.dir/collective.cc.o"
  "CMakeFiles/i3_collective.dir/collective.cc.o.d"
  "libi3_collective.a"
  "libi3_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i3_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
