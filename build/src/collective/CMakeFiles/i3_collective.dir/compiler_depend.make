# Empty compiler generated dependencies file for i3_collective.
# This may be replaced when dependencies are built.
