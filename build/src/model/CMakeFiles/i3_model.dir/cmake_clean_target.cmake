file(REMOVE_RECURSE
  "libi3_model.a"
)
