# Empty dependencies file for i3_model.
# This may be replaced when dependencies are built.
