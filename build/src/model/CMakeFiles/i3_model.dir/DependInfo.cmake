
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/brute_force.cc" "src/model/CMakeFiles/i3_model.dir/brute_force.cc.o" "gcc" "src/model/CMakeFiles/i3_model.dir/brute_force.cc.o.d"
  "/root/repo/src/model/document.cc" "src/model/CMakeFiles/i3_model.dir/document.cc.o" "gcc" "src/model/CMakeFiles/i3_model.dir/document.cc.o.d"
  "/root/repo/src/model/index.cc" "src/model/CMakeFiles/i3_model.dir/index.cc.o" "gcc" "src/model/CMakeFiles/i3_model.dir/index.cc.o.d"
  "/root/repo/src/model/sharded_index.cc" "src/model/CMakeFiles/i3_model.dir/sharded_index.cc.o" "gcc" "src/model/CMakeFiles/i3_model.dir/sharded_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/i3_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/i3_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/i3_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
