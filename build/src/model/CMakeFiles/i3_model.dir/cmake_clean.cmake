file(REMOVE_RECURSE
  "CMakeFiles/i3_model.dir/brute_force.cc.o"
  "CMakeFiles/i3_model.dir/brute_force.cc.o.d"
  "CMakeFiles/i3_model.dir/document.cc.o"
  "CMakeFiles/i3_model.dir/document.cc.o.d"
  "CMakeFiles/i3_model.dir/index.cc.o"
  "CMakeFiles/i3_model.dir/index.cc.o.d"
  "CMakeFiles/i3_model.dir/sharded_index.cc.o"
  "CMakeFiles/i3_model.dir/sharded_index.cc.o.d"
  "libi3_model.a"
  "libi3_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i3_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
