# Empty compiler generated dependencies file for i3_storage.
# This may be replaced when dependencies are built.
