file(REMOVE_RECURSE
  "libi3_storage.a"
)
