file(REMOVE_RECURSE
  "CMakeFiles/i3_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/i3_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/i3_storage.dir/io_stats.cc.o"
  "CMakeFiles/i3_storage.dir/io_stats.cc.o.d"
  "CMakeFiles/i3_storage.dir/page_file.cc.o"
  "CMakeFiles/i3_storage.dir/page_file.cc.o.d"
  "libi3_storage.a"
  "libi3_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i3_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
