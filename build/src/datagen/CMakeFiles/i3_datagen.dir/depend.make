# Empty dependencies file for i3_datagen.
# This may be replaced when dependencies are built.
