file(REMOVE_RECURSE
  "libi3_datagen.a"
)
