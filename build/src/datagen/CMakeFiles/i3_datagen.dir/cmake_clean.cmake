file(REMOVE_RECURSE
  "CMakeFiles/i3_datagen.dir/dataset.cc.o"
  "CMakeFiles/i3_datagen.dir/dataset.cc.o.d"
  "CMakeFiles/i3_datagen.dir/query_gen.cc.o"
  "CMakeFiles/i3_datagen.dir/query_gen.cc.o.d"
  "libi3_datagen.a"
  "libi3_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i3_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
