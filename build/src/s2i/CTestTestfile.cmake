# CMake generated Testfile for 
# Source directory: /root/repo/src/s2i
# Build directory: /root/repo/build/src/s2i
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
