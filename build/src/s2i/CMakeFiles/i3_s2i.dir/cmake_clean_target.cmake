file(REMOVE_RECURSE
  "libi3_s2i.a"
)
