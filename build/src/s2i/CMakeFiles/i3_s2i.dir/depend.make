# Empty dependencies file for i3_s2i.
# This may be replaced when dependencies are built.
