file(REMOVE_RECURSE
  "CMakeFiles/i3_s2i.dir/s2i_index.cc.o"
  "CMakeFiles/i3_s2i.dir/s2i_index.cc.o.d"
  "libi3_s2i.a"
  "libi3_s2i.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i3_s2i.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
