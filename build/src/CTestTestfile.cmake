# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("quadtree")
subdirs("text")
subdirs("model")
subdirs("i3")
subdirs("rtree")
subdirs("irtree")
subdirs("s2i")
subdirs("collective")
subdirs("datagen")
