file(REMOVE_RECURSE
  "CMakeFiles/i3_irtree.dir/irtree_index.cc.o"
  "CMakeFiles/i3_irtree.dir/irtree_index.cc.o.d"
  "libi3_irtree.a"
  "libi3_irtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i3_irtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
