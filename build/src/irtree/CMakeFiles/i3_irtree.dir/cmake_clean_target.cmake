file(REMOVE_RECURSE
  "libi3_irtree.a"
)
