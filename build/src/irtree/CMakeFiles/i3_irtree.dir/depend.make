# Empty dependencies file for i3_irtree.
# This may be replaced when dependencies are built.
