# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_quadtree[1]_include.cmake")
include("/root/repo/build/tests/test_text[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_i3_storage[1]_include.cmake")
include("/root/repo/build/tests/test_i3_index[1]_include.cmake")
include("/root/repo/build/tests/test_i3_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_fault_injection[1]_include.cmake")
include("/root/repo/build/tests/test_invariance[1]_include.cmake")
include("/root/repo/build/tests/test_collective[1]_include.cmake")
include("/root/repo/build/tests/test_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_sharded[1]_include.cmake")
include("/root/repo/build/tests/test_s2i[1]_include.cmake")
include("/root/repo/build/tests/test_irtree[1]_include.cmake")
include("/root/repo/build/tests/test_datagen[1]_include.cmake")
include("/root/repo/build/tests/test_artree[1]_include.cmake")
include("/root/repo/build/tests/test_equivalence[1]_include.cmake")
