file(REMOVE_RECURSE
  "CMakeFiles/test_s2i.dir/test_s2i.cc.o"
  "CMakeFiles/test_s2i.dir/test_s2i.cc.o.d"
  "test_s2i"
  "test_s2i.pdb"
  "test_s2i[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_s2i.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
