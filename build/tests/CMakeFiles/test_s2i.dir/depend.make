# Empty dependencies file for test_s2i.
# This may be replaced when dependencies are built.
