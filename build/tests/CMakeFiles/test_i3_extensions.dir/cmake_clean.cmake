file(REMOVE_RECURSE
  "CMakeFiles/test_i3_extensions.dir/test_i3_extensions.cc.o"
  "CMakeFiles/test_i3_extensions.dir/test_i3_extensions.cc.o.d"
  "test_i3_extensions"
  "test_i3_extensions.pdb"
  "test_i3_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_i3_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
