# Empty dependencies file for test_i3_extensions.
# This may be replaced when dependencies are built.
