file(REMOVE_RECURSE
  "CMakeFiles/test_i3_index.dir/test_i3_index.cc.o"
  "CMakeFiles/test_i3_index.dir/test_i3_index.cc.o.d"
  "test_i3_index"
  "test_i3_index.pdb"
  "test_i3_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_i3_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
