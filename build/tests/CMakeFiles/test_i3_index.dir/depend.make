# Empty dependencies file for test_i3_index.
# This may be replaced when dependencies are built.
