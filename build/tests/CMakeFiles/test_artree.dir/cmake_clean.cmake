file(REMOVE_RECURSE
  "CMakeFiles/test_artree.dir/test_artree.cc.o"
  "CMakeFiles/test_artree.dir/test_artree.cc.o.d"
  "test_artree"
  "test_artree.pdb"
  "test_artree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_artree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
