# Empty compiler generated dependencies file for test_artree.
# This may be replaced when dependencies are built.
