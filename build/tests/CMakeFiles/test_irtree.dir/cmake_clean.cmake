file(REMOVE_RECURSE
  "CMakeFiles/test_irtree.dir/test_irtree.cc.o"
  "CMakeFiles/test_irtree.dir/test_irtree.cc.o.d"
  "test_irtree"
  "test_irtree.pdb"
  "test_irtree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_irtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
