# Empty compiler generated dependencies file for test_irtree.
# This may be replaced when dependencies are built.
