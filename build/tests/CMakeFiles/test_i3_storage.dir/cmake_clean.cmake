file(REMOVE_RECURSE
  "CMakeFiles/test_i3_storage.dir/test_i3_storage.cc.o"
  "CMakeFiles/test_i3_storage.dir/test_i3_storage.cc.o.d"
  "test_i3_storage"
  "test_i3_storage.pdb"
  "test_i3_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_i3_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
