# Empty dependencies file for spatialkw_cli.
# This may be replaced when dependencies are built.
