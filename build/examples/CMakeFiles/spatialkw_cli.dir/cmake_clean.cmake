file(REMOVE_RECURSE
  "CMakeFiles/spatialkw_cli.dir/spatialkw_cli.cpp.o"
  "CMakeFiles/spatialkw_cli.dir/spatialkw_cli.cpp.o.d"
  "spatialkw_cli"
  "spatialkw_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatialkw_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
