# Empty compiler generated dependencies file for tweet_stream.
# This may be replaced when dependencies are built.
