file(REMOVE_RECURSE
  "CMakeFiles/tweet_stream.dir/tweet_stream.cpp.o"
  "CMakeFiles/tweet_stream.dir/tweet_stream.cpp.o.d"
  "tweet_stream"
  "tweet_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tweet_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
