file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_qn.dir/bench_fig7_qn.cc.o"
  "CMakeFiles/bench_fig7_qn.dir/bench_fig7_qn.cc.o.d"
  "bench_fig7_qn"
  "bench_fig7_qn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_qn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
