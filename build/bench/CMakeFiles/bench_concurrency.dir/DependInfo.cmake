
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_concurrency.cc" "bench/CMakeFiles/bench_concurrency.dir/bench_concurrency.cc.o" "gcc" "bench/CMakeFiles/bench_concurrency.dir/bench_concurrency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/i3_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/i3/CMakeFiles/i3_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quadtree/CMakeFiles/i3_quadtree.dir/DependInfo.cmake"
  "/root/repo/build/src/irtree/CMakeFiles/i3_irtree.dir/DependInfo.cmake"
  "/root/repo/build/src/s2i/CMakeFiles/i3_s2i.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/i3_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/i3_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/i3_model.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/i3_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/i3_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/i3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
