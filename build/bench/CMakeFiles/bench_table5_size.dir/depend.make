# Empty dependencies file for bench_table5_size.
# This may be replaced when dependencies are built.
