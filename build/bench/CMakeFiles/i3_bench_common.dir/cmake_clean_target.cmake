file(REMOVE_RECURSE
  "libi3_bench_common.a"
)
