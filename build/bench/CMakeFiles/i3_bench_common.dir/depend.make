# Empty dependencies file for i3_bench_common.
# This may be replaced when dependencies are built.
