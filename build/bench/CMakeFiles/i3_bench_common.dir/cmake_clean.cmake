file(REMOVE_RECURSE
  "CMakeFiles/i3_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/i3_bench_common.dir/bench_common.cc.o.d"
  "libi3_bench_common.a"
  "libi3_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i3_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
