file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_s2i.dir/bench_ablation_s2i.cc.o"
  "CMakeFiles/bench_ablation_s2i.dir/bench_ablation_s2i.cc.o.d"
  "bench_ablation_s2i"
  "bench_ablation_s2i.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_s2i.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
