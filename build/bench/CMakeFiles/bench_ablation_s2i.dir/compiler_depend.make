# Empty compiler generated dependencies file for bench_ablation_s2i.
# This may be replaced when dependencies are built.
