file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_eta.dir/bench_fig5_eta.cc.o"
  "CMakeFiles/bench_fig5_eta.dir/bench_fig5_eta.cc.o.d"
  "bench_fig5_eta"
  "bench_fig5_eta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_eta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
