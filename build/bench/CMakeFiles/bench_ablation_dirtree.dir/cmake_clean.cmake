file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dirtree.dir/bench_ablation_dirtree.cc.o"
  "CMakeFiles/bench_ablation_dirtree.dir/bench_ablation_dirtree.cc.o.d"
  "bench_ablation_dirtree"
  "bench_ablation_dirtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dirtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
