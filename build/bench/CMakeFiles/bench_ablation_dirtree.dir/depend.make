# Empty dependencies file for bench_ablation_dirtree.
# This may be replaced when dependencies are built.
