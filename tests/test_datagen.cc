// Tests of the synthetic data and query generators: determinism, Table 2
// statistical shape, and workload properties.

#include <gtest/gtest.h>

#include <unordered_map>

#include "datagen/dataset.h"
#include "datagen/query_gen.h"

namespace i3 {
namespace {

TEST(DatasetTest, DeterministicUnderSeed) {
  GeneratorSpec spec = TwitterSpec(500, /*seed=*/9);
  const Dataset a = Generate(spec);
  const Dataset b = Generate(spec);
  ASSERT_EQ(a.docs.size(), b.docs.size());
  for (size_t i = 0; i < a.docs.size(); ++i) {
    EXPECT_EQ(a.docs[i].location, b.docs[i].location);
    EXPECT_EQ(a.docs[i].terms.size(), b.docs[i].terms.size());
  }
}

TEST(DatasetTest, TwitterShapeMatchesTable2) {
  const Dataset ds = Generate(TwitterSpec(20000));
  EXPECT_EQ(ds.NumDocs(), 20000u);
  // ~6.5 keywords per document.
  EXPECT_NEAR(ds.AvgKeywordsPerDoc(), 6.5, 0.3);
  // Unique keywords grow with the corpus (hapax-heavy tail): between 0.3x
  // and 0.7x the document count at this scale.
  EXPECT_GT(ds.UniqueKeywords(), ds.NumDocs() * 3 / 10);
  EXPECT_LT(ds.UniqueKeywords(), ds.NumDocs() * 7 / 10);
  // Near-constant term weights.
  for (size_t i = 0; i < 100; ++i) {
    for (const auto& wt : ds.docs[i].terms) {
      EXPECT_GE(wt.weight, 0.45f);
      EXPECT_LE(wt.weight, 0.55f);
    }
  }
}

TEST(DatasetTest, WikipediaShapeMatchesTable2) {
  const Dataset ds = Generate(WikipediaSpec(2000));
  // ~130 keywords per document, wide weight spread.
  EXPECT_NEAR(ds.AvgKeywordsPerDoc(), 130.0, 10.0);
  float min_w = 1.0f, max_w = 0.0f;
  for (size_t i = 0; i < 50; ++i) {
    for (const auto& wt : ds.docs[i].terms) {
      min_w = std::min(min_w, wt.weight);
      max_w = std::max(max_w, wt.weight);
    }
  }
  EXPECT_LT(min_w, 0.2f);
  EXPECT_GT(max_w, 0.8f);
}

TEST(DatasetTest, DocumentsAreValid) {
  const Dataset ds = Generate(TwitterSpec(2000));
  for (const auto& d : ds.docs) {
    EXPECT_TRUE(ds.space.Contains(d.location));
    EXPECT_FALSE(d.terms.empty());
    TermId prev = kInvalidTermId;
    for (const auto& wt : d.terms) {
      if (prev != kInvalidTermId) {
        EXPECT_GT(wt.term, prev);
      }
      EXPECT_GT(wt.weight, 0.0f);
      EXPECT_LE(wt.weight, 1.0f);
      prev = wt.term;
    }
  }
}

TEST(DatasetTest, LocationsAreClustered) {
  const Dataset ds = Generate(TwitterSpec(5000));
  // A clustered distribution concentrates mass: count the documents in the
  // most popular cell of a 16x16 grid; uniform data would put ~19.5 there.
  std::unordered_map<int, int> grid;
  for (const auto& d : ds.docs) {
    const int gx = static_cast<int>((d.location.x - ds.space.min_x) /
                                    ds.space.Width() * 16);
    const int gy = static_cast<int>((d.location.y - ds.space.min_y) /
                                    ds.space.Height() * 16);
    ++grid[gx * 100 + gy];
  }
  int max_cell = 0;
  for (const auto& [k, v] : grid) max_cell = std::max(max_cell, v);
  EXPECT_GT(max_cell, 5000 / 256 * 10);  // >10x uniform expectation
}

TEST(QueryGenTest, FreqUsesFrequentTerms) {
  const Dataset ds = Generate(TwitterSpec(5000));
  const QueryGenerator qgen(ds);
  ASSERT_FALSE(qgen.ranking().empty());

  std::unordered_map<TermId, uint64_t> freq;
  for (const auto& d : ds.docs) {
    for (const auto& wt : d.terms) ++freq[wt.term];
  }
  // The ranking is sorted by frequency.
  for (size_t i = 1; i < std::min<size_t>(50, qgen.ranking().size()); ++i) {
    EXPECT_GE(freq[qgen.ranking()[i - 1]], freq[qgen.ranking()[i]]);
  }

  auto queries = qgen.Freq(3, 50, 10, Semantics::kAnd, 1);
  ASSERT_EQ(queries.size(), 50u);
  for (const auto& q : queries) {
    EXPECT_EQ(q.terms.size(), 3u);
    EXPECT_EQ(q.k, 10u);
    EXPECT_EQ(q.semantics, Semantics::kAnd);
    EXPECT_TRUE(ds.space.Contains(q.location));
    for (TermId t : q.terms) {
      // Every FREQ term is within the top 100 of the ranking.
      EXPECT_GE(freq[t], freq[qgen.ranking()[std::min<size_t>(
                              99, qgen.ranking().size() - 1)]]);
    }
  }
}

TEST(QueryGenTest, RestAnchorsOnTopTerm) {
  const Dataset ds = Generate(TwitterSpec(5000));
  const QueryGenerator qgen(ds);
  const TermId anchor = qgen.ranking()[0];
  auto queries = qgen.Rest(50, 10, Semantics::kOr, 2);
  for (const auto& q : queries) {
    EXPECT_GE(q.terms.size(), 1u);
    EXPECT_LE(q.terms.size(), 3u);
    EXPECT_NE(std::find(q.terms.begin(), q.terms.end(), anchor),
              q.terms.end());
  }
}

TEST(QueryGenTest, Deterministic) {
  const Dataset ds = Generate(TwitterSpec(2000));
  const QueryGenerator qgen(ds);
  auto a = qgen.Freq(2, 10, 5, Semantics::kOr, 3);
  auto b = qgen.Freq(2, 10, 5, Semantics::kOr, 3);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].terms, b[i].terms);
    EXPECT_EQ(a[i].location, b[i].location);
  }
}

}  // namespace
}  // namespace i3
