// End-to-end tests of the serving front end (net/server.h) over loopback:
// a differential harness proving wire responses byte-identical (by
// order-sensitive checksum) to direct ShardedIndex::Search calls under a
// seeded concurrent mixed workload; protocol-abuse scenarios (garbage,
// oversized frames, slow dribbling writers, pipelining); the HTTP metrics
// side channel; and the admission-control contract -- a saturating tenant
// is shed fast with bounded latency while other tenants are unaffected.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "i3/i3_index.h"
#include "model/sharded_index.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/token_bucket.h"
#include "obs/clock.h"
#include "test_util.h"

namespace i3 {
namespace net {
namespace {

using testutil::CorpusOptions;
using testutil::MakeCorpus;
using testutil::MakeQueries;

CorpusOptions ServingCorpus() {
  CorpusOptions copt;
  copt.num_docs = 400;
  copt.vocab_size = 30;
  return copt;
}

std::unique_ptr<ShardedIndex> MakeIndex(const CorpusOptions& copt,
                                        uint64_t seed) {
  auto res = ShardedIndex::Create(
      [&copt](uint32_t) {
        I3Options opt;
        opt.space = copt.space;
        opt.page_size = 128;
        opt.signature_bits = 64;
        return std::make_unique<I3Index>(opt);
      },
      {.num_shards = 4});
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  auto index = res.MoveValue();
  for (const auto& d : MakeCorpus(copt, seed)) {
    EXPECT_TRUE(index->Insert(d).ok());
  }
  return index;
}

Request SearchRequest(const Query& q, uint64_t id, double alpha,
                      uint32_t tenant = 0) {
  Request req;
  req.request_id = id;
  req.tenant = tenant;
  req.k = q.k;
  req.semantics = q.semantics;
  req.x = q.location.x;
  req.y = q.location.y;
  req.alpha = alpha;
  req.terms = q.terms;
  return req;
}

class NetServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions opts = {}) {
    index_ = MakeIndex(ServingCorpus(), /*seed=*/21);
    server_ = std::make_unique<Server>(index_.get(), opts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  Result<std::unique_ptr<Client>> Connect(ClientOptions opts = {}) {
    opts.port = server_->port();
    if (opts.recv_timeout_ms == 0) opts.recv_timeout_ms = 10000;
    return Client::Connect(opts);
  }

  std::unique_ptr<ShardedIndex> index_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetServerTest, PingPong) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.ValueOrDie()->Ping().ok());
  }
}

// The core differential property: responses served over the wire carry
// exactly the results a direct library call produces -- same docs, same
// scores, same order -- proven via the order-sensitive checksum.
TEST_F(NetServerTest, WireResultsMatchDirectSearch) {
  StartServer();
  const CorpusOptions copt = ServingCorpus();
  auto queries = MakeQueries(copt, /*num_queries=*/30, /*qn=*/2, /*k=*/10,
                             Semantics::kOr, /*seed=*/31);
  const auto and_queries =
      MakeQueries(copt, /*num_queries=*/30, /*qn=*/2, /*k=*/10,
                  Semantics::kAnd, /*seed=*/32);
  queries.insert(queries.end(), and_queries.begin(), and_queries.end());

  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    const double alpha = i % 2 == 0 ? 0.5 : 0.8;
    auto direct = index_->Search(queries[i], alpha);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    auto wire =
        client.ValueOrDie()->Call(SearchRequest(queries[i], i, alpha));
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    const Response& resp = wire.ValueOrDie();
    ASSERT_EQ(resp.outcome, ResponseOutcome::kOk) << resp.message;
    EXPECT_EQ(resp.request_id, i);
    EXPECT_FALSE(resp.degraded);
    EXPECT_EQ(ResultChecksum(resp.results),
              ResultChecksum(direct.ValueOrDie()))
        << "query " << i;
  }
  EXPECT_EQ(server_->requests_error(), 0u);
}

// N concurrent clients, pipelined batches, seeded mixed AND/OR workload:
// every response matches its request id and the direct result checksum,
// under whatever batching/reordering the server does internally.
TEST_F(NetServerTest, ConcurrentClientsDifferential) {
  ServerOptions sopts;
  sopts.worker_threads = 3;
  sopts.batch_max = 8;
  StartServer(sopts);
  const CorpusOptions copt = ServingCorpus();
  constexpr int kClients = 6;
  constexpr int kPerClient = 40;

  // Precompute direct baselines (the index is concurrent-search safe, but
  // a fixed baseline keeps the comparison exact and race-free).
  std::vector<std::vector<Query>> workload(kClients);
  std::vector<std::vector<uint64_t>> baseline(kClients);
  for (int c = 0; c < kClients; ++c) {
    workload[c] =
        MakeQueries(copt, kPerClient, /*qn=*/2, /*k=*/10,
                    c % 2 == 0 ? Semantics::kAnd : Semantics::kOr,
                    /*seed=*/100 + c);
    for (const Query& q : workload[c]) {
      auto direct = index_->Search(q, 0.5);
      ASSERT_TRUE(direct.ok()) << direct.status().ToString();
      baseline[c].push_back(ResultChecksum(direct.ValueOrDie()));
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions copts;
      copts.port = server_->port();
      copts.recv_timeout_ms = 20000;
      auto client = Client::Connect(copts);
      if (!client.ok()) {
        ++failures;
        return;
      }
      // Pipeline in bursts of 4, then read the burst back. Responses on
      // one connection may interleave across worker batches; match by id.
      constexpr int kBurst = 4;
      for (int base = 0; base < kPerClient; base += kBurst) {
        for (int i = base; i < base + kBurst; ++i) {
          const uint64_t id = uint64_t{static_cast<uint32_t>(c)} << 32 | i;
          if (!client.ValueOrDie()
                   ->Send(SearchRequest(workload[c][i], id, 0.5))
                   .ok()) {
            ++failures;
            return;
          }
        }
        for (int i = 0; i < kBurst; ++i) {
          auto resp = client.ValueOrDie()->ReadResponse();
          if (!resp.ok() ||
              resp.ValueOrDie().outcome != ResponseOutcome::kOk) {
            ++failures;
            return;
          }
          const uint64_t id = resp.ValueOrDie().request_id;
          const int qi = static_cast<int>(id & 0xffffffff);
          const int qc = static_cast<int>(id >> 32);
          if (qc != c || qi < base || qi >= base + kBurst ||
              ResultChecksum(resp.ValueOrDie().results) !=
                  baseline[qc][qi]) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->requests_ok(), uint64_t{kClients} * kPerClient);
  EXPECT_EQ(server_->requests_error(), 0u);
  EXPECT_EQ(server_->requests_shed(), 0u);
}

// A client dribbling one frame a few bytes at a time (slow writer /
// pathological segmentation) must still be served correctly.
TEST_F(NetServerTest, SlowPartialWritesAreReassembled) {
  StartServer();
  const CorpusOptions copt = ServingCorpus();
  const auto queries = MakeQueries(copt, 5, /*qn=*/2, /*k=*/10,
                                   Semantics::kOr, /*seed=*/41);
  ClientOptions copts;
  copts.write_chunk = 3;
  copts.write_chunk_delay_us = 200;
  auto client = Connect(copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto direct = index_->Search(queries[i], 0.5);
    ASSERT_TRUE(direct.ok());
    auto wire = client.ValueOrDie()->Call(SearchRequest(queries[i], i, 0.5));
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    ASSERT_EQ(wire.ValueOrDie().outcome, ResponseOutcome::kOk);
    EXPECT_EQ(ResultChecksum(wire.ValueOrDie().results),
              ResultChecksum(direct.ValueOrDie()));
  }
}

// Malformed-but-framed payloads get an error response and the connection
// survives; an oversized length prefix gets an error response and a
// close; raw garbage cannot crash the server. In every case the server
// keeps serving other clients.
TEST_F(NetServerTest, ProtocolAbuseGetsCleanErrors) {
  StartServer();
  const CorpusOptions copt = ServingCorpus();
  const auto queries = MakeQueries(copt, 1, /*qn=*/2, /*k=*/10,
                                   Semantics::kOr, /*seed=*/51);

  {  // Malformed payload inside a sound frame: error, connection lives.
    auto client = Connect();
    ASSERT_TRUE(client.ok());
    std::string frame;
    EncodeRequest(SearchRequest(queries[0], 77, 0.5), &frame);
    frame[kFrameHeaderBytes] ^= 0xff;  // break the magic
    ASSERT_TRUE(client.ValueOrDie()
                    ->SendBytes(frame.data(), frame.size())
                    .ok());
    auto resp = client.ValueOrDie()->ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.ValueOrDie().outcome, ResponseOutcome::kError);
    // Framing stayed sound, so the same connection still serves.
    EXPECT_TRUE(client.ValueOrDie()->Ping().ok());
  }
  {  // Damaged payload with an intact request id: the error echoes it.
    auto client = Connect();
    ASSERT_TRUE(client.ok());
    std::string frame;
    EncodeRequest(SearchRequest(queries[0], 0xabcd, 0.5), &frame);
    frame[kFrameHeaderBytes + 20] = 9;  // semantics out of range
    ASSERT_TRUE(client.ValueOrDie()
                    ->SendBytes(frame.data(), frame.size())
                    .ok());
    auto resp = client.ValueOrDie()->ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.ValueOrDie().outcome, ResponseOutcome::kError);
    EXPECT_EQ(resp.ValueOrDie().request_id, 0xabcdu);
  }
  {  // Oversized length prefix: error response, then the server closes.
    auto client = Connect();
    ASSERT_TRUE(client.ok());
    const uint32_t huge = kMaxFramePayload + 1;
    uint8_t hdr[4];
    for (int i = 0; i < 4; ++i) hdr[i] = static_cast<uint8_t>(huge >> i * 8);
    ASSERT_TRUE(client.ValueOrDie()->SendBytes(hdr, sizeof(hdr)).ok());
    auto resp = client.ValueOrDie()->ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.ValueOrDie().outcome, ResponseOutcome::kError);
    auto after = client.ValueOrDie()->ReadResponse();
    EXPECT_FALSE(after.ok());  // clean close
  }
  {  // Seeded raw-garbage storm across fresh connections.
    Rng rng(61);
    for (int iter = 0; iter < 20; ++iter) {
      auto client = Connect({.recv_timeout_ms = 2000});
      ASSERT_TRUE(client.ok());
      std::string junk;
      const int n = static_cast<int>(rng.UniformInt(1, 200));
      for (int i = 0; i < n; ++i) {
        junk.push_back(static_cast<char>(rng.UniformInt(0, 255)));
      }
      ASSERT_TRUE(
          client.ValueOrDie()->SendBytes(junk.data(), junk.size()).ok());
      client.ValueOrDie()->CloseWrite();
      // Whatever comes back (error frames, a close, or a timeout while
      // the server waits for more bytes) must be clean, not a crash.
      while (client.ValueOrDie()->ReadResponse().ok()) {
      }
    }
  }
  // The server survived it all.
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.ValueOrDie()->Ping().ok());
}

TEST_F(NetServerTest, HttpMetricsSideChannel) {
  StartServer();
  // Generate some traffic so the serving metrics exist and move.
  const CorpusOptions copt = ServingCorpus();
  const auto queries = MakeQueries(copt, 3, /*qn=*/2, /*k=*/10,
                                   Semantics::kOr, /*seed=*/71);
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto resp = client.ValueOrDie()->Call(SearchRequest(queries[i], i, 0.5));
    ASSERT_TRUE(resp.ok());
  }

  auto metrics = HttpGet("127.0.0.1", server_->port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const std::string& text = metrics.ValueOrDie();
  EXPECT_NE(text.find("HTTP/1.1 200 OK"), std::string::npos);
  for (const char* series :
       {"i3_net_connections", "i3_net_queue_depth", "i3_requests_shed_total",
        "i3_net_requests_total", "i3_request_latency_us",
        "i3_net_batch_size"}) {
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }

  auto missing = HttpGet("127.0.0.1", server_->port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(missing.ValueOrDie().find("404"), std::string::npos);
}

// Admission control, tenant isolation, and shed latency: a tenant with a
// tiny budget saturates; its overflow is shed fast (never touching the
// index) while a second tenant's requests all succeed.
TEST_F(NetServerTest, SaturatedTenantShedsFastAndIsolated) {
  ServerOptions opts;
  opts.worker_threads = 2;
  // Tenant 1 gets ~5 requests of budget; tenant 2 is unlimited.
  opts.tenant_limits.push_back({1, {.rate = 1.0, .burst = 5.0}});
  StartServer(opts);
  const CorpusOptions copt = ServingCorpus();
  const auto queries = MakeQueries(copt, 60, /*qn=*/2, /*k=*/10,
                                   Semantics::kOr, /*seed=*/81);

  auto hog = Connect();
  auto polite = Connect();
  ASSERT_TRUE(hog.ok());
  ASSERT_TRUE(polite.ok());

  int hog_ok = 0, hog_shed = 0;
  uint64_t worst_shed_us = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const uint64_t t0 = obs::NowNanos();
    auto resp = hog.ValueOrDie()->Call(
        SearchRequest(queries[i], i, 0.5, /*tenant=*/1));
    const uint64_t elapsed_us = (obs::NowNanos() - t0) / 1000;
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    if (resp.ValueOrDie().outcome == ResponseOutcome::kShed) {
      ++hog_shed;
      worst_shed_us = std::max(worst_shed_us, elapsed_us);
      EXPECT_TRUE(resp.ValueOrDie().results.empty());
      EXPECT_FALSE(resp.ValueOrDie().message.empty());
    } else {
      ASSERT_EQ(resp.ValueOrDie().outcome, ResponseOutcome::kOk);
      ++hog_ok;
    }
  }
  // The burst passes, the overflow sheds.
  EXPECT_GE(hog_ok, 5);
  EXPECT_GE(hog_shed, 40);
  // Shed responses never run a search; even a generous bound (loopback
  // RTT + loop-thread turn) separates them from index latency.
  EXPECT_LT(worst_shed_us, 100000u);

  // The polite tenant is untouched by the hog's saturation.
  for (size_t i = 0; i < 20; ++i) {
    auto direct = index_->Search(queries[i], 0.5);
    ASSERT_TRUE(direct.ok());
    auto resp = polite.ValueOrDie()->Call(
        SearchRequest(queries[i], 1000 + i, 0.5, /*tenant=*/2));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp.ValueOrDie().outcome, ResponseOutcome::kOk);
    EXPECT_EQ(ResultChecksum(resp.ValueOrDie().results),
              ResultChecksum(direct.ValueOrDie()));
  }

  EXPECT_EQ(server_->requests_shed(), static_cast<uint64_t>(hog_shed));
  EXPECT_EQ(server_->requests_error(), 0u);

  // The shed counter and queue gauge are visible on /metrics.
  auto metrics = HttpGet("127.0.0.1", server_->port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  const std::string& text = metrics.ValueOrDie();
  // Anchor at line start so the sample line matches, not its HELP line.
  const size_t pos = text.find("\ni3_requests_shed_total ");
  ASSERT_NE(pos, std::string::npos);
  const double shed_value =
      std::strtod(text.c_str() + pos + strlen("\ni3_requests_shed_total "),
                  nullptr);
  EXPECT_GE(shed_value, static_cast<double>(hog_shed));
}

// max_queue = 0 sheds every search deterministically (the overload
// backstop with the bar on the floor) while pings still answer.
TEST_F(NetServerTest, QueueBoundShedsWhenFull) {
  ServerOptions opts;
  opts.max_queue = 0;
  StartServer(opts);
  const CorpusOptions copt = ServingCorpus();
  const auto queries = MakeQueries(copt, 5, /*qn=*/2, /*k=*/10,
                                   Semantics::kOr, /*seed=*/91);
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto resp = client.ValueOrDie()->Call(SearchRequest(queries[i], i, 0.5));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.ValueOrDie().outcome, ResponseOutcome::kShed);
    EXPECT_NE(resp.ValueOrDie().message.find("overloaded"),
              std::string::npos);
  }
  EXPECT_TRUE(client.ValueOrDie()->Ping().ok());
  EXPECT_EQ(server_->requests_shed(), queries.size());
}

// Token-bucket unit behavior backing the admission tests: deterministic
// virtual time, refill capping, per-tenant independence.
TEST(TokenBucketTest, RefillAndBurstSemantics) {
  const uint64_t ns = 1000000000ull;
  TokenBucket bucket(/*rate=*/2.0, /*burst=*/4.0);
  uint64_t now = 50 * ns;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.TryAcquire(now)) << i;
  EXPECT_FALSE(bucket.TryAcquire(now));
  now += ns / 2;  // +0.5s = +1 token at rate 2/s
  EXPECT_TRUE(bucket.TryAcquire(now));
  EXPECT_FALSE(bucket.TryAcquire(now));
  now += 60 * ns;  // long idle refills to burst, not beyond
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.TryAcquire(now)) << i;
  EXPECT_FALSE(bucket.TryAcquire(now));

  TokenBucket unlimited(/*rate=*/0.0, /*burst=*/0.0);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(unlimited.TryAcquire(now));

  TenantRateLimiter limiter({.rate = 0.0, .burst = 0.0});
  limiter.SetLimit(7, {.rate = 1.0, .burst = 2.0});
  EXPECT_TRUE(limiter.Admit(7, now));
  EXPECT_TRUE(limiter.Admit(7, now));
  EXPECT_FALSE(limiter.Admit(7, now));
  // Other tenants ride the unlimited default.
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(limiter.Admit(8, now));
}

}  // namespace
}  // namespace net
}  // namespace i3
