// Differential and concurrency tests of the zero-copy page read path:
// DataFile::View / PageView must decode exactly what the legacy TuplePage
// materialization decodes, on every pool configuration, and the pinned-frame
// window must stay valid while other readers churn the LRU (run under
// ASan/TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "i3/data_file.h"

namespace i3 {
namespace {

// A deterministic random page image: several sources interleaved, with the
// occasional slot-count shortfall leaving free slots.
TuplePage RandomPage(Rng* rng, uint32_t capacity, uint32_t n_sources) {
  TuplePage page;
  const uint32_t n = static_cast<uint32_t>(
      rng->UniformInt(0, static_cast<int64_t>(capacity)));
  for (uint32_t s = 0; s < n; ++s) {
    StoredTuple st;
    st.source = static_cast<SourceId>(rng->UniformInt(1, n_sources));
    st.tuple.term = static_cast<TermId>(rng->UniformInt(0, 1 << 20));
    st.tuple.doc = static_cast<DocId>(rng->UniformInt(0, 1 << 30));
    st.tuple.location.x = rng->UniformDouble(-180.0, 180.0);
    st.tuple.location.y = rng->UniformDouble(-90.0, 90.0);
    st.tuple.weight = static_cast<float>(rng->UniformDouble(0.0, 1.0));
    page.slots.push_back(st);
  }
  return page;
}

void ExpectSameTuple(const SpatialTuple& a, const SpatialTuple& b) {
  EXPECT_EQ(a.term, b.term);
  EXPECT_EQ(a.doc, b.doc);
  EXPECT_EQ(a.location.x, b.location.x);
  EXPECT_EQ(a.location.y, b.location.y);
  EXPECT_EQ(a.weight, b.weight);
}

// View must agree with the legacy decode on random pages, for both a
// pinning pool and the uncached (capacity-0) pool.
void RunDifferential(BufferPoolOptions pool) {
  DataFile df(512, pool);  // 16 slots/page
  Rng rng(20260805);
  constexpr uint32_t kPages = 64;
  constexpr uint32_t kSources = 5;

  std::vector<TuplePage> images;
  for (uint32_t p = 0; p < kPages; ++p) {
    auto id = df.AllocatePage();
    ASSERT_TRUE(id.ok());
    images.push_back(RandomPage(&rng, df.capacity(), kSources));
    ASSERT_TRUE(df.Write(id.ValueOrDie(), images.back()).ok());
  }

  for (uint32_t round = 0; round < 4; ++round) {
    for (uint32_t p = 0; p < kPages; ++p) {
      auto view_res = df.View(p);
      ASSERT_TRUE(view_res.ok());
      const PageView& view = view_res.ValueOrDie();
      const TuplePage& img = images[p];

      for (SourceId src = 1; src <= kSources; ++src) {
        const std::vector<SpatialTuple> legacy = img.OfSource(src);
        std::vector<SpatialTuple> visited;
        const uint32_t n = view.ForEachOfSource(
            src, [&](const SpatialTuple& t) { visited.push_back(t); });
        ASSERT_EQ(n, legacy.size());
        ASSERT_EQ(n, img.CountSource(src));
        for (size_t i = 0; i < legacy.size(); ++i) {
          ExpectSameTuple(visited[i], legacy[i]);
        }
      }

      uint32_t occupied = 0;
      view.ForEachSlot([&](SourceId src, const SpatialTuple& t) {
        ASSERT_LT(occupied, img.slots.size());
        EXPECT_EQ(src, img.slots[occupied].source);
        ExpectSameTuple(t, img.slots[occupied].tuple);
        ++occupied;
      });
      EXPECT_EQ(occupied, img.slots.size());
    }
    // Cold-cache the pool between rounds so both hit and miss paths of
    // PinPage are exercised.
    df.ClearCache();
  }
}

TEST(ZeroCopyDifferentialTest, PinnedPoolMatchesLegacyDecode) {
  BufferPoolOptions pool;
  pool.capacity_pages = 8;  // far fewer frames than pages: eviction churn
  RunDifferential(pool);
}

TEST(ZeroCopyDifferentialTest, LargePoolMatchesLegacyDecode) {
  BufferPoolOptions pool;
  pool.capacity_pages = 1024;  // everything stays cached after round one
  RunDifferential(pool);
}

TEST(ZeroCopyDifferentialTest, UncachedPoolMatchesLegacyDecode) {
  RunDifferential(BufferPoolOptions{});  // capacity 0: scratch-backed views
}

TEST(ZeroCopyDifferentialTest, NestedViewsAreIndependent) {
  // A caller may hold one view while opening another (the invariant checker
  // and overflow chains do); both must decode their own page.
  DataFile df(512, BufferPoolOptions{});  // scratch stack, depth 2
  Rng rng(7);
  TuplePage a = RandomPage(&rng, df.capacity(), 3);
  TuplePage b = RandomPage(&rng, df.capacity(), 3);
  ASSERT_TRUE(df.AllocatePage().ok());
  ASSERT_TRUE(df.AllocatePage().ok());
  ASSERT_TRUE(df.Write(0, a).ok());
  ASSERT_TRUE(df.Write(1, b).ok());

  auto va = df.View(0);
  ASSERT_TRUE(va.ok());
  {
    auto vb = df.View(1);  // nested: destroyed before va (LIFO)
    ASSERT_TRUE(vb.ok());
    uint32_t n = 0;
    vb.ValueOrDie().ForEachSlot([&](SourceId, const SpatialTuple& t) {
      ExpectSameTuple(t, b.slots[n].tuple);
      ++n;
    });
    EXPECT_EQ(n, b.slots.size());
  }
  uint32_t n = 0;
  va.ValueOrDie().ForEachSlot([&](SourceId, const SpatialTuple& t) {
    ExpectSameTuple(t, a.slots[n].tuple);
    ++n;
  });
  EXPECT_EQ(n, a.slots.size());
}

// Concurrent readers over a pool much smaller than the page set: every view
// pins its frame while other threads force misses, evictions, and frame
// recycling. Each page's content encodes its id, so any use-after-recycle
// shows up as a value mismatch (and as a race under TSan).
TEST(ZeroCopyConcurrencyTest, PinnedWindowSurvivesEvictionChurn) {
  BufferPoolOptions pool;
  pool.capacity_pages = 4;
  DataFile df(512, pool);
  constexpr uint32_t kPages = 32;
  const uint32_t capacity = df.capacity();

  for (uint32_t p = 0; p < kPages; ++p) {
    ASSERT_TRUE(df.AllocatePage().ok());
    TuplePage page;
    for (uint32_t s = 0; s < capacity; ++s) {
      StoredTuple st;
      st.source = p + 1;
      st.tuple.term = p;
      st.tuple.doc = p * 1000 + s;
      st.tuple.location = {static_cast<double>(p), static_cast<double>(s)};
      st.tuple.weight = static_cast<float>(s);
      page.slots.push_back(st);
    }
    ASSERT_TRUE(df.Write(p, page).ok());
  }

  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 2000;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kReadsPerThread; ++i) {
        const PageId p = static_cast<PageId>(
            rng.UniformInt(0, static_cast<int64_t>(kPages) - 1));
        auto view_res = df.View(p);
        if (!view_res.ok()) {
          ++failures;
          return;
        }
        const PageView& view = view_res.ValueOrDie();
        uint32_t n = 0;
        uint64_t doc_sum = 0;
        view.ForEachOfSource(p + 1, [&](const SpatialTuple& t) {
          doc_sum += t.doc;
          if (t.term != p) ++failures;
          ++n;
        });
        if (n != capacity) ++failures;
        const uint64_t expect =
            static_cast<uint64_t>(capacity) * (p * 1000) +
            static_cast<uint64_t>(capacity) * (capacity - 1) / 2;
        if (doc_sum != expect) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace i3
