// Tests of the Guttman split heuristics and the aggregated R-tree: structure
// invariants, best-first iteration order, random-access probes, deletion.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "rtree/artree.h"
#include "rtree/split.h"

namespace i3 {
namespace {

TEST(SplitTest, ChooseSubtreePrefersMinimalEnlargement) {
  std::vector<Rect> mbrs = {
      {0, 0, 10, 10},
      {20, 20, 30, 30},
  };
  EXPECT_EQ(ChooseSubtree(mbrs, Rect::FromPoint({5, 5})), 0u);
  EXPECT_EQ(ChooseSubtree(mbrs, Rect::FromPoint({25, 25})), 1u);
  // Ties on enlargement (inside neither): nearer rectangle needs less.
  EXPECT_EQ(ChooseSubtree(mbrs, Rect::FromPoint({11, 11})), 0u);
}

TEST(SplitTest, QuadraticSplitRespectsMinFill) {
  Rng rng(1);
  std::vector<Rect> rects;
  for (int i = 0; i < 20; ++i) {
    const double x = rng.UniformDouble(0, 100);
    const double y = rng.UniformDouble(0, 100);
    rects.push_back(Rect::FromPoint({x, y}));
  }
  auto [g1, g2] = QuadraticSplit(rects, 8);
  EXPECT_GE(g1.size(), 8u);
  EXPECT_GE(g2.size(), 8u);
  EXPECT_EQ(g1.size() + g2.size(), rects.size());
  // No index may appear twice.
  std::vector<size_t> all = g1;
  all.insert(all.end(), g2.begin(), g2.end());
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(SplitTest, QuadraticSplitSeparatesClusters) {
  // Two far-apart clusters should end up in different groups.
  std::vector<Rect> rects;
  for (int i = 0; i < 5; ++i) {
    rects.push_back(Rect::FromPoint({double(i), double(i)}));
  }
  for (int i = 0; i < 5; ++i) {
    rects.push_back(Rect::FromPoint({1000.0 + i, 1000.0 + i}));
  }
  auto [g1, g2] = QuadraticSplit(rects, 2);
  auto side = [](size_t idx) { return idx < 5 ? 0 : 1; };
  for (size_t i : g1) EXPECT_EQ(side(i), side(g1[0]));
  for (size_t i : g2) EXPECT_EQ(side(i), side(g2[0]));
}

ARTreeOptions SmallTree() {
  ARTreeOptions opt;
  opt.page_size = 256;  // leaf fanout 10, internal 6
  return opt;
}

TEST(ARTreeTest, InsertAndIterateInKeyOrder) {
  const Rect space{0, 0, 100, 100};
  ARTree tree(SmallTree());
  Rng rng(7);
  for (DocId d = 0; d < 300; ++d) {
    tree.Insert({rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)}, d,
                static_cast<float>(rng.UniformDouble(0.1, 1.0)));
  }
  EXPECT_EQ(tree.size(), 300u);
  ASSERT_EQ(tree.CheckInvariants(), std::nullopt);

  const Scorer scorer(space, 0.5);
  const Point qloc{50, 50};
  double prev = std::numeric_limits<double>::infinity();
  size_t n = 0;
  for (auto it = tree.NewIterator(scorer, qloc); it.Valid(); it.Next()) {
    EXPECT_LE(it.key(), prev + 1e-12);
    EXPECT_LE(it.UpperBound(), it.key() + 1e-12);
    prev = it.key();
    ++n;
  }
  EXPECT_EQ(n, 300u);
}

TEST(ARTreeTest, ProbeFindsExactEntries) {
  ARTree tree(SmallTree());
  Rng rng(11);
  std::vector<AREntry> entries;
  for (DocId d = 0; d < 200; ++d) {
    AREntry e{{rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)}, d,
              static_cast<float>(rng.UniformDouble(0.1, 1.0))};
    entries.push_back(e);
    tree.Insert(e.point, e.doc, e.weight);
  }
  for (const AREntry& e : entries) {
    auto w = tree.Probe(e.point, e.doc);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(*w, e.weight);
  }
  EXPECT_FALSE(tree.Probe({50, 50}, 9999).has_value());
}

TEST(ARTreeTest, DeleteMaintainsInvariants) {
  ARTree tree(SmallTree());
  Rng rng(13);
  std::vector<AREntry> entries;
  for (DocId d = 0; d < 400; ++d) {
    AREntry e{{rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)}, d,
              static_cast<float>(rng.UniformDouble(0.1, 1.0))};
    entries.push_back(e);
    tree.Insert(e.point, e.doc, e.weight);
  }
  std::shuffle(entries.begin(), entries.end(), rng.engine());
  for (size_t i = 0; i < entries.size(); ++i) {
    ASSERT_TRUE(tree.Delete(entries[i].point, entries[i].doc)) << i;
    if (i % 50 == 0) {
      auto err = tree.CheckInvariants();
      ASSERT_EQ(err, std::nullopt) << *err << " after " << i;
    }
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Delete({1, 1}, 0));
}

TEST(ARTreeTest, AggregateTracksMaxWeight) {
  ARTree tree(SmallTree());
  const Rect space{0, 0, 100, 100};
  tree.Insert({10, 10}, 1, 0.3f);
  tree.Insert({20, 20}, 2, 0.9f);
  tree.Insert({30, 30}, 3, 0.5f);
  // With alpha = 0 the iterator orders purely by weight.
  const Scorer scorer(space, 0.0);
  auto it = tree.NewIterator(scorer, {0, 0});
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.entry().doc, 2u);
  it.Next();
  EXPECT_EQ(it.entry().doc, 3u);
  it.Next();
  EXPECT_EQ(it.entry().doc, 1u);
  it.Next();
  EXPECT_FALSE(it.Valid());

  // Deleting the heaviest entry must shrink aggregates (checked via the
  // invariant checker and the new iteration order).
  ASSERT_TRUE(tree.Delete({20, 20}, 2));
  ASSERT_EQ(tree.CheckInvariants(), std::nullopt);
  auto it2 = tree.NewIterator(scorer, {0, 0});
  EXPECT_EQ(it2.entry().doc, 3u);
}

TEST(ARTreeTest, IoAccountingChargesNodeReads) {
  IoStats stats;
  ARTree tree(SmallTree(), &stats);
  Rng rng(17);
  for (DocId d = 0; d < 100; ++d) {
    tree.Insert({rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)}, d,
                0.5f);
  }
  stats.Reset();
  const Scorer scorer(Rect{0, 0, 100, 100}, 0.5);
  auto it = tree.NewIterator(scorer, {50, 50});
  for (int i = 0; i < 10 && it.Valid(); ++i) it.Next();
  EXPECT_GT(stats.reads(IoCategory::kRTreeNode), 0u);
}

TEST(ARTreeTest, HeightGrowsLogarithmically) {
  ARTree tree(SmallTree());
  EXPECT_EQ(tree.Height(), 0);
  Rng rng(19);
  for (DocId d = 0; d < 1000; ++d) {
    tree.Insert({rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)}, d,
                0.5f);
  }
  EXPECT_GE(tree.Height(), 3);
  EXPECT_LE(tree.Height(), 6);
}


// Parameterized fanout sweep: structural invariants and iterator ordering
// must hold at every node size, from minimal (page 192B) to paper-default
// (4KB).
class ARTreeFanoutTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ARTreeFanoutTest, InvariantsAndOrderingAcrossFanouts) {
  ARTreeOptions opt;
  opt.page_size = GetParam();
  ARTree tree(opt);
  Rng rng(101);
  std::vector<AREntry> entries;
  for (DocId d = 0; d < 500; ++d) {
    AREntry e{{rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)}, d,
              static_cast<float>(rng.UniformDouble(0.1, 1.0))};
    entries.push_back(e);
    tree.Insert(e.point, e.doc, e.weight);
  }
  auto err = tree.CheckInvariants();
  ASSERT_EQ(err, std::nullopt) << *err;

  const Scorer scorer(Rect{0, 0, 100, 100}, 0.5);
  double prev = std::numeric_limits<double>::infinity();
  size_t count = 0;
  for (auto it = tree.NewIterator(scorer, {30, 60}); it.Valid(); it.Next()) {
    ASSERT_LE(it.key(), prev + 1e-12);
    prev = it.key();
    ++count;
  }
  EXPECT_EQ(count, entries.size());

  // Delete half, re-check.
  for (size_t i = 0; i < entries.size(); i += 2) {
    ASSERT_TRUE(tree.Delete(entries[i].point, entries[i].doc));
  }
  err = tree.CheckInvariants();
  ASSERT_EQ(err, std::nullopt) << *err;
  EXPECT_EQ(tree.size(), entries.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, ARTreeFanoutTest,
                         ::testing::Values(size_t{192}, size_t{256},
                                           size_t{512}, size_t{1024},
                                           size_t{4096}));

TEST(ARTreeTest, MixedChurnKeepsProbesExact) {
  // Random interleaving of inserts and deletes; every surviving entry must
  // remain probe-able with its exact weight.
  ARTree tree(SmallTree());
  Rng rng(31);
  std::vector<AREntry> live;
  DocId next = 0;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Chance(0.6)) {
      AREntry e{{rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)},
                next++, static_cast<float>(rng.UniformDouble(0.1, 1.0))};
      tree.Insert(e.point, e.doc, e.weight);
      live.push_back(e);
    } else {
      const size_t pick = rng.UniformInt(0, live.size() - 1);
      ASSERT_TRUE(tree.Delete(live[pick].point, live[pick].doc));
      live[pick] = live.back();
      live.pop_back();
    }
  }
  ASSERT_EQ(tree.CheckInvariants(), std::nullopt);
  EXPECT_EQ(tree.size(), live.size());
  for (const AREntry& e : live) {
    auto w = tree.Probe(e.point, e.doc);
    ASSERT_TRUE(w.has_value()) << e.doc;
    EXPECT_EQ(*w, e.weight);
  }
}

}  // namespace
}  // namespace i3
