// Tests for the observability subsystem (src/obs/): histogram bucket
// geometry and error bounds, snapshot merging, the concurrent recorders
// (run under TSan in CI), the metrics registry contract, the Prometheus /
// JSON exporters, the query tracer, and the shared search-stats view.

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "model/search_stats.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace i3 {
namespace obs {
namespace {

using B = HistogramBuckets;

// ---------------------------------------------------------------------------
// Histogram bucket geometry.

TEST(ObsHistogramTest, ValuesBelowSubBucketsAreExact) {
  for (uint64_t v = 0; v < B::kSubBuckets; ++v) {
    const uint32_t idx = B::IndexOf(v);
    EXPECT_EQ(idx, v);
    EXPECT_EQ(B::LowerBound(idx), v);
    EXPECT_EQ(B::UpperBoundInclusive(idx), v);
  }
}

TEST(ObsHistogramTest, BucketsPartitionTheRange) {
  // Buckets tile [0, kMaxTrackable] with no gaps and no overlaps.
  for (uint32_t idx = 0; idx + 1 < B::kNumBuckets; ++idx) {
    EXPECT_LE(B::LowerBound(idx), B::UpperBoundInclusive(idx));
    EXPECT_EQ(B::UpperBoundInclusive(idx) + 1, B::LowerBound(idx + 1))
        << "gap or overlap after bucket " << idx;
  }
  EXPECT_EQ(B::UpperBoundInclusive(B::kNumBuckets - 1), B::kMaxTrackable);
}

TEST(ObsHistogramTest, IndexOfLandsInsideTheBucket) {
  // Sweep bucket boundaries and their neighbours across every octave.
  std::vector<uint64_t> probes;
  for (uint32_t idx = 0; idx < B::kNumBuckets; ++idx) {
    probes.push_back(B::LowerBound(idx));
    probes.push_back(B::UpperBoundInclusive(idx));
  }
  for (uint64_t v : probes) {
    const uint32_t idx = B::IndexOf(v);
    ASSERT_LT(idx, B::kNumBuckets);
    EXPECT_LE(B::LowerBound(idx), v);
    EXPECT_GE(B::UpperBoundInclusive(idx), v);
  }
}

TEST(ObsHistogramTest, RelativeErrorIsBounded) {
  // The quantile estimate for a single recorded value is the inclusive
  // upper bound of its bucket: within kMaxRelativeError of the value.
  for (uint64_t v = 1; v <= B::kMaxTrackable / 2; v = v * 3 + 1) {
    const uint64_t upper = B::UpperBoundInclusive(B::IndexOf(v));
    EXPECT_GE(upper, v);
    EXPECT_LE(static_cast<double>(upper - v),
              B::kMaxRelativeError * static_cast<double>(v) + 1e-9)
        << "value " << v;
  }
}

TEST(ObsHistogramTest, OverflowClampsIntoLastBucket) {
  EXPECT_EQ(B::IndexOf(B::kMaxTrackable), B::kNumBuckets - 1);
  EXPECT_EQ(B::IndexOf(B::kMaxTrackable + 1), B::kNumBuckets - 1);
  EXPECT_EQ(B::IndexOf(UINT64_MAX), B::kNumBuckets - 1);

  HistogramSnapshot h;
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), UINT64_MAX);  // exact sum survives the clamp
  EXPECT_EQ(h.Max(), B::kMaxTrackable);
}

TEST(ObsHistogramTest, QuantilesOfUniformRecording) {
  HistogramSnapshot h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 10000u);
  // Each quantile estimate must be >= the true order statistic and within
  // the relative error bound of it.
  for (double q : {0.50, 0.90, 0.99}) {
    const uint64_t truth = static_cast<uint64_t>(q * 10000);
    const uint64_t est = h.Quantile(q);
    EXPECT_GE(est, truth);
    EXPECT_LE(static_cast<double>(est),
              (1.0 + B::kMaxRelativeError) * static_cast<double>(truth) + 1)
        << "q=" << q;
  }
  EXPECT_EQ(h.Quantile(0.0), h.Min());
  EXPECT_GE(h.Max(), 10000u);
}

TEST(ObsHistogramTest, EmptySnapshotIsZero) {
  HistogramSnapshot h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(ObsHistogramTest, MergeIsAssociativeAndCommutative) {
  HistogramSnapshot a, b, c;
  for (uint64_t v = 1; v < 500; v += 3) a.Record(v * 7);
  for (uint64_t v = 1; v < 400; v += 2) b.Record(v * 113);
  for (uint64_t v = 1; v < 300; ++v) c.Record(v);

  // (a + b) + c
  HistogramSnapshot ab = a;
  ab.MergeFrom(b);
  HistogramSnapshot ab_c = ab;
  ab_c.MergeFrom(c);

  // a + (b + c)
  HistogramSnapshot bc = b;
  bc.MergeFrom(c);
  HistogramSnapshot a_bc = a;
  a_bc.MergeFrom(bc);

  EXPECT_TRUE(ab_c == a_bc);

  // b + a == a + b
  HistogramSnapshot ba = b;
  ba.MergeFrom(a);
  EXPECT_TRUE(ba == ab);

  EXPECT_EQ(ab_c.count(), a.count() + b.count() + c.count());
  EXPECT_EQ(ab_c.sum(), a.sum() + b.sum() + c.sum());
}

TEST(ObsHistogramTest, ConcurrentRecordersFoldExactCounts) {
  // Stress for TSan: concurrent wait-free recording must be race-free and
  // lose no counts once the recorders have joined.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record((i + static_cast<uint64_t>(t) * 37) % 5000);
      }
    });
  }
  for (auto& th : threads) th.join();

  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count(), kThreads * kPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += (i + static_cast<uint64_t>(t) * 37) % 5000;
    }
  }
  EXPECT_EQ(snap.sum(), expected_sum);

  h.Reset();
  EXPECT_EQ(h.Snapshot().count(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(ObsMetricsTest, CounterSumsAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(ObsMetricsTest, GaugeSetAddSub) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(7);
  EXPECT_EQ(g.Value(), 8);
  g.Set(-3);
  EXPECT_EQ(g.Value(), -3);
}

TEST(ObsMetricsTest, SameNameAndLabelsReturnsSameObject) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("obs_test_total", "help");
  Counter* b = reg.GetCounter("obs_test_total", "help");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);

  Counter* labeled = reg.GetCounter("obs_test_total", "help", {{"k", "v"}});
  ASSERT_NE(labeled, nullptr);
  EXPECT_NE(labeled, a);  // distinct label set -> distinct series
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ObsMetricsTest, TypeConflictReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("obs_conflict", "help"), nullptr);
  EXPECT_EQ(reg.GetGauge("obs_conflict", "help"), nullptr);
  EXPECT_EQ(reg.GetHistogram("obs_conflict", "help"), nullptr);
}

TEST(ObsMetricsTest, InvalidNamesReturnNull) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.GetCounter("", "help"), nullptr);
  EXPECT_EQ(reg.GetCounter("0starts_with_digit", "help"), nullptr);
  EXPECT_EQ(reg.GetCounter("has space", "help"), nullptr);
  EXPECT_EQ(reg.GetCounter("has-dash", "help"), nullptr);
  // Colons are legal in metric names but not label names.
  EXPECT_NE(reg.GetCounter("ns:metric", "help"), nullptr);
  EXPECT_EQ(reg.GetCounter("ok_name", "help", {{"bad-label", "v"}}),
            nullptr);
  EXPECT_EQ(reg.GetCounter("ok_name", "help", {{"le:colon", "v"}}), nullptr);
}

TEST(ObsMetricsTest, SnapshotIsSortedAndFindable) {
  MetricsRegistry reg;
  reg.GetCounter("obs_zzz_total", "z")->Increment(3);
  reg.GetGauge("obs_aaa", "a")->Set(7);
  reg.GetHistogram("obs_mmm_us", "m")->Record(42);

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_TRUE(std::is_sorted(snap.samples.begin(), snap.samples.end(),
                             [](const MetricSample& x, const MetricSample& y) {
                               return x.name < y.name;
                             }));

  const MetricSample* c = snap.Find("obs_zzz_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 3.0);
  const MetricSample* g = snap.Find("obs_aaa");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 7.0);
  const MetricSample* h = snap.Find("obs_mmm_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->histogram.count(), 1u);
  EXPECT_EQ(snap.Find("obs_absent"), nullptr);
}

TEST(ObsMetricsTest, FindWithLabelsSelectsTheSeries) {
  MetricsRegistry reg;
  reg.GetCounter("obs_l_total", "h", {{"op", "read"}})->Increment(1);
  reg.GetCounter("obs_l_total", "h", {{"op", "write"}})->Increment(2);

  const MetricsSnapshot snap = reg.Snapshot();
  const MetricSample* w = snap.Find("obs_l_total", {{"op", "write"}});
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->value, 2.0);
  EXPECT_EQ(snap.Find("obs_l_total", {{"op", "scan"}}), nullptr);
}

TEST(ObsMetricsTest, ResetAllZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("obs_r_total", "h");
  Gauge* g = reg.GetGauge("obs_r_gauge", "h");
  Histogram* h = reg.GetHistogram("obs_r_us", "h");
  c->Increment(5);
  g->Set(9);
  h->Record(100);

  reg.ResetAll();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Snapshot().count(), 0u);
  // The cached pointers stay live and usable after the reset.
  c->Increment(1);
  EXPECT_EQ(c->Value(), 1u);
}

TEST(ObsMetricsTest, GlobalRegistryCarriesTheWiredSeries) {
  // The subsystems wired in this repo register on first construction;
  // merely touching the global registry must be safe and idempotent.
  Counter* c = MetricsRegistry::Global().GetCounter(
      "obs_selftest_total", "registered by test_obs");
  ASSERT_NE(c, nullptr);
  c->Increment();
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_NE(snap.Find("obs_selftest_total"), nullptr);
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(ObsExportTest, PrometheusTextShape) {
  MetricsRegistry reg;
  reg.GetCounter("obs_exp_total", "counter help", {{"op", "read"}})
      ->Increment(4);
  reg.GetCounter("obs_exp_total", "counter help", {{"op", "write"}})
      ->Increment(6);
  reg.GetGauge("obs_exp_depth", "gauge help")->Set(-2);
  Histogram* h = reg.GetHistogram("obs_exp_us", "histogram help");
  h->Record(10);
  h->Record(100);
  h->Record(1000);

  const std::string text = ToPrometheusText(reg.Snapshot());

  // HELP/TYPE exactly once per family even with several series.
  auto count_of = [&text](const std::string& needle) {
    size_t n = 0;
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("# HELP obs_exp_total counter help"), 1u);
  EXPECT_EQ(count_of("# TYPE obs_exp_total counter"), 1u);
  EXPECT_NE(text.find("obs_exp_total{op=\"read\"} 4"), std::string::npos);
  EXPECT_NE(text.find("obs_exp_total{op=\"write\"} 6"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_exp_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("obs_exp_depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_exp_us histogram"), std::string::npos);
  // Cumulative buckets terminated by +Inf, plus _sum and _count.
  EXPECT_NE(text.find("obs_exp_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("obs_exp_us_sum 1110"), std::string::npos);
  EXPECT_NE(text.find("obs_exp_us_count 3"), std::string::npos);
}

TEST(ObsExportTest, PrometheusBucketsAreCumulative) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("obs_cum_us", "h");
  h->Record(1);
  h->Record(1);
  h->Record(1000000);

  const std::string text = ToPrometheusText(reg.Snapshot());
  // The low bucket holds 2; the bucket at the large value must already
  // include them (cumulative), and +Inf equals the count.
  EXPECT_NE(text.find("obs_cum_us_bucket{le=\"1\"} 2"), std::string::npos);
  const size_t inf = text.find("obs_cum_us_bucket{le=\"+Inf\"} 3");
  ASSERT_NE(inf, std::string::npos);
  // No bucket line after +Inf for this family.
  EXPECT_EQ(text.find("obs_cum_us_bucket", inf + 1), std::string::npos);
}

TEST(ObsExportTest, LabelEscapingRoundTrips) {
  const std::string nasty = "a\\b\"c\nd";
  MetricsRegistry reg;
  reg.GetCounter("obs_esc_total", "h", {{"path", nasty}})->Increment(1);

  const std::string text = ToPrometheusText(reg.Snapshot());
  // The escaped form appears on the series line...
  const std::string escaped = "a\\\\b\\\"c\\nd";
  const size_t pos = text.find("obs_esc_total{path=\"" + escaped + "\"} 1");
  EXPECT_NE(pos, std::string::npos) << text;
  // ...and unescaping recovers the original value exactly.
  EXPECT_EQ(UnescapePrometheusLabelValue(escaped), nasty);
}

TEST(ObsExportTest, JsonCarriesValuesAndPercentiles) {
  MetricsRegistry reg;
  reg.GetCounter("obs_j_total", "h")->Increment(11);
  Histogram* h = reg.GetHistogram("obs_j_us", "h");
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v);

  const std::string json = ToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"name\": \"obs_j_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"obs_j_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": "), std::string::npos);
  EXPECT_NE(json.find("\"p99\": "), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check; the Python CI
  // gate does a full parse of the embedded snapshot).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ---------------------------------------------------------------------------
// Tracer.

TEST(ObsTraceTest, DisabledSamplerNeverTraces) {
  Tracer tracer;
  ASSERT_EQ(tracer.sample_rate(), 0.0);
  QueryTrace t;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(tracer.StartTrace("q", &t));
  }
  EXPECT_TRUE(tracer.Recent().empty());
}

TEST(ObsTraceTest, RateOneTracesEveryQuery) {
  Tracer tracer;
  tracer.SetSampleRate(1.0);
  for (int i = 0; i < 5; ++i) {
    QueryTrace t;
    ASSERT_TRUE(tracer.StartTrace("q", &t));
    t.AddStage("stage_a", 100);
    tracer.Finish(std::move(t));
  }
  const auto recent = tracer.Recent();
  ASSERT_EQ(recent.size(), 5u);
  EXPECT_EQ(recent.back().label, "q");
  EXPECT_GT(recent.back().total_ns, 0u);
}

TEST(ObsTraceTest, FractionalRateTracesEveryNth) {
  Tracer tracer;
  tracer.SetSampleRate(0.25);  // every 4th query on this thread
  int traced = 0;
  for (int i = 0; i < 100; ++i) {
    QueryTrace t;
    if (tracer.StartTrace("q", &t)) {
      ++traced;
      tracer.Finish(std::move(t));
    }
  }
  EXPECT_EQ(traced, 25);
}

TEST(ObsTraceTest, StagesAccumulateByName) {
  QueryTrace t;
  t.AddStage("scan", 100);
  t.AddStage("merge", 50);
  t.AddStage("scan", 200);
  ASSERT_EQ(t.stages.size(), 2u);
  EXPECT_EQ(t.StageNs("scan"), 300u);
  EXPECT_EQ(t.StageNs("merge"), 50u);
  EXPECT_EQ(t.StageNs("absent"), 0u);
  const TraceStage* scan = &t.stages[0];
  EXPECT_EQ(scan->calls, 2u);
}

TEST(ObsTraceTest, ScopedStageIsNoOpOnNullAndRecordsOtherwise) {
  { ScopedStage noop(nullptr, "x"); }  // must not crash or record

  QueryTrace t;
  {
    ScopedStage s(&t, "timed");
    // Some trivial work so the stage takes nonzero time on any clock.
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink += i;
  }
  ASSERT_EQ(t.stages.size(), 1u);
  EXPECT_EQ(t.stages[0].calls, 1u);
}

TEST(ObsTraceTest, RingBufferDropsOldest) {
  Tracer tracer;
  tracer.SetSampleRate(1.0);
  tracer.SetCapacity(3);
  for (int i = 0; i < 10; ++i) {
    QueryTrace t;
    ASSERT_TRUE(tracer.StartTrace("q", &t));
    t.Annotate("seq", static_cast<uint64_t>(i));
    tracer.Finish(std::move(t));
  }
  const auto recent = tracer.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent.front().annotations[0].second, 7u);  // oldest kept
  EXPECT_EQ(recent.back().annotations[0].second, 9u);

  tracer.Clear();
  EXPECT_TRUE(tracer.Recent().empty());
}

TEST(ObsTraceTest, TracesToJsonShape) {
  QueryTrace t;
  t.label = "I3.Search";
  t.total_ns = 1234;
  t.AddStage("cell_lookup", 1000);
  t.Annotate("results", 10);
  const std::string json = TracesToJson({t});
  EXPECT_NE(json.find("\"label\": \"I3.Search\""), std::string::npos);
  EXPECT_NE(json.find("\"cell_lookup\""), std::string::npos);
  EXPECT_NE(json.find("\"results\": 10"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Search-stats view + emitter.

TEST(ObsSearchStatsTest, ViewSetGetToString) {
  SearchStatsView v;
  v.Set("docs_scored", 42);
  v.Set("cells_pruned", 7);
  EXPECT_EQ(v.count, 2u);
  EXPECT_EQ(v.Get("docs_scored"), 42u);
  EXPECT_EQ(v.Get("cells_pruned"), 7u);
  EXPECT_EQ(v.Get("absent"), 0u);
  EXPECT_EQ(v.ToString(), "{docs_scored: 42, cells_pruned: 7}");
}

TEST(ObsSearchStatsTest, ViewCapsAtMaxStats) {
  SearchStatsView v;
  static const char* kNames[] = {"s0", "s1", "s2", "s3", "s4",
                                 "s5", "s6", "s7", "s8", "s9"};
  for (uint64_t i = 0; i < 10; ++i) v.Set(kNames[i], i);
  EXPECT_EQ(v.count, SearchStatsView::kMaxStats);
}

TEST(ObsSearchStatsTest, EmitterSumsIntoGlobalCounters) {
  SearchStatsView schema;
  schema.Set("obs_test_stat_a", 0);
  schema.Set("obs_test_stat_b", 0);
  SearchStatsEmitter emitter("obs-test-index", schema);

  SearchStatsView q1;
  q1.Set("obs_test_stat_a", 3);
  q1.Set("obs_test_stat_b", 0);  // zero -> no increment, still positional
  SearchStatsView q2;
  q2.Set("obs_test_stat_a", 4);
  q2.Set("obs_test_stat_b", 5);
  emitter.Emit(q1);
  emitter.Emit(q2);

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const MetricSample* a = snap.Find(
      "i3_search_stat_total",
      {{"index", "obs-test-index"}, {"stat", "obs_test_stat_a"}});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value, 7.0);
  const MetricSample* b = snap.Find(
      "i3_search_stat_total",
      {{"index", "obs-test-index"}, {"stat", "obs_test_stat_b"}});
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->value, 5.0);
}

}  // namespace
}  // namespace obs
}  // namespace i3
